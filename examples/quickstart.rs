//! Quickstart: train LDA on a small synthetic corpus with one simulated GPU.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use culda::core::{LdaConfig, SessionBuilder};
use culda::corpus::DatasetProfile;
use culda::gpusim::{DeviceSpec, MultiGpuSystem};
use culda::metrics::log_likelihood;

fn main() {
    // 1. A corpus.  Real UCI bag-of-words files can be loaded with
    //    `culda::corpus::bow::read_bow`; here we generate a synthetic twin of
    //    the NYTimes dataset at laptop scale.
    let corpus = DatasetProfile::nytimes()
        .scaled_to_tokens(100_000)
        .generate(42);
    println!(
        "corpus: {} documents, {} tokens, {} words",
        corpus.num_docs(),
        corpus.num_tokens(),
        corpus.vocab_size()
    );

    // 2. A (simulated) GPU and the paper's default configuration: K topics,
    //    alpha = 50/K, beta = 0.01.
    let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), 42);
    let config = LdaConfig::with_topics(128).seed(42);
    let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(config)
        .system(system)
        .build()
        .expect("trainer");

    // 3. Train, printing progress every few iterations.
    let iterations = 30;
    trainer.train_with(iterations, |i, stats, trainer| {
        if (i + 1) % 5 == 0 {
            let cfg = trainer.config();
            let ll = log_likelihood(
                &trainer.merged_theta(),
                &trainer.global_phi(),
                &trainer.global_nk(),
                cfg.alpha,
                cfg.beta,
            )
            .per_token();
            println!(
                "iteration {:>3}: {:>7.1} M tokens/s (simulated), log-likelihood/token = {:.4}",
                i + 1,
                stats.tokens_processed as f64 / stats.sim_time_s / 1e6,
                ll
            );
        }
    });

    // 4. Results.
    println!(
        "\nsimulated training time: {:.3} s  ({:.1} M tokens/s average)",
        trainer.sim_time_s(),
        trainer.average_throughput(iterations) / 1e6
    );
    println!("kernel breakdown (Table 5 style):");
    for (kernel, pct) in trainer.kernel_breakdown() {
        println!("  {kernel:<14} {pct:>5.1}%");
    }
    println!("\ntop words of the first 4 topics:");
    for k in 0..4 {
        let words: Vec<String> = trainer
            .top_words(k, 8)
            .into_iter()
            .map(|(w, c)| format!("w{w}({c})"))
            .collect();
        println!("  topic {k}: {}", words.join(" "));
    }
}
