//! Theoretical occupancy of the paper's sampling kernel across topic counts
//! and GPU generations (§6.1.2: 32 samplers per block, shared p*(k) + p2 tree).
//!
//! The paper fixes K between 1k and 10k; this analysis shows where the
//! shared-memory footprint of the per-block p*(k) array starts to evict
//! resident blocks on each architecture, i.e. how far the "one warp = one
//! sampler, 32 samplers per block" design scales with the topic count.
//!
//! ```text
//! cargo run --release --example occupancy_analysis
//! ```

use culda::gpusim::occupancy::{sampling_occupancy, ArchLimits, KernelResources};
use culda::gpusim::Arch;

fn main() {
    let archs = [
        ("Kepler (K40)", Arch::Kepler),
        ("Maxwell (Titan X)", Arch::Maxwell),
        ("Pascal (Titan Xp)", Arch::Pascal),
        ("Volta (V100)", Arch::Volta),
        ("Ampere (A100)", Arch::Ampere),
    ];
    let topic_counts = [256usize, 1024, 4096, 8192, 16384, 32768];

    println!("Shared-memory footprint of one sampling block (32-way p2 tree):");
    for &k in &topic_counts {
        let usage = KernelResources::sampling_kernel(k, 32);
        println!(
            "  K = {:>6}: {:>7} bytes shared / block",
            k, usage.shared_mem_per_block
        );
    }

    println!("\nTheoretical occupancy (fraction of resident warps) per architecture:");
    print!("{:<20}", "K");
    for (name, _) in &archs {
        print!(" {name:>18}");
    }
    println!();
    for &k in &topic_counts {
        print!("{:<20}", k);
        for &(_, arch) in &archs {
            let occ = sampling_occupancy(arch, k, 32);
            print!(
                " {:>13} {:>4.0}%",
                format!("{}x{}w", occ.blocks_per_sm, occ.active_warps_per_sm),
                occ.fraction * 100.0
            );
        }
        println!();
    }

    println!("\nLimiting resource at K = 16384:");
    for &(name, arch) in &archs {
        let occ = sampling_occupancy(arch, 16384, 32);
        let limits = ArchLimits::for_arch(arch);
        println!(
            "  {:<20} {:?} (shared/SM = {} KiB)",
            name,
            occ.limiter,
            limits.shared_mem_per_sm / 1024
        );
    }

    println!(
        "\nAt the paper's K = 1k-10k every generation keeps the warp limit as the binding\n\
         constraint, i.e. the 32-samplers-per-block layout saturates the SM; only at tens of\n\
         thousands of topics does the shared p*(k) array start evicting resident blocks."
    );
}
