//! Topic quality on a planted topic model: coherence, diversity and how many
//! of the generating topics CuLDA_CGS recovers.
//!
//! ```text
//! cargo run --release --example topic_coherence
//! ```

use culda::core::{LdaConfig, SessionBuilder};
use culda::corpus::LdaGenerator;
use culda::gpusim::{DeviceSpec, MultiGpuSystem};
use culda::metrics::coherence::{
    top_words, topic_quality_report, topics_recovered, umass_coherence, CooccurrenceIndex,
};

fn main() {
    // 1. Draw a corpus from a *known* 8-topic LDA model so quality can be
    //    judged against ground truth, not just by eyeball.
    let num_topics = 8;
    let (corpus, true_phi) = LdaGenerator::small(num_topics, 400, 1200, 60.0).generate(23);
    println!(
        "planted model: {} topics, {} documents, {} tokens",
        num_topics,
        corpus.num_docs(),
        corpus.num_tokens()
    );

    // 2. Train.
    let system = MultiGpuSystem::single(DeviceSpec::titan_xp_pascal(), 23);
    let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(num_topics).seed(23))
        .system(system)
        .build()
        .expect("trainer");
    trainer.train(60);

    // 3. Intrinsic quality: UMass/NPMI coherence + diversity of the learned topics.
    let quality = topic_quality_report(&corpus, &trainer.global_phi(), 10);
    println!(
        "learned topics: mean UMass coherence {:.2}, mean NPMI {:.2}, diversity {:.2}",
        quality.mean_coherence, quality.mean_npmi, quality.diversity
    );

    // 4. Recovery against the generating topics: a planted topic counts as
    //    recovered when some learned topic shares most of its top-10 words.
    let reference_top: Vec<Vec<u32>> = true_phi
        .iter()
        .map(|row| {
            let mut idx: Vec<u32> = (0..row.len() as u32).collect();
            idx.sort_by(|&a, &b| row[b as usize].partial_cmp(&row[a as usize]).unwrap());
            idx.truncate(10);
            idx
        })
        .collect();
    let recovered = topics_recovered(&trainer.global_phi(), &reference_top, 10, 6);
    println!("recovered {recovered}/{num_topics} planted topics (≥6/10 top-word overlap)");

    // 5. Show the learned topics next to their coherence scores.
    let index = CooccurrenceIndex::build(&corpus);
    for k in 0..num_topics {
        let words = top_words(&trainer.global_phi(), k, 8);
        let coherence = umass_coherence(&index, &words);
        let rendered: Vec<String> = words.iter().map(|w| format!("w{w}")).collect();
        println!(
            "topic {k}: [{}]  coherence {coherence:.2}",
            rendered.join(", ")
        );
    }
}
