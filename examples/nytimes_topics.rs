//! Topic modelling on the NYTimes-like corpus across GPU generations.
//!
//! Reproduces the single-GPU portion of §7.1 at laptop scale: the same
//! corpus is trained on the Maxwell, Pascal and Volta platforms of Table 2
//! and the per-iteration sampling speed (Figure 7) is printed, followed by
//! the learned topics.
//!
//! ```text
//! cargo run --release --example nytimes_topics
//! ```
//!
//! To run on the real NYTimes corpus, download `docword.nytimes.txt` from the
//! UCI repository and pass its path as the first argument.

use culda::core::{LdaConfig, SessionBuilder};
use culda::corpus::{bow, Corpus, DatasetProfile};
use culda::gpusim::{DeviceSpec, MultiGpuSystem};

fn load_corpus() -> Corpus {
    if let Some(path) = std::env::args().nth(1) {
        println!("loading UCI bag-of-words file {path} ...");
        let file = std::fs::File::open(&path).expect("open corpus file");
        bow::read_bow(std::io::BufReader::new(file)).expect("parse UCI bag-of-words file")
    } else {
        println!("no corpus path given; generating the scaled NYTimes twin");
        DatasetProfile::nytimes()
            .scaled_to_tokens(150_000)
            .generate(7)
    }
}

fn main() {
    let corpus = load_corpus();
    println!(
        "corpus: {} docs, {} tokens, {} words (avg doc len {:.0})\n",
        corpus.num_docs(),
        corpus.num_tokens(),
        corpus.vocab_size(),
        corpus.avg_doc_len()
    );

    let iterations = 25;
    let platforms = [
        DeviceSpec::titan_x_maxwell(),
        DeviceSpec::titan_xp_pascal(),
        DeviceSpec::v100_volta(),
    ];

    let mut final_trainer = None;
    for spec in platforms {
        let name = spec.name.clone();
        let system = MultiGpuSystem::single(spec, 7);
        let mut trainer = SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(128).seed(7))
            .system(system)
            .build()
            .unwrap();
        trainer.train(iterations);
        let series = trainer.throughput_per_iteration();
        println!(
            "{name:<28} avg {:>7.1} M tokens/s   (iteration 1: {:>6.1}M, iteration {iterations}: {:>6.1}M)",
            trainer.average_throughput(iterations) / 1e6,
            series.first().unwrap() / 1e6,
            series.last().unwrap() / 1e6,
        );
        final_trainer = Some(trainer);
    }

    let trainer = final_trainer.unwrap();
    println!("\nlearned topics (top words by count, Volta run):");
    for k in 0..8.min(trainer.config().num_topics) {
        let words: Vec<String> = trainer
            .top_words(k, 10)
            .into_iter()
            .map(|(w, _)| format!("w{w}"))
            .collect();
        println!("  topic {k:>3}: {}", words.join(" "));
    }
}
