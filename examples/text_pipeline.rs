//! From raw text to topics: the ingestion pipeline, training, and
//! human-readable topic listings via the vocabulary.
//!
//! ```text
//! cargo run --release --example text_pipeline
//! ```

use culda::core::{InferenceOptions, LdaConfig, SessionBuilder, TopicInferencer};
use culda::corpus::text::{PruneOptions, TextPipeline, TokenizerOptions};
use culda::gpusim::{DeviceSpec, MultiGpuSystem};
use culda::metrics::coherence::top_words;

/// A tiny corpus of raw "documents" drawn from two obvious themes (GPU
/// systems vs topic modelling) so the learned topics are easy to eyeball.
const DOCUMENTS: &[&str] = &[
    "The GPU kernel launches thousands of threads across streaming multiprocessors.",
    "Shared memory and the L1 cache keep the GPU memory bandwidth saturated.",
    "Warp level primitives let threads in a warp exchange registers quickly.",
    "PCIe transfers between the CPU and the GPU overlap with kernel execution.",
    "Multiple GPUs synchronize their model replicas with a tree reduce broadcast.",
    "The GPU scheduler issues thread blocks to every streaming multiprocessor.",
    "Latent Dirichlet Allocation infers topics from a corpus of documents.",
    "Collapsed Gibbs sampling reassigns a topic to every token of a document.",
    "The document topic matrix is sparse while the topic word matrix is dense.",
    "Sparsity aware sampling exploits the sparse document topic counts.",
    "Topic models describe documents as mixtures over latent topics.",
    "The Dirichlet priors alpha and beta smooth the topic distributions.",
    "GPU accelerated sampling makes topic model training much faster.",
    "Each token of the corpus is an occurrence of a vocabulary word.",
];

fn main() {
    // 1. Raw text → corpus + vocabulary.  Stop words are removed, words that
    //    appear in a single document are pruned.
    let mut pipeline = TextPipeline::new(TokenizerOptions::default()).with_pruning(PruneOptions {
        min_doc_freq: 2,
        ..PruneOptions::default()
    });
    for doc in DOCUMENTS {
        pipeline.ingest(doc);
    }
    let (corpus, vocab) = pipeline.build();
    println!(
        "ingested {} documents → {} tokens over a vocabulary of {} words",
        corpus.num_docs(),
        corpus.num_tokens(),
        vocab.len()
    );

    // 2. Train a 2-topic model (the corpus is tiny; this runs in milliseconds).
    //    The paper's α = 50/K default is meant for K in the thousands; with
    //    two topics a smaller α gives the crisper mixtures one expects here.
    let mut config = LdaConfig::with_topics(2).seed(5);
    config.alpha = 0.1;
    let system = MultiGpuSystem::single(DeviceSpec::gtx_1080(), 5);
    let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(config)
        .system(system)
        .build()
        .expect("trainer");
    trainer.train(200);

    // 3. Print the topics with real words.
    for k in 0..2 {
        let words: Vec<String> = top_words(&trainer.global_phi(), k, 8)
            .into_iter()
            .map(|w| vocab.word(w).unwrap_or("?").to_string())
            .collect();
        println!("topic {k}: {}", words.join(", "));
    }

    // 4. Classify a new sentence with fold-in inference.
    let inferencer = TopicInferencer::from_trainer(&trainer);
    let query = "the gpu threads sample topics from shared memory";
    let tokenizer = culda::corpus::Tokenizer::new(TokenizerOptions::default());
    let ids: Vec<u32> = tokenizer
        .tokenize(query)
        .iter()
        .filter_map(|t| vocab.id(t))
        .collect();
    let result = inferencer.infer_document(&ids, InferenceOptions::default());
    println!("query: {query:?}");
    for (topic, p) in result.top_topics(2) {
        println!("  topic {topic}: {:.1}%", p * 100.0);
    }
}
