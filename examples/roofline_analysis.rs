//! The §3 bottleneck analysis: Table 1 (Flops/Byte of each sampling step) and
//! the roofline ridge points of every evaluated platform, demonstrating that
//! LDA sampling is memory-bound everywhere — the observation the whole system
//! design follows from.
//!
//! ```text
//! cargo run --release --example roofline_analysis
//! ```

use culda::gpusim::DeviceSpec;
use culda::metrics::roofline;

fn main() {
    println!("Table 1: Flops/Byte of each step of one LDA sampling");
    println!("{:<24} {:<40} {:>8}", "Step", "Formula", "Value");
    for step in culda::metrics::table1() {
        println!(
            "{:<24} {:<40} {:>8.2}",
            step.name, step.formula, step.flops_per_byte
        );
    }
    let avg = roofline::average_intensity();
    println!("\naverage arithmetic intensity: {avg:.2} Flops/Byte (paper: 0.27)\n");

    println!(
        "{:<30} {:>14} {:>12} {:>14} {:>14}",
        "Platform", "BW (GB/s)", "GFLOPS", "ridge (F/B)", "LDA bound by"
    );
    for spec in [
        DeviceSpec::xeon_e5_2690v4(),
        DeviceSpec::titan_x_maxwell(),
        DeviceSpec::titan_xp_pascal(),
        DeviceSpec::v100_volta(),
    ] {
        let ridge = spec.ridge_flops_per_byte();
        let bound = if roofline::is_memory_bound(avg, ridge) {
            "memory"
        } else {
            "compute"
        };
        println!(
            "{:<30} {:>14.1} {:>12.0} {:>14.1} {:>14}",
            spec.name, spec.mem_bandwidth_gbps, spec.peak_gflops, ridge, bound
        );
    }
    println!(
        "\nLDA sampling sits far below every ridge point, so throughput is governed by memory\n\
         bandwidth — the reason GPUs (336–900 GB/s) beat CPUs (51.2 GB/s) on this workload."
    );
}
