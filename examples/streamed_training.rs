//! Streaming/online training: a live model fed in mini-batches through the
//! `StreamingSession` API, on memory-starved devices that force the `M > 1`
//! streaming schedule (`WorkSchedule2` of Algorithm 1), with document
//! retirement, checkpoint rotation, and the energy estimate of the run.
//!
//! ```text
//! cargo run --release --example streamed_training
//! ```

use culda::core::{LdaConfig, StreamingSession};
use culda::core::{ScheduleKind, SessionBuilder};
use culda::corpus::{DatasetProfile, Document};
use culda::gpusim::{
    DeviceSpec, EnergyModel, EnergyReport, Interconnect, MultiGpuSystem, Topology,
};

fn main() {
    // 1. A PubMed-like corpus and a deliberately memory-starved device (the
    //    V100 spec with its memory cut to a fraction of a GiB) so the trainer
    //    is forced into the streaming schedule exactly as §5.1 describes for
    //    corpora larger than device memory.
    let corpus = DatasetProfile::pubmed()
        .scaled_to_tokens(300_000)
        .generate(3);
    let small_gpu = DeviceSpec::builder(DeviceSpec::v100_volta())
        .name("V100 (2 MiB for the demo)")
        .mem_capacity_bytes(2 << 20)
        .build();
    let system = MultiGpuSystem::homogeneous(small_gpu, 2, 3, Interconnect::Pcie3);

    // 2. A streaming session that starts empty: documents arrive in
    //    mini-batches, each batch is burnt in against the current φ, a few
    //    training iterations run, and a checkpoint set is rotated out.
    let ckpt_dir = std::env::temp_dir().join("culda_streamed_training_example");
    let _ = std::fs::remove_dir_all(&ckpt_dir);
    let mut session = SessionBuilder::new()
        .config(LdaConfig::with_topics(64).seed(3))
        .system(system)
        .burn_in_sweeps(1)
        .build_streaming()
        .expect("session");

    let docs: Vec<Document> = (0..corpus.num_docs())
        .map(|d| Document::from(corpus.doc(d)))
        .collect();
    let batch_size = docs.len().div_ceil(4).max(1);
    let window = docs.len() * 3 / 4; // retire the oldest quarter over the run
    for batch in docs.chunks(batch_size) {
        session.ingest(batch);
        let live = session.live_uids();
        if live.len() > window {
            session
                .retire(&live[..live.len() - window])
                .expect("retire");
        }
        session.train(3).expect("train");
        session.rotate_checkpoints(&ckpt_dir, 2).expect("rotate");
    }
    match session.trainer().map(|t| t.schedule()) {
        Some(ScheduleKind::Streamed { chunks_per_gpu }) => println!(
            "streaming schedule selected: M = {chunks_per_gpu} chunks per GPU ({} chunks total)",
            session.trainer().map(|t| t.num_chunks()).unwrap_or(0)
        ),
        Some(ScheduleKind::Resident) => {
            println!("resident schedule (corpus fits in device memory)")
        }
        None => println!("no training burst has run yet"),
    }

    // 3. Where did the time go?  Transfer share of the iteration time
    //    (guarded: a session that never trained has no simulated time) and
    //    the chunk occupancy of the session's least-loaded-slot placement.
    let stats = session.stats();
    let transfer: f64 = session.history().iter().map(|h| h.transfer_time_s).sum();
    let total = session.sim_time_s();
    if total > 0.0 {
        println!(
            "{} iterations in {total:.3} simulated seconds ({:.1}% spent in transfers)",
            stats.iterations,
            transfer / total * 100.0
        );
    } else {
        println!("no simulated time accumulated (degenerate configuration)");
    }
    println!(
        "session: {} live docs / {} ingested / {} retired, {} rotations into {} (last 2 kept)",
        stats.live_docs,
        stats.ingested_docs,
        stats.retired_docs,
        stats.checkpoints_written,
        ckpt_dir.display()
    );
    let occupancy: Vec<String> = stats
        .chunk_tokens
        .iter()
        .enumerate()
        .map(|(i, t)| format!("chunk{i}={t}"))
        .collect();
    println!(
        "chunk occupancy: {} (imbalance {:.3})",
        occupancy.join(" "),
        stats.chunk_imbalance()
    );

    // 4. The rotated checkpoints are live: resume the newest one and verify
    //    the restored session carries the exact same state.
    let resumed = StreamingSession::resume(
        &ckpt_dir,
        MultiGpuSystem::homogeneous(
            DeviceSpec::builder(DeviceSpec::v100_volta())
                .name("V100 (2 MiB for the demo)")
                .mem_capacity_bytes(2 << 20)
                .build(),
            2,
            3,
            Interconnect::Pcie3,
        ),
    )
    .expect("resume");
    assert_eq!(resumed.z_snapshot(), session.z_snapshot());
    println!(
        "resumed session matches bit-for-bit at iteration {}",
        resumed.completed_iterations()
    );

    // 5. Energy estimate of the run: charge each device's busy time and the
    //    corpus-sized traffic to the per-architecture energy model.
    if let Some(trainer) = session.trainer() {
        let mut report = EnergyReport::default();
        for device in trainer.system().devices() {
            let model = EnergyModel::for_spec(&device.spec);
            let bytes =
                (device.busy_time_s() * device.spec.effective_bandwidth_bytes_per_s()) as u64;
            let counters = culda::gpusim::CostCounters {
                dram_read_bytes: bytes,
                ..Default::default()
            };
            let time = culda::gpusim::cost::kernel_time(&device.spec, &counters, 1_000_000);
            report.add_kernel(&model, &counters, &time, stats.live_tokens / 2);
        }
        println!(
            "energy estimate (last burst): {:.1} J total, {:.1} W average, {:.0} tokens/J",
            report.total_j,
            report.average_power_w(),
            report.tokens_per_joule()
        );
    }

    // 6. Would the φ synchronization be cheaper on NVLink?  Compare the §5.2
    //    tree reduce+broadcast on both fabrics, and against a ring all-reduce.
    let phi_bytes = (session.config().num_topics * stats.vocab_size * 2) as u64;
    for topology in [Topology::PcieTree, Topology::NvLinkMesh] {
        let (tree, ring, ratio) = topology.tree_vs_ring(2, phi_bytes, 500.0e9);
        println!(
            "{topology:?}: tree sync {:.3} ms, ring all-reduce {:.3} ms (tree/ring = {ratio:.2})",
            tree * 1e3,
            ring * 1e3
        );
    }

    let _ = std::fs::remove_dir_all(&ckpt_dir);
}
