//! The `M > 1` streaming schedule (`WorkSchedule2` of Algorithm 1): training
//! a corpus that does not fit in device memory, with chunk transfers
//! overlapped against sampling, plus the energy estimate of the run.
//!
//! ```text
//! cargo run --release --example streamed_training
//! ```

use culda::core::{CuLdaTrainer, LdaConfig, ScheduleKind};
use culda::corpus::DatasetProfile;
use culda::gpusim::{
    DeviceSpec, EnergyModel, EnergyReport, Interconnect, MultiGpuSystem, Topology,
};

fn main() {
    // 1. A PubMed-like corpus and a deliberately memory-starved device (the
    //    V100 spec with its memory cut to a fraction of a GiB) so the trainer
    //    is forced into the streaming schedule exactly as §5.1 describes for
    //    corpora larger than device memory.
    let corpus = DatasetProfile::pubmed()
        .scaled_to_tokens(300_000)
        .generate(3);
    let small_gpu = DeviceSpec::builder(DeviceSpec::v100_volta())
        .name("V100 (2 MiB for the demo)")
        .mem_capacity_bytes(2 << 20)
        .build();
    let system = MultiGpuSystem::homogeneous(small_gpu, 2, 3, Interconnect::Pcie3);

    let mut trainer =
        CuLdaTrainer::new(&corpus, LdaConfig::with_topics(64).seed(3), system).expect("trainer");
    match trainer.schedule() {
        ScheduleKind::Streamed { chunks_per_gpu } => println!(
            "streaming schedule selected: M = {chunks_per_gpu} chunks per GPU ({} chunks total)",
            trainer.num_chunks()
        ),
        ScheduleKind::Resident => println!("resident schedule (corpus fits in device memory)"),
    }

    // 2. Train and report how much of the iteration time the PCIe transfers
    //    consume versus the sampling itself.
    let iterations = 10;
    trainer.train(iterations);
    let transfer: f64 = trainer.history().iter().map(|h| h.transfer_time_s).sum();
    let total = trainer.sim_time_s();
    println!(
        "{iterations} iterations in {total:.3} simulated seconds ({:.1}% spent in transfers)",
        transfer / total * 100.0
    );
    println!(
        "throughput: {:.1} M tokens/s",
        trainer.average_throughput(iterations) / 1e6
    );

    // 3. Energy estimate of the run: charge each device's busy time and the
    //    corpus-sized traffic to the per-architecture energy model.
    let mut report = EnergyReport::default();
    for device in trainer.system().devices() {
        let model = EnergyModel::for_spec(&device.spec);
        // Approximate the per-device counters from its busy time and the
        // bandwidth the roofline model says it sustained.
        let bytes = (device.busy_time_s() * device.spec.effective_bandwidth_bytes_per_s()) as u64;
        let counters = culda::gpusim::CostCounters {
            dram_read_bytes: bytes,
            ..Default::default()
        };
        let time = culda::gpusim::cost::kernel_time(&device.spec, &counters, 1_000_000);
        report.add_kernel(&model, &counters, &time, trainer.total_tokens() / 2);
    }
    println!(
        "energy estimate: {:.1} J total, {:.1} W average, {:.0} tokens/J",
        report.total_j,
        report.average_power_w(),
        report.tokens_per_joule()
    );

    // 4. Would the φ synchronization be cheaper on NVLink?  Compare the §5.2
    //    tree reduce+broadcast on both fabrics, and against a ring all-reduce.
    let phi_bytes = (trainer.config().num_topics * trainer.vocab_size() * 2) as u64;
    for topology in [Topology::PcieTree, Topology::NvLinkMesh] {
        let (tree, ring, ratio) = topology.tree_vs_ring(2, phi_bytes, 500.0e9);
        println!(
            "{topology:?}: tree sync {:.3} ms, ring all-reduce {:.3} ms (tree/ring = {ratio:.2})",
            tree * 1e3,
            ring * 1e3
        );
    }
}
