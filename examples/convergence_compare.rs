//! Convergence comparison of CuLDA_CGS against the baselines (Figure 8 at
//! laptop scale): log-likelihood per token against simulated wall-clock time
//! for CuLDA (Volta), WarpLDA and AliasLDA (CPU), the SaberLDA-style GPU
//! baseline and the LDA*-style distributed baseline.
//!
//! ```text
//! cargo run --release --example convergence_compare
//! ```

use culda::baselines::{AliasLda, CuLdaSolver, LdaSolver, LdaStar, SaberLda, WarpLda};
use culda::core::{LdaConfig, SessionBuilder};
use culda::corpus::DatasetProfile;
use culda::gpusim::{DeviceSpec, MultiGpuSystem};

fn main() {
    let corpus = DatasetProfile::pubmed()
        .scaled_to_tokens(120_000)
        .generate(3);
    let k = 96;
    let iterations = 25;
    println!(
        "PubMed twin: {} docs, {} tokens, K = {k}\n",
        corpus.num_docs(),
        corpus.num_tokens()
    );

    let mut solvers: Vec<Box<dyn LdaSolver>> = vec![
        Box::new(CuLdaSolver::new(
            SessionBuilder::new()
                .corpus(&corpus)
                .config(LdaConfig::with_topics(k).seed(3))
                .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 3))
                .build()
                .unwrap(),
            "CuLDA_CGS (V100)",
        )),
        Box::new(WarpLda::with_paper_priors(&corpus, k, 3)),
        Box::new(AliasLda::with_paper_priors(&corpus, k, 3)),
        Box::new(SaberLda::on_gtx_1080(&corpus, k, 3).unwrap()),
        Box::new(LdaStar::new(&corpus, k, 20, 3)),
    ];

    println!(
        "{:<34} {:>14} {:>16} {:>16}",
        "solver", "sim time (s)", "initial LL/token", "final LL/token"
    );
    for solver in &mut solvers {
        let initial = solver.loglik_per_token();
        for _ in 0..iterations {
            solver.run_iteration();
        }
        println!(
            "{:<34} {:>14.4} {:>16.4} {:>16.4}",
            solver.name(),
            solver.elapsed_s(),
            initial,
            solver.loglik_per_token()
        );
    }
    println!(
        "\nAll solvers converge to a similar quality; the GPU solver gets there in the least\n\
         simulated time, the Ethernet-bound distributed baseline in the most (\u{00a7}7.2)."
    );
}
