//! Multi-GPU scaling on the PubMed-like corpus (Figure 9 at laptop scale),
//! plus the vocabulary-sharded φ synchronization sweep (DESIGN.md §8).
//!
//! ```text
//! cargo run --release --example multi_gpu_scaling
//! ```
//!
//! **How to read the output.**  The first table trains a PubMed-like corpus
//! on 1, 2 and 4 simulated Pascal GPUs with the paper's dense §5.2 reduce and
//! reports the throughput speedup together with where the time goes (compute
//! vs φ synchronization) — the trade-off §5 is about.  The second table holds
//! the topology fixed at 4 GPUs, switches to a denser corpus whose sampling
//! phase outweighs the reduce (the regime of the paper's full-size runs,
//! where Figure 9's scaling flattens because of the sync), and sweeps the
//! shard count `S` of the φ synchronization:
//!
//! * `reduce work`    — interconnect time actually spent in the per-shard
//!   tree reduces + broadcasts, summed over shards.  It *grows* slightly
//!   with `S` (every shard pays the per-round link latencies).
//! * `exposed sync`   — the synchronization time the iteration critical path
//!   still sees once shard `s`'s reduce overlaps the sampling of shard
//!   `s + 1`.  This is the number the overlap shrinks; the win is the gap
//!   between the two columns.
//! * `iter time`      — simulated wall-clock per iteration; `speedup` is
//!   relative to the dense `S = 1` row.
//!
//! Picking `S` is a latency/overlap trade: each extra shard pays its own
//! tree-round latencies, so on a *sync-dominated* configuration (small
//! corpus, large `K × V`) sharding can lose — crank the corpus density or
//! drop to `S ∈ {2, 4}` there.  Since PR 4 the default
//! (`LdaConfig::sync_shards(None)`) auto-tunes `S` from the measured
//! compute/sync ratio of iteration 0; this example pins explicit shard
//! counts so both tables stay interpretable.  Both corpora are generated with a
//! frequency-shuffled vocabulary (real corpora have alphabetical
//! vocabularies), so token mass — and therefore sampling time — is spread
//! across the vocabulary range; a frequency-*sorted* vocabulary would
//! front-load the sampling into the first shard and shrink the overlap win
//! (see DESIGN.md §8).

use culda::core::{LdaConfig, SessionBuilder};
use culda::corpus::DatasetProfile;
use culda::gpusim::{ClusterSystem, DeviceSpec, Interconnect, MultiGpuSystem};
use culda_testkit::fixtures::shuffled_vocab as shuffle_vocab;

fn main() {
    let corpus = shuffle_vocab(
        &DatasetProfile::pubmed()
            .scaled_to_tokens(400_000)
            .generate(11),
    );
    println!(
        "PubMed twin: {} docs, {} tokens, {} words\n",
        corpus.num_docs(),
        corpus.num_tokens(),
        corpus.vocab_size()
    );

    let iterations = 20;
    let mut baseline = None;
    println!(
        "{:<8} {:>14} {:>10} {:>16} {:>16}",
        "#GPUs", "MTokens/sec", "speedup", "compute (ms/it)", "sync (ms/it)"
    );
    for gpus in [1usize, 2, 4] {
        let system = MultiGpuSystem::homogeneous(
            DeviceSpec::titan_xp_pascal(),
            gpus,
            11,
            Interconnect::Pcie3,
        );
        // `sync_shards(1)` pins the paper's dense reduce: the default
        // (`None`) would auto-tune the shard count after iteration 0 and
        // contaminate the dense-baseline scaling table below.
        let mut trainer = SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(160).seed(11).sync_shards(1))
            .system(system)
            .build()
            .unwrap();
        trainer.train(iterations);
        let tput = trainer.average_throughput(iterations);
        let baseline_tput = *baseline.get_or_insert(tput);
        let avg_compute: f64 = trainer
            .history()
            .iter()
            .map(|h| h.compute_time_s)
            .sum::<f64>()
            / iterations as f64;
        let avg_sync: f64 =
            trainer.history().iter().map(|h| h.sync_time_s).sum::<f64>() / iterations as f64;
        println!(
            "{:<8} {:>14.1} {:>9.2}x {:>16.3} {:>16.3}",
            gpus,
            tput / 1e6,
            tput / baseline_tput,
            avg_compute * 1e3,
            avg_sync * 1e3
        );
    }
    println!("\npaper (full-size PubMed, Pascal platform): 1.93x on 2 GPUs, 2.99x on 4 GPUs");

    // --- Sharded φ synchronization sweep (fixed 4-GPU PCIe topology). ---
    // A denser corpus: sampling ≈ 1.7× the dense sync, as in the paper's
    // full-size runs, which is the regime the overlap targets.
    let dense_corpus = shuffle_vocab(
        &DatasetProfile {
            name: "dense-docs".into(),
            num_docs: 2700,
            vocab_size: 4000,
            avg_doc_len: 330.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(11),
    );
    println!(
        "\nφ sync sharding on 4 GPUs (overlap depth 2, {} tokens, V = {}):\n\
         {:<8} {:>18} {:>18} {:>16} {:>10}",
        dense_corpus.num_tokens(),
        dense_corpus.vocab_size(),
        "#shards",
        "reduce work (ms)",
        "exposed sync (ms)",
        "iter time (ms)",
        "speedup"
    );
    let sweep_iterations = 5;
    let mut dense_iter = None;
    for shards in [1usize, 2, 4, 8, 16] {
        let system =
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 4, 11, Interconnect::Pcie3);
        let config = LdaConfig::with_topics(160)
            .seed(11)
            .sync_shards(shards)
            .sync_overlap_depth(2);
        let mut trainer = SessionBuilder::new()
            .corpus(&dense_corpus)
            .config(config)
            .system(system)
            .build()
            .unwrap();
        trainer.train(sweep_iterations);
        let n = sweep_iterations as f64;
        let work: f64 = trainer.history().iter().map(|h| h.sync_time_s).sum::<f64>() / n;
        let exposed: f64 = trainer
            .history()
            .iter()
            .map(|h| h.sync_exposed_time_s)
            .sum::<f64>()
            / n;
        let iter_time: f64 = trainer.history().iter().map(|h| h.sim_time_s).sum::<f64>() / n;
        let dense = *dense_iter.get_or_insert(iter_time);
        println!(
            "{:<8} {:>18.3} {:>18.3} {:>16.3} {:>9.2}x",
            shards,
            work * 1e3,
            exposed * 1e3,
            iter_time * 1e3,
            dense / iter_time
        );
    }
    println!(
        "\nreduce work grows with #shards (per-round latencies) while the exposed\n\
         sync shrinks: the reduces hide behind the sampling of later shards."
    );

    // --- Cluster node sweep (DESIGN.md §14). ---
    // The same four Pascal devices, regrouped into nodes joined by a 10 GbE
    // fabric (PCIe inside every node).  Grouping is costing-only — every row
    // trains the bit-identical model — but the sync schedule changes: the
    // hierarchical plan reduces each shard inside the node first, so the slow
    // fabric carries one replica per node instead of one per device.  Shard
    // and fabric-group counts auto-tune per row (default config).
    println!(
        "\ncluster regrouping of the same 4 GPUs over 10 GbE ({} tokens, K = 160):\n\
         {:<12} {:>19} {:>19} {:>12} {:>12}",
        dense_corpus.num_tokens(),
        "topology",
        "hier exposed (ms)",
        "flat exposed (ms)",
        "intra MB/it",
        "fabric MB/it"
    );
    for (nodes, gpus) in [(1usize, 4usize), (2, 2), (4, 1)] {
        let mut exposed = [0.0f64; 2];
        let mut tier_mb = [0.0f64; 2];
        for (slot, hierarchical) in [(0usize, true), (1usize, false)] {
            let system = if nodes > 1 {
                ClusterSystem::homogeneous(
                    DeviceSpec::titan_xp_pascal(),
                    nodes,
                    gpus,
                    11,
                    Interconnect::Pcie3,
                    Interconnect::Ethernet10G,
                )
                .into_system()
            } else {
                MultiGpuSystem::homogeneous(
                    DeviceSpec::titan_xp_pascal(),
                    gpus,
                    11,
                    Interconnect::Pcie3,
                )
            };
            let mut trainer = SessionBuilder::new()
                .corpus(&dense_corpus)
                .config(
                    LdaConfig::with_topics(160)
                        .seed(11)
                        .hierarchical_sync(hierarchical),
                )
                .system(system)
                .build()
                .unwrap();
            trainer.train(sweep_iterations);
            let n = sweep_iterations as f64;
            exposed[slot] = trainer
                .history()
                .iter()
                .map(|h| h.sync_exposed_time_s)
                .sum::<f64>()
                / n;
            let (intra, inter) = trainer.history().iter().fold((0u64, 0u64), |acc, h| {
                (acc.0 + h.intra_sync_bytes, acc.1 + h.inter_sync_bytes)
            });
            if slot == 0 {
                tier_mb = [intra as f64 / n / 1e6, inter as f64 / n / 1e6];
            }
        }
        println!(
            "{:<12} {:>19.3} {:>19.3} {:>12.2} {:>12.2}",
            format!("{nodes} × {gpus}"),
            exposed[0] * 1e3,
            exposed[1] * 1e3,
            tier_mb[0],
            tier_mb[1]
        );
    }
    println!(
        "\nmore nodes → more traffic forced onto the slow fabric; the hierarchy\n\
         caps the fabric share at one replica exchange per node pair."
    );
}
