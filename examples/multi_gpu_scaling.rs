//! Multi-GPU scaling on the PubMed-like corpus (Figure 9 at laptop scale).
//!
//! Trains the same corpus on 1, 2 and 4 simulated Pascal GPUs and reports the
//! speedup of the simulated iteration time, together with where the time
//! goes (compute vs φ synchronization) — the trade-off §5 is about.
//!
//! ```text
//! cargo run --release --example multi_gpu_scaling
//! ```

use culda::core::{CuLdaTrainer, LdaConfig};
use culda::corpus::DatasetProfile;
use culda::gpusim::{DeviceSpec, Interconnect, MultiGpuSystem};

fn main() {
    let corpus = DatasetProfile::pubmed()
        .scaled_to_tokens(400_000)
        .generate(11);
    println!(
        "PubMed twin: {} docs, {} tokens, {} words\n",
        corpus.num_docs(),
        corpus.num_tokens(),
        corpus.vocab_size()
    );

    let iterations = 20;
    let mut baseline = None;
    println!(
        "{:<8} {:>14} {:>10} {:>16} {:>16}",
        "#GPUs", "MTokens/sec", "speedup", "compute (ms/it)", "sync (ms/it)"
    );
    for gpus in [1usize, 2, 4] {
        let system = MultiGpuSystem::homogeneous(
            DeviceSpec::titan_xp_pascal(),
            gpus,
            11,
            Interconnect::Pcie3,
        );
        let mut trainer =
            CuLdaTrainer::new(&corpus, LdaConfig::with_topics(160).seed(11), system).unwrap();
        trainer.train(iterations);
        let tput = trainer.average_throughput(iterations);
        let baseline_tput = *baseline.get_or_insert(tput);
        let avg_compute: f64 = trainer
            .history()
            .iter()
            .map(|h| h.compute_time_s)
            .sum::<f64>()
            / iterations as f64;
        let avg_sync: f64 =
            trainer.history().iter().map(|h| h.sync_time_s).sum::<f64>() / iterations as f64;
        println!(
            "{:<8} {:>14.1} {:>9.2}x {:>16.3} {:>16.3}",
            gpus,
            tput / 1e6,
            tput / baseline_tput,
            avg_compute * 1e3,
            avg_sync * 1e3
        );
    }
    println!("\npaper (full-size PubMed, Pascal platform): 1.93x on 2 GPUs, 2.99x on 4 GPUs");
}
