//! Held-out evaluation: train CuLDA_CGS, then score unseen documents with
//! fold-in inference and the document-completion protocol.
//!
//! ```text
//! cargo run --release --example heldout_perplexity
//! ```

use culda::core::{InferenceOptions, LdaConfig, ModelCheckpoint, SessionBuilder, TopicInferencer};
use culda::corpus::{holdout, DatasetProfile};
use culda::gpusim::{DeviceSpec, MultiGpuSystem};
use culda::metrics::heldout::evaluate_heldout;

fn main() {
    // 1. A synthetic NYTimes twin, split 80/20 at the document level.
    let corpus = DatasetProfile::nytimes()
        .scaled_to_tokens(120_000)
        .generate(7);
    let split = holdout::split_documents(&corpus, 0.2, 7);
    println!(
        "train: {} docs / {} tokens   test: {} docs / {} tokens",
        split.train.num_docs(),
        split.train.num_tokens(),
        split.test.num_docs(),
        split.test.num_tokens()
    );

    // 2. Train on the training split only.
    let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), 7);
    let mut trainer = SessionBuilder::new()
        .corpus(&split.train)
        .config(LdaConfig::with_topics(64).seed(7))
        .system(system)
        .build()
        .expect("trainer");

    // 3. Evaluate held-out perplexity as training progresses.  Each test
    //    document is split into an observed half (used to infer its topic
    //    mixture) and a held-out half (scored against that mixture).
    let completion = holdout::DocumentCompletion::split(&split.test, 0.5, 3);
    let infer_opts = InferenceOptions {
        sweeps: 20,
        burn_in: 5,
        seed: 11,
    };
    println!(
        "{:>10}  {:>14}  {:>10}",
        "iteration", "loglik/token", "perplexity"
    );
    for round in 0..5 {
        trainer.train(8);
        let inferencer = TopicInferencer::from_trainer(&trainer);
        let theta_counts = inferencer.infer_corpus_counts(&completion.observed, infer_opts);
        let score = evaluate_heldout(
            &completion.heldout,
            &theta_counts,
            &trainer.global_phi(),
            &trainer.global_nk(),
            trainer.config().alpha,
            trainer.config().beta,
        );
        println!(
            "{:>10}  {:>14.4}  {:>10.1}",
            (round + 1) * 8,
            score.per_token(),
            score.perplexity()
        );
    }

    // 4. Persist the trained model; the CLI (`culda-cli topics/infer/eval`)
    //    and later sessions can reload it without re-training.
    let path = std::env::temp_dir().join("culda_heldout_example.cldm");
    ModelCheckpoint::from_trainer(&trainer)
        .save(&path)
        .expect("save checkpoint");
    println!("model checkpoint written to {}", path.display());
}
