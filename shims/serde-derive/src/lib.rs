//! Offline shim for `serde_derive`.
//!
//! The repository derives `Serialize`/`Deserialize` on value types but never
//! invokes a serializer (all on-disk formats are hand-rolled binary codecs),
//! so the derives expand to nothing.  The `attributes(serde)` declaration
//! keeps `#[serde(...)]` field attributes parseable.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
