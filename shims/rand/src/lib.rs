//! Offline shim for `rand`.
//!
//! Mirrors the public shape of the real crate for the slice of API this
//! workspace touches: the [`RngCore`] / [`Rng`] / [`SeedableRng`] traits,
//! uniform range sampling via [`Rng::gen_range`], standard-distribution
//! draws via [`Rng::gen`], and [`seq::SliceRandom::shuffle`].
//!
//! Every sampling routine is fully deterministic given the generator state:
//! integer ranges use the widening multiply-shift reduction, floats use the
//! 53-bit (f64) / 24-bit (f32) mantissa construction the real crate uses.
//! Seed expansion in [`SeedableRng::seed_from_u64`] is SplitMix64, matching
//! the real crate's convention, so swapping the real `rand` back in keeps
//! `seed_from_u64` streams stable for generators with 32-byte seeds.

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types drawable from the standard (full-range / unit-interval) distribution.
pub trait Standard: Sized {
    /// Draw one value from the standard distribution.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            #[inline]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32,
              u64 => next_u64, usize => next_u64,
              i8 => next_u32, i16 => next_u32, i32 => next_u32,
              i64 => next_u64, isize => next_u64);

impl Standard for bool {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // High bit, as in the real crate.
        rng.next_u32() & (1 << 31) != 0
    }
}

impl Standard for f64 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types uniformly samplable from a half-open `start..end` range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw in `[start, end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
                assert!(start < end, "cannot sample empty range");
                let width = (end as i128 - start as i128) as u128;
                // Widening multiply-shift reduction of a 64-bit draw.
                let draw = rng.next_u64() as u128;
                let offset = (draw * width) >> 64;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}
uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
        assert!(start < end, "cannot sample empty range");
        let u = f64::sample_standard(rng);
        let v = start + u * (end - start);
        // Guard against end-inclusion from rounding.
        if v < end {
            v
        } else {
            start
        }
    }
}

impl SampleUniform for f32 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self {
        assert!(start < end, "cannot sample empty range");
        let u = f32::sample_standard(rng);
        let v = start + u * (end - start);
        if v < end {
            v
        } else {
            start
        }
    }
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draw one value from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform draw from the half-open range `range.start..range.end`.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli draw: `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        self.gen::<f64>() < p
    }

    /// Fill `dest` with random data.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a fixed-width seed.
pub trait SeedableRng: Sized {
    /// The seed array type (e.g. `[u8; 32]`).
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with SplitMix64 (the real
    /// crate's convention).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Sequence-related sampling: shuffling and choosing from slices.

    use super::{Rng, RngCore};

    /// Slice extensions mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly choose one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

pub mod rngs {
    //! Convenience generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast deterministic generator (xoshiro256++-style state mix).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // All-zero state would be a fixed point; nudge it.
            if s.iter().all(|&w| w == 0) {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            SmallRng { s }
        }
    }
}

/// Prelude mirroring `rand::prelude`.
pub mod prelude {
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 so the stream is well distributed.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_in_unit_interval() {
        let mut rng = Counter(11);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Counter(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn seed_from_u64_is_deterministic() {
        let a = rngs::SmallRng::seed_from_u64(42).next_u64();
        let b = rngs::SmallRng::seed_from_u64(42).next_u64();
        let c = rngs::SmallRng::seed_from_u64(43).next_u64();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
