//! Offline shim for `rayon`.
//!
//! Exposes rayon's parallel-iterator entry points (`par_iter`,
//! `par_iter_mut`, `into_par_iter`, `par_chunks`, `par_chunks_mut`) but
//! returns ordinary **sequential** `std` iterators, so every adapter chain
//! (`map`, `zip`, `sum`, `collect`, `for_each`, …) compiles and runs
//! unchanged.  Execution order is exactly source order, which makes every
//! "parallel" region deterministic — a property the workspace's
//! reproducibility tests exploit.  When the real rayon is swapped back in,
//! the same call sites parallelize for real.

/// Blanket conversion into a "parallel" (here: sequential) iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item;
    /// The concrete iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Convert `self` into an iterator (rayon: a parallel one).
    fn into_par_iter(self) -> Self::Iter;
}

impl<I: IntoIterator> IntoParallelIterator for I {
    type Item = I::Item;
    type Iter = I::IntoIter;
    #[inline]
    fn into_par_iter(self) -> Self::Iter {
        self.into_iter()
    }
}

/// `by_ref` borrowing conversion, mirroring `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed element type.
    type Item: 'data;
    /// The concrete iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate over `&self` (rayon: in parallel).
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefIterator<'data> for I
where
    &'data I: IntoIterator,
{
    type Item = <&'data I as IntoIterator>::Item;
    type Iter = <&'data I as IntoIterator>::IntoIter;
    #[inline]
    fn par_iter(&'data self) -> Self::Iter {
        self.into_iter()
    }
}

/// Mutable borrowing conversion, mirroring `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The mutably borrowed element type.
    type Item: 'data;
    /// The concrete iterator produced.
    type Iter: Iterator<Item = Self::Item>;
    /// Iterate over `&mut self` (rayon: in parallel).
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, I: 'data + ?Sized> IntoParallelRefMutIterator<'data> for I
where
    &'data mut I: IntoIterator,
{
    type Item = <&'data mut I as IntoIterator>::Item;
    type Iter = <&'data mut I as IntoIterator>::IntoIter;
    #[inline]
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.into_iter()
    }
}

/// Chunked views of slices, mirroring `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T> {
    /// Iterate over non-overlapping chunks of `chunk_size` elements.
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
}

impl<T> ParallelSlice<T> for [T] {
    #[inline]
    fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
        self.chunks(chunk_size)
    }
}

/// Mutable chunked views of slices, mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T> {
    /// Iterate over non-overlapping mutable chunks of `chunk_size` elements.
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
}

impl<T> ParallelSliceMut<T> for [T] {
    #[inline]
    fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
        self.chunks_mut(chunk_size)
    }
}

/// Run two closures (rayon: on separate threads; here: in order).
#[inline]
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// The rayon prelude: bring every entry-point trait into scope.
pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn range_into_par_iter_maps_and_collects() {
        let v: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10usize).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_zips() {
        let a = [1u32, 2, 3];
        let mut b = [0u32; 3];
        b.par_iter_mut()
            .zip(a.par_iter())
            .for_each(|(o, &x)| *o = x * 10);
        assert_eq!(b, [10, 20, 30]);
    }

    #[test]
    fn par_chunks_round_trip() {
        let data: Vec<u64> = (0..100).collect();
        let sums: Vec<u64> = data.par_chunks(7).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }
}
