//! Offline shim for `rayon` — with a **real** multicore executor.
//!
//! Exposes rayon's parallel-iterator entry points (`par_iter`,
//! `par_iter_mut`, `into_par_iter`, `par_chunks`, `par_chunks_mut`) and
//! actually executes them on N OS threads:
//!
//! * N defaults to [`std::thread::available_parallelism`] and can be pinned
//!   with the `CULDA_NUM_THREADS` environment variable (read once per
//!   process);
//! * a rayon-compatible [`ThreadPoolBuilder`]/[`ThreadPool::install`] pair
//!   overrides N for the dynamic extent of a closure, which is how the
//!   workspace's thread-invariance tests compare 1/2/8-thread runs inside a
//!   single process;
//! * nested parallel regions run sequentially on the thread that opened
//!   them (the outer region already owns all the threads), so the
//!   scheduler's per-device fan-out composes with the per-block fan-out of
//!   `Device::launch` without oversubscription.
//!
//! # Determinism
//!
//! Work is distributed by atomic chunk-claiming, so *which thread* runs an
//! index is nondeterministic — but every consumer is written so the *result*
//! is a pure function of the input:
//!
//! * `collect` writes each element into its own slot, indexed by position;
//! * `sum` reduces over a **fixed partial-sum tree whose shape depends only
//!   on the input length** (never on the thread count or arrival order):
//!   indexes are grouped into at most [`MAX_SUM_PARTIALS`] contiguous
//!   chunks, each chunk is folded in index order, and the per-chunk partials
//!   are folded in chunk order on the calling thread.  Floating-point sums
//!   are therefore bit-identical at every thread count;
//! * `for_each` imposes no order — call sites must be order-independent,
//!   which the workspace guarantees via counter-based RNG and atomic counts.
//!
//! The iterator model is *indexed access*: every source can produce the item
//! at position `i` independently ([`IndexedSource`]), and the executor
//! guarantees each index is fetched exactly once.  That contract is what
//! makes `&mut`-yielding sources (`par_iter_mut`, `par_chunks_mut`) sound
//! across threads.  When the real rayon is swapped back in via the workspace
//! `Cargo.toml`, the same call sites compile unchanged.

use std::cell::Cell;
use std::mem::MaybeUninit;
use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

// ---------------------------------------------------------------------------
// Thread-count configuration
// ---------------------------------------------------------------------------

/// Threads the machine offers (≥ 1).
fn machine_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The process-wide default thread count: `CULDA_NUM_THREADS` if set and
/// valid, otherwise the machine's available parallelism.  Read once.
fn configured_threads() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| match std::env::var("CULDA_NUM_THREADS") {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => {
                eprintln!(
                    "warning: CULDA_NUM_THREADS={v:?} is not a positive integer; \
                     using available parallelism"
                );
                machine_parallelism()
            }
        },
        Err(_) => machine_parallelism(),
    })
}

thread_local! {
    /// Thread count forced by an enclosing [`ThreadPool::install`].
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
    /// True while this thread is executing inside a parallel region, in
    /// which case nested regions run sequentially.
    static INSIDE_REGION: Cell<bool> = const { Cell::new(false) };
}

/// The number of threads the *next* parallel region opened by this thread
/// will use: 1 inside an already-parallel region, else the innermost
/// [`ThreadPool::install`] override, else the process default.
pub fn current_num_threads() -> usize {
    if INSIDE_REGION.with(Cell::get) {
        return 1;
    }
    POOL_OVERRIDE
        .with(Cell::get)
        .unwrap_or_else(configured_threads)
}

/// Error type of [`ThreadPoolBuilder::build`] (which cannot actually fail
/// here; the type exists for rayon API compatibility).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with the default (process-wide) thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pin the pool to `n` threads (`0` keeps the default, as in rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Build the pool.  Infallible here; `Result` for rayon compatibility.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads.unwrap_or_else(configured_threads),
        })
    }
}

/// A handle that scopes a thread-count choice, mirroring
/// `rayon::ThreadPool`.  Threads themselves are spawned per parallel region
/// (scoped), so the "pool" carries only the configured width.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// The thread count this pool imposes.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads
    }

    /// Run `op` with this pool's thread count governing every parallel
    /// region it opens (on this thread), restoring the previous setting —
    /// also on panic — when `op` returns.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let _restore = Restore(POOL_OVERRIDE.with(|c| c.replace(Some(self.num_threads))));
        op()
    }
}

// ---------------------------------------------------------------------------
// The executor
// ---------------------------------------------------------------------------

/// Run `task` over every index in `0..len`, splitting the range into claims
/// of `grain` indexes handed out by an atomic cursor.  Spawns up to
/// `current_num_threads() - 1` scoped worker threads and participates from
/// the calling thread; falls back to a plain sequential call when one thread
/// (or one claim) suffices.  Each index is passed to `task` exactly once.
fn run_region(len: usize, grain: usize, task: &(dyn Fn(Range<usize>) + Sync)) {
    let grain = grain.max(1);
    let claims = len.div_ceil(grain);
    let workers = current_num_threads().min(claims);
    if workers <= 1 {
        // Sequential fast path.  Deliberately does NOT mark the thread as
        // inside a region: a one-claim outer loop (e.g. a single-GPU
        // schedule) must not stop its inner launches from parallelizing.
        task(0..len);
        return;
    }
    struct Region(bool);
    impl Region {
        fn enter() -> Self {
            Region(INSIDE_REGION.with(|c| c.replace(true)))
        }
    }
    impl Drop for Region {
        fn drop(&mut self) {
            INSIDE_REGION.with(|c| c.set(self.0));
        }
    }
    let cursor = AtomicUsize::new(0);
    let worker = move || {
        let _nested = Region::enter();
        loop {
            let start = cursor.fetch_add(grain, Ordering::Relaxed);
            if start >= len {
                break;
            }
            task(start..(start + grain).min(len));
        }
    };
    std::thread::scope(|scope| {
        let worker = &worker;
        for _ in 1..workers {
            scope.spawn(worker);
        }
        worker();
    });
}

/// Claim granularity for element-wise consumers: a few claims per thread for
/// load balance without cursor contention.  Affects scheduling only, never
/// results.
fn element_grain(len: usize) -> usize {
    (len / (current_num_threads() * 4)).max(1)
}

/// Upper bound on the number of partial sums `sum` produces.  The partial
/// boundaries are a pure function of the input length — see the module docs'
/// determinism argument.
pub const MAX_SUM_PARTIALS: usize = 4096;

/// A raw slot pointer that may be shared across the scoped workers.  Safety
/// rests on the exactly-once index contract: distinct indexes touch distinct
/// slots.
struct SharedSlots<T>(*mut MaybeUninit<T>);
unsafe impl<T: Send> Sync for SharedSlots<T> {}

impl<T> SharedSlots<T> {
    /// Write `value` into slot `index`.
    ///
    /// # Safety
    /// `index` is in bounds and no slot is written twice.
    unsafe fn write(&self, index: usize, value: T) {
        (*self.0.add(index)).write(value);
    }
}

/// Reinterpret a fully initialized `Vec<MaybeUninit<T>>` as `Vec<T>`.
///
/// # Safety
/// Every element must have been initialized.
unsafe fn assume_init_vec<T>(mut v: Vec<MaybeUninit<T>>) -> Vec<T> {
    let (ptr, len, cap) = (v.as_mut_ptr(), v.len(), v.capacity());
    std::mem::forget(v);
    Vec::from_raw_parts(ptr.cast::<T>(), len, cap)
}

// ---------------------------------------------------------------------------
// Indexed sources
// ---------------------------------------------------------------------------

/// A source of items addressable by position — the engine behind every
/// parallel iterator here.
///
/// # Safety
/// Implementations yielding `&mut` (or otherwise unique) items rely on the
/// executor's contract that **each index in `0..len()` is fetched at most
/// once** across all threads; callers of [`IndexedSource::fetch`] must
/// uphold it.
pub unsafe trait IndexedSource {
    /// The item produced per index.
    type Item;

    /// Number of addressable items.
    fn len(&self) -> usize;

    /// True when the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Produce the item at `index`.
    ///
    /// # Safety
    /// `index < self.len()`, and no index may be fetched twice.
    unsafe fn fetch(&self, index: usize) -> Self::Item;
}

/// Integer types usable as `Range` endpoints in `into_par_iter`.
pub trait ParallelRangeIndex: Copy + Send {
    /// `self + i` (never overflows for indexes inside a valid range).
    fn offset(self, i: usize) -> Self;
    /// Length of `self..end` (0 when `end <= self`).
    fn distance_to(self, end: Self) -> usize;
}

macro_rules! impl_range_index {
    ($($t:ty),*) => {$(
        impl ParallelRangeIndex for $t {
            #[inline]
            fn offset(self, i: usize) -> Self {
                self + i as $t
            }
            #[inline]
            fn distance_to(self, end: Self) -> usize {
                if end > self { (end - self) as usize } else { 0 }
            }
        }
    )*};
}
impl_range_index!(usize, u32, u64, i32, i64);

/// Indexed view of an integer range.
pub struct RangeSource<T> {
    start: T,
    len: usize,
}

unsafe impl<T: ParallelRangeIndex> IndexedSource for RangeSource<T> {
    type Item = T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn fetch(&self, index: usize) -> T {
        self.start.offset(index)
    }
}

/// Indexed view of a shared slice.
pub struct SliceSource<'data, T> {
    slice: &'data [T],
}

unsafe impl<'data, T: Sync> IndexedSource for SliceSource<'data, T> {
    type Item = &'data T;
    fn len(&self) -> usize {
        self.slice.len()
    }
    unsafe fn fetch(&self, index: usize) -> &'data T {
        &self.slice[index]
    }
}

/// Indexed view of a mutable slice; sound because each index — hence each
/// element — is handed out at most once.
pub struct SliceMutSource<'data, T> {
    ptr: *mut T,
    len: usize,
    _marker: std::marker::PhantomData<&'data mut [T]>,
}

unsafe impl<T: Send> Send for SliceMutSource<'_, T> {}
unsafe impl<T: Send> Sync for SliceMutSource<'_, T> {}

unsafe impl<'data, T: Send> IndexedSource for SliceMutSource<'data, T> {
    type Item = &'data mut T;
    fn len(&self) -> usize {
        self.len
    }
    unsafe fn fetch(&self, index: usize) -> &'data mut T {
        &mut *self.ptr.add(index)
    }
}

/// Indexed view of a slice's non-overlapping chunks.
pub struct ChunksSource<'data, T> {
    slice: &'data [T],
    chunk: usize,
}

unsafe impl<'data, T: Sync> IndexedSource for ChunksSource<'data, T> {
    type Item = &'data [T];
    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.chunk)
    }
    unsafe fn fetch(&self, index: usize) -> &'data [T] {
        let start = index * self.chunk;
        let end = (start + self.chunk).min(self.slice.len());
        &self.slice[start..end]
    }
}

/// Indexed view of a mutable slice's non-overlapping chunks.
pub struct ChunksMutSource<'data, T> {
    ptr: *mut T,
    len: usize,
    chunk: usize,
    _marker: std::marker::PhantomData<&'data mut [T]>,
}

unsafe impl<T: Send> Send for ChunksMutSource<'_, T> {}
unsafe impl<T: Send> Sync for ChunksMutSource<'_, T> {}

unsafe impl<'data, T: Send> IndexedSource for ChunksMutSource<'data, T> {
    type Item = &'data mut [T];
    fn len(&self) -> usize {
        self.len.div_ceil(self.chunk)
    }
    unsafe fn fetch(&self, index: usize) -> &'data mut [T] {
        let start = index * self.chunk;
        let end = (start + self.chunk).min(self.len);
        std::slice::from_raw_parts_mut(self.ptr.add(start), end - start)
    }
}

/// The `map` adapter: applies `f` to the inner source's items.
pub struct MapSource<S, F> {
    inner: S,
    f: F,
}

unsafe impl<S, F, R> IndexedSource for MapSource<S, F>
where
    S: IndexedSource,
    F: Fn(S::Item) -> R,
{
    type Item = R;
    fn len(&self) -> usize {
        self.inner.len()
    }
    unsafe fn fetch(&self, index: usize) -> R {
        (self.f)(self.inner.fetch(index))
    }
}

/// The `zip` adapter: pairs two sources positionally (shortest wins).
pub struct ZipSource<A, B> {
    a: A,
    b: B,
}

unsafe impl<A, B> IndexedSource for ZipSource<A, B>
where
    A: IndexedSource,
    B: IndexedSource,
{
    type Item = (A::Item, B::Item);
    fn len(&self) -> usize {
        self.a.len().min(self.b.len())
    }
    unsafe fn fetch(&self, index: usize) -> Self::Item {
        (self.a.fetch(index), self.b.fetch(index))
    }
}

// ---------------------------------------------------------------------------
// The parallel iterator
// ---------------------------------------------------------------------------

/// A parallel iterator over an [`IndexedSource`], driven by the scoped
/// thread executor.  Mirrors the subset of `rayon::iter::ParallelIterator`
/// the workspace uses: `map`, `zip`, `for_each`, `collect`, `sum`.
pub struct ParIter<S> {
    source: S,
}

impl<S: IndexedSource> ParIter<S> {
    /// Apply `f` to every item.
    pub fn map<F, R>(self, f: F) -> ParIter<MapSource<S, F>>
    where
        F: Fn(S::Item) -> R,
    {
        ParIter {
            source: MapSource {
                inner: self.source,
                f,
            },
        }
    }

    /// Pair items positionally with another parallel iterator.
    pub fn zip<S2: IndexedSource>(self, other: ParIter<S2>) -> ParIter<ZipSource<S, S2>> {
        ParIter {
            source: ZipSource {
                a: self.source,
                b: other.source,
            },
        }
    }

    /// Consume every item on the worker threads.  Imposes no ordering: the
    /// closure's effects must be order-independent.
    pub fn for_each<F>(self, f: F)
    where
        S: Sync,
        F: Fn(S::Item) + Sync,
    {
        let len = self.source.len();
        let source = &self.source;
        run_region(len, element_grain(len), &|range| {
            for i in range {
                // SAFETY: the executor hands out each index exactly once.
                f(unsafe { source.fetch(i) });
            }
        });
    }

    /// Collect into a container, preserving source order.
    pub fn collect<C>(self) -> C
    where
        S: Sync,
        C: FromParallelSource<S::Item>,
    {
        C::from_par_source(self.source)
    }

    /// Sum the items over the fixed partial-sum tree described in the module
    /// docs: bit-identical at every thread count, including for
    /// floating-point sums.
    pub fn sum<R>(self) -> R
    where
        S: Sync,
        R: Send + std::iter::Sum<S::Item> + std::iter::Sum<R>,
    {
        let len = self.source.len();
        if len == 0 {
            return std::iter::empty::<R>().sum();
        }
        // Partial boundaries are a pure function of `len`.
        let chunk = len.div_ceil(MAX_SUM_PARTIALS).max(1);
        let partials_len = len.div_ceil(chunk);
        let mut partials: Vec<MaybeUninit<R>> =
            (0..partials_len).map(|_| MaybeUninit::uninit()).collect();
        let slots = SharedSlots(partials.as_mut_ptr());
        let source = &self.source;
        run_region(partials_len, 1, &|claims| {
            for c in claims {
                let start = c * chunk;
                let end = (start + chunk).min(len);
                // SAFETY: indexes fetched exactly once; slot `c` is owned by
                // this claim alone.
                let value: R = (start..end).map(|i| unsafe { source.fetch(i) }).sum();
                unsafe { slots.write(c, value) };
            }
        });
        // SAFETY: every claim in 0..partials_len ran and wrote its slot.
        let partials = unsafe { assume_init_vec(partials) };
        partials.into_iter().sum()
    }
}

/// Order-preserving parallel collection (rayon's `FromParallelIterator`).
pub trait FromParallelSource<T>: Sized {
    /// Build the container from an indexed source.
    fn from_par_source<S>(source: S) -> Self
    where
        S: IndexedSource<Item = T> + Sync;
}

impl<T: Send> FromParallelSource<T> for Vec<T> {
    fn from_par_source<S>(source: S) -> Self
    where
        S: IndexedSource<Item = T> + Sync,
    {
        let len = source.len();
        let mut out: Vec<MaybeUninit<T>> = (0..len).map(|_| MaybeUninit::uninit()).collect();
        let slots = SharedSlots(out.as_mut_ptr());
        let source = &source;
        run_region(len, element_grain(len), &|range| {
            for i in range {
                // SAFETY: index `i` — hence slot `i` — is visited exactly
                // once across all threads.
                let item = unsafe { source.fetch(i) };
                unsafe { slots.write(i, item) };
            }
        });
        // SAFETY: every index in 0..len wrote its slot.
        unsafe { assume_init_vec(out) }
    }
}

// ---------------------------------------------------------------------------
// Entry-point traits (rayon's names and shapes)
// ---------------------------------------------------------------------------

/// Conversion into a parallel iterator.
pub trait IntoParallelIterator {
    /// The element type.
    type Item;
    /// The concrete parallel iterator produced.
    type Iter;
    /// Convert `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: ParallelRangeIndex> IntoParallelIterator for Range<T> {
    type Item = T;
    type Iter = ParIter<RangeSource<T>>;
    fn into_par_iter(self) -> Self::Iter {
        ParIter {
            source: RangeSource {
                start: self.start,
                len: self.start.distance_to(self.end),
            },
        }
    }
}

/// `by_ref` borrowing conversion, mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'data> {
    /// The borrowed element type.
    type Item: 'data;
    /// The concrete parallel iterator produced.
    type Iter;
    /// Iterate over `&self` in parallel.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = ParIter<SliceSource<'data, T>>;
    fn par_iter(&'data self) -> Self::Iter {
        ParIter {
            source: SliceSource { slice: self },
        }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = ParIter<SliceSource<'data, T>>;
    fn par_iter(&'data self) -> Self::Iter {
        self.as_slice().par_iter()
    }
}

impl<'data, T: Sync + 'data, const N: usize> IntoParallelRefIterator<'data> for [T; N] {
    type Item = &'data T;
    type Iter = ParIter<SliceSource<'data, T>>;
    fn par_iter(&'data self) -> Self::Iter {
        self.as_slice().par_iter()
    }
}

/// Mutable borrowing conversion, mirroring
/// `rayon::iter::IntoParallelRefMutIterator`.
pub trait IntoParallelRefMutIterator<'data> {
    /// The mutably borrowed element type.
    type Item: 'data;
    /// The concrete parallel iterator produced.
    type Iter;
    /// Iterate over `&mut self` in parallel.
    fn par_iter_mut(&'data mut self) -> Self::Iter;
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for [T] {
    type Item = &'data mut T;
    type Iter = ParIter<SliceMutSource<'data, T>>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        ParIter {
            source: SliceMutSource {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                _marker: std::marker::PhantomData,
            },
        }
    }
}

impl<'data, T: Send + 'data> IntoParallelRefMutIterator<'data> for Vec<T> {
    type Item = &'data mut T;
    type Iter = ParIter<SliceMutSource<'data, T>>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.as_mut_slice().par_iter_mut()
    }
}

impl<'data, T: Send + 'data, const N: usize> IntoParallelRefMutIterator<'data> for [T; N] {
    type Item = &'data mut T;
    type Iter = ParIter<SliceMutSource<'data, T>>;
    fn par_iter_mut(&'data mut self) -> Self::Iter {
        self.as_mut_slice().par_iter_mut()
    }
}

/// Chunked views of slices, mirroring `rayon::slice::ParallelSlice`.
pub trait ParallelSlice<T> {
    /// Iterate in parallel over non-overlapping chunks of `chunk_size`
    /// elements (the last chunk may be shorter).
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSource<'_, T>>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, chunk_size: usize) -> ParIter<ChunksSource<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter {
            source: ChunksSource {
                slice: self,
                chunk: chunk_size,
            },
        }
    }
}

/// Mutable chunked views of slices, mirroring `rayon::slice::ParallelSliceMut`.
pub trait ParallelSliceMut<T> {
    /// Iterate in parallel over non-overlapping mutable chunks of
    /// `chunk_size` elements (the last chunk may be shorter).
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutSource<'_, T>>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, chunk_size: usize) -> ParIter<ChunksMutSource<'_, T>> {
        assert!(chunk_size > 0, "chunk size must be non-zero");
        ParIter {
            source: ChunksMutSource {
                ptr: self.as_mut_ptr(),
                len: self.len(),
                chunk: chunk_size,
                _marker: std::marker::PhantomData,
            },
        }
    }
}

/// Run two closures, potentially on separate threads.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    std::thread::scope(|scope| {
        let hb = scope.spawn(b);
        let ra = a();
        (ra, hb.join().expect("join closure panicked"))
    })
}

/// The rayon prelude: bring every entry-point trait into scope.
pub mod prelude {
    pub use super::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::{current_num_threads, ThreadPoolBuilder};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn pool(n: usize) -> super::ThreadPool {
        ThreadPoolBuilder::new().num_threads(n).build().unwrap()
    }

    #[test]
    fn range_into_par_iter_maps_and_collects() {
        let v: Vec<usize> = (0..10usize).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(v, (0..10usize).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn slice_par_iter_zips() {
        let a = [1u32, 2, 3];
        let mut b = [0u32; 3];
        b.par_iter_mut()
            .zip(a.par_iter())
            .for_each(|(o, &x)| *o = x * 10);
        assert_eq!(b, [10, 20, 30]);
    }

    #[test]
    fn par_chunks_round_trip() {
        let data: Vec<u64> = (0..100).collect();
        let sums: Vec<u64> = data.par_chunks(7).map(|c| c.iter().sum()).collect();
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn install_overrides_and_restores_thread_count() {
        let outside = current_num_threads();
        pool(3).install(|| {
            assert_eq!(current_num_threads(), 3);
            pool(2).install(|| assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outside);
    }

    #[test]
    fn regions_actually_run_on_multiple_os_threads() {
        // Four claims, four threads, one barrier: completes only if all four
        // claims execute concurrently on distinct threads.
        let barrier = std::sync::Barrier::new(4);
        pool(4).install(|| {
            (0..4usize).into_par_iter().for_each(|_| {
                barrier.wait();
            });
        });
    }

    #[test]
    fn nested_regions_serialize() {
        pool(4).install(|| {
            (0..4usize).into_par_iter().for_each(|_| {
                // Inside a parallel region the nested width is 1…
                assert_eq!(current_num_threads(), 1);
                // …so nested regions run inline without spawning.
                let s: u64 = (0..100u64).into_par_iter().sum();
                assert_eq!(s, 4950);
            });
        });
    }

    #[test]
    fn collect_preserves_order_at_every_thread_count() {
        let expected: Vec<usize> = (0..10_000).map(|x| x * 3 + 1).collect();
        for n in [1, 2, 8] {
            let got: Vec<usize> = pool(n).install(|| {
                (0..10_000usize)
                    .into_par_iter()
                    .map(|x| x * 3 + 1)
                    .collect()
            });
            assert_eq!(got, expected, "collect order broke at {n} threads");
        }
    }

    #[test]
    fn float_sum_is_bit_identical_across_thread_counts() {
        // A sum that is NOT associative in f64: the partial-tree shape must
        // be a function of the length alone for these to agree bitwise.
        let data: Vec<f64> = (0..100_000)
            .map(|i| ((i * 2654435761u64 % 1000) as f64) * 1e-3 + 1e-12)
            .collect();
        let reference: f64 = pool(1).install(|| data.par_iter().map(|&x| x).sum());
        for n in [2, 3, 8] {
            let s: f64 = pool(n).install(|| data.par_iter().map(|&x| x).sum());
            assert_eq!(
                s.to_bits(),
                reference.to_bits(),
                "float sum drifted at {n} threads"
            );
        }
    }

    #[test]
    fn par_chunks_mut_writes_disjoint_chunks() {
        for n in [1, 2, 8] {
            let mut data = vec![0u32; 1000];
            pool(n).install(|| {
                data.par_chunks_mut(7)
                    .zip((0..143usize).into_par_iter())
                    .for_each(|(chunk, idx)| {
                        for v in chunk.iter_mut() {
                            *v = idx as u32;
                        }
                    });
            });
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v as usize, i / 7, "chunk write broke at {n} threads");
            }
        }
    }

    #[test]
    fn empty_inputs_are_fine() {
        let v: Vec<u32> = (0..0u32).into_par_iter().map(|x| x).collect();
        assert!(v.is_empty());
        let s: f64 = (0..0usize).into_par_iter().map(|_| 1.0f64).sum();
        assert_eq!(s, 0.0);
        let none: Vec<u8> = Vec::new();
        none.par_iter().for_each(|_| unreachable!());
    }

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 2 + 2, || "ok");
        assert_eq!((a, b), (4, "ok"));
        let (a, b) = pool(2).install(|| super::join(|| 1u8, || 2u8));
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn for_each_visits_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..5000).map(|_| AtomicUsize::new(0)).collect();
        pool(8).install(|| {
            (0..5000usize).into_par_iter().for_each(|i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            })
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }
}
