//! Offline shim for `assert_cmd`.
//!
//! The slice used by the CLI smoke tests: [`Command::cargo_bin`] locates a
//! binary built by the current `cargo test` invocation (next to the test
//! executable's `deps/` directory), and [`Assert`] checks exit status and
//! lets the test inspect captured output.  Instead of the real crate's
//! `predicates` integration, [`Assert::stdout_contains`] /
//! [`Assert::stderr_contains`] cover the substring checks the tests need.

use std::ffi::OsStr;
use std::path::{Path, PathBuf};
use std::process::Output;

/// Error locating a cargo-built binary.
#[derive(Debug)]
pub struct CargoError(String);

impl std::fmt::Display for CargoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CargoError {}

/// A `std::process::Command` wrapper with cargo-aware construction and an
/// assertion-producing runner.
#[derive(Debug)]
pub struct Command {
    inner: std::process::Command,
}

impl Command {
    /// Locate the binary `name` built for the current test profile.
    ///
    /// Test executables live in `target/<profile>/deps/`, the workspace's
    /// binaries in `target/<profile>/`; walk up from `current_exe`.
    pub fn cargo_bin(name: impl AsRef<str>) -> Result<Self, CargoError> {
        let name = name.as_ref();
        let exe = std::env::current_exe()
            .map_err(|e| CargoError(format!("cannot locate current test executable: {e}")))?;
        let profile_dir = exe
            .parent() // deps/
            .and_then(Path::parent) // <profile>/
            .ok_or_else(|| CargoError("test executable has no target directory".into()))?;
        let candidate = profile_dir.join(format!("{name}{}", std::env::consts::EXE_SUFFIX));
        if !candidate.exists() {
            return Err(CargoError(format!(
                "no binary named `{name}` at {}",
                candidate.display()
            )));
        }
        Ok(Command {
            inner: std::process::Command::new(candidate),
        })
    }

    /// Append one argument.
    pub fn arg(&mut self, arg: impl AsRef<OsStr>) -> &mut Self {
        self.inner.arg(arg);
        self
    }

    /// Append several arguments.
    pub fn args<I, S>(&mut self, args: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<OsStr>,
    {
        self.inner.args(args);
        self
    }

    /// Set an environment variable for the child.
    pub fn env(&mut self, key: impl AsRef<OsStr>, value: impl AsRef<OsStr>) -> &mut Self {
        self.inner.env(key, value);
        self
    }

    /// Set the child's working directory.
    pub fn current_dir(&mut self, dir: impl AsRef<Path>) -> &mut Self {
        self.inner.current_dir(dir);
        self
    }

    /// Run to completion, capturing output, and return an [`Assert`].
    pub fn assert(&mut self) -> Assert {
        let output = self
            .inner
            .output()
            .unwrap_or_else(|e| panic!("failed to spawn {:?}: {e}", self.inner.get_program()));
        Assert {
            output,
            context: format!("{:?}", self.inner),
        }
    }

    /// The path of the program this command will run.
    pub fn get_program(&self) -> PathBuf {
        PathBuf::from(self.inner.get_program())
    }
}

/// Assertions over a finished process.
#[derive(Debug)]
pub struct Assert {
    output: Output,
    context: String,
}

impl Assert {
    fn describe(&self) -> String {
        format!(
            "command: {}\nstatus: {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
            self.context,
            self.output.status,
            String::from_utf8_lossy(&self.output.stdout),
            String::from_utf8_lossy(&self.output.stderr),
        )
    }

    /// Require a zero exit status.
    #[track_caller]
    pub fn success(self) -> Self {
        assert!(
            self.output.status.success(),
            "expected success\n{}",
            self.describe()
        );
        self
    }

    /// Require a non-zero exit status.
    #[track_caller]
    pub fn failure(self) -> Self {
        assert!(
            !self.output.status.success(),
            "expected failure\n{}",
            self.describe()
        );
        self
    }

    /// Require a specific exit code.
    #[track_caller]
    pub fn code(self, expected: i32) -> Self {
        assert_eq!(
            self.output.status.code(),
            Some(expected),
            "unexpected exit code\n{}",
            self.describe()
        );
        self
    }

    /// Require the captured stdout to contain `needle`.
    #[track_caller]
    pub fn stdout_contains(self, needle: impl AsRef<str>) -> Self {
        let text = String::from_utf8_lossy(&self.output.stdout).into_owned();
        assert!(
            text.contains(needle.as_ref()),
            "stdout does not contain {:?}\n{}",
            needle.as_ref(),
            self.describe()
        );
        self
    }

    /// Require the captured stderr to contain `needle`.
    #[track_caller]
    pub fn stderr_contains(self, needle: impl AsRef<str>) -> Self {
        let text = String::from_utf8_lossy(&self.output.stderr).into_owned();
        assert!(
            text.contains(needle.as_ref()),
            "stderr does not contain {:?}\n{}",
            needle.as_ref(),
            self.describe()
        );
        self
    }

    /// The raw captured output.
    pub fn get_output(&self) -> &Output {
        &self.output
    }
}
