//! Offline shim for `criterion`.
//!
//! Provides the macro/type surface the bench targets use
//! ([`criterion_group!`], [`criterion_main!`], [`Criterion`],
//! [`BenchmarkId`], [`black_box`]) over a deliberately small measurement
//! loop: a short warm-up, then a fixed number of timed batches, reporting
//! the fastest batch in ns/iter.  No statistics, plots, or baselines — the
//! goal is that `cargo bench` compiles and produces stable, quick output
//! offline, not publication-grade measurement.

use std::fmt::Display;
use std::time::Instant;

/// Opaque-to-the-optimizer identity, re-exported from `std::hint`.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: function name plus optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `<name>/<parameter>`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter (the group name prefixes it at print time).
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timer handed to bench closures.
pub struct Bencher {
    /// Best observed batch time, in seconds per iteration.
    best_s_per_iter: f64,
}

impl Bencher {
    /// Time `f`, storing the best batch average.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up + calibration: grow the batch until it costs ≥ ~1 ms so
        // Instant overhead is amortized, capping total calibration work.
        let mut batch = 1u64;
        loop {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            if dt >= 1e-3 || batch >= 1 << 20 {
                break;
            }
            batch *= 4;
        }
        // Measure: a few batches, keep the fastest.
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64() / batch as f64;
            if dt < best {
                best = dt;
            }
        }
        self.best_s_per_iter = best;
    }
}

fn report(label: &str, b: &Bencher) {
    let ns = b.best_s_per_iter * 1e9;
    println!("bench: {label:<48} {ns:>14.1} ns/iter");
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Parse CLI arguments (accepted and ignored by the shim).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            best_s_per_iter: 0.0,
        };
        f(&mut b);
        report(name, &b);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
        }
    }

    /// Finalize (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Set the sample count (accepted and ignored by the shim).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the measurement time (accepted and ignored by the shim).
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Display,
        mut f: F,
    ) -> &mut Self {
        let mut b = Bencher {
            best_s_per_iter: 0.0,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            best_s_per_iter: 0.0,
        };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), &b);
        self
    }

    /// Close the group (no-op in the shim).
    pub fn finish(self) {}
}

/// Define a group function that runs each listed benchmark.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut ran = false;
        c.bench_function("smoke", |b| {
            b.iter(|| black_box(1 + 1));
            ran = true;
        });
        assert!(ran);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(10)
            .bench_function("f", |b| b.iter(|| black_box(2 * 2)));
        g.bench_with_input(BenchmarkId::new("with", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }
}
