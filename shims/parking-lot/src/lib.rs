//! Offline shim for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's panic-free, `Result`-free
//! API.  Poisoning is ignored (parking_lot has no poisoning): a poisoned
//! std lock is recovered with `into_inner`.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's non-poisoning `lock()` API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Get a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Reader–writer lock with parking_lot's non-poisoning API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Create a new reader–writer lock.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.0.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.0.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Get a mutable reference to the underlying data without locking.
    pub fn get_mut(&mut self) -> &mut T {
        match self.0.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
