//! Collection strategies (mirrors `proptest::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A length specification for collection strategies: an exact size or a
/// (half-open or inclusive) range of sizes.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    /// Exclusive upper bound.
    max: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        if self.min + 1 >= self.max {
            self.min
        } else {
            rng.gen_range(self.min..self.max)
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            min: r.start,
            max: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty collection size range");
        SizeRange {
            min: *r.start(),
            max: r.end() + 1,
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`](fn@vec).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
