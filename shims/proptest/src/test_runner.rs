//! The deterministic case runner behind [`crate::proptest!`].
//!
//! Each case's RNG seed is derived from (source file, test name, case
//! index), so runs are bit-reproducible across machines with no environment
//! input.  Failing seeds are appended to a regression file in a
//! `proptest-regressions/` directory next to the test source and replayed
//! before fresh cases on subsequent runs.

use rand::SeedableRng;
use std::io::Write as _;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

/// The RNG handed to strategies.
pub type TestRng = rand_chacha::ChaCha8Rng;

/// Where (and whether) failing case seeds are persisted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileFailurePersistence {
    /// Never persist.
    Off,
    /// Persist to `<dir>/<source_stem>.txt` in a directory with the given
    /// name created next to the test's source file.
    WithSource(&'static str),
}

impl Default for FileFailurePersistence {
    fn default() -> Self {
        FileFailurePersistence::WithSource("proptest-regressions")
    }
}

/// Runner configuration (the shim's `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of successful (non-rejected) cases required.
    pub cases: u32,
    /// Abort after this many [`TestCaseError::Reject`]s across the run.
    pub max_global_rejects: u32,
    /// Failing-seed persistence policy.
    pub failure_persistence: FileFailurePersistence,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            cases: 64,
            max_global_rejects: 4096,
            failure_persistence: FileFailurePersistence::default(),
        }
    }
}

impl Config {
    /// A default configuration with the given case count.
    pub fn with_cases(cases: u32) -> Self {
        Config {
            cases,
            ..Config::default()
        }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was discarded by `prop_assume!` and should not count.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Build a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Build a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// FNV-1a, used to derive the deterministic base seed of a test.
fn fnv1a(data: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in data.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Locate `source` (a `file!()` path, relative to the workspace root) by
/// walking up from the current directory, which is the *package* root when
/// cargo runs a test binary.
fn locate_source(source: &str) -> Option<PathBuf> {
    let rel = Path::new(source);
    if rel.is_absolute() {
        return rel.exists().then(|| rel.to_path_buf());
    }
    let cwd = std::env::current_dir().ok()?;
    let mut dir: Option<&Path> = Some(cwd.as_path());
    for _ in 0..6 {
        let d = dir?;
        let candidate = d.join(rel);
        if candidate.exists() {
            return Some(candidate);
        }
        dir = d.parent();
    }
    None
}

fn regression_file(config: &Config, source: &str) -> Option<PathBuf> {
    let FileFailurePersistence::WithSource(dirname) = config.failure_persistence else {
        return None;
    };
    let src = locate_source(source)?;
    let stem = src.file_stem()?.to_str()?.to_owned();
    Some(src.parent()?.join(dirname).join(format!("{stem}.txt")))
}

fn load_persisted_seeds(path: &Path, test_name: &str) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            match (parts.next(), parts.next()) {
                (Some(name), Some(seed)) if name == test_name => seed.parse().ok(),
                _ => None,
            }
        })
        .collect()
}

fn persist_seed(path: Option<&Path>, test_name: &str, seed: u64) {
    let Some(path) = path else { return };
    if load_persisted_seeds(path, test_name).contains(&seed) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let header_needed = !path.exists();
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        if header_needed {
            let _ = writeln!(
                f,
                "# Seeds persisted by the offline proptest shim.\n\
                 # Each line is `<test_name> <seed>`; these cases replay first on every run.\n\
                 # Commit this file to keep past failures in CI forever."
            );
        }
        let _ = writeln!(f, "{test_name} {seed}");
    }
}

enum CaseOutcome {
    Pass,
    Reject,
    Fail(String),
    Panic(Box<dyn std::any::Any + Send>),
}

fn run_case<F>(seed: u64, f: &mut F) -> CaseOutcome
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let mut rng = TestRng::seed_from_u64(seed);
    match catch_unwind(AssertUnwindSafe(|| f(&mut rng))) {
        Ok(Ok(())) => CaseOutcome::Pass,
        Ok(Err(TestCaseError::Reject(_))) => CaseOutcome::Reject,
        Ok(Err(TestCaseError::Fail(msg))) => CaseOutcome::Fail(msg),
        Err(payload) => CaseOutcome::Panic(payload),
    }
}

/// Drive one property test: replay persisted regressions, then run fresh
/// deterministic cases until `config.cases` of them pass.
pub fn run_named<F>(config: Config, source_file: &str, test_name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let regressions = regression_file(&config, source_file);

    // 1. Replay persisted failures first — a regression must stay fixed.
    if let Some(path) = &regressions {
        for seed in load_persisted_seeds(path, test_name) {
            match run_case(seed, &mut f) {
                CaseOutcome::Pass | CaseOutcome::Reject => {}
                CaseOutcome::Fail(msg) => {
                    panic!("persisted regression still failing: {test_name} (seed {seed}): {msg}")
                }
                CaseOutcome::Panic(payload) => resume_unwind(payload),
            }
        }
    }

    // 2. Fresh cases, seeded deterministically from the test identity.
    let base = fnv1a(source_file) ^ fnv1a(test_name).rotate_left(17);
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut index = 0u64;
    while accepted < config.cases {
        let seed = base
            .wrapping_add(index.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(1);
        index += 1;
        match run_case(seed, &mut f) {
            CaseOutcome::Pass => accepted += 1,
            CaseOutcome::Reject => {
                rejected += 1;
                if rejected > config.max_global_rejects {
                    panic!(
                        "{test_name}: too many prop_assume! rejections \
                         ({rejected} > {}); loosen the strategy",
                        config.max_global_rejects
                    );
                }
            }
            CaseOutcome::Fail(msg) => {
                persist_seed(regressions.as_deref(), test_name, seed);
                panic!("{test_name}: case {accepted} failed (seed {seed}, persisted): {msg}");
            }
            CaseOutcome::Panic(payload) => {
                persist_seed(regressions.as_deref(), test_name, seed);
                eprintln!("{test_name}: case {accepted} panicked (seed {seed}, persisted)");
                resume_unwind(payload);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_are_deterministic_per_identity() {
        assert_eq!(fnv1a("abc"), fnv1a("abc"));
        assert_ne!(fnv1a("abc"), fnv1a("abd"));
    }

    #[test]
    fn runner_accepts_passing_property() {
        let mut count = 0u32;
        run_named(
            Config {
                cases: 10,
                failure_persistence: FileFailurePersistence::Off,
                ..Config::default()
            },
            "nonexistent.rs",
            "runner_accepts_passing_property",
            |_rng| {
                count += 1;
                Ok(())
            },
        );
        assert_eq!(count, 10);
    }

    #[test]
    #[should_panic(expected = "too many prop_assume! rejections")]
    fn runner_bounds_rejections() {
        run_named(
            Config {
                cases: 1,
                max_global_rejects: 8,
                failure_persistence: FileFailurePersistence::Off,
            },
            "nonexistent.rs",
            "runner_bounds_rejections",
            |_rng| Err(TestCaseError::reject("always")),
        );
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn runner_reports_failures() {
        run_named(
            Config {
                cases: 4,
                failure_persistence: FileFailurePersistence::Off,
                ..Config::default()
            },
            "nonexistent.rs",
            "runner_reports_failures",
            |_rng| Err(TestCaseError::fail("boom")),
        );
    }
}
