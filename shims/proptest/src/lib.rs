//! Offline shim for `proptest`.
//!
//! Reimplements the slice of the proptest surface this workspace uses — the
//! [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range / tuple / [`Just`] / [`collection::vec`] /
//! [`prop_oneof!`] strategies, `prop_assert*` / `prop_assume!`, and
//! [`test_runner::Config`] (`ProptestConfig`) — on top of a deterministic
//! ChaCha8 generator.
//!
//! Differences from the real crate, by design:
//!
//! * **No shrinking.**  A failing case reports its seed instead; the seed is
//!   persisted to a `proptest-regressions/` directory next to the test
//!   source and replayed first on the next run.
//! * **Deterministic case seeds.**  The per-case seed is derived from the
//!   source file, the test name, and the case index, so CI runs are fully
//!   reproducible with no environment input.
//!
//! [`Just`]: strategy::Just

pub mod strategy;

pub mod collection;

pub mod test_runner;

/// The prelude, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, FileFailurePersistence, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Namespace alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// The `proptest!` macro: declare property tests whose inputs are drawn from
/// strategies.
///
/// Supports the two forms the workspace uses: with and without a leading
/// `#![proptest_config(...)]` inner attribute.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::test_runner::Config = $config;
                $crate::test_runner::run_named(
                    __config,
                    file!(),
                    stringify!($name),
                    |__rng| {
                        $(let $pat = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                        $body
                        Ok(())
                    },
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($pat in $strat),+) $body
            )*
        }
    };
}

/// Assert a condition inside a [`proptest!`] body; on failure the case seed
/// is reported and persisted.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert two expressions are equal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: {} == {}",
                        stringify!($left),
                        stringify!($right),
                    )));
                }
            }
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        match (&$left, &$right) {
            (__l, __r) => {
                if !(*__l == *__r) {
                    return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)*)));
                }
            }
        }
    }};
}

/// Assert two expressions are unequal inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        match (&$left, &$right) {
            (__l, __r) => {
                if *__l == *__r {
                    return Err($crate::test_runner::TestCaseError::fail(format!(
                        "assertion failed: {} != {}",
                        stringify!($left),
                        stringify!($right),
                    )));
                }
            }
        }
    }};
}

/// Discard the current case (does not count against the case budget) unless
/// the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Choose uniformly between several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
