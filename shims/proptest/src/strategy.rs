//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically produces a value from the test runner's
//! RNG.  Unlike the real proptest there is no value tree / shrinking: a
//! strategy is just a composable generator.

use crate::test_runner::TestRng;
use rand::Rng;
use std::ops::{Range, RangeInclusive};

/// A generator of test-case values.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map the produced value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Produce a dependent strategy from the value and draw from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Retry (up to a reject budget enforced by the runner) until `f` holds.
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Erase the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always produce a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        // Bounded local retry; a pathological filter should fail loudly
        // rather than spin forever.
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.whence);
    }
}

/// Uniform choice between boxed strategies (see [`crate::prop_oneof!`]).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from a non-empty list of options.
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range(self.start..self.end)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty inclusive range strategy");
                // Widening draw so `start..=MAX` does not overflow.
                let width = (end as u128) - (start as u128) + 1;
                let offset = ((rng.gen::<u64>() as u128 * width) >> 64) as u128;
                (start as u128 + offset) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                rng.gen_range(self.start..self.end)
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);

/// A `&str` is a regex-style string strategy, as in the real proptest.
///
/// The shim supports the subset the workspace's patterns use: literal
/// characters, character classes (`[a-e]`, `[abc]`, ranges and singletons
/// mixed), groups `( … )`, and the quantifiers `{m,n}`, `{n}`, `?`, `*`
/// (with `*`/`+` capped at 8 repetitions).
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let ast = regex_gen::parse(self)
            .unwrap_or_else(|e| panic!("unsupported regex strategy {self:?}: {e}"));
        let mut out = String::new();
        regex_gen::emit(&ast, rng, &mut out);
        out
    }
}

mod regex_gen {
    //! Tiny regex-subset generator backing the `&str` strategy.

    use super::TestRng;
    use rand::Rng;

    pub enum Node {
        Literal(char),
        Class(Vec<(char, char)>),
        Group(Vec<Node>),
        Repeat(Box<Node>, u32, u32),
    }

    pub fn parse(pattern: &str) -> Result<Vec<Node>, String> {
        let mut chars = pattern.chars().peekable();
        let seq = parse_seq(&mut chars, false)?;
        if chars.next().is_some() {
            return Err("unbalanced ')'".into());
        }
        Ok(seq)
    }

    fn parse_seq(
        chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
        in_group: bool,
    ) -> Result<Vec<Node>, String> {
        let mut seq = Vec::new();
        while let Some(&c) = chars.peek() {
            let atom = match c {
                ')' if in_group => break,
                ')' => return Err("unbalanced ')'".into()),
                '(' => {
                    chars.next();
                    let inner = parse_seq(chars, true)?;
                    if chars.next() != Some(')') {
                        return Err("unterminated group".into());
                    }
                    Node::Group(inner)
                }
                '[' => {
                    chars.next();
                    let mut ranges = Vec::new();
                    loop {
                        let lo = chars.next().ok_or("unterminated class")?;
                        if lo == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars.next().ok_or("unterminated range")?;
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    if ranges.is_empty() {
                        return Err("empty character class".into());
                    }
                    Node::Class(ranges)
                }
                '\\' => {
                    chars.next();
                    let escaped = chars.next().ok_or("dangling escape")?;
                    Node::Literal(escaped)
                }
                _ => {
                    chars.next();
                    Node::Literal(c)
                }
            };
            // Optional quantifier.
            let node = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for q in chars.by_ref() {
                        if q == '}' {
                            break;
                        }
                        spec.push(q);
                    }
                    let (lo, hi) = match spec.split_once(',') {
                        Some((a, b)) => (
                            a.parse().map_err(|_| "bad repeat lower bound")?,
                            b.parse().map_err(|_| "bad repeat upper bound")?,
                        ),
                        None => {
                            let n: u32 = spec.parse().map_err(|_| "bad repeat count")?;
                            (n, n)
                        }
                    };
                    Node::Repeat(Box::new(atom), lo, hi)
                }
                Some('?') => {
                    chars.next();
                    Node::Repeat(Box::new(atom), 0, 1)
                }
                Some('*') => {
                    chars.next();
                    Node::Repeat(Box::new(atom), 0, 8)
                }
                Some('+') => {
                    chars.next();
                    Node::Repeat(Box::new(atom), 1, 8)
                }
                _ => atom,
            };
            seq.push(node);
        }
        Ok(seq)
    }

    pub fn emit(seq: &[Node], rng: &mut TestRng, out: &mut String) {
        for node in seq {
            match node {
                Node::Literal(c) => out.push(*c),
                Node::Class(ranges) => {
                    let (lo, hi) = ranges[rng.gen_range(0..ranges.len())];
                    let span = hi as u32 - lo as u32 + 1;
                    let pick = lo as u32 + rng.gen_range(0..span);
                    out.push(char::from_u32(pick).unwrap_or(lo));
                }
                Node::Group(inner) => emit(inner, rng, out),
                Node::Repeat(node, lo, hi) => {
                    let n = if lo == hi {
                        *lo
                    } else {
                        rng.gen_range(*lo..hi + 1)
                    };
                    for _ in 0..n {
                        emit(std::slice::from_ref(node), rng, out);
                    }
                }
            }
        }
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_prim {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
arbitrary_prim!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool, f32, f64);

/// The full-range strategy for `T` (mirrors `proptest::prelude::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// See [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}
