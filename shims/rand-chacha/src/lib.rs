//! Offline shim for `rand_chacha`.
//!
//! Implements the genuine ChaCha stream cipher (Bernstein 2008) with 8
//! double-rounds as a deterministic PRNG behind the shimmed `rand` traits.
//! Word extraction order may differ from the real `rand_chacha` crate's
//! block buffering, so cross-crate bit-compatibility is **not** promised —
//! but streams are fully deterministic per seed, which is what the
//! workspace's reproducibility tests rely on.

use rand::{RngCore, SeedableRng};

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// ChaCha with 8 double-rounds, 64-bit block counter, zero nonce.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    /// Next unread word index in `buf`; 16 means "buffer exhausted".
    idx: usize,
}

#[inline(always)]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let input = state;
        for _ in 0..4 {
            // One column round + one diagonal round per iteration; 4
            // iterations of each pair = 8 ChaCha rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(input.iter()) {
            *out = out.wrapping_add(*inp);
        }
        self.buf = state;
        self.idx = 0;
        self.counter = self.counter.wrapping_add(1);
    }

    /// The 64-bit block counter (number of keystream blocks consumed).
    pub fn get_word_pos(&self) -> u128 {
        (self.counter as u128) * 16 + self.idx as u128
    }
}

impl RngCore for ChaCha8Rng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&seed[i * 4..(i + 1) * 4]);
            *word = u32::from_le_bytes(b);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(1234);
        let mut b = ChaCha8Rng::seed_from_u64(1234);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn keystream_is_reasonably_balanced() {
        // Sanity: mean of 10k unit draws should be near 0.5.
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..37 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.get_word_pos(), b.get_word_pos());
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
