//! Offline shim for `serde`.
//!
//! Mirrors the real crate's public shape for the slice of API this workspace
//! touches: the `Serialize`/`Deserialize` traits (in the trait namespace) and
//! the derive macros of the same names (in the macro namespace).  The derives
//! are no-ops — nothing in the workspace serializes through serde; the
//! derives exist so the type declarations stay source-compatible with the
//! real crate when it is swapped back in.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
