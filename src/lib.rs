//! # culda
//!
//! Facade crate for the CuLDA_CGS reproduction: re-exports the public API of
//! every workspace crate so applications can depend on a single crate.
//!
//! * [`corpus`] — corpus representation, UCI bag-of-words IO, synthetic
//!   dataset generators, workload partitioning.
//! * [`sparse`] — CSR matrices, index trees, alias tables, prefix sums.
//! * [`gpusim`] — the simulated multi-GPU substrate (devices, kernels,
//!   transfers, collectives).
//! * [`core`] — the CuLDA_CGS trainer itself (sampling/update kernels,
//!   scheduling, dense or vocabulary-sharded φ synchronization).
//! * [`baselines`] — WarpLDA-style, SaberLDA-style, LDA*-style and exact-CGS
//!   baselines.
//! * [`metrics`] — log-likelihood, perplexity, throughput, roofline analysis.
//!
//! ## Quickstart
//!
//! ```
//! use culda::core::{LdaConfig, SessionBuilder};
//! use culda::corpus::DatasetProfile;
//! use culda::gpusim::{DeviceSpec, MultiGpuSystem};
//!
//! // A small synthetic twin of the NYTimes corpus (Table 3).
//! let corpus = DatasetProfile::nytimes().scaled_to_tokens(20_000).generate(42);
//! let mut trainer = SessionBuilder::new()
//!     .corpus(&corpus)
//!     .config(LdaConfig::with_topics(32))
//!     .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 42))
//!     .build()
//!     .unwrap();
//! trainer.train(5);
//! assert!(trainer.sim_time_s() > 0.0);
//! ```
//!
//! Streaming/online training (mini-batch ingestion, document retirement,
//! checkpoint rotation) goes through the same builder's
//! [`build_streaming`](crate::core::SessionBuilder::build_streaming); see
//! `DESIGN.md` §9.

#![warn(missing_docs)]

pub use culda_baselines as baselines;
pub use culda_core as core;
pub use culda_corpus as corpus;
pub use culda_gpusim as gpusim;
pub use culda_metrics as metrics;
pub use culda_sparse as sparse;

/// Crate version of the reproduction.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_are_wired() {
        // Touch one item from every re-exported crate.
        let _ = crate::corpus::DatasetProfile::nytimes();
        let _ = crate::gpusim::DeviceSpec::v100_volta();
        let _ = crate::core::LdaConfig::with_topics(8);
        let _ = crate::metrics::table1();
        let _ = crate::sparse::IndexTree::new(&[1.0, 2.0]);
        assert!(!crate::VERSION.is_empty());
    }
}
