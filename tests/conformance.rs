//! The cross-sampler conformance suite: one invariant battery, eight
//! solvers.
//!
//! Every solver family in the workspace — the CuLDA_CGS trainer itself and
//! the seven baselines it is compared against — is driven through the same
//! checks from `culda_testkit::conformance`: count conservation, φ/θ/n_k
//! consistency, z ↔ count agreement, normalization of the estimated
//! distributions, and a monotone-ish log-likelihood trajectory.

use culda::baselines::{
    AliasLda, CpuCgs, CuLdaSolver, LdaStar, LightLda, SaberLda, SparseLda, WarpLda,
};
use culda::core::{LdaConfig, SessionBuilder};
use culda::gpusim::{DeviceSpec, MultiGpuSystem};
use culda_testkit::conformance::{run_conformance, ConformantSolver};
use culda_testkit::{doc_lens, fixtures};

const K: usize = 8;
const SEED: u64 = 41;
const ITERATIONS: usize = 12;

/// Build every solver in the workspace over the same corpus, with the
/// paper's priors (α = 50/K, β = 0.01).
fn all_solvers(corpus: &culda::corpus::Corpus) -> Vec<Box<dyn ConformantSolver>> {
    vec![
        Box::new(CuLdaSolver::new(
            SessionBuilder::new()
                .corpus(corpus)
                .config(LdaConfig::with_topics(K).seed(SEED))
                .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), SEED))
                .build()
                .expect("trainer construction"),
            "CuLDA_CGS (V100)",
        )),
        Box::new(CpuCgs::with_paper_priors(corpus, K, SEED)),
        Box::new(SparseLda::with_paper_priors(corpus, K, SEED)),
        Box::new(AliasLda::with_paper_priors(corpus, K, SEED)),
        Box::new(LightLda::with_paper_priors(corpus, K, SEED)),
        Box::new(WarpLda::with_paper_priors(corpus, K, SEED)),
        Box::new(SaberLda::on_gtx_1080(corpus, K, SEED).expect("saberlda construction")),
        Box::new(LdaStar::new(corpus, K, 8, SEED)),
    ]
}

#[test]
fn every_solver_passes_the_same_invariant_battery() {
    let corpus = fixtures::small(fixtures::FIXTURE_SEED);
    let lens = doc_lens(&corpus);
    let alpha = 50.0 / K as f64;
    let beta = 0.01;

    let mut names = Vec::new();
    for mut solver in all_solvers(&corpus) {
        let name = solver.name();
        let series = run_conformance(&mut *solver, &lens, alpha, beta, ITERATIONS)
            .unwrap_or_else(|e| panic!("conformance failure: {e}"));
        assert_eq!(series.len(), ITERATIONS + 1, "{name}: trajectory length");
        names.push(name);
    }
    // The suite must actually have covered all eight families.
    assert_eq!(names.len(), 8, "covered: {names:?}");
    let mut unique = names.clone();
    unique.sort();
    unique.dedup();
    assert_eq!(unique.len(), 8, "duplicate solver labels: {names:?}");
}

#[test]
fn solvers_agree_on_what_they_are_counting() {
    // Independent of training quality, all solvers must account the same
    // corpus: identical token totals and identical θ row sums.
    let corpus = fixtures::tiny(fixtures::FIXTURE_SEED);
    let lens = doc_lens(&corpus);
    let expected: u64 = lens.iter().map(|&l| l as u64).sum();
    for solver in all_solvers(&corpus) {
        assert_eq!(
            solver.num_tokens(),
            expected,
            "{} disagrees on the corpus size",
            solver.name()
        );
        let theta = solver.doc_topic_counts();
        for (d, row) in theta.iter().enumerate() {
            let sum: u64 = row.iter().map(|&c| c as u64).sum();
            assert_eq!(sum, lens[d] as u64, "{} θ row {d}", solver.name());
        }
    }
}
