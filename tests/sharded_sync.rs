//! Vocabulary-sharded φ synchronization (DESIGN.md §8): the sharded reduce
//! must be a pure *scheduling* change — bit-identical topic assignments to
//! the dense §5.2 reduce for every shard count, overlap depth and GPU
//! topology — while the overlap measurably shrinks the exposed sync cost at
//! realistic model sizes.

use culda::baselines::CuLdaSolver;
use culda::core::{CuLdaTrainer, LdaConfig, SessionBuilder, SyncPlan};
use culda::corpus::{Corpus, DatasetProfile};
use culda::gpusim::{DeviceSpec, Interconnect, MultiGpuSystem};
use culda_testkit::conformance::run_conformance;
use culda_testkit::determinism::{assert_same_assignments, z_signature};
use culda_testkit::{doc_lens, fixtures};

const K: usize = 8;
const SEED: u64 = 2019;
const ITERATIONS: usize = 5;

fn system(gpus: usize) -> MultiGpuSystem {
    if gpus == 1 {
        MultiGpuSystem::single(DeviceSpec::v100_volta(), SEED)
    } else {
        MultiGpuSystem::homogeneous(DeviceSpec::v100_volta(), gpus, SEED, Interconnect::NvLink)
    }
}

fn trained(corpus: &Corpus, gpus: usize, shards: usize, depth: usize) -> CuLdaTrainer {
    let config = LdaConfig::with_topics(K)
        .seed(SEED)
        .sync_shards(shards)
        .sync_overlap_depth(depth);
    let mut trainer = SessionBuilder::new()
        .corpus(corpus)
        .config(config)
        .system(system(gpus))
        .build()
        .expect("trainer");
    trainer.train(ITERATIONS);
    trainer
}

#[test]
fn sharded_sync_is_bit_identical_to_dense_on_one_and_four_gpus() {
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let dense = CuLdaSolver::new(trained(&corpus, 1, 1, 0), "dense 1 GPU");
    for gpus in [1usize, 4] {
        let sharded = CuLdaSolver::new(trained(&corpus, gpus, 4, 2), format!("S=4 {gpus} GPU"));
        assert_same_assignments(&dense, &sharded);
        assert_eq!(z_signature(&dense), z_signature(&sharded));
    }
}

#[test]
fn assignments_are_invariant_to_the_shard_count() {
    // Includes counts that do not divide the vocabulary, so remainder
    // columns land in the leading shards.
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let reference = CuLdaSolver::new(trained(&corpus, 2, 1, 0), "dense");
    let v = corpus.vocab_size();
    for shards in [2usize, 3, 5, 8] {
        assert_ne!(v % shards, 0, "pick counts that exercise uneven shards");
        let solver = CuLdaSolver::new(trained(&corpus, 2, shards, 2), format!("S={shards}"));
        assert_same_assignments(&reference, &solver);
    }
}

#[test]
fn shard_count_clamps_to_the_vocabulary() {
    let corpus = fixtures::tiny(fixtures::FIXTURE_SEED);
    let trainer = trained(&corpus, 1, 10_000, 2);
    assert_eq!(trainer.sync_plan().shards(), corpus.vocab_size());
    trainer.validate().unwrap();
}

#[test]
fn single_shard_plan_degenerates_to_the_dense_schedule() {
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let dense = trained(&corpus, 4, 1, 0);
    assert!(dense.sync_plan().is_dense());
    assert_eq!(dense.sync_plan(), SyncPlan::dense());
    // A 1-shard plan with overlap enabled must cost exactly the same: there
    // is nothing to overlap with.
    let one_shard = trained(&corpus, 4, 1, 4);
    for (a, b) in dense.history().iter().zip(one_shard.history()) {
        assert_eq!(a.sync_time_s, b.sync_time_s);
        assert_eq!(a.sync_exposed_time_s, b.sync_exposed_time_s);
        assert_eq!(a.sim_time_s, b.sim_time_s);
    }
    assert_same_assignments(
        &CuLdaSolver::new(dense, "dense"),
        &CuLdaSolver::new(one_shard, "S=1 overlap"),
    );
}

#[test]
fn conformance_battery_passes_under_sharded_sync() {
    let corpus = fixtures::small(fixtures::FIXTURE_SEED);
    let config = LdaConfig::with_topics(K)
        .seed(SEED)
        .sync_shards(4)
        .sync_overlap_depth(2);
    let trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(config)
        .system(system(4))
        .build()
        .expect("trainer");
    let cfg = trainer.config().clone();
    let mut solver = CuLdaSolver::new(trainer, "CuLDA sharded");
    run_conformance(
        &mut solver,
        &doc_lens(&corpus),
        cfg.alpha,
        cfg.beta,
        ITERATIONS,
    )
    .expect("conformance");
}

#[test]
fn overlap_reduces_the_exposed_sync_cost_at_realistic_scale() {
    // A model large enough that the φ replica transfer is bandwidth-bound
    // (K × V × 2 ≈ 1.2 MiB) with a corpus heavy enough that sampling
    // outweighs the reduce, on the contended PCIe topology of the paper's
    // Pascal platform — the regime the overlap targets.  The vocabulary is
    // frequency-shuffled, as in real corpora; the overlap win is claimed for
    // that realistic case.
    let corpus = fixtures::shuffled_vocab(
        &DatasetProfile {
            name: "overlap-scale".into(),
            num_docs: 2700,
            vocab_size: 4000,
            avg_doc_len: 330.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(11),
    );
    let run = |shards: usize, depth: usize| {
        let config = LdaConfig::with_topics(160)
            .seed(SEED)
            .sync_shards(shards)
            .sync_overlap_depth(depth);
        let sys = MultiGpuSystem::homogeneous(
            DeviceSpec::titan_xp_pascal(),
            4,
            SEED,
            Interconnect::Pcie3,
        );
        let mut trainer = SessionBuilder::new()
            .corpus(&corpus)
            .config(config)
            .system(sys)
            .build()
            .expect("trainer");
        trainer.train(1);
        let it = trainer.history()[0];
        (it.sync_time_s, it.sync_exposed_time_s, it.sim_time_s)
    };

    let (dense_sync, dense_exposed, dense_sim) = run(1, 0);
    assert_eq!(dense_sync, dense_exposed);

    let (s4_sync, s4_exposed, s4_sim) = run(4, 2);
    // The interconnect work grows only by the per-shard round latencies…
    assert!(s4_sync >= dense_sync && s4_sync < dense_sync * 1.5);
    // …but the exposed cost and the iteration time both shrink.
    assert!(
        s4_exposed < dense_exposed * 0.7,
        "S=4 exposed {s4_exposed} vs dense {dense_exposed}"
    );
    assert!(s4_sim < dense_sim, "S=4 {s4_sim} vs dense {dense_sim}");

    let (_, s8_exposed, s8_sim) = run(8, 4);
    assert!(
        s8_exposed <= s4_exposed,
        "more shards must not expose more sync: S=8 {s8_exposed} vs S=4 {s4_exposed}"
    );
    assert!(s8_sim < dense_sim);
}
