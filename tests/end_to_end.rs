//! End-to-end integration tests: the full CuLDA_CGS pipeline on corpora with
//! known structure, cross-checked against the exact serial CGS reference.

use culda::baselines::{CpuCgs, LdaSolver};
use culda::core::{CuLdaTrainer, LdaConfig, SessionBuilder};
use culda::corpus::{DatasetProfile, LdaGenerator};
use culda::gpusim::{DeviceSpec, MultiGpuSystem};
use culda::metrics::log_likelihood;

fn trainer_loglik(trainer: &CuLdaTrainer) -> f64 {
    let cfg = trainer.config();
    log_likelihood(
        &trainer.merged_theta(),
        &trainer.global_phi(),
        &trainer.global_nk(),
        cfg.alpha,
        cfg.beta,
    )
    .per_token()
}

#[test]
fn culda_converges_on_a_planted_topic_model() {
    // Corpus drawn from a known 6-topic model: training must raise the joint
    // likelihood substantially and keep every count invariant intact.
    let (corpus, _truth) = LdaGenerator::small(6, 200, 400, 40.0).generate(11);
    let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), 11);
    let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(6).seed(11))
        .system(system)
        .build()
        .unwrap();
    let before = trainer_loglik(&trainer);
    trainer.train(25);
    trainer.validate().unwrap();
    let after = trainer_loglik(&trainer);
    assert!(
        after > before + 0.2,
        "likelihood should improve markedly: {before} → {after}"
    );
}

#[test]
fn culda_reaches_the_quality_of_exact_serial_cgs() {
    // The GPU solver uses delayed updates (§6.2); it must still converge to
    // essentially the same joint likelihood as the exact collapsed sampler.
    let (corpus, _) = LdaGenerator::small(5, 150, 300, 30.0).generate(4);
    let k = 5;

    let mut exact = CpuCgs::with_paper_priors(&corpus, k, 21);
    for _ in 0..40 {
        exact.run_iteration();
    }
    let exact_ll = exact.loglik_per_token();

    let system = MultiGpuSystem::single(DeviceSpec::titan_x_maxwell(), 21);
    let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(k).seed(21))
        .system(system)
        .build()
        .unwrap();
    trainer.train(40);
    let culda_ll = trainer_loglik(&trainer);

    let gap = (exact_ll - culda_ll).abs();
    assert!(
        gap < 0.15,
        "CuLDA ({culda_ll:.4}) should match exact CGS ({exact_ll:.4}) within 0.15 nats/token"
    );
}

#[test]
fn theta_sparsifies_and_throughput_ramps_up_as_in_figure7() {
    // §7.1: "the performance increases slowly at first few iterations and
    // goes steady later ... the sparsity rate of model θ increases".
    let corpus = DatasetProfile::nytimes()
        .scaled_to_tokens(60_000)
        .generate(3);
    let system = MultiGpuSystem::single(DeviceSpec::titan_xp_pascal(), 3);
    let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(64).seed(3))
        .system(system)
        .build()
        .unwrap();
    let nnz_before = trainer.merged_theta().nnz();
    trainer.train(15);
    let nnz_after = trainer.merged_theta().nnz();
    assert!(
        nnz_after < nnz_before,
        "θ must sparsify: {nnz_before} → {nnz_after}"
    );

    let series = trainer.throughput_per_iteration();
    let early: f64 = series[..3].iter().sum::<f64>() / 3.0;
    let late: f64 = series[series.len() - 3..].iter().sum::<f64>() / 3.0;
    assert!(
        late > early,
        "throughput should ramp up as θ sparsifies: {early:.3e} → {late:.3e}"
    );
}

#[test]
fn training_is_deterministic_for_a_fixed_seed() {
    let corpus = DatasetProfile::pubmed()
        .scaled_to_tokens(30_000)
        .generate(9);
    let run = |seed: u64| {
        let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), seed);
        let mut trainer = SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(32).seed(seed))
            .system(system)
            .build()
            .unwrap();
        trainer.train(5);
        (trainer.global_nk(), trainer.sim_time_s())
    };
    let (nk_a, time_a) = run(77);
    let (nk_b, time_b) = run(77);
    let (nk_c, _) = run(78);
    assert_eq!(nk_a, nk_b, "same seed must give identical topic totals");
    assert!((time_a - time_b).abs() < 1e-12);
    assert_ne!(
        nk_a, nk_c,
        "different seeds should explore different states"
    );
}

#[test]
fn gpu_solver_is_faster_than_cpu_baseline_in_simulated_time() {
    // The Table 4 headline at integration-test scale: CuLDA on any GPU beats
    // the WarpLDA CPU baseline in simulated tokens/sec.
    use culda::baselines::WarpLda;
    let corpus = DatasetProfile::nytimes()
        .scaled_to_tokens(40_000)
        .generate(5);
    let k = 64;
    let system = MultiGpuSystem::single(DeviceSpec::titan_x_maxwell(), 5);
    let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(k).seed(5))
        .system(system)
        .build()
        .unwrap();
    trainer.train(5);
    let culda_tps = trainer.average_throughput(5);

    let mut warp = WarpLda::with_paper_priors(&corpus, k, 5);
    let mut warp_time = 0.0;
    for _ in 0..5 {
        warp_time += warp.run_iteration();
    }
    let warp_tps = corpus.num_tokens() as f64 * 5.0 / warp_time;
    assert!(
        culda_tps > warp_tps,
        "CuLDA ({culda_tps:.3e}) should out-sample WarpLDA ({warp_tps:.3e})"
    );
}
