//! Integration tests for the serving path: training → checkpoint → reload →
//! fold-in inference → held-out evaluation, crossing the core, corpus and
//! metrics crates.

use culda::core::{
    CuLdaTrainer, InferenceOptions, LdaConfig, ModelCheckpoint, SessionBuilder, TopicInferencer,
};
use culda::corpus::holdout::{split_documents, DocumentCompletion};
use culda::corpus::LdaGenerator;
use culda::gpusim::{DeviceSpec, MultiGpuSystem};
use culda::metrics::heldout::evaluate_heldout;

/// Corpus drawn from a planted topic model, split into train/test documents.
fn planted_split() -> (culda::corpus::Corpus, culda::corpus::Corpus, usize) {
    let num_topics = 6;
    let (corpus, _) = LdaGenerator::small(num_topics, 250, 600, 45.0).generate(31);
    let split = split_documents(&corpus, 0.25, 31);
    (split.train, split.test, num_topics)
}

fn train(corpus: &culda::corpus::Corpus, topics: usize, iterations: usize) -> CuLdaTrainer {
    let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), 9);
    let mut trainer = SessionBuilder::new()
        .corpus(corpus)
        .config(LdaConfig::with_topics(topics).seed(9))
        .system(system)
        .build()
        .unwrap();
    trainer.train(iterations);
    trainer
}

#[test]
fn trained_model_beats_untrained_model_on_heldout_documents() {
    let (train_corpus, test_corpus, k) = planted_split();
    let completion = DocumentCompletion::split(&test_corpus, 0.5, 5);
    completion.validate_against(&test_corpus).unwrap();
    let opts = InferenceOptions {
        sweeps: 25,
        burn_in: 5,
        seed: 17,
    };

    let score_of = |trainer: &CuLdaTrainer| {
        let inferencer = TopicInferencer::from_trainer(trainer);
        let theta = inferencer.infer_corpus_counts(&completion.observed, opts);
        evaluate_heldout(
            &completion.heldout,
            &theta,
            &trainer.global_phi(),
            &trainer.global_nk(),
            trainer.config().alpha,
            trainer.config().beta,
        )
    };

    let untrained = train(&train_corpus, k, 0);
    let trained = train(&train_corpus, k, 40);
    let before = score_of(&untrained);
    let after = score_of(&trained);
    assert_eq!(before.num_tokens, after.num_tokens);
    assert!(
        after.per_token() > before.per_token() + 0.05,
        "held-out loglik did not improve: {} → {}",
        before.per_token(),
        after.per_token()
    );
    assert!(after.perplexity() < before.perplexity());
}

#[test]
fn checkpoint_roundtrip_preserves_serving_behaviour() {
    let (train_corpus, test_corpus, k) = planted_split();
    let trainer = train(&train_corpus, k, 15);
    let ckpt = ModelCheckpoint::from_trainer(&trainer);
    ckpt.validate().unwrap();

    let path = std::env::temp_dir().join("culda_it_checkpoint.cldm");
    ckpt.save(&path).unwrap();
    let reloaded = ModelCheckpoint::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded, ckpt);
    assert_eq!(reloaded.total_tokens(), train_corpus.num_tokens() as u64);

    // Inference through the reloaded checkpoint is bit-identical to inference
    // through the live trainer.
    let opts = InferenceOptions::default();
    let live = TopicInferencer::from_trainer(&trainer);
    let restored = reloaded.inferencer();
    for d in 0..10.min(test_corpus.num_docs()) {
        let a = live.infer_document(test_corpus.doc(d), opts);
        let b = restored.infer_document(test_corpus.doc(d), opts);
        assert_eq!(a, b, "document {d} diverged after checkpoint reload");
    }
}

#[test]
fn inference_assigns_planted_documents_to_matching_topics() {
    // Train on the full planted corpus, then check that fold-in inference of
    // the *training* documents lands on a dominant topic for most documents
    // (the planted model has sharply separated topics).
    let num_topics = 4;
    let (corpus, _) = LdaGenerator::small(num_topics, 150, 300, 50.0).generate(77);
    let trainer = train(&corpus, num_topics, 40);
    let inferencer = TopicInferencer::from_trainer(&trainer);
    let results = inferencer.infer_corpus(
        &corpus,
        InferenceOptions {
            sweeps: 20,
            burn_in: 5,
            seed: 3,
        },
    );
    assert_eq!(results.len(), corpus.num_docs());
    let confident = results
        .iter()
        .filter(|r| r.top_topics(1)[0].1 > 0.5)
        .count();
    assert!(
        confident * 2 > corpus.num_docs(),
        "only {confident}/{} documents have a dominant topic",
        corpus.num_docs()
    );
}

#[test]
fn hyperparameter_optimization_runs_on_trained_counts() {
    let (train_corpus, _, k) = planted_split();
    let trainer = train(&train_corpus, k, 10);
    let alpha = culda::core::optimize_alpha(
        &trainer.merged_theta(),
        trainer.config().alpha,
        culda::core::HyperOptOptions::default(),
    );
    let beta = culda::core::optimize_beta(
        &trainer.global_phi(),
        &trainer.global_nk(),
        trainer.config().beta,
        culda::core::HyperOptOptions::default(),
    );
    assert!(alpha.value > 0.0 && alpha.value.is_finite());
    assert!(beta.value > 0.0 && beta.value.is_finite());
    // Planted documents concentrate on few topics, so the optimized α should
    // come out below the 50/K default the paper fixes.
    assert!(
        alpha.value < trainer.config().alpha,
        "α = {} vs default {}",
        alpha.value,
        trainer.config().alpha
    );
}

#[test]
fn convergence_monitor_stops_training_on_a_small_corpus() {
    let (train_corpus, _, k) = planted_split();
    let system = MultiGpuSystem::single(DeviceSpec::titan_x_maxwell(), 4);
    let mut trainer = SessionBuilder::new()
        .corpus(&train_corpus)
        .config(LdaConfig::with_topics(k).seed(4))
        .system(system)
        .build()
        .unwrap();
    let outcome = culda::core::train_until_converged(
        &mut trainer,
        200,
        2,
        culda::core::ConvergenceMonitor::new(1e-3, 2),
    );
    assert!(
        outcome.converged,
        "no convergence in {} iters",
        outcome.iterations
    );
    assert!(outcome.iterations < 200);
    assert!(outcome
        .loglik_per_token
        .windows(2)
        .all(|w| w[1] > w[0] - 0.05));
    trainer.validate().unwrap();
}
