//! Thread-count invariance: every result the system produces — topic
//! assignments, the synchronized φ, serialized checkpoints, conformance
//! log-likelihood trajectories — must be bit-identical whether the parallel
//! regions execute on 1, 2, or all available OS threads, across 1- and
//! 4-GPU topologies and both the batch and streaming entry points.
//!
//! This is the stress battery for the real thread pool: the shim hands out
//! work by atomic cursor, so *which* thread touches a chunk varies run to
//! run, and only the counter-based RNG plus the fixed partial-sum tree keep
//! the numbers exact.  A scheduling-order dependence anywhere in the hot
//! paths shows up here as a signature mismatch.

use culda::baselines::CuLdaSolver;
use culda::core::{LdaConfig, ModelCheckpoint, SamplerStrategy, SessionBuilder};
use culda::gpusim::{DeviceSpec, Interconnect, MultiGpuSystem};
use culda_testkit::conformance::run_conformance;
use culda_testkit::determinism::z_signature;
use culda_testkit::{doc_lens, fixtures};
use rayon::ThreadPoolBuilder;

const K: usize = 8;
const SEED: u64 = 2019;
const ITERATIONS: usize = 5;

/// Run `op` with every parallel region pinned to `threads` OS threads.
fn with_threads<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(op)
}

/// The thread counts under test: sequential, minimal parallelism, and
/// whatever the machine actually has.
fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 2, max];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn system(gpus: usize) -> MultiGpuSystem {
    if gpus == 1 {
        MultiGpuSystem::single(DeviceSpec::v100_volta(), SEED)
    } else {
        MultiGpuSystem::homogeneous(DeviceSpec::v100_volta(), gpus, SEED, Interconnect::NvLink)
    }
}

fn config(sampler: SamplerStrategy) -> LdaConfig {
    LdaConfig::with_topics(K).seed(SEED).sampler(sampler)
}

/// Train a batch session and reduce it to comparable artifacts: the z
/// signature, the dense φ, and the exact checkpoint bytes.
fn batch_artifacts(gpus: usize, sampler: SamplerStrategy) -> (u64, Vec<u32>, Vec<u8>) {
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(config(sampler))
        .system(system(gpus))
        .build()
        .unwrap();
    trainer.train(ITERATIONS);
    let ckpt = ModelCheckpoint::from_trainer(&trainer);
    let mut bytes = Vec::new();
    ckpt.write(&mut bytes).unwrap();
    let phi = trainer.global_phi().as_slice().to_vec();
    let solver = CuLdaSolver::new(trainer, "thread-invariance");
    (z_signature(&solver), phi, bytes)
}

/// Ingest-then-train through the streaming entry point, including one
/// mid-run membership change so the rebuild path runs under the pool too.
fn streaming_artifacts(gpus: usize) -> (Vec<Vec<u16>>, Vec<u32>) {
    let corpus = fixtures::tiny(fixtures::FIXTURE_SEED);
    let docs = fixtures::documents_of(&corpus);
    let (head, tail) = docs.split_at(docs.len() / 2);
    let mut session = SessionBuilder::new()
        .config(config(SamplerStrategy::SparseCgs))
        .burn_in_sweeps(1)
        .system(system(gpus))
        .build_streaming()
        .unwrap();
    session.ingest(head);
    session.train(2).unwrap();
    session.ingest(tail);
    session.train(3).unwrap();
    (
        session.z_snapshot(),
        session.global_phi().as_slice().to_vec(),
    )
}

#[test]
fn batch_training_is_bit_identical_across_thread_counts() {
    for gpus in [1, 4] {
        for sampler in [
            SamplerStrategy::SparseCgs,
            SamplerStrategy::AliasHybrid {
                rebuild_every: 2,
                mh_steps: 2,
            },
            SamplerStrategy::LightLda {
                rebuild_every: 2,
                mh_steps: 2,
                prune_below: 8,
            },
        ] {
            let baseline = with_threads(1, || batch_artifacts(gpus, sampler));
            for threads in thread_counts() {
                let run = with_threads(threads, || batch_artifacts(gpus, sampler));
                assert_eq!(
                    baseline.0, run.0,
                    "z signature diverged at {threads} threads ({gpus} GPUs, {sampler:?})"
                );
                assert_eq!(
                    baseline.1, run.1,
                    "φ diverged at {threads} threads ({gpus} GPUs, {sampler:?})"
                );
                assert_eq!(
                    baseline.2, run.2,
                    "checkpoint bytes diverged at {threads} threads ({gpus} GPUs, {sampler:?})"
                );
            }
        }
    }
}

#[test]
fn streaming_training_is_bit_identical_across_thread_counts() {
    for gpus in [1, 4] {
        let baseline = with_threads(1, || streaming_artifacts(gpus));
        for threads in thread_counts() {
            let run = with_threads(threads, || streaming_artifacts(gpus));
            assert_eq!(
                baseline, run,
                "streaming state diverged at {threads} threads ({gpus} GPUs)"
            );
        }
    }
}

#[test]
fn conformance_battery_passes_identically_under_every_thread_count() {
    // The full conformance battery — count invariants at start / mid / end
    // plus the log-likelihood trajectory — must pass under the real pool,
    // and the trajectory itself must be bit-identical: log-likelihood is a
    // float reduction over every token, so it is the most sensitive witness
    // of a summation-order dependence.
    let corpus = fixtures::small(fixtures::FIXTURE_SEED);
    let lens = doc_lens(&corpus);
    let cfg = config(SamplerStrategy::SparseCgs);
    let (alpha, beta) = (cfg.alpha, cfg.beta);

    let run = |threads: usize| {
        with_threads(threads, || {
            let trainer = SessionBuilder::new()
                .corpus(&corpus)
                .config(config(SamplerStrategy::SparseCgs))
                .system(system(1))
                .build()
                .unwrap();
            let mut solver = CuLdaSolver::new(trainer, format!("CuLDA ({threads} threads)"));
            run_conformance(&mut solver, &lens, alpha, beta, ITERATIONS)
                .unwrap_or_else(|e| panic!("conformance failed at {threads} threads: {e}"))
        })
    };

    let baseline = run(1);
    for threads in thread_counts() {
        let series = run(threads);
        assert_eq!(
            baseline.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            series.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            "log-likelihood trajectory diverged at {threads} threads"
        );
    }
}

#[test]
fn checkpoint_resume_crosses_thread_counts() {
    // A checkpoint written under one thread count must resume bit-exactly
    // under another: persistence is thread-count-neutral.
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let build = || {
        SessionBuilder::new()
            .corpus(&corpus)
            .config(config(SamplerStrategy::SparseCgs))
            .system(system(1))
            .build()
            .unwrap()
    };

    let straight = with_threads(2, || {
        let mut t = build();
        t.train(ITERATIONS + 3);
        (t.z_snapshot(), t.global_phi().as_slice().to_vec())
    });

    let ckpt = with_threads(thread_counts().pop().unwrap(), || {
        let mut t = build();
        t.train(ITERATIONS);
        ModelCheckpoint::from_trainer(&t)
    });
    let resumed = with_threads(1, || {
        let mut t = SessionBuilder::new()
            .corpus(&corpus)
            .config(config(SamplerStrategy::SparseCgs))
            .system(system(1))
            .assignments(ckpt.z.clone().unwrap(), ckpt.iterations)
            .sampler_state(ckpt.sampler_state.clone())
            .build()
            .unwrap();
        t.train(3);
        (t.z_snapshot(), t.global_phi().as_slice().to_vec())
    });
    assert_eq!(straight, resumed);
}

#[test]
fn wall_clock_speedup_materializes_on_multicore_hosts() {
    // Only meaningful where the host actually has cores to spend; on a
    // single-core runner the real-pool overhead is all cost and no benefit,
    // and even the "sequential" timing would be perturbed by whatever else
    // shares the core — skip outright instead of asserting on noise.
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cores < 2 {
        eprintln!("skipping wall-clock speedup check: only {cores} core available");
        return;
    }
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let timed = |threads: usize| {
        with_threads(threads, || {
            let mut t = SessionBuilder::new()
                .corpus(&corpus)
                .config(config(SamplerStrategy::SparseCgs))
                .system(system(1))
                .build()
                .unwrap();
            let start = std::time::Instant::now();
            t.train(ITERATIONS);
            start.elapsed().as_secs_f64()
        })
    };
    // Warm up caches/allocator before timing anything.
    let _ = timed(1);
    let sequential = timed(1);
    assert!(sequential > 0.0);
    if cores >= 4 {
        let parallel = timed(cores.min(8));
        assert!(
            parallel < sequential,
            "no wall-clock benefit from {cores} cores: {parallel:.3}s vs {sequential:.3}s"
        );
    }
}
