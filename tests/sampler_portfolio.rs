//! The sampler portfolio, locked down: the LightLDA-style MH kernel must
//! agree statistically with the exact sparse-CGS kernel, stay bit-exact
//! across runs / GPU topologies / thread counts / ingestion batchings,
//! resume exactly mid-cadence from its checkpointed word-proposal state,
//! and the measured auto-selection must be the argmin of its own cost model
//! on real corpora — with the decision persisted through checkpoints so
//! resume never re-decides.  The on-disk back-compat matrix (golden v1–v4
//! files) rides along: old files must keep loading with their documented
//! fallbacks while truncated v5 sampler sections fail with a typed error.

use culda::baselines::CuLdaSolver;
use culda::core::kernels::portfolio::{candidates, predicted_spans};
use culda::core::{
    auto_select_sampler, sampler_for_strategy, CheckpointError, ChunkStatistics, LdaConfig,
    ModelCheckpoint, SamplerStrategy, SessionBuilder,
};
use culda::corpus::DatasetProfile;
use culda::gpusim::{DeviceSpec, Interconnect, MultiGpuSystem};
use culda_testkit::conformance::{run_conformance, MAX_DRAWDOWN_NATS};
use culda_testkit::determinism::{assert_same_assignments, z_signature};
use culda_testkit::{doc_lens, fixtures, golden};
use proptest::prelude::*;
use rayon::ThreadPoolBuilder;

const K: usize = 8;
const SEED: u64 = 4242;

fn light_cfg(rebuild_every: usize, mh_steps: usize, prune_below: usize) -> LdaConfig {
    LdaConfig::with_topics(K)
        .seed(SEED)
        .sampler(SamplerStrategy::LightLda {
            rebuild_every,
            mh_steps,
            prune_below,
        })
}

fn system(gpus: usize, seed: u64) -> MultiGpuSystem {
    if gpus == 1 {
        MultiGpuSystem::single(DeviceSpec::v100_volta(), seed)
    } else {
        MultiGpuSystem::homogeneous(DeviceSpec::v100_volta(), gpus, seed, Interconnect::NvLink)
    }
}

fn with_threads<R>(threads: usize, op: impl FnOnce() -> R) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(op)
}

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 2, max];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn trained_light(corpus: &culda::corpus::Corpus, gpus: usize, iterations: usize) -> CuLdaSolver {
    let mut trainer = SessionBuilder::new()
        .corpus(corpus)
        .config(light_cfg(2, 2, 8))
        .system(system(gpus, SEED))
        .build()
        .expect("light trainer construction");
    trainer.train(iterations);
    CuLdaSolver::new(trainer, format!("CuLDA(light) ({gpus} GPU)"))
}

// ---------------------------------------------------------------------------
// Statistical conformance
// ---------------------------------------------------------------------------

#[test]
fn light_conformance_agrees_with_sparse_cgs_stationary_behavior() {
    // With rebuild_every = 1 the word proposals are rebuilt from the very φ
    // the acceptance ratio corrects against, so the MH chain's stationary
    // distribution is the collapsed conditional (up to self-exclusion) and
    // enough proposal steps mix it: the converged likelihood must agree with
    // the exact sparse-CGS kernel within the battery's own trajectory
    // tolerance.  Both samplers also pass the full invariant battery (count
    // conservation, θ/φ consistency, z ↔ θ agreement) at start/mid/end.
    let corpus = fixtures::small(fixtures::FIXTURE_SEED);
    let lens = doc_lens(&corpus);
    let alpha = 50.0 / K as f64;
    let beta = 0.01;
    let iterations = 30;

    let mut light = CuLdaSolver::new(
        SessionBuilder::new()
            .corpus(&corpus)
            .config(light_cfg(1, 8, 0))
            .system(system(1, SEED))
            .build()
            .unwrap(),
        "CuLDA(light fresh)",
    );
    let light_series = run_conformance(&mut light, &lens, alpha, beta, iterations)
        .unwrap_or_else(|e| panic!("light conformance failure: {e}"));

    let mut sparse = CuLdaSolver::new(
        SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(K).seed(SEED))
            .system(system(1, SEED))
            .build()
            .unwrap(),
        "CuLDA(sparse)",
    );
    let sparse_series = run_conformance(&mut sparse, &lens, alpha, beta, iterations)
        .unwrap_or_else(|e| panic!("sparse conformance failure: {e}"));

    let tail = |s: &[f64]| -> f64 {
        let t = &s[s.len() - s.len() / 3..];
        t.iter().sum::<f64>() / t.len() as f64
    };
    let (a, b) = (tail(&light_series), tail(&sparse_series));
    assert!(
        (a - b).abs() <= MAX_DRAWDOWN_NATS,
        "stationary log-likelihoods disagree: light {a:.4} vs sparse {b:.4}"
    );
}

#[test]
fn pruned_variant_also_passes_the_conformance_battery() {
    // Vocabulary pruning changes the word-proposal *representation*, not the
    // target distribution — the pruned kernel must clear the same invariant
    // battery on a tail-heavy corpus where pruning actually engages.
    let corpus = DatasetProfile {
        name: "portfolio-tail".into(),
        num_docs: 150,
        vocab_size: 400,
        avg_doc_len: 16.0,
        zipf_exponent: 1.05,
        doc_len_sigma: 0.4,
    }
    .generate(fixtures::FIXTURE_SEED);
    let lens = doc_lens(&corpus);
    let mut solver = CuLdaSolver::new(
        SessionBuilder::new()
            .corpus(&corpus)
            .config(light_cfg(2, 4, 16))
            .system(system(1, SEED))
            .build()
            .unwrap(),
        "CuLDA(light pruned)",
    );
    run_conformance(&mut solver, &lens, 50.0 / K as f64, 0.01, 20)
        .unwrap_or_else(|e| panic!("pruned conformance failure: {e}"));
}

// ---------------------------------------------------------------------------
// Determinism: runs, topologies, threads, batchings
// ---------------------------------------------------------------------------

#[test]
fn light_assignments_are_bit_exact_across_runs_and_topologies() {
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let a = trained_light(&corpus, 1, 5);
    let b = trained_light(&corpus, 1, 5);
    assert_same_assignments(&a, &b);

    let quad = trained_light(&corpus, 4, 5);
    assert!(
        a.trainer().num_chunks() != quad.trainer().num_chunks(),
        "topologies must actually partition differently"
    );
    assert_same_assignments(&a, &quad);
    assert_eq!(z_signature(&a), z_signature(&quad));

    // Light is its own deterministic trajectory, distinct from sparse CGS.
    let mut sparse = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(K).seed(SEED))
        .system(system(1, SEED))
        .build()
        .unwrap();
    sparse.train(5);
    let sparse = CuLdaSolver::new(sparse, "CuLDA (sparse)");
    assert_ne!(z_signature(&a), z_signature(&sparse));
}

#[test]
fn every_portfolio_member_is_bit_exact_at_one_two_and_max_threads() {
    // The acceptance bar: all three kernels produce identical z signatures
    // and checkpoint bytes at threads {1, 2, max}, on both topologies.
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let artifacts = |gpus: usize, sampler: SamplerStrategy| {
        let mut trainer = SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(K).seed(SEED).sampler(sampler))
            .system(system(gpus, SEED))
            .build()
            .unwrap();
        trainer.train(4);
        let ckpt = ModelCheckpoint::from_trainer(&trainer);
        let mut bytes = Vec::new();
        ckpt.write(&mut bytes).unwrap();
        let solver = CuLdaSolver::new(trainer, "portfolio-threads");
        (z_signature(&solver), bytes)
    };
    for gpus in [1, 4] {
        for sampler in [
            SamplerStrategy::SparseCgs,
            SamplerStrategy::alias_hybrid(),
            SamplerStrategy::LightLda {
                rebuild_every: 2,
                mh_steps: 2,
                prune_below: 8,
            },
        ] {
            let baseline = with_threads(1, || artifacts(gpus, sampler));
            for threads in thread_counts() {
                let run = with_threads(threads, || artifacts(gpus, sampler));
                assert_eq!(
                    baseline, run,
                    "{sampler} diverged at {threads} threads ({gpus} GPUs)"
                );
            }
        }
    }
}

#[test]
fn light_streaming_with_zero_burn_in_matches_batch_and_batching_is_invariant() {
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);

    // Zero-burn-in bridge: stream-everything-then-train ≡ batch.
    let mut batch = SessionBuilder::new()
        .corpus(&corpus)
        .config(light_cfg(2, 2, 8))
        .system(system(1, SEED))
        .build()
        .unwrap();
    batch.train(4);

    let mut streaming = SessionBuilder::new()
        .corpus(&corpus)
        .config(light_cfg(2, 2, 8))
        .burn_in_sweeps(0)
        .system(system(1, SEED))
        .build_streaming()
        .unwrap();
    streaming.train(4).unwrap();
    assert_eq!(batch.z_snapshot(), streaming.z_snapshot());
    assert_eq!(&batch.global_phi(), streaming.global_phi());

    // Ingestion batching invariance with a real light burn-in: one call vs
    // three mini-batches must be bit-identical.
    let build = || {
        SessionBuilder::new()
            .config(light_cfg(2, 2, 8))
            .burn_in_sweeps(2)
            .system(system(1, SEED))
            .build_streaming()
            .unwrap()
    };
    let mut at_once = build();
    at_once.ingest(&fixtures::documents_of(&corpus));
    at_once.train(3).unwrap();
    at_once.validate().unwrap();

    let mut in_batches = build();
    for batch in fixtures::doc_batches(&corpus, 3) {
        in_batches.ingest(&batch);
    }
    in_batches.train(3).unwrap();
    assert_eq!(at_once.z_snapshot(), in_batches.z_snapshot());
    assert_eq!(at_once.global_phi(), in_batches.global_phi());
}

// ---------------------------------------------------------------------------
// Mid-cadence resume of the MH proposal state
// ---------------------------------------------------------------------------

#[test]
fn light_mid_cadence_resume_is_bit_exact_and_divergence_is_provable() {
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let build = |assignments: Option<&ModelCheckpoint>| {
        let mut b = SessionBuilder::new()
            .corpus(&corpus)
            .config(light_cfg(4, 2, 8))
            .system(system(1, SEED));
        if let Some(ckpt) = assignments {
            b = b
                .assignments(ckpt.z.clone().unwrap(), ckpt.iterations)
                .sampler_state(ckpt.sampler_state.clone());
        }
        b.build().unwrap()
    };

    let mut straight = build(None);
    straight.train(10);

    // Word proposals rebuild at iterations 0, 4 and 8; stopping after 6
    // lands the checkpoint mid-cadence, two iterations past the rebuild.
    let mut first_leg = build(None);
    first_leg.train(6);
    let ckpt = ModelCheckpoint::from_trainer(&first_leg);
    ckpt.validate().unwrap();
    assert!(
        ckpt.sampler_state.is_some(),
        "a light trainer must checkpoint its word-proposal phase"
    );

    let mut resumed = build(Some(&ckpt));
    resumed.train(4);
    assert_eq!(straight.z_snapshot(), resumed.z_snapshot());
    assert_eq!(straight.global_phi(), resumed.global_phi());

    // Dropping the proposal state rebuilds word tables from φ(6) instead of
    // φ(4) and diverges — without this the exactness assertion above could
    // pass vacuously on a corpus too small for staleness to matter.
    let mut stateless = ckpt;
    stateless.sampler_state = None;
    let mut fresh_tables = build(Some(&stateless));
    fresh_tables.train(4);
    assert_ne!(straight.z_snapshot(), fresh_tables.z_snapshot());
}

// ---------------------------------------------------------------------------
// Measured auto-selection
// ---------------------------------------------------------------------------

/// A tail-heavy large-K corpus (the LightLDA regime) and a short-doc
/// small-K corpus (the sparse regime), both small enough for tests.
fn tail_heavy_corpus() -> culda::corpus::Corpus {
    DatasetProfile {
        name: "auto-tail".into(),
        num_docs: 800,
        vocab_size: 6_000,
        avg_doc_len: 20.0,
        zipf_exponent: 1.05,
        doc_len_sigma: 0.4,
    }
    .generate(fixtures::FIXTURE_SEED)
}

fn short_doc_corpus() -> culda::corpus::Corpus {
    DatasetProfile {
        name: "auto-short".into(),
        num_docs: 1_000,
        vocab_size: 300,
        avg_doc_len: 6.0,
        zipf_exponent: 1.05,
        doc_len_sigma: 0.4,
    }
    .generate(fixtures::FIXTURE_SEED)
}

#[test]
fn auto_selects_different_kernels_for_different_corpus_shapes() {
    let tail_cfg = LdaConfig::with_topics(512).sampler(SamplerStrategy::Auto);
    let tail_stats = ChunkStatistics::measure(&tail_heavy_corpus(), &tail_cfg);
    let tail_pick = auto_select_sampler(&tail_stats);
    assert!(
        matches!(tail_pick, SamplerStrategy::LightLda { .. }),
        "tail-heavy large-K corpus picked {tail_pick}"
    );

    let short_cfg = LdaConfig::with_topics(16).sampler(SamplerStrategy::Auto);
    let short_stats = ChunkStatistics::measure(&short_doc_corpus(), &short_cfg);
    let short_pick = auto_select_sampler(&short_stats);
    assert_eq!(short_pick, SamplerStrategy::SparseCgs);
}

#[test]
fn auto_decision_is_resolved_at_build_persisted_and_never_redecided() {
    // Through the real entry point: a builder handed `Auto` must train on a
    // concrete strategy, write that strategy into its checkpoints, and a
    // resume must continue it bit-exactly — even though by resume time the
    // corpus statistics are the same, the decision comes from the file.
    let corpus = tail_heavy_corpus();
    let cfg = LdaConfig::with_topics(512)
        .seed(SEED)
        .sampler(SamplerStrategy::Auto);

    let build = || {
        SessionBuilder::new()
            .corpus(&corpus)
            .config(cfg.clone())
            .system(system(1, SEED))
            .build()
            .unwrap()
    };
    let mut straight = build();
    assert!(
        matches!(straight.config().sampler, SamplerStrategy::LightLda { .. }),
        "auto must resolve before training; got {}",
        straight.config().sampler
    );
    straight.train(5);

    let mut first_leg = build();
    first_leg.train(3);
    let ckpt = ModelCheckpoint::from_trainer(&first_leg);
    assert_eq!(ckpt.sampler, first_leg.config().sampler);
    let mut bytes = Vec::new();
    ckpt.write(&mut bytes).unwrap();
    let reloaded = ModelCheckpoint::read(bytes.as_slice()).unwrap();
    assert_eq!(reloaded.sampler, ckpt.sampler);

    // Resume with the *concrete* strategy from the file, as the CLI does.
    let mut resumed = SessionBuilder::new()
        .corpus(&corpus)
        .config(
            LdaConfig::with_topics(512)
                .seed(SEED)
                .sampler(reloaded.sampler),
        )
        .system(system(1, SEED))
        .assignments(reloaded.z.clone().unwrap(), reloaded.iterations)
        .sampler_state(reloaded.sampler_state.clone())
        .build()
        .unwrap();
    resumed.train(2);
    assert_eq!(straight.z_snapshot(), resumed.z_snapshot());
    assert_eq!(straight.global_phi(), resumed.global_phi());
}

// ---------------------------------------------------------------------------
// On-disk back-compat matrix
// ---------------------------------------------------------------------------

#[test]
fn golden_v1_to_v4_files_all_load_with_documented_fallbacks() {
    let mut models = Vec::new();
    for (version, bytes) in golden::all() {
        let ckpt = ModelCheckpoint::read(bytes)
            .unwrap_or_else(|e| panic!("golden v{version} file failed to load: {e}"));
        ckpt.validate()
            .unwrap_or_else(|e| panic!("golden v{version} file failed validation: {e}"));

        // Fallback semantics per version.
        if version == 1 {
            assert!(ckpt.z.is_none(), "v1 predates the z section");
            assert_eq!((ckpt.iterations, ckpt.seed), (0, 0));
        } else {
            assert!(ckpt.z.is_some(), "v{version} files carry z");
        }
        if version < 3 {
            assert_eq!(
                ckpt.sampler,
                SamplerStrategy::SparseCgs,
                "pre-v3 files fall back to the default strategy"
            );
        }
        if version < 4 {
            assert!(
                ckpt.sampler_state.is_none(),
                "pre-v4 files resume with a fresh rebuild"
            );
        }
        models.push((version, ckpt));
    }

    // Every golden file stores the same trained model: the matrices must
    // agree bit-for-bit across all four versions.
    let (_, reference) = &models[models.len() - 1];
    for (version, ckpt) in &models {
        assert_eq!(&ckpt.phi, &reference.phi, "φ differs in golden v{version}");
        assert_eq!(&ckpt.nk, &reference.nk, "n_k differs in golden v{version}");
        assert_eq!(
            ckpt.theta.to_dense(),
            reference.theta.to_dense(),
            "θ differs in golden v{version}"
        );
    }

    // A golden model loaded from any version drives the serving path.
    let (_, oldest) = &models[0];
    oldest.try_inferencer().expect("v1 model must serve");
}

#[test]
fn truncated_v5_sampler_sections_fail_with_typed_errors_not_panics() {
    // Train a light model so the v5 file actually carries both new
    // sections, then cut the stream at every byte boundary of the trailing
    // sampler sections: each prefix must produce a typed error.
    let corpus = fixtures::tiny(fixtures::FIXTURE_SEED);
    let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(light_cfg(3, 2, 8))
        .system(system(1, SEED))
        .build()
        .unwrap();
    trainer.train(2);
    let ckpt = ModelCheckpoint::from_trainer(&trainer);
    assert!(matches!(ckpt.sampler, SamplerStrategy::LightLda { .. }));
    assert!(ckpt.sampler_state.is_some());
    let mut buf = Vec::new();
    ckpt.write(&mut buf).unwrap();

    // The v5 tail: strategy tag (1 + 3×8 bytes) + resume section
    // (1 + 8 + K×V×4 bytes).  Truncating anywhere inside must be Io (EOF),
    // and corrupting the tag/flag bytes must be Corrupt — never a panic.
    let tail_len = 25 + 9 + ckpt.num_topics * ckpt.vocab_size * 4;
    assert!(buf.len() > tail_len);
    for cut in [1, 8, 9, 24, tail_len - 1, tail_len / 2] {
        let truncated = &buf[..buf.len() - cut];
        match ModelCheckpoint::read(truncated) {
            Err(CheckpointError::Io(_)) => {}
            other => {
                panic!("cut of {cut} trailing bytes: expected a typed Io error, got {other:?}")
            }
        }
    }
    let tag_pos = buf.len() - tail_len;
    assert_eq!(buf[tag_pos], 2, "strategy tag must sit where computed");
    let mut bad = buf.clone();
    bad[tag_pos] = 9;
    assert!(matches!(
        ModelCheckpoint::read(bad.as_slice()),
        Err(CheckpointError::Corrupt(_))
    ));
}

// ---------------------------------------------------------------------------
// Property: the tuner is the argmin of its own cost model, and the decision
// survives a checkpoint round-trip
// ---------------------------------------------------------------------------

/// Arbitrary-but-plausible corpus statistics.
fn arb_stats() -> impl Strategy<Value = ChunkStatistics> {
    (
        2usize..1024,
        1usize..50_000,
        1u64..2_000_000,
        1u32..400,
        0u32..=100,
    )
        .prop_map(|(k, words, tokens, len, tail)| ChunkStatistics {
            num_topics: k,
            active_words: words,
            total_tokens: tokens,
            mean_doc_len: len as f64,
            tail_mass: tail as f64 / 100.0,
        })
}

/// A minimal consistent checkpoint whose sampler field can be set freely.
fn skeleton_checkpoint(sampler: SamplerStrategy) -> ModelCheckpoint {
    let corpus = fixtures::tiny(fixtures::FIXTURE_SEED);
    let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(4).seed(1).sampler(sampler))
        .system(system(1, 1))
        .build()
        .unwrap();
    trainer.train(1);
    ModelCheckpoint::from_trainer(&trainer)
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        failure_persistence: FileFailurePersistence::WithSource("proptest-regressions"),
        ..ProptestConfig::default()
    })]

    /// For any statistics, the picked kernel's own steady-state prediction
    /// over the analytic spans is minimal among all candidates.
    #[test]
    fn auto_selection_is_the_argmin_of_its_own_cost_model(stats in arb_stats()) {
        let picked = auto_select_sampler(&stats);
        let (pc, ps) = predicted_spans(&stats, picked);
        let picked_score = sampler_for_strategy(picked).predict_steady_compute_s(pc, ps);
        prop_assert!(picked_score.is_finite());
        for cand in candidates(&stats) {
            let (c, s) = predicted_spans(&stats, cand);
            let score = sampler_for_strategy(cand).predict_steady_compute_s(c, s);
            prop_assert!(
                picked_score <= score,
                "{} ({}) beaten by {} ({}) on {:?}",
                picked, picked_score, cand, score, stats
            );
        }
        // Deterministic: the same statistics always select the same kernel.
        prop_assert_eq!(picked, auto_select_sampler(&stats));
    }

    /// Whatever the tuner picks round-trips losslessly through a checkpoint
    /// save/load — the mechanism that stops resume from re-deciding.
    #[test]
    fn selected_strategy_round_trips_through_a_checkpoint(stats in arb_stats()) {
        let picked = auto_select_sampler(&stats);
        let ckpt = skeleton_checkpoint(picked);
        prop_assert_eq!(ckpt.sampler, picked);
        let mut buf = Vec::new();
        ckpt.write(&mut buf).unwrap();
        let back = ModelCheckpoint::read(buf.as_slice()).unwrap();
        prop_assert_eq!(back.sampler, picked);
        prop_assert_eq!(back, ckpt);
    }
}
