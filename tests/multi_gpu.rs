//! Multi-GPU and streamed-schedule integration tests (§5).

use culda::core::{CuLdaTrainer, LdaConfig, ScheduleKind, SessionBuilder};
use culda::corpus::DatasetProfile;
use culda::gpusim::{DeviceSpec, Interconnect, MultiGpuSystem};
use culda::metrics::log_likelihood;

fn corpus(tokens: u64, seed: u64) -> culda::corpus::Corpus {
    DatasetProfile::pubmed()
        .scaled_to_tokens(tokens)
        .generate(seed)
}

fn loglik(trainer: &CuLdaTrainer) -> f64 {
    let cfg = trainer.config();
    log_likelihood(
        &trainer.merged_theta(),
        &trainer.global_phi(),
        &trainer.global_nk(),
        cfg.alpha,
        cfg.beta,
    )
    .per_token()
}

#[test]
fn every_gpu_count_preserves_counts_and_improves_quality() {
    let corpus = corpus(40_000, 1);
    for gpus in [1usize, 2, 4] {
        let system = MultiGpuSystem::homogeneous(
            DeviceSpec::titan_xp_pascal(),
            gpus,
            1,
            Interconnect::Pcie3,
        );
        let mut trainer = SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(32).seed(1))
            .system(system)
            .build()
            .unwrap();
        assert_eq!(trainer.num_chunks(), gpus);
        let before = loglik(&trainer);
        trainer.train(8);
        trainer.validate().unwrap();
        let after = loglik(&trainer);
        assert!(after > before, "G={gpus}: {before} → {after}");
        // Token conservation across replicas and chunks.
        assert_eq!(trainer.global_phi().total(), corpus.num_tokens() as u64);
    }
}

#[test]
fn multi_gpu_reduces_per_iteration_compute_time() {
    let corpus = corpus(60_000, 2);
    let avg_compute = |gpus: usize| {
        let system =
            MultiGpuSystem::homogeneous(DeviceSpec::v100_volta(), gpus, 2, Interconnect::NvLink);
        let mut trainer = SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(48).seed(2))
            .system(system)
            .build()
            .unwrap();
        trainer.train(4);
        trainer
            .history()
            .iter()
            .map(|h| h.compute_time_s)
            .sum::<f64>()
            / 4.0
    };
    let one = avg_compute(1);
    let four = avg_compute(4);
    assert!(
        four < one * 0.5,
        "4 GPUs should at least halve the compute phase: {one:.3e} → {four:.3e}"
    );
}

#[test]
fn streamed_schedule_matches_resident_schedule_statistically() {
    // Forcing M = 3 (WorkSchedule2) must not change what is computed — only
    // how it is staged.  With the same seed the sampled state is not bitwise
    // identical (chunking changes RNG streams), but conservation laws and
    // convergence must hold, and transfers must be accounted.
    let corpus = corpus(30_000, 3);
    let resident = {
        let system = MultiGpuSystem::single(DeviceSpec::gtx_1080(), 3);
        let mut t = SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(32).seed(3))
            .system(system)
            .build()
            .unwrap();
        t.train(6);
        t
    };
    let streamed = {
        let system = MultiGpuSystem::single(DeviceSpec::gtx_1080(), 3);
        let mut t = SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(32).seed(3).chunks_per_gpu(3))
            .system(system)
            .build()
            .unwrap();
        t.train(6);
        t
    };
    assert_eq!(resident.schedule(), ScheduleKind::Resident);
    assert_eq!(
        streamed.schedule(),
        ScheduleKind::Streamed { chunks_per_gpu: 3 }
    );
    resident.validate().unwrap();
    streamed.validate().unwrap();
    assert!(streamed.history().iter().all(|h| h.transfer_time_s > 0.0));
    assert!(resident.history().iter().all(|h| h.transfer_time_s == 0.0));
    let ll_resident = loglik(&resident);
    let ll_streamed = loglik(&streamed);
    assert!(
        (ll_resident - ll_streamed).abs() < 0.3,
        "schedules should converge similarly: {ll_resident} vs {ll_streamed}"
    );
    // Streaming over PCIe can only be slower than keeping data resident.
    assert!(streamed.sim_time_s() > resident.sim_time_s());
}

#[test]
fn nvlink_synchronization_is_cheaper_than_pcie() {
    let corpus = corpus(40_000, 4);
    let sync_time = |link: Interconnect| {
        let system = MultiGpuSystem::homogeneous(DeviceSpec::v100_volta(), 4, 4, link);
        let mut trainer = SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(64).seed(4))
            .system(system)
            .build()
            .unwrap();
        trainer.train(3);
        trainer.history().iter().map(|h| h.sync_time_s).sum::<f64>()
    };
    let pcie = sync_time(Interconnect::Pcie3);
    let nvlink = sync_time(Interconnect::NvLink);
    assert!(
        nvlink < pcie,
        "NVLink sync ({nvlink:.3e}s) should beat PCIe ({pcie:.3e}s)"
    );
}
