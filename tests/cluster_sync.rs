//! Multi-node cluster simulation with hierarchical φ synchronization
//! (DESIGN.md §14): grouping the same devices into nodes — and switching
//! between the flat all-device collective and the two-tier hierarchical
//! schedule — must be a pure *costing* change, bit-identical in every
//! trained artifact, while the hierarchy measurably shrinks the exposed
//! sync on a slow fabric at bandwidth-bound model sizes.

use culda::baselines::CuLdaSolver;
use culda::core::{CuLdaTrainer, LdaConfig, ModelCheckpoint, SessionBuilder};
use culda::corpus::{Corpus, DatasetProfile};
use culda::gpusim::{ClusterSystem, DeviceSpec, Interconnect, MultiGpuSystem};
use culda_testkit::determinism::{assert_same_assignments, z_signature};
use culda_testkit::fixtures;

const K: usize = 8;
const SEED: u64 = 2019;
const ITERATIONS: usize = 5;

/// `nodes × gpus` Volta devices: a plain single-node system for `nodes == 1`,
/// otherwise a cluster with PCIe inside every node and 10 GbE between nodes.
fn system(nodes: usize, gpus: usize) -> MultiGpuSystem {
    if nodes == 1 {
        MultiGpuSystem::homogeneous(DeviceSpec::v100_volta(), gpus, SEED, Interconnect::Pcie3)
    } else {
        ClusterSystem::homogeneous(
            DeviceSpec::v100_volta(),
            nodes,
            gpus,
            SEED,
            Interconnect::Pcie3,
            Interconnect::Ethernet10G,
        )
        .into_system()
    }
}

fn trained(corpus: &Corpus, nodes: usize, gpus: usize, hierarchical: bool) -> CuLdaTrainer {
    let config = LdaConfig::with_topics(K)
        .seed(SEED)
        .hierarchical_sync(hierarchical);
    let mut trainer = SessionBuilder::new()
        .corpus(corpus)
        .config(config)
        .system(system(nodes, gpus))
        .build()
        .expect("trainer");
    trainer.train(ITERATIONS);
    trainer
}

fn checkpoint_bytes(trainer: &CuLdaTrainer) -> Vec<u8> {
    let mut bytes = Vec::new();
    ModelCheckpoint::from_trainer(trainer)
        .write(&mut bytes)
        .expect("checkpoint serialization");
    bytes
}

#[test]
fn training_is_bit_identical_across_node_groupings() {
    // The same four devices as one node, 2 × 2, and four single-GPU nodes:
    // node grouping changes only which link each transfer is costed on, so
    // z, φ and the checkpoint bytes must match exactly — and the hierarchy
    // flag must not perturb them either.
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let reference = trained(&corpus, 1, 4, true);
    let reference_bytes = checkpoint_bytes(&reference);
    let reference_solver = CuLdaSolver::new(reference, "1 node × 4 GPUs");
    for (nodes, gpus) in [(2usize, 2usize), (4, 1)] {
        for hierarchical in [true, false] {
            let trainer = trained(&corpus, nodes, gpus, hierarchical);
            assert_eq!(
                checkpoint_bytes(&trainer),
                reference_bytes,
                "{nodes} × {gpus} (hierarchical: {hierarchical}) checkpoint diverged"
            );
            let solver = CuLdaSolver::new(trainer, format!("{nodes} nodes × {gpus} GPUs"));
            assert_same_assignments(&reference_solver, &solver);
            assert_eq!(z_signature(&reference_solver), z_signature(&solver));
        }
    }
}

#[test]
fn cluster_checkpoints_resume_bit_exactly() {
    // Save on a 2 × 2 cluster, resume on the same topology, and compare to
    // an uninterrupted run — the cluster fields ride the config through the
    // checkpoint without perturbing the restart.
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let uninterrupted = trained(&corpus, 2, 2, true);

    let config = LdaConfig::with_topics(K).seed(SEED).hierarchical_sync(true);
    let mut first = SessionBuilder::new()
        .corpus(&corpus)
        .config(config.clone())
        .system(system(2, 2))
        .build()
        .expect("trainer");
    first.train(2);
    let mut bytes = Vec::new();
    ModelCheckpoint::from_trainer(&first)
        .write(&mut bytes)
        .expect("checkpoint serialization");

    let restored = ModelCheckpoint::read(bytes.as_slice()).expect("checkpoint parse");
    let mut resumed = SessionBuilder::new()
        .corpus(&corpus)
        .config(config)
        .system(system(2, 2))
        .assignments(
            restored.z.clone().expect("assignments"),
            restored.iterations,
        )
        .sampler_state(restored.sampler_state.clone())
        .build()
        .expect("resumed trainer");
    resumed.train(ITERATIONS - 2);

    assert_eq!(checkpoint_bytes(&resumed), checkpoint_bytes(&uninterrupted));
}

#[test]
fn hierarchy_beats_the_flat_collective_on_a_slow_fabric() {
    // Bandwidth-bound regime: K × V × 2 ≈ 1.2 MiB of φ replica per exchange
    // on a 10 GbE fabric joining 2 nodes × 2 Pascal GPUs.  The flat
    // collective drags every device-pair hop over the fabric; the hierarchy
    // reduces inside each node first and sends one replica per node pair.
    let corpus = fixtures::shuffled_vocab(
        &DatasetProfile {
            name: "cluster-scale".into(),
            num_docs: 2700,
            vocab_size: 4000,
            avg_doc_len: 330.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(11),
    );
    let run = |hierarchical: bool| {
        let config = LdaConfig::with_topics(160)
            .seed(SEED)
            .hierarchical_sync(hierarchical);
        let sys = ClusterSystem::homogeneous(
            DeviceSpec::titan_xp_pascal(),
            2,
            2,
            SEED,
            Interconnect::Pcie3,
            Interconnect::Ethernet10G,
        )
        .into_system();
        let mut trainer = SessionBuilder::new()
            .corpus(&corpus)
            .config(config)
            .system(sys)
            .build()
            .expect("trainer");
        trainer.train(3);
        trainer
    };

    let hier = run(true);
    let flat = run(false);
    // Identical models…
    assert_eq!(checkpoint_bytes(&hier), checkpoint_bytes(&flat));

    // …different schedules.  Compare steady-state iterations (iteration 0 is
    // the dense tuning pass in both runs).
    let hier_it = hier.history().last().copied().expect("history");
    let flat_it = flat.history().last().copied().expect("history");
    assert!(
        hier_it.sync_exposed_time_s < 0.7 * flat_it.sync_exposed_time_s,
        "hierarchical exposed sync {} must undercut flat {} by ≥ 30%",
        hier_it.sync_exposed_time_s,
        flat_it.sync_exposed_time_s
    );
    assert!(hier_it.sim_time_s < flat_it.sim_time_s);

    // Tier accounting: the flat collective puts *all* sync traffic on the
    // fabric; the hierarchy moves most of it onto the intra-node links and
    // sends only one replica per node pair across.
    assert_eq!(flat_it.intra_sync_bytes, 0);
    assert!(hier_it.intra_sync_bytes > 0);
    assert!(hier_it.inter_sync_bytes > 0);
    assert!(hier_it.inter_sync_bytes < flat_it.inter_sync_bytes);
}
