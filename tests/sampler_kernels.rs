//! The pluggable sampler-kernel API, end to end: the alias-table hybrid
//! sampler must train through every entry point (batch build, streaming
//! build, checkpoint rotation), stay bit-exact across runs / GPU topologies
//! / ingestion batchings, agree statistically with the exact sparse-CGS
//! kernel when its tables are fresh, and surface its rebuild cost in the
//! iteration statistics.

use culda::baselines::CuLdaSolver;
use culda::core::{
    LdaConfig, ModelCheckpoint, SamplerStrategy, SessionBuilder, StreamingOptions, StreamingSession,
};
use culda::gpusim::{DeviceSpec, Interconnect, MultiGpuSystem};
use culda_testkit::conformance::{run_conformance, MAX_DRAWDOWN_NATS};
use culda_testkit::determinism::{assert_same_assignments, z_signature};
use culda_testkit::{doc_lens, fixtures};

const K: usize = 8;
const SEED: u64 = 2024;

fn alias_cfg(rebuild_every: usize, mh_steps: usize) -> LdaConfig {
    LdaConfig::with_topics(K)
        .seed(SEED)
        .sampler(SamplerStrategy::AliasHybrid {
            rebuild_every,
            mh_steps,
        })
}

fn system(gpus: usize, seed: u64) -> MultiGpuSystem {
    if gpus == 1 {
        MultiGpuSystem::single(DeviceSpec::v100_volta(), seed)
    } else {
        MultiGpuSystem::homogeneous(DeviceSpec::v100_volta(), gpus, seed, Interconnect::NvLink)
    }
}

fn trained_alias(corpus: &culda::corpus::Corpus, gpus: usize, iterations: usize) -> CuLdaSolver {
    let mut trainer = SessionBuilder::new()
        .corpus(corpus)
        .config(alias_cfg(2, 2))
        .system(system(gpus, SEED))
        .build()
        .expect("alias trainer construction");
    trainer.train(iterations);
    CuLdaSolver::new(trainer, format!("CuLDA(alias) ({gpus} GPU)"))
}

#[test]
fn alias_assignments_are_bit_exact_across_runs_and_topologies() {
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let a = trained_alias(&corpus, 1, 5);
    let b = trained_alias(&corpus, 1, 5);
    assert_same_assignments(&a, &b);

    let quad = trained_alias(&corpus, 4, 5);
    assert!(
        a.trainer().num_chunks() != quad.trainer().num_chunks(),
        "topologies must actually partition differently"
    );
    assert_same_assignments(&a, &quad);
    assert_eq!(z_signature(&a), z_signature(&quad));

    // The two strategies are different (each internally deterministic)
    // trajectories.
    let mut sparse = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(K).seed(SEED))
        .system(system(1, SEED))
        .build()
        .unwrap();
    sparse.train(5);
    let sparse = CuLdaSolver::new(sparse, "CuLDA (sparse)");
    assert_ne!(z_signature(&a), z_signature(&sparse));
}

#[test]
fn alias_streaming_with_zero_burn_in_matches_batch_and_batching_is_invariant() {
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);

    // Zero-burn-in bridge: stream-everything-then-train ≡ batch, for the
    // alias strategy exactly as for sparse CGS.
    let mut batch = SessionBuilder::new()
        .corpus(&corpus)
        .config(alias_cfg(2, 2))
        .system(system(1, SEED))
        .build()
        .unwrap();
    batch.train(4);

    let mut streaming = SessionBuilder::new()
        .corpus(&corpus)
        .config(alias_cfg(2, 2))
        .burn_in_sweeps(0)
        .system(system(1, SEED))
        .build_streaming()
        .unwrap();
    streaming.train(4).unwrap();
    assert_eq!(batch.z_snapshot(), streaming.z_snapshot());
    assert_eq!(&batch.global_phi(), streaming.global_phi());

    // Ingestion batching invariance with a real alias burn-in: one call vs
    // three mini-batches must be bit-identical.
    let build = || {
        SessionBuilder::new()
            .config(alias_cfg(2, 2))
            .burn_in_sweeps(2)
            .system(system(1, SEED))
            .build_streaming()
            .unwrap()
    };
    let mut at_once = build();
    at_once.ingest(&fixtures::documents_of(&corpus));
    at_once.train(3).unwrap();
    at_once.validate().unwrap();

    let mut in_batches = build();
    for batch in fixtures::doc_batches(&corpus, 3) {
        in_batches.ingest(&batch);
    }
    in_batches.train(3).unwrap();
    assert_eq!(at_once.z_snapshot(), in_batches.z_snapshot());
    assert_eq!(at_once.global_phi(), in_batches.global_phi());

    // Burn-in routed through the alias sampler is a different trajectory
    // than the sparse burn-in (same seed, same corpus).
    let mut sparse_burn = SessionBuilder::new()
        .config(LdaConfig::with_topics(K).seed(SEED))
        .burn_in_sweeps(2)
        .system(system(1, SEED))
        .build_streaming()
        .unwrap();
    sparse_burn.ingest(&fixtures::documents_of(&corpus));
    assert_ne!(at_once.z_snapshot(), sparse_burn.z_snapshot());
}

#[test]
fn alias_with_fresh_tables_matches_sparse_cgs_stationary_behavior() {
    // With rebuild_every = 1 the stale tables are rebuilt from the very φ
    // the kernel corrects against, so the MH proposal is (up to the token's
    // self-exclusion) the exact conditional and acceptance is ≈ exhaustive:
    // the chain should mix to the same stationary behaviour as the exact
    // sparse-CGS kernel.  Drive both through the full testkit conformance
    // battery and require their converged likelihoods to agree within the
    // battery's own trajectory tolerance.
    let corpus = fixtures::small(fixtures::FIXTURE_SEED);
    let lens = doc_lens(&corpus);
    let alpha = 50.0 / K as f64;
    let beta = 0.01;
    let iterations = 30;

    let mut alias = CuLdaSolver::new(
        SessionBuilder::new()
            .corpus(&corpus)
            .config(alias_cfg(1, 4))
            .system(system(1, SEED))
            .build()
            .unwrap(),
        "CuLDA(alias fresh)",
    );
    let alias_series = run_conformance(&mut alias, &lens, alpha, beta, iterations)
        .unwrap_or_else(|e| panic!("alias conformance failure: {e}"));

    let mut sparse = CuLdaSolver::new(
        SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(K).seed(SEED))
            .system(system(1, SEED))
            .build()
            .unwrap(),
        "CuLDA(sparse)",
    );
    let sparse_series = run_conformance(&mut sparse, &lens, alpha, beta, iterations)
        .unwrap_or_else(|e| panic!("sparse conformance failure: {e}"));

    // Converged quality agreement: mean over the last third of the run.
    let tail = |s: &[f64]| -> f64 {
        let t = &s[s.len() - s.len() / 3..];
        t.iter().sum::<f64>() / t.len() as f64
    };
    let (a, b) = (tail(&alias_series), tail(&sparse_series));
    assert!(
        (a - b).abs() <= MAX_DRAWDOWN_NATS,
        "stationary log-likelihoods disagree: alias {a:.4} vs sparse {b:.4}"
    );
}

#[test]
fn alias_rebuild_cost_appears_in_iteration_stats_and_breakdown() {
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(alias_cfg(3, 2))
        .system(system(1, SEED))
        .build()
        .unwrap();
    trainer.train(4);
    let h = trainer.history();
    assert!(h[0].sampler_setup_time_s > 0.0, "iteration 0 builds tables");
    assert_eq!(h[1].sampler_setup_time_s, 0.0);
    assert_eq!(h[2].sampler_setup_time_s, 0.0);
    assert!(h[3].sampler_setup_time_s > 0.0, "cadence rebuild at 3");
    for it in h {
        assert!(it.compute_time_s >= it.sampler_setup_time_s);
    }
    let breakdown = trainer.kernel_breakdown();
    assert!(
        breakdown
            .iter()
            .any(|(name, pct)| name == "Alias build" && *pct > 0.0),
        "alias build must appear in the kernel breakdown: {breakdown:?}"
    );

    // The default sparse sampler never reports setup time.
    let mut sparse = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(K).seed(SEED))
        .system(system(1, SEED))
        .build()
        .unwrap();
    sparse.train(2);
    assert!(sparse
        .history()
        .iter()
        .all(|it| it.sampler_setup_time_s == 0.0));
}

#[test]
fn alias_mid_cadence_resume_is_bit_exact() {
    // Regression test: a checkpoint taken *between* alias rebuilds used to
    // resume with freshly built tables and silently diverge from the
    // uninterrupted run. The checkpoint now persists the rebuild phase
    // (built_at plus the φ̂/n̂k the tables were built from), so the resumed
    // leg keeps sampling against the same stale tables and stays on the
    // original cadence grid.
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let build = |assignments: Option<&ModelCheckpoint>| {
        let mut b = SessionBuilder::new()
            .corpus(&corpus)
            .config(alias_cfg(4, 2))
            .system(system(1, SEED));
        if let Some(ckpt) = assignments {
            b = b
                .assignments(ckpt.z.clone().unwrap(), ckpt.iterations)
                .sampler_state(ckpt.sampler_state.clone());
        }
        b.build().unwrap()
    };

    let mut straight = build(None);
    straight.train(10);

    // Tables rebuild at iterations 0, 4 and 8; stopping after 6 lands the
    // checkpoint mid-cadence (two iterations past the last rebuild).
    let mut first_leg = build(None);
    first_leg.train(6);
    let ckpt = ModelCheckpoint::from_trainer(&first_leg);
    ckpt.validate().unwrap();
    assert!(
        ckpt.sampler_state.is_some(),
        "an alias trainer must checkpoint its rebuild phase"
    );

    let mut resumed = build(Some(&ckpt));
    resumed.train(4);
    assert_eq!(straight.z_snapshot(), resumed.z_snapshot());
    assert_eq!(straight.global_phi(), resumed.global_phi());

    // Dropping the sampler state (the pre-v4 resume path) rebuilds tables
    // from φ(6) instead of φ(4) and diverges — the bug this fixes. Without
    // this assertion the test above would pass vacuously on a corpus too
    // small for the stale tables to matter.
    let mut stateless = ckpt;
    stateless.sampler_state = None;
    let mut fresh_tables = build(Some(&stateless));
    fresh_tables.train(4);
    assert_ne!(straight.z_snapshot(), fresh_tables.z_snapshot());
}

#[test]
fn alias_streaming_rotation_resume_preserves_strategy_and_state() {
    // rebuild_every = 1 keeps the stale tables a pure function of the
    // synchronized φ at every iteration; the rotate → resume hand-off must
    // be bit-exact and the resumed session must keep sampling with the
    // alias strategy. (Mid-cadence rotation is covered separately below.)
    let dir = std::env::temp_dir().join(format!(
        "culda-alias-rotate-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = fixtures::tiny(fixtures::FIXTURE_SEED);
    let docs = fixtures::documents_of(&corpus);

    let build = || {
        SessionBuilder::new()
            .config(alias_cfg(1, 2))
            .burn_in_sweeps(1)
            .system(system(1, SEED))
            .build_streaming()
            .unwrap()
    };
    let mut continuous = build();
    continuous.ingest(&docs);
    continuous.train(2).unwrap();
    continuous.rotate_checkpoints(&dir, 2).unwrap();
    continuous.train(3).unwrap();

    let mut resumed =
        StreamingSession::resume_with_options(&dir, system(1, SEED), StreamingOptions::default())
            .unwrap();
    assert_eq!(
        resumed.config().sampler,
        SamplerStrategy::AliasHybrid {
            rebuild_every: 1,
            mh_steps: 2
        },
        "resume must preserve the sampler strategy from the checkpoint"
    );
    resumed.train(3).unwrap();
    assert_eq!(continuous.z_snapshot(), resumed.z_snapshot());
    assert_eq!(continuous.global_phi(), resumed.global_phi());
    resumed.validate().unwrap();

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn alias_streaming_mid_cadence_rotation_resume_is_bit_exact() {
    // Same hand-off as above but with a sparse rebuild cadence, so the
    // rotation lands between rebuilds. The checkpoint's persisted sampler
    // state is what keeps the resumed leg on the stale tables.
    let dir = std::env::temp_dir().join(format!(
        "culda-alias-midcad-{}-{}",
        std::process::id(),
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .unwrap()
            .as_nanos()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let corpus = fixtures::tiny(fixtures::FIXTURE_SEED);
    let docs = fixtures::documents_of(&corpus);

    let build = || {
        SessionBuilder::new()
            .config(alias_cfg(4, 2))
            .burn_in_sweeps(1)
            .system(system(1, SEED))
            .build_streaming()
            .unwrap()
    };
    let mut continuous = build();
    continuous.ingest(&docs);
    continuous.train(6).unwrap(); // rebuilds at 0 and 4; iteration 6 is mid-cadence
    continuous.rotate_checkpoints(&dir, 2).unwrap();
    continuous.train(4).unwrap();

    let mut resumed =
        StreamingSession::resume_with_options(&dir, system(1, SEED), StreamingOptions::default())
            .unwrap();
    resumed.train(4).unwrap();
    assert_eq!(continuous.z_snapshot(), resumed.z_snapshot());
    assert_eq!(continuous.global_phi(), resumed.global_phi());
    resumed.validate().unwrap();

    std::fs::remove_dir_all(&dir).ok();
}
