//! Streaming-session determinism and lifecycle (ISSUE 4 acceptance suite).
//!
//! The contract under test (DESIGN.md §9): a [`StreamingSession`]'s sampled
//! state is a pure function of `(seed, ingested documents in uid order,
//! retirements, iteration schedule)` — never of how documents were grouped
//! into `ingest` calls, which GPU topology ran the bursts, or whether the
//! process died and resumed from a rotated checkpoint in between.

use culda::core::{LdaConfig, SessionBuilder, StreamingSession};
use culda::corpus::Corpus;
use culda::gpusim::{DeviceSpec, Interconnect, MultiGpuSystem};
use culda_testkit::fixtures;
use std::path::PathBuf;

const K: usize = 8;
const SEED: u64 = 2019;

fn system(gpus: usize) -> MultiGpuSystem {
    if gpus == 1 {
        MultiGpuSystem::single(DeviceSpec::v100_volta(), SEED)
    } else {
        MultiGpuSystem::homogeneous(DeviceSpec::v100_volta(), gpus, SEED, Interconnect::NvLink)
    }
}

fn streaming(gpus: usize) -> StreamingSession {
    SessionBuilder::new()
        .config(LdaConfig::with_topics(K).seed(SEED))
        .system(system(gpus))
        .build_streaming()
        .expect("streaming session")
}

fn corpus() -> Corpus {
    fixtures::medium(fixtures::FIXTURE_SEED)
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("culda_streaming_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn assert_same_state(a: &StreamingSession, b: &StreamingSession) {
    assert_eq!(a.z_snapshot(), b.z_snapshot(), "z must be bit-identical");
    assert_eq!(a.global_phi(), b.global_phi(), "φ must be bit-identical");
    assert_eq!(a.global_nk(), b.global_nk(), "n_k must be bit-identical");
}

#[test]
fn ingest_in_batches_is_bit_exact_with_ingest_all_at_once() {
    let corpus = corpus();
    for batches in [2usize, 5] {
        let mut all_at_once = streaming(1);
        all_at_once.ingest(&fixtures::documents_of(&corpus));
        all_at_once.train(4).unwrap();

        let mut batched = streaming(1);
        for batch in fixtures::doc_batches(&corpus, batches) {
            batched.ingest(&batch);
        }
        batched.train(4).unwrap();

        assert_same_state(&all_at_once, &batched);
        batched.validate().unwrap();
    }
}

#[test]
fn streaming_state_is_identical_on_1_and_4_gpu_topologies() {
    let corpus = corpus();
    let mut single = streaming(1);
    single.ingest(&fixtures::documents_of(&corpus));
    single.train(4).unwrap();

    let mut quad = streaming(4);
    for batch in fixtures::doc_batches(&corpus, 3) {
        quad.ingest(&batch);
    }
    quad.train(4).unwrap();

    assert!(
        single.trainer().unwrap().num_chunks() != quad.trainer().unwrap().num_chunks(),
        "topologies must actually partition differently for this test to mean anything"
    );
    assert_same_state(&single, &quad);
}

#[test]
fn retire_then_reingest_conserves_counts() {
    let corpus = corpus();
    let mut session = streaming(1);
    let uids = session.ingest(&fixtures::documents_of(&corpus));
    session.train(2).unwrap();
    session.validate().unwrap();
    let tokens_before = session.stats().live_tokens;

    // Retire a third of the documents...
    let retired: Vec<u64> = uids.iter().copied().step_by(3).collect();
    let retired_tokens: u64 = retired
        .iter()
        .map(|&uid| corpus.doc(uid as usize).len() as u64)
        .sum();
    session.retire(&retired).unwrap();
    session.validate().unwrap();
    let stats = session.stats();
    assert_eq!(stats.live_tokens, tokens_before - retired_tokens);
    assert_eq!(
        session.global_phi().total(),
        stats.live_tokens,
        "φ must cover exactly the live tokens after retirement"
    );

    // ...train through the membership change, then re-ingest the same
    // documents as fresh arrivals (new uids).
    session.train(2).unwrap();
    session.validate().unwrap();
    let reingested: Vec<_> = retired
        .iter()
        .map(|&uid| culda::corpus::Document::from(corpus.doc(uid as usize)))
        .collect();
    let new_uids = session.ingest(&reingested);
    assert!(
        new_uids.iter().all(|u| !uids.contains(u)),
        "uids are never reused"
    );
    session.train(2).unwrap();
    session.validate().unwrap();
    assert_eq!(session.stats().live_tokens, tokens_before);
    assert_eq!(session.global_phi().total(), tokens_before);
}

#[test]
fn compaction_crossing_the_threshold_changes_nothing_observable() {
    let corpus = corpus();
    let mut eager = SessionBuilder::new()
        .config(LdaConfig::with_topics(K).seed(SEED))
        .system(system(1))
        .compaction_threshold(0.0) // compact on every retire
        .build_streaming()
        .unwrap();
    let mut lazy = SessionBuilder::new()
        .config(LdaConfig::with_topics(K).seed(SEED))
        .system(system(1))
        .compaction_threshold(0.9) // essentially never compact
        .build_streaming()
        .unwrap();
    for session in [&mut eager, &mut lazy] {
        let uids = session.ingest(&fixtures::documents_of(&corpus));
        session.train(2).unwrap();
        session.retire(&uids[..uids.len() / 2]).unwrap();
        session.train(2).unwrap();
        session.validate().unwrap();
    }
    assert_eq!(eager.stats().tombstone_fraction, 0.0);
    assert!(lazy.stats().tombstone_fraction > 0.0);
    assert_same_state(&eager, &lazy);
}

/// The acceptance round-trip of ISSUE 4: ingesting a corpus in k
/// mini-batches, rotating checkpoints, and resuming from the latest must
/// produce bit-identical z/φ to a single-session run with the same seed —
/// on 1-GPU and 4-GPU topologies.
#[test]
fn rotate_and_resume_round_trip_matches_single_session_run() {
    let corpus = corpus();
    for gpus in [1usize, 4] {
        // Reference: one uninterrupted session, everything ingested at once.
        let mut reference = streaming(gpus);
        reference.ingest(&fixtures::documents_of(&corpus));
        reference.train(5).unwrap();

        // Round-trip: k mini-batches, checkpoint rotation mid-run, process
        // "dies", resumes from the latest set, finishes the schedule.
        let dir = tmp_dir(&format!("roundtrip_{gpus}"));
        let mut first_leg = streaming(gpus);
        for batch in fixtures::doc_batches(&corpus, 3) {
            first_leg.ingest(&batch);
        }
        first_leg.train(2).unwrap();
        first_leg.rotate_checkpoints(&dir, 2).unwrap();
        drop(first_leg);

        let mut resumed = StreamingSession::resume(&dir, system(gpus)).unwrap();
        assert_eq!(resumed.completed_iterations(), 2);
        resumed.train(3).unwrap();
        resumed.validate().unwrap();

        assert_same_state(&reference, &resumed);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

#[test]
fn checkpoint_cadence_rotates_and_prunes() {
    let corpus = corpus();
    let dir = tmp_dir("cadence");
    let mut session = SessionBuilder::new()
        .config(LdaConfig::with_topics(K).seed(SEED))
        .system(system(1))
        .checkpoint_cadence(&dir, 2)
        .keep_last(2)
        .build_streaming()
        .unwrap();
    session.ingest(&fixtures::documents_of(&corpus));
    session.train(7).unwrap(); // cadence 2 → rotations after it 2, 4, 6
    assert_eq!(session.stats().checkpoints_written, 3);

    use culda::core::checkpoint::rotation;
    let entries = rotation::list(&dir).unwrap();
    assert_eq!(entries.len(), 2, "keep_last=2 must prune the oldest set");
    assert_eq!(
        entries.iter().map(|e| e.iterations).collect::<Vec<_>>(),
        vec![4, 6]
    );

    // The pruned directory still resumes from the newest set, and rotations
    // resumed there continue the sequence numbering.
    let mut resumed = StreamingSession::resume(&dir, system(1)).unwrap();
    assert_eq!(resumed.completed_iterations(), 6);
    resumed.train(1).unwrap();
    resumed.rotate_checkpoints(&dir, 2).unwrap();
    let entries = rotation::list(&dir).unwrap();
    assert_eq!(entries.last().unwrap().iterations, 7);
    assert!(entries.last().unwrap().seq > 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn resume_fails_cleanly_on_an_empty_directory() {
    let dir = tmp_dir("empty");
    std::fs::create_dir_all(&dir).unwrap();
    let err = match StreamingSession::resume(&dir, system(1)) {
        Ok(_) => panic!("resume from an empty directory must fail"),
        Err(e) => e,
    };
    assert!(
        err.to_string().contains("no rotated checkpoints"),
        "unexpected error: {err}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn streaming_with_zero_burn_in_bridges_to_the_batch_trainer() {
    // With burn-in disabled, ingestion is exactly the batch trainer's stable
    // initialisation, so the streaming and batch paths must coincide — the
    // bridge that anchors the streaming API to the existing determinism
    // contract (same-seed, cross-topology, resume).
    let corpus = corpus();
    let mut batch = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(K).seed(SEED))
        .system(system(1))
        .build()
        .unwrap();
    batch.train(5);

    let mut stream = SessionBuilder::new()
        .config(LdaConfig::with_topics(K).seed(SEED))
        .system(system(4))
        .burn_in_sweeps(0)
        .build_streaming()
        .unwrap();
    for batch_docs in fixtures::doc_batches(&corpus, 4) {
        stream.ingest(&batch_docs);
    }
    stream.train(5).unwrap();

    assert_eq!(batch.z_snapshot(), stream.z_snapshot());
    assert_eq!(&batch.global_phi(), stream.global_phi());
}
