//! Load-generator acceptance for the epoch-snapshot query tier (ISSUE 7).
//!
//! The contract under test (DESIGN.md §12): reader threads answering
//! batched fold-in queries through [`ModelSnapshots`] handles share nothing
//! writable with the trainer, so a streaming run hammered by concurrent
//! queries through its full lifecycle — ingest → train → retire → rotate →
//! resume — must leave **bit-identical** z/φ/n_k and checkpoint bytes
//! compared to the same run with no serving at all, at 1 and 4 reader
//! threads.

use culda::core::{
    InferenceOptions, LdaConfig, ModelSnapshots, ServeError, SessionBuilder, StreamingSession,
};
use culda::gpusim::{DeviceSpec, MultiGpuSystem};
use culda_testkit::fixtures;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

const K: usize = 8;
const SEED: u64 = 2019;

fn system() -> MultiGpuSystem {
    MultiGpuSystem::single(DeviceSpec::v100_volta(), SEED)
}

fn streaming() -> StreamingSession {
    SessionBuilder::new()
        .config(LdaConfig::with_topics(K).seed(SEED))
        .system(system())
        .build_streaming()
        .expect("streaming session")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("culda_serve_test_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn query_options(reader: usize) -> InferenceOptions {
    InferenceOptions {
        sweeps: 3,
        burn_in: 1,
        seed: 5 + reader as u64,
    }
}

/// A running fleet of reader threads hammering batched queries against one
/// [`ModelSnapshots`] handle until told to stop.  Every thread serves at
/// least one final batch *after* observing the stop flag, so a run that
/// published any snapshot is guaranteed a non-zero served count.
struct LoadGenerator {
    stop: Arc<AtomicBool>,
    readers: Vec<JoinHandle<u64>>,
}

fn spawn_load(
    snapshots: ModelSnapshots,
    readers: usize,
    queries: Arc<Vec<Vec<u32>>>,
) -> LoadGenerator {
    let stop = Arc::new(AtomicBool::new(false));
    let readers = (0..readers)
        .map(|reader| {
            let snapshots = snapshots.clone();
            let stop = Arc::clone(&stop);
            let queries = Arc::clone(&queries);
            std::thread::spawn(move || {
                let options = query_options(reader);
                let mut served = 0u64;
                let mut cursor = reader;
                loop {
                    let stopping = stop.load(Ordering::Relaxed);
                    let batch: Vec<Vec<u32>> = (0..4)
                        .map(|i| queries[(cursor + i) % queries.len()].clone())
                        .collect();
                    cursor = (cursor + 4) % queries.len();
                    match snapshots.infer_batch(&batch, options) {
                        Ok(reply) => {
                            assert!(reply.epoch >= 1, "served from an unpublished epoch");
                            assert_eq!(reply.results.len(), batch.len());
                            served += reply.results.len() as u64;
                        }
                        // Queries racing ahead of the first publication are
                        // expected; anything else is a hard failure.
                        Err(ServeError::NoSnapshot) => {}
                        Err(e) => panic!("query failed under load: {e}"),
                    }
                    if stopping {
                        return served;
                    }
                }
            })
        })
        .collect();
    LoadGenerator { stop, readers }
}

impl LoadGenerator {
    fn finish(self) -> u64 {
        self.stop.store(true, Ordering::Relaxed);
        self.readers
            .into_iter()
            .map(|r| r.join().expect("reader thread panicked"))
            .sum()
    }
}

/// Run the full streaming lifecycle — ingest half, train, retire a quarter,
/// ingest the rest, train, rotate, resume from disk, train again — with
/// `readers` query threads hammering the snapshot tier throughout (0 =
/// serve-free reference), and reduce the end state to comparable artifacts.
fn cycle_artifacts(readers: usize, tag: &str) -> (Vec<Vec<u16>>, Vec<u32>, Vec<i64>, Vec<u8>) {
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let docs = fixtures::documents_of(&corpus);
    let queries: Arc<Vec<Vec<u32>>> =
        Arc::new(docs.iter().take(48).map(|d| d.words.clone()).collect());
    let (head, tail) = docs.split_at(docs.len() / 2);
    let dir = tmp_dir(tag);

    // Leg 1: a served session up to the rotation (readers spawned before
    // the first ingest, so they also exercise the pre-publication window).
    let mut session = streaming();
    let load =
        (readers > 0).then(|| spawn_load(session.snapshots(), readers, Arc::clone(&queries)));
    let uids = session.ingest(head);
    session.train(2).unwrap();
    session.retire(&uids[..uids.len() / 4]).unwrap();
    session.ingest(tail);
    session.train(2).unwrap();
    session.rotate_checkpoints(&dir, 2).unwrap();
    if let Some(load) = load {
        let served = load.finish();
        assert!(served > 0, "the load generator must actually serve queries");
        let stats = session.stats();
        assert_eq!(stats.queries_served, served);
        assert!(stats.snapshot_epoch >= 4, "one publication per iteration");
        assert!(stats.query_p50_ms <= stats.query_p99_ms);
        assert!(stats.query_qps > 0.0);
    }
    drop(session);

    // Leg 2: the process "dies", resumes from the rotated set, and serves
    // through the remaining schedule.
    let mut resumed = StreamingSession::resume(&dir, system()).unwrap();
    let load = (readers > 0).then(|| {
        // Publish before training so the resumed tier serves immediately.
        resumed.publish_snapshot().unwrap();
        spawn_load(resumed.snapshots(), readers, queries)
    });
    resumed.train(2).unwrap();
    if let Some(load) = load {
        assert!(load.finish() > 0);
    }
    resumed.validate().unwrap();

    let mut ckpt_bytes = Vec::new();
    resumed.to_checkpoint().write(&mut ckpt_bytes).unwrap();
    let _ = std::fs::remove_dir_all(&dir);
    (
        resumed.z_snapshot(),
        resumed.global_phi().as_slice().to_vec(),
        resumed.global_nk().to_vec(),
        ckpt_bytes,
    )
}

#[test]
fn concurrent_queries_never_perturb_training_bits() {
    let reference = cycle_artifacts(0, "ref");
    for readers in [1usize, 4] {
        let served = cycle_artifacts(readers, &format!("load{readers}"));
        assert_eq!(
            reference.0, served.0,
            "z diverged under {readers} query threads"
        );
        assert_eq!(
            reference.1, served.1,
            "φ diverged under {readers} query threads"
        );
        assert_eq!(
            reference.2, served.2,
            "n_k diverged under {readers} query threads"
        );
        assert_eq!(
            reference.3, served.3,
            "checkpoint bytes diverged under {readers} query threads"
        );
    }
}

#[test]
fn snapshot_tier_reports_latency_qps_and_epochs() {
    let corpus = fixtures::tiny(fixtures::FIXTURE_SEED);
    let docs = fixtures::documents_of(&corpus);
    let mut session = streaming();
    let handle = session.snapshots();
    let options = query_options(0);

    // Before any publication the tier declines, never panics.
    assert_eq!(
        handle.try_infer(&[0, 1], options).unwrap_err(),
        ServeError::NoSnapshot
    );

    session.ingest(&docs);
    session.train(1).unwrap();
    assert_eq!(handle.epoch(), 1);

    for _ in 0..10 {
        handle.try_infer(&docs[0].words, options).unwrap();
    }
    let batch: Vec<Vec<u32>> = docs.iter().take(6).map(|d| d.words.clone()).collect();
    let reply = handle.infer_batch(&batch, options).unwrap();
    assert_eq!(reply.epoch, 1);
    assert_eq!(reply.results.len(), 6);

    let stats = session.stats();
    assert_eq!(stats.queries_served, 16);
    assert_eq!(stats.snapshot_epoch, 1);
    assert!(stats.query_p50_ms <= stats.query_p99_ms);
    assert!(stats.query_qps > 0.0);

    // The handle surfaces the same numbers directly.
    let direct = handle.stats();
    assert_eq!(direct.queries, 16);
    assert_eq!(direct.epoch, 1);
}

#[test]
fn a_held_snapshot_survives_later_epochs() {
    // A reader that pinned a snapshot keeps a valid frozen model no matter
    // how many epochs the trainer publishes past it — the double buffer
    // never mutates a snapshot in place.
    let corpus = fixtures::tiny(fixtures::FIXTURE_SEED);
    let docs = fixtures::documents_of(&corpus);
    let mut session = streaming();
    let handle = session.snapshots();
    session.ingest(&docs);
    session.train(1).unwrap();

    let (epoch, pinned) = handle.snapshot().unwrap();
    assert_eq!(epoch, 1);
    let options = query_options(0);
    let before = pinned.try_infer_document(&docs[0].words, options).unwrap();

    session.train(5).unwrap();
    assert_eq!(handle.epoch(), 6);
    let after = pinned.try_infer_document(&docs[0].words, options).unwrap();
    assert_eq!(
        before, after,
        "a pinned snapshot must be immutable across publications"
    );
}
