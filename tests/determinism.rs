//! Bit-exact determinism: the same seed must produce the same topic
//! assignments — across repeated runs for every solver, and for the CuLDA
//! trainer across *different simulated GPU topologies* (the counter-based
//! sampling RNG is keyed by token identity, not by block or device).

use culda::baselines::{
    AliasLda, CpuCgs, CuLdaSolver, LdaSolver, LdaStar, LightLda, SaberLda, SolverState, SparseLda,
    WarpLda,
};
use culda::core::{LdaConfig, SessionBuilder};
use culda::gpusim::{DeviceSpec, Interconnect, MultiGpuSystem};
use culda_testkit::determinism::{assert_same_assignments, z_signature};
use culda_testkit::fixtures;

const K: usize = 8;
const SEED: u64 = 2019;
const ITERATIONS: usize = 5;

fn trained_culda(corpus: &culda::corpus::Corpus, gpus: usize, seed: u64) -> CuLdaSolver {
    let system = if gpus == 1 {
        MultiGpuSystem::single(DeviceSpec::v100_volta(), seed)
    } else {
        MultiGpuSystem::homogeneous(DeviceSpec::v100_volta(), gpus, seed, Interconnect::NvLink)
    };
    let mut trainer = SessionBuilder::new()
        .corpus(corpus)
        .config(LdaConfig::with_topics(K).seed(seed))
        .system(system)
        .build()
        .expect("trainer construction");
    trainer.train(ITERATIONS);
    CuLdaSolver::new(trainer, format!("CuLDA ({gpus} GPU)"))
}

#[test]
fn culda_same_seed_same_assignments_across_runs() {
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let a = trained_culda(&corpus, 1, SEED);
    let b = trained_culda(&corpus, 1, SEED);
    assert_same_assignments(&a, &b);
    assert_eq!(z_signature(&a), z_signature(&b));
}

#[test]
fn culda_assignments_are_identical_on_1_and_4_gpu_topologies() {
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let single = trained_culda(&corpus, 1, SEED);
    let quad = trained_culda(&corpus, 4, SEED);
    assert!(
        single.trainer().num_chunks() != quad.trainer().num_chunks(),
        "topologies must actually partition differently for this test to mean anything"
    );
    assert_same_assignments(&single, &quad);
    assert_eq!(z_signature(&single), z_signature(&quad));
}

#[test]
fn culda_streamed_schedule_matches_resident_schedule() {
    // Forcing M=3 chunks on one GPU switches to the streamed schedule
    // (WorkSchedule2); the arithmetic must not change, only the timing.
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let resident = trained_culda(&corpus, 1, SEED);
    let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), SEED);
    let mut streamed = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(K).seed(SEED).chunks_per_gpu(3))
        .system(system)
        .build()
        .expect("trainer construction");
    streamed.train(ITERATIONS);
    let streamed = CuLdaSolver::new(streamed, "CuLDA (streamed)");
    assert_same_assignments(&resident, &streamed);
}

#[test]
fn resume_is_bit_identical_to_uninterrupted_training() {
    // `train 7` and `train 4 → checkpoint → resume 3` must produce the same
    // assignments: the checkpoint carries the iteration counter, so the
    // counter-based RNG streams line up exactly across the resume.
    use culda::core::ModelCheckpoint;
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let straight = trained_culda(&corpus, 1, SEED); // ITERATIONS = 5

    let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), SEED);
    let mut first_leg = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(K).seed(SEED))
        .system(system)
        .build()
        .unwrap();
    first_leg.train(2);
    let ckpt = ModelCheckpoint::from_trainer(&first_leg);
    assert_eq!(ckpt.iterations, 2);

    let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), SEED);
    let mut resumed = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(K).seed(SEED))
        .system(system)
        .assignments(ckpt.z.clone().unwrap(), ckpt.iterations)
        .build()
        .unwrap();
    resumed.train(ITERATIONS - 2);
    assert_eq!(resumed.completed_iterations(), ITERATIONS as u64);
    let resumed = CuLdaSolver::new(resumed, "CuLDA (resumed)");
    assert_same_assignments(&straight, &resumed);
}

#[test]
fn different_seeds_actually_diverge() {
    let corpus = fixtures::medium(fixtures::FIXTURE_SEED);
    let a = trained_culda(&corpus, 1, SEED);
    let b = trained_culda(&corpus, 1, SEED + 1);
    assert_ne!(z_signature(&a), z_signature(&b));
}

#[test]
fn every_baseline_is_run_to_run_deterministic() {
    let corpus = fixtures::small(fixtures::FIXTURE_SEED);
    type Builder = fn(&culda::corpus::Corpus) -> Box<dyn DeterministicSolver>;
    let builders: Vec<(&str, Builder)> = vec![
        ("cpu_cgs", |c| {
            Box::new(CpuCgs::with_paper_priors(c, K, SEED))
        }),
        ("sparselda", |c| {
            Box::new(SparseLda::with_paper_priors(c, K, SEED))
        }),
        ("alias_lda", |c| {
            Box::new(AliasLda::with_paper_priors(c, K, SEED))
        }),
        ("lightlda", |c| {
            Box::new(LightLda::with_paper_priors(c, K, SEED))
        }),
        ("warplda", |c| {
            Box::new(WarpLda::with_paper_priors(c, K, SEED))
        }),
        ("saberlda", |c| {
            Box::new(SaberLda::on_gtx_1080(c, K, SEED).expect("saberlda"))
        }),
        ("lda_star", |c| Box::new(LdaStar::new(c, K, 8, SEED))),
    ];
    for (label, build) in builders {
        let mut a = build(&corpus);
        let mut b = build(&corpus);
        for _ in 0..ITERATIONS {
            a.run_iteration();
            b.run_iteration();
        }
        assert_eq!(
            z_signature(a.as_state()),
            z_signature(b.as_state()),
            "{label}: same seed produced different assignments"
        );
    }
}

/// Object-safe bundle of the two traits the determinism loop needs.
trait DeterministicSolver {
    fn run_iteration(&mut self) -> f64;
    fn as_state(&self) -> &dyn SolverState;
}

impl<T: LdaSolver + SolverState> DeterministicSolver for T {
    fn run_iteration(&mut self) -> f64 {
        LdaSolver::run_iteration(self)
    }
    fn as_state(&self) -> &dyn SolverState {
        self
    }
}
