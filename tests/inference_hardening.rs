//! Fold-in hardening acceptance (ISSUE 7): the serving path must be
//! panic-free on corrupt models, define exact semantics for degenerate
//! queries (all-OOV, empty), and stay bit-exact across thread counts under
//! the real-thread pool.

use culda::core::{InferenceError, InferenceOptions, LdaConfig, ModelCheckpoint, SessionBuilder};
use culda::corpus::DatasetProfile;
use culda::gpusim::{DeviceSpec, MultiGpuSystem};
use culda_testkit::fixtures;
use rayon::ThreadPoolBuilder;

const K: usize = 8;
const SEED: u64 = 2019;

fn trained_checkpoint() -> ModelCheckpoint {
    let corpus = fixtures::small(fixtures::FIXTURE_SEED);
    let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(K).seed(SEED))
        .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), SEED))
        .build()
        .unwrap();
    trainer.train(3);
    ModelCheckpoint::from_trainer(&trainer)
}

fn options() -> InferenceOptions {
    InferenceOptions {
        sweeps: 6,
        burn_in: 2,
        seed: 11,
    }
}

/// Run `op` with every parallel region pinned to `threads` OS threads.
fn with_threads<R: Send>(threads: usize, op: impl FnOnce() -> R + Send) -> R {
    ThreadPoolBuilder::new()
        .num_threads(threads)
        .build()
        .unwrap()
        .install(op)
}

fn thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut counts = vec![1, 2, max];
    counts.sort_unstable();
    counts.dedup();
    counts
}

#[test]
fn all_oov_and_empty_documents_get_the_uniform_mixture() {
    let ckpt = trained_checkpoint();
    let inferencer = ckpt.try_inferencer().unwrap();
    let v = inferencer.vocab_size() as u32;

    let empty = inferencer.try_infer_document(&[], options()).unwrap();
    let all_oov = inferencer
        .try_infer_document(&[v, v + 1, v + 1000], options())
        .unwrap();

    // OOV tokens are dropped before the chain, so an all-OOV query is
    // indistinguishable from an empty one: uniform mixture, zero counts.
    assert_eq!(empty, all_oov);
    assert!(empty.counts.iter().all(|&c| c == 0));
    let uniform = 1.0 / K as f64;
    assert!(
        empty.mixture.iter().all(|&p| p == uniform),
        "degenerate documents must get the exact uniform mixture: {:?}",
        empty.mixture
    );

    // OOV ids mixed into a real query contribute nothing: same result as
    // the query with them stripped.
    let real = [0u32, 1, 2, 1];
    let with_oov = [0u32, v + 3, 1, 2, v, 1];
    assert_eq!(
        inferencer.try_infer_document(&real, options()).unwrap(),
        inferencer.try_infer_document(&with_oov, options()).unwrap(),
        "OOV tokens must not shift counts or RNG draws"
    );
}

#[test]
fn corrupt_checkpoints_are_rejected_not_panicked() {
    // A negative topic total turns the smoothing denominator n_k + Vβ
    // non-positive — the exact corruption that used to NaN the weights and
    // panic the fold-in chain.
    let mut negative_nk = trained_checkpoint();
    negative_nk.nk[2] = -(negative_nk.nk[2] + 1_000_000);
    match negative_nk.try_inferencer().map(|_| ()) {
        Err(InferenceError::CorruptTopic { topic: 2, denom }) => assert!(denom <= 0.0),
        other => panic!("expected CorruptTopic, got {other:?}"),
    }

    // Non-finite priors.
    let mut nan_beta = trained_checkpoint();
    nan_beta.beta = f64::NAN;
    assert!(matches!(
        nan_beta.try_inferencer(),
        Err(InferenceError::InvalidPrior { .. })
    ));
    let mut zero_alpha = trained_checkpoint();
    zero_alpha.alpha = 0.0;
    assert!(matches!(
        zero_alpha.try_inferencer(),
        Err(InferenceError::InvalidPrior { .. })
    ));

    // φ / n_k shape disagreement.
    let mut truncated = trained_checkpoint();
    truncated.nk.pop();
    assert!(matches!(
        truncated.try_inferencer(),
        Err(InferenceError::ShapeMismatch { .. })
    ));
}

#[test]
fn invalid_options_and_vocab_mismatch_are_typed_errors() {
    let ckpt = trained_checkpoint();
    let inferencer = ckpt.try_inferencer().unwrap();

    let zero_sweeps = InferenceOptions {
        sweeps: 0,
        burn_in: 0,
        seed: 1,
    };
    assert!(matches!(
        inferencer.try_infer_document(&[0, 1], zero_sweeps),
        Err(InferenceError::InvalidOptions(_))
    ));

    // A corpus built against a different vocabulary is rejected with the
    // sizes spelled out, not asserted.
    let foreign = DatasetProfile {
        name: "foreign".into(),
        num_docs: 10,
        vocab_size: inferencer.vocab_size() + 7,
        avg_doc_len: 8.0,
        zipf_exponent: 1.05,
        doc_len_sigma: 0.4,
    }
    .generate(3);
    assert_ne!(foreign.vocab_size(), inferencer.vocab_size());
    match inferencer.try_infer_corpus(&foreign, options()) {
        Err(InferenceError::VocabMismatch { corpus, model }) => {
            assert_eq!(corpus, foreign.vocab_size());
            assert_eq!(model, inferencer.vocab_size());
        }
        other => panic!("expected VocabMismatch, got {other:?}"),
    }
}

#[test]
fn infer_corpus_is_bit_exact_across_thread_counts() {
    // `infer_corpus` fans documents out over the real thread pool; each
    // document's chain is seeded from its own id, so the mixtures must be
    // bit-identical no matter how many OS threads execute the fan-out.
    let ckpt = trained_checkpoint();
    let inferencer = ckpt.try_inferencer().unwrap();
    let corpus = fixtures::small(fixtures::FIXTURE_SEED);

    let bits = |docs: &[culda::core::DocumentTopics]| -> Vec<(Vec<u32>, Vec<u64>)> {
        docs.iter()
            .map(|d| {
                (
                    d.counts.clone(),
                    d.mixture.iter().map(|p| p.to_bits()).collect(),
                )
            })
            .collect()
    };

    let baseline = with_threads(1, || {
        bits(&inferencer.try_infer_corpus(&corpus, options()).unwrap())
    });
    for threads in thread_counts() {
        let run = with_threads(threads, || {
            bits(&inferencer.try_infer_corpus(&corpus, options()).unwrap())
        });
        assert_eq!(
            baseline, run,
            "corpus inference diverged at {threads} threads"
        );
    }
}
