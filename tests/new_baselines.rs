//! Integration tests for the extended baseline suite: SparseLDA and LightLDA
//! must converge to models of comparable quality to the exact serial CGS, and
//! the simulated CuLDA_CGS GPU trainer must out-run all CPU baselines —
//! the qualitative claim behind Table 4 and Figure 8.

use culda::baselines::{AliasLda, CpuCgs, CuLdaSolver, LdaSolver, LightLda, SparseLda, WarpLda};
use culda::core::{LdaConfig, SessionBuilder};
use culda::corpus::{Corpus, DatasetProfile};
use culda::gpusim::{DeviceSpec, MultiGpuSystem};

fn corpus() -> Corpus {
    DatasetProfile {
        name: "baseline-it".into(),
        num_docs: 400,
        vocab_size: 250,
        avg_doc_len: 40.0,
        zipf_exponent: 1.05,
        doc_len_sigma: 0.45,
    }
    .generate(19)
}

const TOPICS: usize = 16;
const ITERATIONS: usize = 25;

fn run(solver: &mut dyn LdaSolver, iterations: usize) -> (f64, f64) {
    for _ in 0..iterations {
        solver.run_iteration();
    }
    (solver.loglik_per_token(), solver.elapsed_s())
}

#[test]
fn every_sampler_reaches_comparable_model_quality() {
    let corpus = corpus();
    let mut exact = CpuCgs::with_paper_priors(&corpus, TOPICS, 3);
    let mut sparse = SparseLda::with_paper_priors(&corpus, TOPICS, 3);
    let mut light = LightLda::with_paper_priors(&corpus, TOPICS, 3);
    let mut warp = WarpLda::with_paper_priors(&corpus, TOPICS, 3);
    let mut alias = AliasLda::with_paper_priors(&corpus, TOPICS, 3);

    let initial = exact.loglik_per_token();
    let (ll_exact, _) = run(&mut exact, ITERATIONS);
    let (ll_sparse, _) = run(&mut sparse, ITERATIONS);
    let (ll_light, _) = run(&mut light, ITERATIONS);
    let (ll_warp, _) = run(&mut warp, ITERATIONS);
    let (ll_alias, _) = run(&mut alias, ITERATIONS);

    // Exact samplers (serial CGS, SparseLDA) must agree closely.  The MH
    // samplers (WarpLDA, LightLDA) target the same posterior but mix visibly
    // slower at the paper's large α = 50/K prior, so they get a wider band —
    // and must agree with *each other*, since they are the same family.
    assert!(
        ll_sparse > ll_exact - 0.15,
        "SparseLDA {ll_sparse:.3} vs exact {ll_exact:.3}"
    );
    for (name, ll) in [
        ("LightLDA", ll_light),
        ("WarpLDA", ll_warp),
        ("AliasLDA", ll_alias),
    ] {
        assert!(
            ll > ll_exact - 0.8,
            "{name} loglik {ll:.3} too far below exact CGS {ll_exact:.3}"
        );
        assert!(
            ll > initial + 0.5,
            "{name} barely improved over the random initialisation ({initial:.3} → {ll:.3})"
        );
        assert!(ll < 0.0, "{name} loglik {ll} should be negative");
    }
    assert!(
        (ll_light - ll_warp).abs() < 0.2,
        "MH samplers disagree: LightLDA {ll_light:.3} vs WarpLDA {ll_warp:.3}"
    );
}

#[test]
fn sparselda_is_exact_and_tracks_serial_cgs_closely() {
    // SparseLDA is an exact CGS sampler (no MH approximation), so its
    // trajectory should match serial CGS quality more tightly than the MH
    // samplers are required to.
    let corpus = corpus();
    let mut exact = CpuCgs::with_paper_priors(&corpus, TOPICS, 7);
    let mut sparse = SparseLda::with_paper_priors(&corpus, TOPICS, 7);
    let (ll_exact, _) = run(&mut exact, ITERATIONS);
    let (ll_sparse, _) = run(&mut sparse, ITERATIONS);
    assert!(
        (ll_sparse - ll_exact).abs() < 0.12,
        "SparseLDA {ll_sparse:.3} vs exact {ll_exact:.3}"
    );
}

#[test]
fn culda_outruns_every_cpu_baseline_in_simulated_throughput() {
    let corpus = corpus();
    let tokens = corpus.num_tokens() as f64;

    let trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(TOPICS).seed(5))
        .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 5))
        .build()
        .unwrap();
    let mut culda = CuLdaSolver::new(trainer, "CuLDA (Volta)");
    let mut sparse = SparseLda::with_paper_priors(&corpus, TOPICS, 5);
    let mut light = LightLda::with_paper_priors(&corpus, TOPICS, 5);
    let mut warp = WarpLda::with_paper_priors(&corpus, TOPICS, 5);

    let iters = 5;
    let (_, t_culda) = run(&mut culda, iters);
    let (_, t_sparse) = run(&mut sparse, iters);
    let (_, t_light) = run(&mut light, iters);
    let (_, t_warp) = run(&mut warp, iters);

    let tp = |t: f64| tokens * iters as f64 / t;
    let culda_tp = tp(t_culda);
    for (name, t) in [
        ("SparseLDA", t_sparse),
        ("LightLDA", t_light),
        ("WarpLDA", t_warp),
    ] {
        assert!(
            culda_tp > tp(t) * 1.5,
            "CuLDA {:.1}M tok/s should clearly beat {name} {:.1}M tok/s",
            culda_tp / 1e6,
            tp(t) / 1e6
        );
    }
}

#[test]
fn solver_names_identify_the_platform() {
    let corpus = corpus();
    let sparse = SparseLda::with_paper_priors(&corpus, 8, 1);
    let light = LightLda::with_paper_priors(&corpus, 8, 1);
    let alias = AliasLda::with_paper_priors(&corpus, 8, 1);
    assert!(sparse.name().contains("SparseLDA"));
    assert!(sparse.name().contains("Xeon"));
    assert!(light.name().contains("LightLDA"));
    assert!(alias.name().contains("AliasLDA"));
    assert_eq!(sparse.num_tokens(), corpus.num_tokens() as u64);
    assert_eq!(light.num_tokens(), corpus.num_tokens() as u64);
    assert_eq!(alias.num_tokens(), corpus.num_tokens() as u64);
}

#[test]
fn alias_lda_matches_the_other_mh_samplers_in_quality() {
    // AliasLDA targets the same posterior as LightLDA/WarpLDA via a different
    // proposal; after the same number of passes its model quality must land
    // in the same band.  Its exact sparse document term lets it mix at least
    // as fast as the cycle-proposal samplers, so it must not trail LightLDA.
    let corpus = corpus();
    let mut alias = AliasLda::with_paper_priors(&corpus, TOPICS, 11);
    let mut light = LightLda::with_paper_priors(&corpus, TOPICS, 11);
    let (ll_alias, t_alias) = run(&mut alias, ITERATIONS);
    let (ll_light, _) = run(&mut light, ITERATIONS);
    assert!(
        ll_alias > ll_light - 0.1,
        "AliasLDA {ll_alias:.3} should not trail LightLDA {ll_light:.3}"
    );
    assert!(
        (ll_alias - ll_light).abs() < 1.0,
        "AliasLDA {ll_alias:.3} vs LightLDA {ll_light:.3} diverged"
    );
    assert!(t_alias > 0.0);
}
