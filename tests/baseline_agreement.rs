//! Agreement between the solver families: all correct LDA samplers must end
//! up at comparable model quality on the same corpus, while their (simulated)
//! costs differ in the direction the paper reports.

use culda::baselines::{CpuCgs, CuLdaSolver, LdaSolver, LdaStar, SaberLda, WarpLda};
use culda::core::{LdaConfig, SessionBuilder};
use culda::corpus::LdaGenerator;
use culda::gpusim::{DeviceSpec, MultiGpuSystem};

#[test]
fn all_solvers_reach_similar_quality_on_a_planted_corpus() {
    let (corpus, _) = LdaGenerator::small(4, 120, 250, 25.0).generate(17);
    let k = 4;
    // Delayed-update samplers (the CuLDA family) trade per-iteration mixing
    // for parallel throughput: one iteration samples every token against the
    // previous iteration's counts, so they need more sweeps than sequential
    // CGS to reach the same quality (the paper's Figure 8 compares solvers
    // against *time*, not iterations).  60 sweeps is past the knee for every
    // family on this corpus.
    let iterations = 60;

    let mut solvers: Vec<Box<dyn LdaSolver>> = vec![
        Box::new(CuLdaSolver::new(
            SessionBuilder::new()
                .corpus(&corpus)
                .config(LdaConfig::with_topics(k).seed(17))
                .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 17))
                .build()
                .unwrap(),
            "CuLDA",
        )),
        Box::new(CpuCgs::with_paper_priors(&corpus, k, 17)),
        Box::new(WarpLda::with_paper_priors(&corpus, k, 17)),
        Box::new(SaberLda::on_gtx_1080(&corpus, k, 17).unwrap()),
        Box::new(LdaStar::new(&corpus, k, 8, 17)),
    ];

    let mut finals = Vec::new();
    for solver in &mut solvers {
        for _ in 0..iterations {
            solver.run_iteration();
        }
        finals.push((solver.name(), solver.loglik_per_token()));
    }
    let best = finals
        .iter()
        .map(|&(_, ll)| ll)
        .fold(f64::NEG_INFINITY, f64::max);
    for (name, ll) in &finals {
        assert!(
            best - ll < 0.25,
            "{name} ended at {ll:.4}, more than 0.25 nats/token behind the best ({best:.4})"
        );
    }
}

#[test]
fn simulated_costs_order_as_in_the_paper() {
    // CuLDA on Volta < SaberLDA-style on GTX 1080 < WarpLDA on the Xeon, and
    // the Ethernet-bound distributed baseline is the slowest per unit work.
    let (corpus, _) = LdaGenerator::small(8, 400, 600, 60.0).generate(23);
    let k = 64;
    let iterations = 4;

    let time_of = |mut solver: Box<dyn LdaSolver>| {
        for _ in 0..iterations {
            solver.run_iteration();
        }
        solver.elapsed_s()
    };

    let culda = time_of(Box::new(CuLdaSolver::new(
        SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(k).seed(23))
            .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 23))
            .build()
            .unwrap(),
        "CuLDA (V100)",
    )));
    let saber = time_of(Box::new(SaberLda::on_gtx_1080(&corpus, k, 23).unwrap()));
    let warp = time_of(Box::new(WarpLda::with_paper_priors(&corpus, k, 23)));

    assert!(
        culda < saber,
        "CuLDA {culda:.3e} should beat SaberLDA-style {saber:.3e}"
    );
    assert!(
        saber < warp,
        "GPU baseline {saber:.3e} should beat CPU WarpLDA {warp:.3e}"
    );
}
