//! Cross-crate property tests: for arbitrary corpora and configurations the
//! pipeline must preserve its conservation laws.

use culda::core::{LdaConfig, SessionBuilder};
use culda::corpus::{Corpus, CorpusBuilder, Partitioner};
use culda::gpusim::{DeviceSpec, Interconnect, MultiGpuSystem};
use proptest::prelude::*;

/// An arbitrary small corpus: up to 40 documents over a vocabulary of up to
/// 30 words, each document up to 30 tokens.
fn arb_corpus() -> impl Strategy<Value = Corpus> {
    (2usize..30).prop_flat_map(|vocab| {
        prop::collection::vec(prop::collection::vec(0u32..vocab as u32, 0..30), 1..40).prop_map(
            move |docs| {
                let mut b = CorpusBuilder::new(vocab);
                for doc in &docs {
                    b.push_doc(doc);
                }
                b.build()
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        failure_persistence: FileFailurePersistence::WithSource("proptest-regressions"),
        ..ProptestConfig::default()
    })]

    /// Partitioning never loses or duplicates tokens, for any chunk count.
    #[test]
    fn partitioning_conserves_tokens(corpus in arb_corpus(), chunks in 1usize..9) {
        let partitioner = Partitioner::by_tokens(&corpus, chunks);
        let total: u64 = partitioner.tokens_per_chunk().iter().sum();
        prop_assert_eq!(total, corpus.num_tokens() as u64);
        let layouts = partitioner.build_layouts(&corpus);
        let layout_total: usize = layouts.iter().map(|l| l.num_tokens()).sum();
        prop_assert_eq!(layout_total, corpus.num_tokens());
        for l in &layouts {
            prop_assert!(l.validate().is_ok());
        }
    }

    /// After any number of training iterations on any GPU count, every count
    /// matrix still sums to the corpus token count and the likelihood is a
    /// finite negative number.
    #[test]
    fn training_preserves_conservation_laws(
        corpus in arb_corpus(),
        k in 2usize..12,
        gpus in 1usize..4,
        iterations in 0usize..4,
        seed in 0u64..1000,
    ) {
        prop_assume!(corpus.num_tokens() > 0);
        let system = MultiGpuSystem::homogeneous(
            DeviceSpec::titan_x_maxwell(),
            gpus,
            seed,
            Interconnect::Pcie3,
        );
        let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(k).seed(seed))
        .system(system)
        .build().unwrap();
        for _ in 0..iterations {
            trainer.run_iteration();
        }
        prop_assert!(trainer.validate().is_ok());
        let cfg = trainer.config();
        let ll = culda::metrics::log_likelihood(
            &trainer.merged_theta(),
            &trainer.global_phi(),
            &trainer.global_nk(),
            cfg.alpha,
            cfg.beta,
        );
        prop_assert!(ll.total().is_finite());
        prop_assert!(ll.total() < 0.0);
        prop_assert_eq!(ll.num_tokens, corpus.num_tokens() as u64);
        // Simulated time must be positive once an iteration has run.
        if iterations > 0 {
            prop_assert!(trainer.sim_time_s() > 0.0);
        }
    }

    /// The UCI bag-of-words round trip preserves per-document word counts for
    /// arbitrary corpora.
    #[test]
    fn bow_round_trip(corpus in arb_corpus()) {
        let mut buf = Vec::new();
        culda::corpus::bow::write_bow(&corpus, &mut buf).unwrap();
        let parsed = culda::corpus::bow::read_bow(buf.as_slice()).unwrap();
        prop_assert_eq!(parsed.num_docs(), corpus.num_docs());
        prop_assert_eq!(parsed.num_tokens(), corpus.num_tokens());
        prop_assert_eq!(parsed.word_frequencies(), corpus.word_frequencies());
    }
}
