//! Integration tests spanning the corpus pipeline (text ingestion, snapshots,
//! holdout splits), the interconnect topology models and the scaling
//! bookkeeping used for Figure 9.

use culda::core::{LdaConfig, ScheduleKind, SessionBuilder};
use culda::corpus::text::{PruneOptions, TextPipeline, TokenizerOptions};
use culda::corpus::{load_corpus, save_corpus, DatasetProfile};
use culda::gpusim::{DeviceSpec, Interconnect, MultiGpuSystem, Topology};
use culda::metrics::coherence::top_words;
use culda::metrics::ScalingSeries;

#[test]
fn raw_text_trains_into_interpretable_topics_end_to_end() {
    // Two well-separated themes: animal documents and arithmetic documents.
    let animal = [
        "cat dog horse cow sheep goat",
        "dog cat bird fish horse",
        "cow sheep goat horse dog cat",
        "bird fish cat dog cow",
    ];
    let math = [
        "add subtract multiply divide number",
        "number add multiply integer fraction",
        "divide fraction integer number subtract",
        "multiply add integer fraction divide",
    ];
    let mut pipeline = TextPipeline::new(TokenizerOptions {
        min_token_len: 2,
        remove_stopwords: false,
        ..TokenizerOptions::default()
    })
    .with_pruning(PruneOptions::default());
    for doc in animal.iter().chain(math.iter()).cycle().take(80) {
        pipeline.ingest(doc);
    }
    let (corpus, vocab) = pipeline.build();
    assert_eq!(corpus.num_docs(), 80);

    let mut config = LdaConfig::with_topics(2).seed(2);
    config.alpha = 0.1;
    let system = MultiGpuSystem::single(DeviceSpec::titan_x_maxwell(), 2);
    let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(config)
        .system(system)
        .build()
        .unwrap();
    trainer.train(150);
    trainer.validate().unwrap();

    // Each learned topic's top words should stay within one theme.
    let phi = trainer.global_phi();
    let animal_words: Vec<u32> = [
        "cat", "dog", "horse", "cow", "sheep", "goat", "bird", "fish",
    ]
    .iter()
    .filter_map(|w| vocab.id(w))
    .collect();
    let mut purities = Vec::new();
    for k in 0..2 {
        let top = top_words(&phi, k, 5);
        let animal_hits = top.iter().filter(|w| animal_words.contains(w)).count();
        purities.push(animal_hits);
    }
    purities.sort_unstable();
    assert_eq!(
        purities[0], 0,
        "one topic should be purely arithmetic: {purities:?}"
    );
    assert_eq!(
        purities[1], 5,
        "one topic should be purely animals: {purities:?}"
    );
}

#[test]
fn corpus_snapshot_roundtrips_through_disk_and_trains_identically() {
    let corpus = DatasetProfile::nytimes()
        .scaled_to_tokens(30_000)
        .generate(13);
    let path = std::env::temp_dir().join("culda_it_corpus.cldc");
    save_corpus(&corpus, &path).unwrap();
    let reloaded = load_corpus(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded, corpus);

    // Identical corpora + identical seeds ⇒ identical training trajectories.
    let run = |c: &culda::corpus::Corpus| {
        let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), 21);
        let mut t = SessionBuilder::new()
            .corpus(c)
            .config(LdaConfig::with_topics(16).seed(21))
            .system(system)
            .build()
            .unwrap();
        t.train(3);
        t.global_phi()
    };
    assert_eq!(run(&corpus), run(&reloaded));
}

#[test]
fn forced_streaming_matches_resident_training_statistically() {
    // The streaming schedule (M > 1) must preserve every count invariant and
    // reach a similar likelihood to the resident schedule — it only changes
    // *where* chunks live, not the sampling math.
    let corpus = DatasetProfile::nytimes()
        .scaled_to_tokens(40_000)
        .generate(8);
    let loglik_of = |chunks_per_gpu: Option<usize>| {
        let system = MultiGpuSystem::single(DeviceSpec::titan_xp_pascal(), 8);
        let mut config = LdaConfig::with_topics(16).seed(8);
        if let Some(m) = chunks_per_gpu {
            config = config.chunks_per_gpu(m);
        }
        let mut t = SessionBuilder::new()
            .corpus(&corpus)
            .config(config)
            .system(system)
            .build()
            .unwrap();
        if chunks_per_gpu.is_some() {
            assert!(matches!(t.schedule(), ScheduleKind::Streamed { .. }));
        }
        t.train(15);
        t.validate().unwrap();
        let cfg = t.config().clone();
        culda::metrics::log_likelihood(
            &t.merged_theta(),
            &t.global_phi(),
            &t.global_nk(),
            cfg.alpha,
            cfg.beta,
        )
        .per_token()
    };
    let resident = loglik_of(None);
    let streamed = loglik_of(Some(4));
    assert!(
        (resident - streamed).abs() < 0.15,
        "resident {resident:.3} vs streamed {streamed:.3}"
    );
}

#[test]
fn multi_gpu_scaling_series_matches_figure9_shape() {
    // Train the same corpus on 1, 2 and 4 simulated Pascal GPUs and feed the
    // measured throughputs into the ScalingSeries bookkeeping; the speedups
    // must be sub-linear but substantial, as Figure 9 reports.
    // The laptop-scale corpus makes the φ synchronization proportionally far
    // more expensive than at the paper's 738M-token scale, so this test runs
    // the sweep on NVLink (where sync is not the bottleneck) and only checks
    // the qualitative shape; the PCIe Figure 9 reproduction — with its 4×
    // token budget restoring the paper's compute-to-sync ratio — lives in the
    // Figure 9 bench.
    let corpus = DatasetProfile::pubmed()
        .scaled_to_tokens(250_000)
        .generate(6);
    let mut series = ScalingSeries::new();
    for &gpus in &[1usize, 2, 4] {
        let system = MultiGpuSystem::homogeneous(
            DeviceSpec::titan_xp_pascal(),
            gpus,
            6,
            Interconnect::NvLink,
        );
        let mut t = SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(64).seed(6))
            .system(system)
            .build()
            .unwrap();
        t.train(8);
        series.push(gpus, t.average_throughput(8));
    }
    let s2 = series.speedup_at(2).unwrap();
    let s4 = series.speedup_at(4).unwrap();
    assert!(s2 > 1.4 && s2 <= 2.05, "2-GPU speedup {s2:.2}");
    assert!(s4 > 1.8 && s4 <= 4.05, "4-GPU speedup {s4:.2}");
    assert!(s4 > s2);
    let serial = series.amdahl_serial_fraction().unwrap();
    assert!((0.0..0.5).contains(&serial), "serial fraction {serial:.3}");
}

#[test]
fn topology_models_agree_with_the_papers_interconnect_argument() {
    // §3.2: NVLink ≫ PCIe ≫ 10 GbE.  The φ replica of a K=1024, V=100k model
    // at 16-bit precision is ~200 MB; sync times must order accordingly.
    let phi_bytes: u64 = 1024 * 100_000 * 2;
    let add_bw = 500.0e9;
    let pcie = Topology::PcieTree.tree_sync_time_s(4, phi_bytes, add_bw);
    let nvlink = Topology::NvLinkMesh.tree_sync_time_s(4, phi_bytes, add_bw);
    let ethernet = Topology::Uniform {
        link: Interconnect::Ethernet10G,
        shared: true,
    }
    .tree_sync_time_s(4, phi_bytes, add_bw);
    assert!(nvlink < pcie && pcie < ethernet);
    // The Ethernet sync alone costs on the order of seconds, which is the
    // whole reason LDA* is network bound.
    assert!(ethernet > 1.0, "ethernet sync {ethernet:.2}s");
    assert!(pcie < 0.5, "pcie sync {pcie:.3}s");
}
