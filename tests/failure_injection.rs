//! Failure-injection tests for the on-disk formats.
//!
//! Corpus snapshots (`CLDC`) and model checkpoints (`CLDM`) are the two
//! artefacts a production pipeline stores and reloads; a corrupted or
//! truncated file — or one whose header advertises absurd sizes — must come
//! back as a structured error, never as a panic, an abort on allocation, or a
//! silently wrong model.

use culda::core::checkpoint::{self, CheckpointError, ModelCheckpoint};
use culda::core::{LdaConfig, SessionBuilder};
use culda::corpus::snapshot::{self, read_corpus, write_corpus, SnapshotError};
use culda::corpus::DatasetProfile;
use culda::gpusim::{DeviceSpec, MultiGpuSystem};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn snapshot_bytes() -> Vec<u8> {
    let corpus = DatasetProfile {
        name: "inject".into(),
        num_docs: 60,
        vocab_size: 40,
        avg_doc_len: 12.0,
        zipf_exponent: 1.0,
        doc_len_sigma: 0.4,
    }
    .generate(5);
    let mut buf = Vec::new();
    write_corpus(&corpus, &mut buf).unwrap();
    buf
}

fn checkpoint_bytes() -> Vec<u8> {
    let corpus = DatasetProfile {
        name: "inject".into(),
        num_docs: 50,
        vocab_size: 30,
        avg_doc_len: 10.0,
        zipf_exponent: 1.0,
        doc_len_sigma: 0.4,
    }
    .generate(6);
    let mut trainer = SessionBuilder::new()
        .corpus(&corpus)
        .config(LdaConfig::with_topics(8).seed(6))
        .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 6))
        .build()
        .unwrap();
    trainer.train(3);
    let ckpt = ModelCheckpoint::from_trainer(&trainer);
    let mut buf = Vec::new();
    ckpt.write(&mut buf).unwrap();
    buf
}

/// Overwrite the little-endian u64 at byte `offset`.
fn patch_u64(bytes: &mut [u8], offset: usize, value: u64) {
    bytes[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
}

// Snapshot layout: magic(4) version(4) vocab(8) docs(8) tokens(8) doc_ptr...
const SNAP_VOCAB_OFF: usize = 8;
const SNAP_DOCS_OFF: usize = 16;
const SNAP_TOKENS_OFF: usize = 24;

// Checkpoint layout: magic(4) version(4) K(8) V(8) D(8) alpha(8) beta(8) ...
const CKPT_K_OFF: usize = 8;
const CKPT_V_OFF: usize = 16;
const CKPT_D_OFF: usize = 24;
const CKPT_ALPHA_OFF: usize = 32;

#[test]
fn snapshot_with_absurd_document_count_fails_cleanly() {
    let mut bytes = snapshot_bytes();
    patch_u64(&mut bytes, SNAP_DOCS_OFF, u64::MAX);
    match read_corpus(&bytes[..]) {
        Err(SnapshotError::Io(_)) | Err(SnapshotError::Corrupt(_)) => {}
        other => panic!("expected a clean error, got {other:?}"),
    }
}

#[test]
fn snapshot_with_absurd_token_count_fails_cleanly() {
    let mut bytes = snapshot_bytes();
    patch_u64(&mut bytes, SNAP_TOKENS_OFF, u64::MAX / 2);
    match read_corpus(&bytes[..]) {
        Err(SnapshotError::Io(_)) | Err(SnapshotError::Corrupt(_)) => {}
        other => panic!("expected a clean error, got {other:?}"),
    }
}

#[test]
fn snapshot_with_shrunk_vocabulary_reports_out_of_range_words() {
    let mut bytes = snapshot_bytes();
    // Claim a vocabulary of one word; the token stream then contains ids
    // outside the advertised range.
    patch_u64(&mut bytes, SNAP_VOCAB_OFF, 1);
    match read_corpus(&bytes[..]) {
        Err(SnapshotError::Corrupt(msg)) => assert!(msg.contains("out of range")),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn snapshot_truncated_at_every_prefix_never_panics() {
    let bytes = snapshot_bytes();
    // Every strict prefix must fail (or, for prefixes that happen to end on a
    // document boundary of a shorter corpus, at least not panic).
    for len in 0..bytes.len().min(256) {
        let _ = read_corpus(&bytes[..len]);
    }
    for len in (0..bytes.len()).step_by(61) {
        let _ = read_corpus(&bytes[..len]);
    }
    // The full buffer still parses.
    assert!(read_corpus(&bytes[..]).is_ok());
}

#[test]
fn snapshot_random_byte_soup_never_panics() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    for trial in 0..200 {
        let len = (trial * 7) % 96;
        let soup: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        assert!(read_corpus(&soup[..]).is_err());
    }
    // Byte soup behind a valid magic + version header.
    let mut prefixed = Vec::new();
    prefixed.extend_from_slice(snapshot::MAGIC);
    prefixed.extend_from_slice(&snapshot::VERSION.to_le_bytes());
    for _ in 0..256 {
        prefixed.push(rng.gen());
    }
    assert!(read_corpus(&prefixed[..]).is_err());
}

#[test]
fn checkpoint_with_overflowing_model_shape_is_corrupt() {
    let mut bytes = checkpoint_bytes();
    patch_u64(&mut bytes, CKPT_K_OFF, u64::MAX / 2);
    patch_u64(&mut bytes, CKPT_V_OFF, 1 << 40);
    match ModelCheckpoint::read(&bytes[..]) {
        Err(CheckpointError::Corrupt(msg)) => assert!(msg.contains("overflows")),
        Err(CheckpointError::Io(_)) => {}
        other => panic!("expected a clean error, got {other:?}"),
    }
}

#[test]
fn checkpoint_with_absurd_document_count_fails_cleanly() {
    let mut bytes = checkpoint_bytes();
    patch_u64(&mut bytes, CKPT_D_OFF, u64::MAX - 7);
    match ModelCheckpoint::read(&bytes[..]) {
        Err(CheckpointError::Io(_)) | Err(CheckpointError::Corrupt(_)) => {}
        other => panic!("expected a clean error, got {other:?}"),
    }
}

#[test]
fn checkpoint_with_non_positive_prior_is_rejected_by_validation() {
    let mut bytes = checkpoint_bytes();
    bytes[CKPT_ALPHA_OFF..CKPT_ALPHA_OFF + 8].copy_from_slice(&(-1.0f64).to_le_bytes());
    match ModelCheckpoint::read(&bytes[..]) {
        Err(CheckpointError::Corrupt(msg)) => assert!(msg.contains("prior")),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}

#[test]
fn checkpoint_count_bit_flip_is_caught_by_validation() {
    let bytes = checkpoint_bytes();
    // Flip one φ count somewhere in the middle of the dense block; the n_k /
    // φ-row-sum cross-check must notice the inconsistency.
    let mut flipped = bytes.clone();
    let phi_start = 48 + 8 * 8; // 48-byte header + nk (K = 8 topics × 8 bytes)
    flipped[phi_start + 17] ^= 0x01;
    match ModelCheckpoint::read(&flipped[..]) {
        Err(CheckpointError::Corrupt(_)) => {}
        Ok(_) => panic!("bit flip in φ counts went unnoticed"),
        other => panic!("expected Corrupt, got {other:?}"),
    }
    // The pristine buffer still parses and validates.
    assert!(ModelCheckpoint::read(&bytes[..]).is_ok());
}

#[test]
fn checkpoint_truncated_and_random_soup_never_panic() {
    let bytes = checkpoint_bytes();
    for len in (0..bytes.len()).step_by(97) {
        assert!(ModelCheckpoint::read(&bytes[..len]).is_err());
    }
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    for _ in 0..100 {
        let len = rng.gen_range(0..128);
        let mut soup: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
        // Half the trials get a valid magic so the parser goes deeper.
        if rng.gen::<bool>() && soup.len() >= 8 {
            soup[..4].copy_from_slice(checkpoint::MAGIC);
            soup[4..8].copy_from_slice(&checkpoint::VERSION.to_le_bytes());
        }
        assert!(ModelCheckpoint::read(&soup[..]).is_err());
    }
}
