//! Regeneration of Figures 7, 8 and 9.

use crate::datasets::{self, Dataset};
use crate::scale::ExperimentScale;
use crate::tables::gpu_platforms;
use culda_baselines::{CuLdaSolver, LdaSolver, LdaStar, SaberLda, WarpLda};
use culda_core::{CuLdaTrainer, LdaConfig, SamplerStrategy, SessionBuilder};
use culda_gpusim::{ClusterSystem, DeviceSpec, Interconnect, MultiGpuSystem};
use culda_metrics::{ConvergencePoint, ThroughputSeries, Timeline};
use serde::{Deserialize, Serialize};

fn culda_trainer(
    dataset: &Dataset,
    spec: DeviceSpec,
    gpus: usize,
    scale: &ExperimentScale,
) -> CuLdaTrainer {
    let system = MultiGpuSystem::homogeneous(spec, gpus, scale.seed, Interconnect::Pcie3);
    SessionBuilder::new()
        .corpus(&dataset.corpus)
        .config(
            LdaConfig::with_topics(scale.num_topics)
                .seed(scale.seed)
                .sync_shards(1),
        )
        .system(system)
        .build()
        .expect("trainer construction")
}

/// Figure 7: per-iteration sampling speed of CuLDA on the three platforms
/// plus WarpLDA, for one dataset.
pub fn figure7_dataset(dataset: &Dataset, scale: &ExperimentScale) -> Vec<ThroughputSeries> {
    let tokens = dataset.corpus.num_tokens() as u64;
    let mut series = Vec::new();
    for spec in gpu_platforms() {
        let label = spec.name.clone();
        let mut trainer = culda_trainer(dataset, spec, 1, scale);
        let mut s = ThroughputSeries::new(label, tokens);
        for _ in 0..scale.iterations {
            let it = trainer.run_iteration();
            s.push_iteration(it.sim_time_s);
        }
        series.push(s);
    }
    let mut warp = WarpLda::with_paper_priors(&dataset.corpus, scale.num_topics, scale.seed);
    let mut s = ThroughputSeries::new("WarpLDA (CPU)", tokens);
    for _ in 0..scale.iterations {
        s.push_iteration(warp.run_iteration());
    }
    series.push(s);
    series
}

/// Figure 7 for both datasets, in the paper's order (NYTimes, PubMed).
pub fn figure7(scale: &ExperimentScale) -> Vec<(String, Vec<ThroughputSeries>)> {
    datasets::both(scale)
        .iter()
        .map(|d| (d.name.clone(), figure7_dataset(d, scale)))
        .collect()
}

/// Render one Figure 7 panel as an aligned text table (iterations × series).
pub fn figure7_text(dataset: &str, series: &[ThroughputSeries]) -> String {
    let mut out = format!("Figure 7 ({dataset}): sampling speed, MTokens/sec per iteration\n");
    out.push_str(&format!("{:<6}", "iter"));
    for s in series {
        out.push_str(&format!(" {:>24}", s.label));
    }
    out.push('\n');
    let n = series.iter().map(|s| s.len()).min().unwrap_or(0);
    for i in 0..n {
        out.push_str(&format!("{i:<6}"));
        for s in series {
            out.push_str(&format!(" {:>24.1}", s.iteration_throughput(i) / 1e6));
        }
        out.push('\n');
    }
    out
}

/// Figure 8: log-likelihood per token against simulated wall-clock time for
/// every solver on one dataset.  `include_lda_star` matches the paper, which
/// only shows LDA* on PubMed.
pub fn figure8_dataset(
    dataset: &Dataset,
    scale: &ExperimentScale,
    include_lda_star: bool,
) -> Vec<Timeline> {
    let mut solvers: Vec<Box<dyn LdaSolver>> = Vec::new();
    for spec in gpu_platforms() {
        let label = format!("CuLDA_CGS ({})", spec.name);
        solvers.push(Box::new(CuLdaSolver::new(
            culda_trainer(dataset, spec, 1, scale),
            label,
        )));
    }
    // The alias-hybrid sampler kernel as its own solver line (the ROADMAP's
    // alias-table speed item): same trainer machinery, `AliasHybrid`
    // strategy, on the Volta platform.
    let alias_trainer = SessionBuilder::new()
        .corpus(&dataset.corpus)
        .config(
            LdaConfig::with_topics(scale.num_topics)
                .seed(scale.seed)
                .sync_shards(1)
                .sampler(SamplerStrategy::alias_hybrid()),
        )
        .system(MultiGpuSystem::homogeneous(
            DeviceSpec::v100_volta(),
            1,
            scale.seed,
            Interconnect::Pcie3,
        ))
        .build()
        .expect("alias trainer construction");
    solvers.push(Box::new(CuLdaSolver::new(alias_trainer, "CuLDA(alias)")));
    // The LightLDA-style MH portfolio member, same platform and scale.
    let light_trainer = SessionBuilder::new()
        .corpus(&dataset.corpus)
        .config(
            LdaConfig::with_topics(scale.num_topics)
                .seed(scale.seed)
                .sync_shards(1)
                .sampler(SamplerStrategy::light_lda()),
        )
        .system(MultiGpuSystem::homogeneous(
            DeviceSpec::v100_volta(),
            1,
            scale.seed,
            Interconnect::Pcie3,
        ))
        .build()
        .expect("light trainer construction");
    solvers.push(Box::new(CuLdaSolver::new(light_trainer, "CuLDA(light)")));
    solvers.push(Box::new(WarpLda::with_paper_priors(
        &dataset.corpus,
        scale.num_topics,
        scale.seed,
    )));
    solvers.push(Box::new(
        SaberLda::on_gtx_1080(&dataset.corpus, scale.num_topics, scale.seed)
            .expect("SaberLDA baseline construction"),
    ));
    if include_lda_star {
        solvers.push(Box::new(LdaStar::new(
            &dataset.corpus,
            scale.num_topics,
            20,
            scale.seed,
        )));
    }

    solvers
        .into_iter()
        .map(|mut solver| {
            let mut timeline = Timeline::new(solver.name());
            timeline.push(ConvergencePoint {
                time_s: 0.0,
                iteration: 0,
                loglik_per_token: solver.loglik_per_token(),
            });
            for i in 0..scale.iterations {
                solver.run_iteration();
                timeline.push(ConvergencePoint {
                    time_s: solver.elapsed_s(),
                    iteration: i as u32 + 1,
                    loglik_per_token: solver.loglik_per_token(),
                });
            }
            timeline
        })
        .collect()
}

/// Figure 8 for both datasets (LDA* only on PubMed, as in the paper).
pub fn figure8(scale: &ExperimentScale) -> Vec<(String, Vec<Timeline>)> {
    let ds = datasets::both(scale);
    ds.iter()
        .map(|d| {
            let include_lda_star = d.name == "PubMed";
            (d.name.clone(), figure8_dataset(d, scale, include_lda_star))
        })
        .collect()
}

/// Render one Figure 8 panel: final quality and the time each solver needed
/// to reach a common quality target (0.2 nats/token short of the best final
/// quality any solver achieved — the "time to quality" reading of Figure 8).
pub fn figure8_text(dataset: &str, timelines: &[Timeline]) -> String {
    let best_final = timelines
        .iter()
        .filter_map(|t| t.points().last().map(|p| p.loglik_per_token))
        .fold(f64::NEG_INFINITY, f64::max);
    let target = best_final - 0.2;
    let mut out = format!("Figure 8 ({dataset}): log-likelihood per token vs simulated time\n");
    out.push_str(&format!(
        "{:<36} {:>12} {:>14} {:>20}\n",
        "Solver",
        "time (s)",
        "final LL/token",
        format!("time to {target:.2} (s)")
    ));
    for t in timelines {
        let last = t.points().last().copied();
        let (time, ll) = last
            .map(|p| (p.time_s, p.loglik_per_token))
            .unwrap_or((0.0, 0.0));
        let reach = t
            .time_to_reach(target)
            .map(|x| format!("{x:.4}"))
            .unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "{:<36} {:>12.4} {:>14.4} {:>20}\n",
            t.label, time, ll, reach
        ));
    }
    out
}

/// Figure 9: multi-GPU scaling on the PubMed twin, Pascal platform.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalingResult {
    /// GPU counts evaluated (1, 2, 4 as in the paper).
    pub gpu_counts: Vec<usize>,
    /// Average tokens/sec at each GPU count.
    pub tokens_per_sec: Vec<f64>,
    /// Speedup relative to one GPU.
    pub speedups: Vec<f64>,
    /// Per-iteration throughput series at each GPU count (Figure 9a).
    pub series: Vec<ThroughputSeries>,
}

/// Figure 9: run the PubMed twin on 1, 2 and 4 Pascal GPUs.
///
/// The token budget is multiplied by 4 relative to `scale`: the φ
/// synchronization volume (`K × V`) does not shrink as fast as the corpus
/// when scaling the experiment down, so a larger per-GPU compute share is
/// needed to preserve the full-size dataset's compute-to-synchronization
/// ratio — the quantity the paper's 1.93×/2.99× scaling figures depend on.
pub fn figure9(scale: &ExperimentScale) -> ScalingResult {
    let mut scale = *scale;
    scale.tokens *= 4;
    let scale = &scale;
    let dataset = datasets::pubmed(scale);
    let gpu_counts = vec![1usize, 2, 4];
    let mut tokens_per_sec = Vec::new();
    let mut series = Vec::new();
    for &g in &gpu_counts {
        let mut trainer = culda_trainer(&dataset, DeviceSpec::titan_xp_pascal(), g, scale);
        let mut s = ThroughputSeries::new(format!("GPU*{g}"), dataset.corpus.num_tokens() as u64);
        for _ in 0..scale.iterations {
            let it = trainer.run_iteration();
            s.push_iteration(it.sim_time_s);
        }
        tokens_per_sec.push(trainer.average_throughput(scale.iterations));
        series.push(s);
    }
    let base = tokens_per_sec[0];
    let speedups = tokens_per_sec.iter().map(|&t| t / base).collect();
    ScalingResult {
        gpu_counts,
        tokens_per_sec,
        speedups,
        series,
    }
}

/// Render Figure 9 as text.
pub fn figure9_text(result: &ScalingResult) -> String {
    let mut out =
        String::from("Figure 9: multi-GPU scalability on PubMed (Pascal platform, simulated)\n");
    out.push_str(&format!(
        "{:<8} {:>16} {:>10}\n",
        "#GPUs", "MTokens/sec", "Speedup"
    ));
    for i in 0..result.gpu_counts.len() {
        out.push_str(&format!(
            "{:<8} {:>16.1} {:>9.2}x\n",
            result.gpu_counts[i],
            result.tokens_per_sec[i] / 1e6,
            result.speedups[i]
        ));
    }
    out.push_str("Paper: 1.93x on 2 GPUs, 2.99x on 4 GPUs\n");
    out
}

/// Cluster scaling (LDA*-style): the PubMed twin on 1 → 8 nodes of Pascal
/// GPUs joined by a 10 GbE fabric, hierarchical two-tier φ sync against the
/// flat all-device collective.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClusterScalingResult {
    /// Node counts evaluated (1, 2, 4, 8).
    pub node_counts: Vec<usize>,
    /// GPUs inside every node.
    pub gpus_per_node: usize,
    /// Average tokens/sec per node count with the hierarchical sync.
    pub hier_tokens_per_sec: Vec<f64>,
    /// Average tokens/sec per node count with the flat collective.
    pub flat_tokens_per_sec: Vec<f64>,
    /// Mean per-iteration exposed sync time (s), hierarchical.
    pub hier_exposed_sync_s: Vec<f64>,
    /// Mean per-iteration exposed sync time (s), flat.
    pub flat_exposed_sync_s: Vec<f64>,
    /// Mean per-iteration MB the hierarchical sync moved over the fabric.
    pub hier_fabric_mb: Vec<f64>,
    /// Mean per-iteration MB the flat collective moved over the fabric.
    pub flat_fabric_mb: Vec<f64>,
    /// Hierarchical speedup relative to one node.
    pub speedups: Vec<f64>,
}

fn cluster_trainer(
    dataset: &Dataset,
    nodes: usize,
    gpus_per_node: usize,
    hierarchical: bool,
    scale: &ExperimentScale,
) -> CuLdaTrainer {
    let system = if nodes > 1 {
        ClusterSystem::homogeneous(
            DeviceSpec::titan_xp_pascal(),
            nodes,
            gpus_per_node,
            scale.seed,
            Interconnect::Pcie3,
            Interconnect::Ethernet10G,
        )
        .into_system()
    } else {
        MultiGpuSystem::homogeneous(
            DeviceSpec::titan_xp_pascal(),
            gpus_per_node,
            scale.seed,
            Interconnect::Pcie3,
        )
    };
    SessionBuilder::new()
        .corpus(&dataset.corpus)
        .config(
            LdaConfig::with_topics(scale.num_topics)
                .seed(scale.seed)
                .hierarchical_sync(hierarchical),
        )
        .system(system)
        .build()
        .expect("cluster trainer construction")
}

/// Cluster scaling figure: the PubMed twin on {1, 2, 4, 8} nodes × 2 Pascal
/// GPUs over a 10 GbE fabric.
///
/// As in [`figure9`], the token budget is multiplied by 4 so the
/// compute-to-synchronization ratio of the scaled-down twin stays
/// representative.  Both sync strategies train the identical model (the φ
/// reduction is integer and associative across any grouping); only the
/// simulated interconnect schedule differs, which is exactly the quantity the
/// figure compares.
pub fn cluster_scaling(scale: &ExperimentScale) -> ClusterScalingResult {
    let mut scale = *scale;
    scale.tokens *= 4;
    let scale = &scale;
    let dataset = datasets::pubmed(scale);
    let node_counts = vec![1usize, 2, 4, 8];
    let gpus_per_node = 2;
    let mut r = ClusterScalingResult {
        node_counts: node_counts.clone(),
        gpus_per_node,
        hier_tokens_per_sec: Vec::new(),
        flat_tokens_per_sec: Vec::new(),
        hier_exposed_sync_s: Vec::new(),
        flat_exposed_sync_s: Vec::new(),
        hier_fabric_mb: Vec::new(),
        flat_fabric_mb: Vec::new(),
        speedups: Vec::new(),
    };
    for &n in &node_counts {
        for hierarchical in [true, false] {
            let mut trainer = cluster_trainer(&dataset, n, gpus_per_node, hierarchical, scale);
            let mut exposed = 0.0;
            let mut fabric_bytes = 0u64;
            for _ in 0..scale.iterations {
                let it = trainer.run_iteration();
                exposed += it.sync_exposed_time_s;
                fabric_bytes += it.inter_sync_bytes;
            }
            let iters = scale.iterations as f64;
            let tput = trainer.average_throughput(scale.iterations);
            let mean_exposed = exposed / iters;
            let mean_fabric_mb = fabric_bytes as f64 / iters / 1e6;
            if hierarchical {
                r.hier_tokens_per_sec.push(tput);
                r.hier_exposed_sync_s.push(mean_exposed);
                r.hier_fabric_mb.push(mean_fabric_mb);
            } else {
                r.flat_tokens_per_sec.push(tput);
                r.flat_exposed_sync_s.push(mean_exposed);
                r.flat_fabric_mb.push(mean_fabric_mb);
            }
        }
    }
    let base = r.hier_tokens_per_sec[0];
    r.speedups = r.hier_tokens_per_sec.iter().map(|&t| t / base).collect();
    r
}

/// Render the cluster scaling figure as text.
pub fn cluster_scaling_text(result: &ClusterScalingResult) -> String {
    let mut out = format!(
        "Cluster scaling: PubMed twin, nodes × {} Pascal GPUs, 10 GbE fabric (simulated)\n",
        result.gpus_per_node
    );
    out.push_str(&format!(
        "{:<7} {:>13} {:>13} {:>9} {:>15} {:>15} {:>11} {:>11}\n",
        "#Nodes",
        "hier MTok/s",
        "flat MTok/s",
        "Speedup",
        "hier sync (ms)",
        "flat sync (ms)",
        "hier fabMB",
        "flat fabMB"
    ));
    for i in 0..result.node_counts.len() {
        out.push_str(&format!(
            "{:<7} {:>13.1} {:>13.1} {:>8.2}x {:>15.3} {:>15.3} {:>11.2} {:>11.2}\n",
            result.node_counts[i],
            result.hier_tokens_per_sec[i] / 1e6,
            result.flat_tokens_per_sec[i] / 1e6,
            result.speedups[i],
            result.hier_exposed_sync_s[i] * 1e3,
            result.flat_exposed_sync_s[i] * 1e3,
            result.hier_fabric_mb[i],
            result.flat_fabric_mb[i]
        ));
    }
    out.push_str(
        "Hierarchical sync reduces each shard inside the node first, so the slow fabric\n\
         carries one replica per node pair instead of one per device (LDA*-style tiers).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure7_series_cover_all_platforms_and_ramp_up() {
        let scale = ExperimentScale::tiny();
        let dataset = datasets::nytimes(&scale);
        let series = figure7_dataset(&dataset, &scale);
        assert_eq!(series.len(), 4); // 3 GPUs + WarpLDA
        for s in &series {
            assert_eq!(s.len(), scale.iterations);
        }
        let text = figure7_text("NYTimes", &series);
        assert!(text.lines().count() > scale.iterations);
    }

    #[test]
    fn figure9_produces_well_formed_scaling_results() {
        // The faithful shape assertions (1.9×/3× speedups) need the larger
        // release-mode runs recorded in EXPERIMENTS.md; at unit-test scale the
        // fixed kernel-launch and link-latency overheads dominate, so this
        // test only checks structure and that multi-GPU never collapses.
        let mut scale = ExperimentScale::tiny();
        scale.tokens = 25_000;
        scale.iterations = 3;
        let r = figure9(&scale);
        assert_eq!(r.gpu_counts, vec![1, 2, 4]);
        assert!((r.speedups[0] - 1.0).abs() < 1e-9);
        assert!(
            r.speedups.iter().all(|&s| s > 0.5 && s < 5.0),
            "{:?}",
            r.speedups
        );
        assert!(r.tokens_per_sec.iter().all(|&t| t > 0.0));
        assert_eq!(r.series.len(), 3);
        let text = figure9_text(&r);
        assert!(text.contains("Speedup"));
    }

    #[test]
    fn cluster_scaling_reports_the_two_tier_traffic_split() {
        let mut scale = ExperimentScale::tiny();
        scale.tokens = 25_000;
        scale.iterations = 3;
        let r = cluster_scaling(&scale);
        assert_eq!(r.node_counts, vec![1, 2, 4, 8]);
        assert!((r.speedups[0] - 1.0).abs() < 1e-9);
        assert!(r.hier_tokens_per_sec.iter().all(|&t| t > 0.0));
        // One node: no fabric at all, and hier/flat are the same schedule.
        assert_eq!(r.hier_fabric_mb[0], 0.0);
        assert_eq!(r.flat_fabric_mb[0], 0.0);
        assert!((r.hier_exposed_sync_s[0] - r.flat_exposed_sync_s[0]).abs() < 1e-12);
        for i in 1..r.node_counts.len() {
            // The hierarchy sends one replica per extra node over the fabric;
            // the flat collective sends one per extra device — strictly more.
            assert!(r.hier_fabric_mb[i] > 0.0);
            assert!(
                r.flat_fabric_mb[i] > r.hier_fabric_mb[i],
                "node_count {}: flat {} vs hier {} fabric MB",
                r.node_counts[i],
                r.flat_fabric_mb[i],
                r.hier_fabric_mb[i]
            );
        }
        let text = cluster_scaling_text(&r);
        assert!(text.contains("10 GbE"));
        assert!(text.contains("Speedup"));
    }

    #[test]
    fn figure8_timelines_improve_monotonically_in_quality() {
        let scale = ExperimentScale::tiny();
        let dataset = datasets::pubmed(&scale);
        let timelines = figure8_dataset(&dataset, &scale, true);
        // 3 CuLDA platforms + CuLDA(alias) + CuLDA(light) + WarpLDA +
        // SaberLDA + LDA*.
        assert_eq!(timelines.len(), 8);
        assert!(timelines.iter().any(|t| t.label == "CuLDA(alias)"));
        assert!(timelines.iter().any(|t| t.label == "CuLDA(light)"));
        for t in &timelines {
            let first = t.points().first().unwrap().loglik_per_token;
            let best = t.best_loglik().unwrap();
            assert!(best >= first, "{}: {first} → {best}", t.label);
        }
        let text = figure8_text("PubMed", &timelines);
        assert!(text.contains("LDA*"));
        assert!(text.contains("CuLDA(alias)"));
    }
}
