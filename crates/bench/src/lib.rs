//! # culda-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation (§7) on the simulated substrate:
//!
//! | experiment | harness entry point |
//! |---|---|
//! | Table 1 (Flops/Byte of each sampling step) | [`tables::table1`] |
//! | Table 2 (evaluated platforms)              | [`tables::platforms`] |
//! | Table 3 (dataset statistics)               | [`tables::table3`] |
//! | Table 4 (average Tokens/sec, first 100 iterations) | [`tables::table4`] |
//! | Table 5 (execution-time breakdown)         | [`tables::table5`] |
//! | Figure 7 (Tokens/sec vs iteration)         | [`figures::figure7`] |
//! | Figure 8 (log-likelihood/token vs time)    | [`figures::figure8`] |
//! | Figure 9 (multi-GPU scaling)               | [`figures::figure9`] |
//! | multi-node cluster scaling (LDA*-style, beyond the paper) | [`figures::cluster_scaling`] |
//! | §6 design-choice ablations                 | [`ablation::ablations`] |
//!
//! Every entry point takes an [`scale::ExperimentScale`] so the same code can
//! run a CI-sized smoke configuration ([`scale::ExperimentScale::quick`]) or
//! the larger shape-faithful configuration
//! ([`scale::ExperimentScale::paper_shape`]).  Absolute numbers will not match
//! the paper (the substrate is a simulator and the corpora are scaled-down
//! synthetic twins); the quantities that are expected to hold are the
//! *relative* ones — orderings, rough ratios and trends — as documented in
//! `EXPERIMENTS.md`.

#![warn(missing_docs)]

pub mod ablation;
pub mod datasets;
pub mod figures;
pub mod scale;
pub mod tables;

pub use scale::ExperimentScale;
