//! Experiment scale presets.

use serde::{Deserialize, Serialize};

/// How large an experiment to run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ExperimentScale {
    /// Target token count of each synthetic dataset.
    pub tokens: u64,
    /// Number of topics `K` (the paper uses 1k–10k; the scaled runs use less
    /// so that the host can execute the functional simulation quickly).
    pub num_topics: usize,
    /// Iterations per run (the paper reports the first 100).
    pub iterations: usize,
    /// RNG seed shared by corpus generation and every solver.
    pub seed: u64,
}

impl ExperimentScale {
    /// A CI/benchmark-friendly scale: a couple of hundred thousand tokens,
    /// finishes in seconds per experiment.
    pub fn quick() -> Self {
        ExperimentScale {
            tokens: 120_000,
            num_topics: 96,
            iterations: 15,
            seed: 42,
        }
    }

    /// The larger configuration used for the numbers recorded in
    /// `EXPERIMENTS.md`: enough tokens and iterations for the trends (ramp-up,
    /// breakdown, scaling) to be visible, still minutes not hours.
    pub fn paper_shape() -> Self {
        ExperimentScale {
            tokens: 600_000,
            num_topics: 192,
            iterations: 40,
            seed: 42,
        }
    }

    /// A tiny scale for unit tests of the harness itself.
    pub fn tiny() -> Self {
        ExperimentScale {
            tokens: 15_000,
            num_topics: 24,
            iterations: 4,
            seed: 7,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        assert!(ExperimentScale::tiny().tokens < ExperimentScale::quick().tokens);
        assert!(ExperimentScale::quick().tokens < ExperimentScale::paper_shape().tokens);
    }
}
