//! Regeneration of Tables 1–5.

use crate::datasets::{self, Dataset};
use crate::scale::ExperimentScale;
use culda_baselines::{LdaSolver, WarpLda};
use culda_core::{LdaConfig, SessionBuilder};
use culda_gpusim::{DeviceSpec, MultiGpuSystem};
use serde::{Deserialize, Serialize};

/// The GPU platforms of Table 2, in the paper's order.
pub fn gpu_platforms() -> Vec<DeviceSpec> {
    vec![
        DeviceSpec::titan_x_maxwell(),
        DeviceSpec::titan_xp_pascal(),
        DeviceSpec::v100_volta(),
    ]
}

/// Table 1: Flops/Byte of each sampling step.
pub fn table1() -> String {
    let mut out = String::new();
    out.push_str("Table 1: Flops/Byte of each step of one LDA sampling\n");
    out.push_str(&format!(
        "{:<24} {:<38} {:>8}\n",
        "Step", "Formula", "Value"
    ));
    for step in culda_metrics::table1() {
        out.push_str(&format!(
            "{:<24} {:<38} {:>8.2}\n",
            step.name, step.formula, step.flops_per_byte
        ));
    }
    out.push_str(&format!(
        "Average arithmetic intensity: {:.2} Flops/Byte (paper: 0.27)\n",
        culda_metrics::roofline::average_intensity()
    ));
    let cpu = DeviceSpec::xeon_e5_2690v4();
    out.push_str(&format!(
        "CPU roofline ridge point: {:.1} Flops/Byte (paper: 9.2) -> LDA is memory bound\n",
        cpu.ridge_flops_per_byte()
    ));
    out
}

/// Table 2: the evaluated platforms.
pub fn platforms() -> String {
    let mut out = String::new();
    out.push_str("Table 2: Configuration of the evaluated platforms\n");
    out.push_str(&format!(
        "{:<28} {:>6} {:>12} {:>12} {:>10}\n",
        "Device", "SMs", "BW (GB/s)", "GFLOPS", "Mem (GiB)"
    ));
    for spec in gpu_platforms()
        .into_iter()
        .chain([DeviceSpec::gtx_1080(), DeviceSpec::xeon_e5_2690v4()])
    {
        out.push_str(&format!(
            "{:<28} {:>6} {:>12.0} {:>12.0} {:>10}\n",
            spec.name,
            spec.sm_count,
            spec.mem_bandwidth_gbps,
            spec.peak_gflops,
            spec.mem_capacity_bytes >> 30
        ));
    }
    out
}

/// Table 3: dataset statistics (of the scaled synthetic twins, with the
/// published full-size numbers for reference).
pub fn table3(scale: &ExperimentScale) -> String {
    let mut out = String::new();
    out.push_str("Table 3: Details of workload data sets (scaled synthetic twins)\n");
    out.push_str(&format!(
        "{:<18} {:>14} {:>12} {:>10} {:>12}\n",
        "Dataset", "#Tokens", "#Documents", "#Words", "AvgDocLen"
    ));
    for d in datasets::both(scale) {
        let s = d.stats();
        out.push_str(&format!(
            "{:<18} {:>14} {:>12} {:>10} {:>12.1}\n",
            s.name, s.num_tokens, s.num_docs, s.vocab_size, s.avg_doc_len
        ));
    }
    out.push_str("Paper (full size): NYTimes 99,542,125 / 299,752 / 101,636;  PubMed 737,869,083 / 8,200,000 / 141,043\n");
    out
}

/// One row of Table 4: average tokens/sec on each platform plus WarpLDA.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table4Row {
    /// Dataset name.
    pub dataset: String,
    /// Average Tokens/sec per platform, in Table 2 order (Titan, Pascal, Volta).
    pub gpu_tokens_per_sec: Vec<f64>,
    /// WarpLDA (CPU) average Tokens/sec.
    pub warplda_tokens_per_sec: f64,
}

impl Table4Row {
    /// Speedup of the fastest GPU over WarpLDA.
    pub fn best_speedup_over_warplda(&self) -> f64 {
        let best = self.gpu_tokens_per_sec.iter().cloned().fold(0.0, f64::max);
        best / self.warplda_tokens_per_sec
    }
}

/// Run CuLDA on one device spec and return the average tokens/sec over the
/// first `iterations` iterations.
pub fn culda_throughput(
    dataset: &Dataset,
    spec: DeviceSpec,
    num_gpus: usize,
    scale: &ExperimentScale,
) -> f64 {
    let system = MultiGpuSystem::homogeneous(
        spec,
        num_gpus,
        scale.seed,
        culda_gpusim::Interconnect::Pcie3,
    );
    let mut trainer = SessionBuilder::new()
        .corpus(&dataset.corpus)
        .config(
            LdaConfig::with_topics(scale.num_topics)
                .seed(scale.seed)
                .sync_shards(1),
        )
        .system(system)
        .build()
        .expect("trainer construction");
    trainer.train(scale.iterations);
    trainer.average_throughput(scale.iterations)
}

/// Table 4: average Tokens/sec of CuLDA_CGS (three platforms) and WarpLDA.
pub fn table4(scale: &ExperimentScale) -> Vec<Table4Row> {
    datasets::both(scale)
        .iter()
        .map(|dataset| {
            let gpu: Vec<f64> = gpu_platforms()
                .into_iter()
                .map(|spec| culda_throughput(dataset, spec, 1, scale))
                .collect();
            let mut warp =
                WarpLda::with_paper_priors(&dataset.corpus, scale.num_topics, scale.seed);
            let mut time = 0.0;
            for _ in 0..scale.iterations {
                time += warp.run_iteration();
            }
            let warp_tps = dataset.corpus.num_tokens() as f64 * scale.iterations as f64 / time;
            Table4Row {
                dataset: dataset.name.clone(),
                gpu_tokens_per_sec: gpu,
                warplda_tokens_per_sec: warp_tps,
            }
        })
        .collect()
}

/// Render Table 4 in the paper's layout.
pub fn table4_text(rows: &[Table4Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 4: Average #Tokens/sec of CuLDA_CGS and WarpLDA (simulated)\n");
    out.push_str(&format!(
        "{:<12} {:>12} {:>12} {:>12} {:>12}\n",
        "Dataset", "Titan", "Pascal", "Volta", "WarpLDA"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:<12} {:>11.1}M {:>11.1}M {:>11.1}M {:>11.1}M\n",
            row.dataset,
            row.gpu_tokens_per_sec[0] / 1e6,
            row.gpu_tokens_per_sec[1] / 1e6,
            row.gpu_tokens_per_sec[2] / 1e6,
            row.warplda_tokens_per_sec / 1e6
        ));
    }
    out.push_str("Paper: NYTimes 173.6M / 208.0M / 633.0M / 108.0M;  PubMed 155.6M / 213.0M / 686.2M / 93.5M\n");
    out
}

/// One platform's execution-time breakdown (Table 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table5Row {
    /// Platform name.
    pub platform: String,
    /// Percentage of device time per kernel name.
    pub percentages: Vec<(String, f64)>,
}

/// Table 5: per-kernel execution-time breakdown on the NYTimes twin.
pub fn table5(scale: &ExperimentScale) -> Vec<Table5Row> {
    let dataset = datasets::nytimes(scale);
    gpu_platforms()
        .into_iter()
        .map(|spec| {
            let name = spec.name.clone();
            let system = MultiGpuSystem::single(spec, scale.seed);
            let mut trainer = SessionBuilder::new()
                .corpus(&dataset.corpus)
                .config(
                    LdaConfig::with_topics(scale.num_topics)
                        .seed(scale.seed)
                        .sync_shards(1),
                )
                .system(system)
                .build()
                .expect("trainer construction");
            trainer.train(scale.iterations);
            Table5Row {
                platform: name,
                percentages: trainer.kernel_breakdown(),
            }
        })
        .collect()
}

/// Render Table 5 in the paper's layout.
pub fn table5_text(rows: &[Table5Row]) -> String {
    let mut out = String::new();
    out.push_str("Table 5: Execution time breakdown of CuLDA_CGS on NYTimes (simulated)\n");
    out.push_str(&format!("{:<16}", "Function"));
    for row in rows {
        out.push_str(&format!(" {:>26}", row.platform));
    }
    out.push('\n');
    for kernel in ["Sampling", "Update theta", "Update phi"] {
        out.push_str(&format!("{kernel:<16}"));
        for row in rows {
            let pct = row
                .percentages
                .iter()
                .find(|(n, _)| n == kernel)
                .map(|(_, p)| *p)
                .unwrap_or(0.0);
            out.push_str(&format!(" {pct:>25.1}%"));
        }
        out.push('\n');
    }
    out.push_str("Paper (Titan/Pascal/Volta): Sampling 87.7/87.9/79.4%, Update theta 8.0/9.3/10.8%, Update phi 4.3/1.7/9.8%\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_text_contains_every_step_and_the_average() {
        let t = table1();
        assert!(t.contains("Compute S"));
        assert!(t.contains("Sampling from p2(k)"));
        assert!(t.contains("0.27"));
    }

    #[test]
    fn platform_table_lists_all_three_gpus() {
        let t = platforms();
        assert!(t.contains("TITAN X"));
        assert!(t.contains("Titan Xp"));
        assert!(t.contains("V100"));
        assert!(t.contains("Xeon"));
    }

    #[test]
    fn table4_has_the_paper_ordering_at_tiny_scale() {
        let scale = ExperimentScale::tiny();
        let rows = table4(&scale);
        assert_eq!(rows.len(), 2);
        for row in &rows {
            // Volta > Pascal and Volta > Titan, and every GPU beats WarpLDA.
            assert!(row.gpu_tokens_per_sec[2] > row.gpu_tokens_per_sec[1]);
            assert!(row.gpu_tokens_per_sec[2] > row.gpu_tokens_per_sec[0]);
            assert!(row.best_speedup_over_warplda() > 1.0, "{:?}", row);
        }
        let text = table4_text(&rows);
        assert!(text.contains("NYTimes") && text.contains("PubMed"));
    }

    #[test]
    fn table5_sampling_dominates_at_tiny_scale() {
        let mut scale = ExperimentScale::tiny();
        // Long documents make K_d large, which is what makes sampling dominate.
        scale.tokens = 40_000;
        let rows = table5(&scale);
        assert_eq!(rows.len(), 3);
        let text = table5_text(&rows);
        for row in &rows {
            assert_eq!(row.percentages[0].0, "Sampling", "{}", text);
            assert!(row.percentages[0].1 > 50.0, "{}", text);
        }
    }
}
