//! Performance regression gate over simulated **and** wall-clock throughput.
//!
//! Measures tokens/s on a fixed set of scenarios and compares the numbers
//! against a committed baseline (`bench_baseline.json` at the repository
//! root).  Two metrics are recorded per scenario:
//!
//! * **Simulated tokens/s** (`tokens_per_s`) — the cost-model throughput.
//!   A pure function of its inputs, bit-stable across machines and thread
//!   counts, so it is gated strictly: CI fails on any scenario slower than
//!   `baseline × (1 - TOLERANCE)`.  The 10 % tolerance absorbs *intentional*
//!   cost-model adjustments, not measurement noise.
//! * **Wall-clock tokens/s** (`wall_tokens_per_s`) — tokens actually pushed
//!   through the host per real second, including trainer construction.
//!   This depends on the machine, its load, and `CULDA_NUM_THREADS`, so it
//!   is gated with a wide band: the gate only fails when throughput falls
//!   below `baseline × WALL_BAND`, catching order-of-magnitude rots (an
//!   accidentally quadratic path, a poisoned thread pool) without flaking
//!   on hardware differences.
//!
//! ```text
//! perf-gate --write bench_baseline.json    # refresh the baseline
//! perf-gate --check bench_baseline.json    # CI gate
//! ```

use culda_bench::tables::culda_throughput;
use culda_bench::{datasets, ExperimentScale};
use culda_core::{InferenceOptions, LdaConfig, SamplerStrategy, SessionBuilder};
use culda_gpusim::{ClusterSystem, DeviceSpec, Interconnect, MultiGpuSystem};

/// Fractional slowdown of *simulated* throughput tolerated before the gate
/// fails.
const TOLERANCE: f64 = 0.10;

/// Fraction of the baseline *wall-clock* throughput below which the gate
/// fails.  Wall time varies with hardware and load, so only a 5× collapse —
/// a structural regression, not noise — trips it.
const WALL_BAND: f64 = 0.20;

/// One scenario's measured throughputs.
struct RunResult {
    /// Simulated (cost-model) tokens/s.
    sim_tps: f64,
    /// Wall-clock tokens/s over the same run.
    wall_tps: f64,
}

/// Run `train`, timing it, and derive wall-clock tokens/s from
/// `total_tokens` (tokens per iteration × iterations).  Wall time covers
/// trainer construction and training, not corpus generation.
fn timed(total_tokens: u64, train: impl FnOnce() -> f64) -> RunResult {
    let start = std::time::Instant::now();
    let sim_tps = train();
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    RunResult {
        sim_tps,
        wall_tps: total_tokens as f64 / wall_s,
    }
}

struct Scenario {
    name: &'static str,
    run: fn() -> RunResult,
}

/// The gated scenarios: the resident single-GPU path on two architectures,
/// the multi-GPU scaling path under the paper's dense reduce
/// (`culda_throughput` pins `sync_shards(1)`), the multi-GPU path under
/// the *default* configuration, where the φ-sync shard count auto-tunes
/// from iteration 0 — so a regression in the tuner's choice fails the gate —
/// and a large-K sampler-portfolio quartet comparing sparse CGS against the
/// alias hybrid and both LightLDA variants on the tail-heavy workload (the
/// MH kernels must stay at least as fast there: they amortise or drop the
/// per-word work the sparse kernel pays every iteration — exactly the
/// regime where `--sampler auto` picks them), a wall-clock
/// query-latency canary for the epoch-snapshot serving tier, and a
/// 2-node × 2-GPU cluster over 10 GbE under the default hierarchical sync —
/// so a regression in the two-tier schedule or its (shards, fabric-groups)
/// auto-tuner fails the gate.
fn scenarios() -> Vec<Scenario> {
    fn scale() -> ExperimentScale {
        ExperimentScale {
            tokens: 120_000,
            num_topics: 96,
            iterations: 8,
            seed: 42,
        }
    }
    /// The regime the alias hybrid targets: K large and a wide, Zipf-tailed
    /// vocabulary of short documents, where the sparse kernel's per-word
    /// `O(K)` column read + tree build dominates the iteration (on the
    /// long-document NYTimes twin the per-token θ-row traffic swamps it and
    /// the two samplers tie).
    fn large_k_throughput(sampler: SamplerStrategy) -> RunResult {
        let corpus = culda_corpus::DatasetProfile {
            name: "tail-heavy".into(),
            num_docs: 6_000,
            vocab_size: 20_000,
            avg_doc_len: 20.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(42);
        let iterations = 6;
        let total = (corpus.num_tokens() * iterations) as u64;
        timed(total, || {
            let mut trainer = SessionBuilder::new()
                .corpus(&corpus)
                .config(
                    LdaConfig::with_topics(512)
                        .seed(42)
                        .sync_shards(1)
                        .sampler(sampler),
                )
                .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 42))
                .build()
                .expect("trainer construction");
            trainer.train(iterations);
            trainer.average_throughput(iterations)
        })
    }
    /// Query-latency canary for the serving tier: train a streaming model,
    /// publish a snapshot, then push a fixed batched query load through the
    /// [`culda_core::ModelSnapshots`] handle.  Queries run on the host,
    /// outside the GPU cost model, so the *simulated* column is pinned to
    /// the (pure, deterministic) total query token count — trivially green
    /// under the strict gate — while the *wall* column is the real canary:
    /// it collapses if the fold-in chain or the snapshot load path rots
    /// (e.g. an accidental per-query φ copy).
    fn query_latency() -> RunResult {
        const QUERY_ROUNDS: u64 = 3;
        let corpus = culda_corpus::DatasetProfile {
            name: "serve".into(),
            num_docs: 2_000,
            vocab_size: 8_000,
            avg_doc_len: 18.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(42);
        let queries: Vec<Vec<u32>> = (0..corpus.num_docs().min(256))
            .map(|d| corpus.doc(d).to_vec())
            .collect();
        let query_tokens: u64 = queries.iter().map(|q| q.len() as u64).sum::<u64>() * QUERY_ROUNDS;
        let mut session = SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(96).seed(42))
            .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 42))
            .build_streaming()
            .expect("session construction");
        session.train(2).expect("training");
        session.publish_snapshot().expect("snapshot publication");
        let snapshots = session.snapshots();
        let options = InferenceOptions {
            sweeps: 5,
            burn_in: 1,
            seed: 7,
        };
        timed(query_tokens, || {
            for _ in 0..QUERY_ROUNDS {
                for batch in queries.chunks(16) {
                    snapshots
                        .infer_batch(batch, options)
                        .expect("serving query");
                }
            }
            query_tokens as f64
        })
    }
    vec![
        Scenario {
            name: "nytimes_volta_1gpu_resident",
            run: || {
                let s = scale();
                let dataset = datasets::nytimes(&s);
                timed((dataset.corpus.num_tokens() * s.iterations) as u64, || {
                    culda_throughput(&dataset, DeviceSpec::v100_volta(), 1, &s)
                })
            },
        },
        Scenario {
            name: "pubmed_pascal_4gpu_scaling",
            run: || {
                let s = scale();
                let dataset = datasets::pubmed(&s);
                timed((dataset.corpus.num_tokens() * s.iterations) as u64, || {
                    culda_throughput(&dataset, DeviceSpec::titan_xp_pascal(), 4, &s)
                })
            },
        },
        Scenario {
            name: "nytimes_maxwell_1gpu_resident",
            run: || {
                let s = scale();
                let dataset = datasets::nytimes(&s);
                timed((dataset.corpus.num_tokens() * s.iterations) as u64, || {
                    culda_throughput(&dataset, DeviceSpec::titan_x_maxwell(), 1, &s)
                })
            },
        },
        Scenario {
            name: "pubmed_pascal_4gpu_autotuned_sync",
            run: || {
                let s = scale();
                let dataset = datasets::pubmed(&s);
                timed((dataset.corpus.num_tokens() * s.iterations) as u64, || {
                    let mut trainer = SessionBuilder::new()
                        .corpus(&dataset.corpus)
                        // Default config: sync_shards = None → the tuner picks
                        // the shard count after the dense iteration 0.
                        .config(LdaConfig::with_topics(s.num_topics).seed(s.seed))
                        .system(MultiGpuSystem::homogeneous(
                            DeviceSpec::titan_xp_pascal(),
                            4,
                            s.seed,
                            Interconnect::Pcie3,
                        ))
                        .build()
                        .expect("trainer construction");
                    trainer.train(s.iterations);
                    trainer.average_throughput(s.iterations)
                })
            },
        },
        Scenario {
            name: "tailheavy_volta_1gpu_largeK_sparse",
            run: || large_k_throughput(SamplerStrategy::SparseCgs),
        },
        Scenario {
            name: "tailheavy_volta_1gpu_largeK_alias",
            run: || large_k_throughput(SamplerStrategy::alias_hybrid()),
        },
        Scenario {
            name: "tailheavy_volta_1gpu_largeK_light",
            run: || large_k_throughput(SamplerStrategy::light_lda()),
        },
        Scenario {
            name: "tailheavy_volta_1gpu_largeK_light_pruned",
            run: || large_k_throughput(SamplerStrategy::light_lda_pruned()),
        },
        Scenario {
            name: "serve_volta_query_latency",
            run: query_latency,
        },
        Scenario {
            name: "pubmed_2node_2gpu_cluster_hier",
            run: || {
                let s = scale();
                let dataset = datasets::pubmed(&s);
                timed((dataset.corpus.num_tokens() * s.iterations) as u64, || {
                    let mut trainer = SessionBuilder::new()
                        .corpus(&dataset.corpus)
                        // Default config: hierarchical sync on, shard count
                        // and fabric group count both auto-tuned after the
                        // dense iteration 0.
                        .config(LdaConfig::with_topics(s.num_topics).seed(s.seed))
                        .system(
                            ClusterSystem::homogeneous(
                                DeviceSpec::titan_xp_pascal(),
                                2,
                                2,
                                s.seed,
                                Interconnect::Pcie3,
                                Interconnect::Ethernet10G,
                            )
                            .into_system(),
                        )
                        .build()
                        .expect("trainer construction");
                    trainer.train(s.iterations);
                    trainer.average_throughput(s.iterations)
                })
            },
        },
    ]
}

fn measure() -> Vec<(String, RunResult)> {
    scenarios()
        .into_iter()
        .map(|s| {
            let r = (s.run)();
            eprintln!(
                "measured {:<34} {:>14.1} sim t/s {:>12.1} wall t/s",
                s.name, r.sim_tps, r.wall_tps
            );
            (s.name.to_string(), r)
        })
        .collect()
}

fn write_baseline(path: &str, rows: &[(String, RunResult)]) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"scenarios\": [\n");
    for (i, (name, r)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"tokens_per_s\": {:.3}, \
             \"wall_tokens_per_s\": {:.3} }}{comma}\n",
            r.sim_tps, r.wall_tps
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// One baseline entry: name, simulated tokens/s, and (absent in baselines
/// written before the wall-clock gate) wall-clock tokens/s.
#[derive(Debug)]
struct BaselineRow {
    name: String,
    sim_tps: f64,
    wall_tps: Option<f64>,
}

/// Minimal parser for the baseline file this tool itself writes; avoids a
/// JSON dependency, per the offline dependency policy (DESIGN.md §3).
///
/// Each `{ … }` scenario object is parsed as a whole: its fields are split
/// out and matched by *exact key*, so field order inside an object does not
/// matter and a scenario name containing a key as a substring cannot
/// mispair values.  Duplicate scenario names are an error.
fn read_baseline(path: &str) -> Result<Vec<BaselineRow>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let root = text
        .find('{')
        .ok_or_else(|| format!("{path} is not a JSON object"))?;
    let mut rows: Vec<BaselineRow> = Vec::new();
    let mut rest = &text[root + 1..];
    while let Some(open) = rest.find('{') {
        let close = rest[open..]
            .find('}')
            .map(|c| open + c)
            .ok_or_else(|| format!("unbalanced braces in {path}"))?;
        let object = &rest[open + 1..close];
        rest = &rest[close + 1..];

        let mut name: Option<String> = None;
        let mut sim: Option<f64> = None;
        let mut wall: Option<f64> = None;
        for field in object.split(',') {
            let Some((key, value)) = field.split_once(':') else {
                continue;
            };
            let key = key.trim().trim_matches('"');
            let value = value.trim();
            match key {
                "name" => name = Some(value.trim_matches('"').to_string()),
                "tokens_per_s" => {
                    sim =
                        Some(value.parse().map_err(|e| {
                            format!("bad tokens_per_s value {value:?} in {path}: {e}")
                        })?);
                }
                "wall_tokens_per_s" => {
                    wall = Some(value.parse().map_err(|e| {
                        format!("bad wall_tokens_per_s value {value:?} in {path}: {e}")
                    })?);
                }
                _ => {}
            }
        }
        let name = name.ok_or_else(|| format!("scenario object without a name in {path}"))?;
        let sim_tps =
            sim.ok_or_else(|| format!("scenario `{name}` has no tokens_per_s in {path}"))?;
        if rows.iter().any(|r| r.name == name) {
            return Err(format!("duplicate scenario name `{name}` in {path}"));
        }
        rows.push(BaselineRow {
            name,
            sim_tps,
            wall_tps: wall,
        });
    }
    if rows.is_empty() {
        return Err(format!("{path} contains no scenarios"));
    }
    Ok(rows)
}

fn check(path: &str) -> Result<(), String> {
    let baseline = read_baseline(path)?;
    let measured = measure();
    let mut failures = Vec::new();
    println!("threads: {}", rayon::current_num_threads());
    println!(
        "{:<34} {:>14} {:>14} {:>8} {:>12} {:>12} {:>8}",
        "scenario", "base sim t/s", "meas sim t/s", "Δ sim", "base wall", "meas wall", "Δ wall"
    );
    for row in &baseline {
        let name = &row.name;
        let Some((_, r)) = measured.iter().find(|(n, _)| n == name) else {
            failures.push(format!("scenario `{name}` in baseline but not measured"));
            continue;
        };
        let ratio = r.sim_tps / row.sim_tps;
        let verdict = if ratio < 1.0 - TOLERANCE {
            failures.push(format!(
                "{name}: {:.1} tokens/s is {:.1}% below the baseline {:.1}",
                r.sim_tps,
                (1.0 - ratio) * 100.0,
                row.sim_tps
            ));
            "FAIL"
        } else {
            "ok"
        };
        let (base_wall, wall_delta) = match row.wall_tps {
            Some(bw) => {
                let wr = r.wall_tps / bw;
                if wr < WALL_BAND {
                    failures.push(format!(
                        "{name}: wall-clock {:.1} tokens/s collapsed to {:.2}× the \
                         baseline {bw:.1} (band: ≥ {WALL_BAND})",
                        r.wall_tps, wr
                    ));
                }
                (
                    format!("{bw:>12.1}"),
                    format!("{:>+7.1}%", (wr - 1.0) * 100.0),
                )
            }
            None => ("           -".to_string(), "       -".to_string()),
        };
        println!(
            "{name:<34} {:>14.1} {:>14.1} {:>+7.1}% {base_wall} {:>12.1} {wall_delta} {verdict}",
            row.sim_tps,
            r.sim_tps,
            (ratio - 1.0) * 100.0,
            r.wall_tps
        );
        if ratio > 1.0 + TOLERANCE {
            eprintln!(
                "note: {name} improved by {:.1}% — consider refreshing the baseline \
                 (perf-gate --write {path})",
                (ratio - 1.0) * 100.0
            );
        }
    }
    for (name, _) in &measured {
        if !baseline.iter().any(|r| &r.name == name) {
            failures.push(format!(
                "scenario `{name}` is measured but missing from {path} — refresh the baseline"
            ));
        }
    }
    // Cross-scenario invariant, independent of the committed baseline: the
    // alias-hybrid sampler exists to beat sparse CGS on the large-K
    // tail-heavy workload, so the gate fails outright if it ever measures
    // slower there — even if both numbers individually stay within their
    // own baselines' tolerance.
    let tps = |name: &str| {
        measured
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, r)| r.sim_tps)
    };
    if let (Some(alias), Some(sparse)) = (
        tps("tailheavy_volta_1gpu_largeK_alias"),
        tps("tailheavy_volta_1gpu_largeK_sparse"),
    ) {
        if alias < sparse {
            failures.push(format!(
                "alias sampler ({alias:.1} tokens/s) measured slower than sparse CGS \
                 ({sparse:.1} tokens/s) on the large-K scenario — the amortisation \
                 invariant is broken"
            ));
        } else {
            println!(
                "alias/sparse large-K ratio: {:.3} (must stay ≥ 1)",
                alias / sparse
            );
        }
    }
    // Same invariant for the LightLDA portfolio member: dropping the
    // per-token O(K_d) sparse pass for O(mh · log K_d) proposals must pay
    // off exactly where the auto-tuner would pick it.
    for light_name in [
        "tailheavy_volta_1gpu_largeK_light",
        "tailheavy_volta_1gpu_largeK_light_pruned",
    ] {
        if let (Some(light), Some(sparse)) =
            (tps(light_name), tps("tailheavy_volta_1gpu_largeK_sparse"))
        {
            if light < sparse {
                failures.push(format!(
                    "{light_name} ({light:.1} tokens/s) measured slower than sparse CGS \
                     ({sparse:.1} tokens/s) on the large-K scenario — the MH-proposal \
                     invariant is broken"
                ));
            } else {
                println!(
                    "{}/sparse large-K ratio: {:.3} (must stay ≥ 1)",
                    light_name,
                    light / sparse
                );
            }
        }
    }
    if failures.is_empty() {
        println!(
            "perf gate passed ({} scenarios, sim tolerance {:.0}%, wall band {:.0}%)",
            baseline.len(),
            TOLERANCE * 100.0,
            WALL_BAND * 100.0
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [flag, path] if flag == "--write" => {
            let rows = measure();
            write_baseline(path, &rows)
                .map_err(|e| format!("cannot write {path}: {e}"))
                .map(|()| println!("wrote {} scenarios to {path}", rows.len()))
        }
        [flag, path] if flag == "--check" => check(path),
        _ => Err("usage: perf-gate (--write|--check) <baseline.json>".to_string()),
    };
    if let Err(msg) = result {
        eprintln!("perf-gate: {msg}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str, contents: &str) -> String {
        let path =
            std::env::temp_dir().join(format!("perf_gate_test_{name}_{}", std::process::id()));
        std::fs::write(&path, contents).unwrap();
        path.to_string_lossy().into_owned()
    }

    #[test]
    fn round_trips_what_it_writes() {
        let rows = vec![
            (
                "alpha".to_string(),
                RunResult {
                    sim_tps: 123.456,
                    wall_tps: 7.5,
                },
            ),
            (
                "beta".to_string(),
                RunResult {
                    sim_tps: 99.0,
                    wall_tps: 1.25,
                },
            ),
        ];
        let path = tmp("roundtrip", "");
        write_baseline(&path, &rows).unwrap();
        let parsed = read_baseline(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].name, "alpha");
        assert!((parsed[0].sim_tps - 123.456).abs() < 1e-9);
        assert_eq!(parsed[0].wall_tps, Some(7.5));
        assert_eq!(parsed[1].name, "beta");
        assert_eq!(parsed[1].wall_tps, Some(1.25));
    }

    #[test]
    fn field_order_inside_an_object_does_not_matter() {
        let path = tmp(
            "reorder",
            r#"{ "scenarios": [
                 { "tokens_per_s": 10.0, "name": "value_first" },
                 { "wall_tokens_per_s": 3.0, "name": "wall_first", "tokens_per_s": 20.0 }
               ] }"#,
        );
        let parsed = read_baseline(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(parsed[0].name, "value_first");
        assert_eq!(parsed[0].sim_tps, 10.0);
        assert_eq!(parsed[0].wall_tps, None);
        assert_eq!(parsed[1].name, "wall_first");
        assert_eq!(parsed[1].sim_tps, 20.0);
        assert_eq!(parsed[1].wall_tps, Some(3.0));
    }

    #[test]
    fn a_name_containing_a_key_substring_cannot_mispair() {
        let path = tmp(
            "keylike",
            r#"{ "scenarios": [
                 { "name": "weird_tokens_per_s_scenario", "tokens_per_s": 5.0 }
               ] }"#,
        );
        let parsed = read_baseline(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(parsed.len(), 1);
        assert_eq!(parsed[0].name, "weird_tokens_per_s_scenario");
        assert_eq!(parsed[0].sim_tps, 5.0);
    }

    #[test]
    fn duplicate_scenario_names_are_rejected() {
        let path = tmp(
            "dup",
            r#"{ "scenarios": [
                 { "name": "same", "tokens_per_s": 1.0 },
                 { "name": "same", "tokens_per_s": 2.0 }
               ] }"#,
        );
        let err = read_baseline(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(err.contains("duplicate scenario name `same`"), "{err}");
    }

    #[test]
    fn missing_fields_are_reported() {
        let no_name = tmp("noname", r#"{ "scenarios": [ { "tokens_per_s": 1.0 } ] }"#);
        let err = read_baseline(&no_name).unwrap_err();
        std::fs::remove_file(&no_name).ok();
        assert!(err.contains("without a name"), "{err}");

        let no_tps = tmp("notps", r#"{ "scenarios": [ { "name": "x" } ] }"#);
        let err = read_baseline(&no_tps).unwrap_err();
        std::fs::remove_file(&no_tps).ok();
        assert!(err.contains("no tokens_per_s"), "{err}");
    }

    #[test]
    fn pre_wall_clock_baselines_still_parse() {
        let path = tmp(
            "legacy",
            r#"{ "scenarios": [ { "name": "old", "tokens_per_s": 42.0 } ] }"#,
        );
        let parsed = read_baseline(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(parsed[0].wall_tps, None);
    }
}
