//! Performance regression gate over the simulated throughput.
//!
//! Measures simulated tokens/s on a fixed set of scenarios and compares the
//! numbers against a committed baseline (`bench_baseline.json` at the
//! repository root).  The simulation is a pure function of its inputs, so
//! the measured values are bit-stable across machines; the 10 % tolerance
//! exists to absorb *intentional* cost-model adjustments, not measurement
//! noise.  CI fails on any scenario slower than `baseline × 0.9`.
//!
//! ```text
//! perf-gate --write bench_baseline.json    # refresh the baseline
//! perf-gate --check bench_baseline.json    # CI gate: fail on >10% regression
//! ```

use culda_bench::tables::culda_throughput;
use culda_bench::{datasets, ExperimentScale};
use culda_core::{LdaConfig, SamplerStrategy, SessionBuilder};
use culda_gpusim::{DeviceSpec, Interconnect, MultiGpuSystem};

/// Fractional slowdown tolerated before the gate fails.
const TOLERANCE: f64 = 0.10;

struct Scenario {
    name: &'static str,
    run: fn() -> f64,
}

/// The gated scenarios: the resident single-GPU path on two architectures,
/// the multi-GPU scaling path under the paper's dense reduce
/// (`culda_throughput` pins `sync_shards(1)`), the multi-GPU path under
/// the *default* configuration, where the φ-sync shard count auto-tunes
/// from iteration 0 — so a regression in the tuner's choice fails the gate —
/// and a large-K pair comparing the sparse-CGS and alias-hybrid sampler
/// kernels (the alias scenario must stay at least as fast: it amortises the
/// per-word dense-tree rebuild the sparse kernel pays every iteration).
fn scenarios() -> Vec<Scenario> {
    fn scale() -> ExperimentScale {
        ExperimentScale {
            tokens: 120_000,
            num_topics: 96,
            iterations: 8,
            seed: 42,
        }
    }
    /// The regime the alias hybrid targets: K large and a wide, Zipf-tailed
    /// vocabulary of short documents, where the sparse kernel's per-word
    /// `O(K)` column read + tree build dominates the iteration (on the
    /// long-document NYTimes twin the per-token θ-row traffic swamps it and
    /// the two samplers tie).
    fn large_k_throughput(sampler: SamplerStrategy) -> f64 {
        let corpus = culda_corpus::DatasetProfile {
            name: "tail-heavy".into(),
            num_docs: 6_000,
            vocab_size: 20_000,
            avg_doc_len: 20.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(42);
        let iterations = 6;
        let mut trainer = SessionBuilder::new()
            .corpus(&corpus)
            .config(
                LdaConfig::with_topics(512)
                    .seed(42)
                    .sync_shards(1)
                    .sampler(sampler),
            )
            .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 42))
            .build()
            .expect("trainer construction");
        trainer.train(iterations);
        trainer.average_throughput(iterations)
    }
    vec![
        Scenario {
            name: "nytimes_volta_1gpu_resident",
            run: || {
                let s = scale();
                let dataset = datasets::nytimes(&s);
                culda_throughput(&dataset, DeviceSpec::v100_volta(), 1, &s)
            },
        },
        Scenario {
            name: "pubmed_pascal_4gpu_scaling",
            run: || {
                let s = scale();
                let dataset = datasets::pubmed(&s);
                culda_throughput(&dataset, DeviceSpec::titan_xp_pascal(), 4, &s)
            },
        },
        Scenario {
            name: "nytimes_maxwell_1gpu_resident",
            run: || {
                let s = scale();
                let dataset = datasets::nytimes(&s);
                culda_throughput(&dataset, DeviceSpec::titan_x_maxwell(), 1, &s)
            },
        },
        Scenario {
            name: "pubmed_pascal_4gpu_autotuned_sync",
            run: || {
                let s = scale();
                let dataset = datasets::pubmed(&s);
                let mut trainer = SessionBuilder::new()
                    .corpus(&dataset.corpus)
                    // Default config: sync_shards = None → the tuner picks
                    // the shard count after the dense iteration 0.
                    .config(LdaConfig::with_topics(s.num_topics).seed(s.seed))
                    .system(MultiGpuSystem::homogeneous(
                        DeviceSpec::titan_xp_pascal(),
                        4,
                        s.seed,
                        Interconnect::Pcie3,
                    ))
                    .build()
                    .expect("trainer construction");
                trainer.train(s.iterations);
                trainer.average_throughput(s.iterations)
            },
        },
        Scenario {
            name: "tailheavy_volta_1gpu_largeK_sparse",
            run: || large_k_throughput(SamplerStrategy::SparseCgs),
        },
        Scenario {
            name: "tailheavy_volta_1gpu_largeK_alias",
            run: || large_k_throughput(SamplerStrategy::alias_hybrid()),
        },
    ]
}

fn measure() -> Vec<(String, f64)> {
    scenarios()
        .into_iter()
        .map(|s| {
            let tps = (s.run)();
            eprintln!("measured {:<32} {:>14.1} tokens/s", s.name, tps);
            (s.name.to_string(), tps)
        })
        .collect()
}

fn write_baseline(path: &str, rows: &[(String, f64)]) -> std::io::Result<()> {
    let mut out = String::from("{\n  \"scenarios\": [\n");
    for (i, (name, tps)) in rows.iter().enumerate() {
        let comma = if i + 1 < rows.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{ \"name\": \"{name}\", \"tokens_per_s\": {tps:.3} }}{comma}\n"
        ));
    }
    out.push_str("  ]\n}\n");
    std::fs::write(path, out)
}

/// Minimal parser for the baseline file this tool itself writes
/// (`"name": "...", "tokens_per_s": N` pairs); avoids a JSON dependency,
/// per the offline dependency policy (DESIGN.md §3).
fn read_baseline(path: &str) -> Result<Vec<(String, f64)>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let mut rows = Vec::new();
    for chunk in text.split('{').skip(2) {
        let name = chunk
            .split("\"name\"")
            .nth(1)
            .and_then(|s| s.split('"').nth(1))
            .ok_or_else(|| format!("malformed scenario entry in {path}"))?;
        let tps: f64 = chunk
            .split("\"tokens_per_s\"")
            .nth(1)
            .and_then(|s| s.split(':').nth(1))
            .map(|s| s.trim_start())
            .and_then(|s| {
                s.split(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-'))
                    .next()
            })
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| format!("malformed tokens_per_s for scenario {name} in {path}"))?;
        rows.push((name.to_string(), tps));
    }
    if rows.is_empty() {
        return Err(format!("{path} contains no scenarios"));
    }
    Ok(rows)
}

fn check(path: &str) -> Result<(), String> {
    let baseline = read_baseline(path)?;
    let measured = measure();
    let mut failures = Vec::new();
    println!(
        "{:<34} {:>14} {:>14} {:>8}",
        "scenario", "baseline t/s", "measured t/s", "ratio"
    );
    for (name, base_tps) in &baseline {
        let Some((_, tps)) = measured.iter().find(|(n, _)| n == name) else {
            failures.push(format!("scenario `{name}` in baseline but not measured"));
            continue;
        };
        let ratio = tps / base_tps;
        let verdict = if ratio < 1.0 - TOLERANCE {
            failures.push(format!(
                "{name}: {tps:.1} tokens/s is {:.1}% below the baseline {base_tps:.1}",
                (1.0 - ratio) * 100.0
            ));
            "FAIL"
        } else {
            "ok"
        };
        println!("{name:<34} {base_tps:>14.1} {tps:>14.1} {ratio:>7.3} {verdict}");
        if ratio > 1.0 + TOLERANCE {
            eprintln!(
                "note: {name} improved by {:.1}% — consider refreshing the baseline \
                 (perf-gate --write {path})",
                (ratio - 1.0) * 100.0
            );
        }
    }
    for (name, _) in &measured {
        if !baseline.iter().any(|(n, _)| n == name) {
            failures.push(format!(
                "scenario `{name}` is measured but missing from {path} — refresh the baseline"
            ));
        }
    }
    // Cross-scenario invariant, independent of the committed baseline: the
    // alias-hybrid sampler exists to beat sparse CGS on the large-K
    // tail-heavy workload, so the gate fails outright if it ever measures
    // slower there — even if both numbers individually stay within their
    // own baselines' tolerance.
    let tps = |name: &str| measured.iter().find(|(n, _)| n == name).map(|&(_, t)| t);
    if let (Some(alias), Some(sparse)) = (
        tps("tailheavy_volta_1gpu_largeK_alias"),
        tps("tailheavy_volta_1gpu_largeK_sparse"),
    ) {
        if alias < sparse {
            failures.push(format!(
                "alias sampler ({alias:.1} tokens/s) measured slower than sparse CGS \
                 ({sparse:.1} tokens/s) on the large-K scenario — the amortisation \
                 invariant is broken"
            ));
        } else {
            println!(
                "alias/sparse large-K ratio: {:.3} (must stay ≥ 1)",
                alias / sparse
            );
        }
    }
    if failures.is_empty() {
        println!(
            "perf gate passed ({} scenarios, tolerance {:.0}%)",
            baseline.len(),
            TOLERANCE * 100.0
        );
        Ok(())
    } else {
        Err(failures.join("\n"))
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.as_slice() {
        [flag, path] if flag == "--write" => {
            let rows = measure();
            write_baseline(path, &rows)
                .map_err(|e| format!("cannot write {path}: {e}"))
                .map(|()| println!("wrote {} scenarios to {path}", rows.len()))
        }
        [flag, path] if flag == "--check" => check(path),
        _ => Err("usage: perf-gate (--write|--check) <baseline.json>".to_string()),
    };
    if let Err(msg) = result {
        eprintln!("perf-gate: {msg}");
        std::process::exit(1);
    }
}
