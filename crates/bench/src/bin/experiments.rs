//! The experiment driver: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [table1|platforms|table3|table4|table5|figure7|figure8|figure9|cluster|ablations|all] [--paper-shape|--quick|--tiny]
//! ```
//!
//! With no arguments, runs everything at the `--quick` scale.

use culda_bench::{ablation, datasets, figures, tables, ExperimentScale};

fn scale_from_args(args: &[String]) -> ExperimentScale {
    if args.iter().any(|a| a == "--paper-shape") {
        ExperimentScale::paper_shape()
    } else if args.iter().any(|a| a == "--tiny") {
        ExperimentScale::tiny()
    } else {
        ExperimentScale::quick()
    }
}

fn run(which: &str, scale: &ExperimentScale) {
    match which {
        "table1" => print!("{}", tables::table1()),
        "platforms" | "table2" => print!("{}", tables::platforms()),
        "table3" => print!("{}", tables::table3(scale)),
        "table4" => {
            let rows = tables::table4(scale);
            print!("{}", tables::table4_text(&rows));
        }
        "table5" => {
            let rows = tables::table5(scale);
            print!("{}", tables::table5_text(&rows));
        }
        "figure7" => {
            for (dataset, series) in figures::figure7(scale) {
                print!("{}", figures::figure7_text(&dataset, &series));
                println!();
            }
        }
        "figure8" => {
            for (dataset, timelines) in figures::figure8(scale) {
                print!("{}", figures::figure8_text(&dataset, &timelines));
                println!();
            }
        }
        "figure9" => {
            let result = figures::figure9(scale);
            print!("{}", figures::figure9_text(&result));
        }
        "cluster" => {
            let result = figures::cluster_scaling(scale);
            print!("{}", figures::cluster_scaling_text(&result));
        }
        "ablations" => {
            let rows = ablation::ablations(scale);
            print!("{}", ablation::ablations_text(&rows));
            println!();
            let transfer = ablation::transfer_compression(scale);
            print!("{}", ablation::transfer_compression_text(&transfer));
        }
        "datasets" => {
            for d in datasets::both(scale) {
                println!("{}", d.stats());
            }
        }
        other => {
            eprintln!("unknown experiment: {other}");
            std::process::exit(2);
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = scale_from_args(&args);
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();

    let all = [
        "table1",
        "platforms",
        "table3",
        "table4",
        "table5",
        "figure7",
        "figure8",
        "figure9",
        "cluster",
        "ablations",
    ];
    let to_run: Vec<&str> = if requested.is_empty() || requested == ["all"] {
        all.to_vec()
    } else {
        requested
    };

    println!(
        "== CuLDA_CGS experiment harness (tokens={}, K={}, iterations={}) ==\n",
        scale.tokens, scale.num_topics, scale.iterations
    );
    for which in to_run {
        run(which, &scale);
        println!();
    }
}
