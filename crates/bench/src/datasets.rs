//! Scaled synthetic twins of the paper's datasets (Table 3).

use crate::scale::ExperimentScale;
use culda_corpus::{Corpus, CorpusStats, DatasetProfile};

/// A named dataset instance used by the experiments.
pub struct Dataset {
    /// Display name (`NYTimes` / `PubMed`, with the scale suffix).
    pub name: String,
    /// The profile the corpus was generated from.
    pub profile: DatasetProfile,
    /// The generated corpus.
    pub corpus: Corpus,
}

impl Dataset {
    /// Table 3-style statistics of the generated corpus.
    pub fn stats(&self) -> CorpusStats {
        CorpusStats::compute(self.name.clone(), &self.corpus)
    }
}

/// The scaled NYTimes twin (≈332 tokens/document — long documents).
pub fn nytimes(scale: &ExperimentScale) -> Dataset {
    let profile = DatasetProfile::nytimes().scaled_to_tokens(scale.tokens);
    let corpus = profile.generate(scale.seed);
    Dataset {
        name: "NYTimes".into(),
        profile,
        corpus,
    }
}

/// The scaled PubMed twin (≈90 tokens/document — short documents).
pub fn pubmed(scale: &ExperimentScale) -> Dataset {
    let profile = DatasetProfile::pubmed().scaled_to_tokens(scale.tokens);
    let corpus = profile.generate(scale.seed.wrapping_add(1));
    Dataset {
        name: "PubMed".into(),
        profile,
        corpus,
    }
}

/// Both datasets, in the order the paper reports them.
pub fn both(scale: &ExperimentScale) -> Vec<Dataset> {
    vec![nytimes(scale), pubmed(scale)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_twins_preserve_document_length_contrast() {
        let scale = ExperimentScale::tiny();
        let nyt = nytimes(&scale);
        let pm = pubmed(&scale);
        // The paper attributes the Figure 7 ramp-up difference to the 332 vs
        // 90 average document length; the twins must preserve that contrast.
        assert!(nyt.corpus.avg_doc_len() > 2.0 * pm.corpus.avg_doc_len());
        let target = scale.tokens as f64;
        for d in [&nyt, &pm] {
            let got = d.corpus.num_tokens() as f64;
            assert!((got - target).abs() / target < 0.25, "{}: {got}", d.name);
        }
    }
}
