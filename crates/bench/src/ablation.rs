//! Ablation studies of the design choices §6 calls out.
//!
//! The paper motivates several kernel-level decisions without isolating their
//! individual contribution; these ablations quantify each one on the
//! simulated substrate:
//!
//! * **shared p2 tree / p*(k) reuse** (§6.1.2) — on vs off;
//! * **16-bit precision compression** (§6.1.3) — on vs off;
//! * **index-tree fan-out** (§6.1.1) — warp-wide (32) vs binary (2);
//! * **load balancing** (§6.1.2) — splitting heavy words across blocks vs
//!   one block per word;
//! * **chunk-stream compression** (§6.1.3) — delta + LEB128 encoding of the
//!   word-major token stream that crosses the PCIe bus under the streamed
//!   schedule, vs transferring raw 32-bit ids.

use crate::datasets;
use crate::scale::ExperimentScale;
use culda_core::{LdaConfig, SessionBuilder};
use culda_corpus::Partitioner;
use culda_gpusim::{DeviceSpec, Interconnect, MultiGpuSystem};
use culda_sparse::varint;
use serde::{Deserialize, Serialize};

/// The outcome of one ablation: throughput with the optimisation enabled and
/// disabled.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Ablation {
    /// Name of the design choice.
    pub name: String,
    /// Average tokens/sec with the optimisation enabled (the paper's design).
    pub enabled_tokens_per_sec: f64,
    /// Average tokens/sec with the optimisation disabled.
    pub disabled_tokens_per_sec: f64,
}

impl Ablation {
    /// Speedup contributed by the optimisation.
    pub fn speedup(&self) -> f64 {
        self.enabled_tokens_per_sec / self.disabled_tokens_per_sec
    }
}

fn run(config: LdaConfig, scale: &ExperimentScale) -> f64 {
    let dataset = datasets::nytimes(scale);
    let system = MultiGpuSystem::single(DeviceSpec::titan_x_maxwell(), scale.seed);
    let mut trainer = SessionBuilder::new()
        .corpus(&dataset.corpus)
        .config(config)
        .system(system)
        .build()
        .expect("trainer");
    trainer.train(scale.iterations);
    trainer.average_throughput(scale.iterations)
}

/// Run all ablations on the NYTimes twin / Maxwell platform.
pub fn ablations(scale: &ExperimentScale) -> Vec<Ablation> {
    // The paper's dense reduce: the harness reproduces published results,
    // so the auto-tuned sharding default is pinned off.
    let base = LdaConfig::with_topics(scale.num_topics)
        .seed(scale.seed)
        .sync_shards(1);
    let baseline_tps = run(base.clone(), scale);
    let mut out = Vec::new();

    let mut no_share = base.clone();
    no_share.share_p2_tree = false;
    out.push(Ablation {
        name: "Shared p2 tree / p*(k) reuse (6.1.2)".into(),
        enabled_tokens_per_sec: baseline_tps,
        disabled_tokens_per_sec: run(no_share, scale),
    });

    let mut no_compress = base.clone();
    no_compress.compress_16bit = false;
    out.push(Ablation {
        name: "16-bit precision compression (6.1.3)".into(),
        enabled_tokens_per_sec: baseline_tps,
        disabled_tokens_per_sec: run(no_compress, scale),
    });

    let mut binary_tree = base.clone();
    binary_tree.tree_fanout = 2;
    out.push(Ablation {
        name: "32-way index tree vs binary tree (6.1.1)".into(),
        enabled_tokens_per_sec: baseline_tps,
        disabled_tokens_per_sec: run(binary_tree, scale),
    });

    let mut no_split = base;
    no_split.max_tokens_per_block = usize::MAX / 2;
    out.push(Ablation {
        name: "Heavy-word splitting across blocks (6.1.2)".into(),
        enabled_tokens_per_sec: baseline_tps,
        disabled_tokens_per_sec: run(no_split, scale),
    });

    out
}

/// Outcome of the chunk-stream compression ablation: bytes and PCIe time per
/// iteration for the streamed (`WorkSchedule2`) schedule, with and without the
/// delta + LEB128 encoding of the word-major token stream.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TransferCompression {
    /// Bytes of the raw 32-bit word-id stream across all chunks.
    pub raw_bytes: u64,
    /// Bytes after delta + LEB128 encoding.
    pub encoded_bytes: u64,
    /// PCIe 3.0 transfer time of the raw stream (one full pass).
    pub raw_transfer_s: f64,
    /// PCIe 3.0 transfer time of the encoded stream (one full pass).
    pub encoded_transfer_s: f64,
}

impl TransferCompression {
    /// `encoded / raw` size ratio.
    pub fn ratio(&self) -> f64 {
        if self.raw_bytes == 0 {
            1.0
        } else {
            self.encoded_bytes as f64 / self.raw_bytes as f64
        }
    }

    /// Transfer-time speedup contributed by the encoding.
    pub fn speedup(&self) -> f64 {
        self.raw_transfer_s / self.encoded_transfer_s
    }
}

/// Measure the chunk-stream compression on the PubMed twin partitioned into
/// four chunks (the configuration Figure 9 streams over four GPUs).
pub fn transfer_compression(scale: &ExperimentScale) -> TransferCompression {
    let dataset = datasets::pubmed(scale);
    let partitioner = Partitioner::by_tokens(&dataset.corpus, 4);
    let layouts = partitioner.build_layouts(&dataset.corpus);
    let mut raw_bytes = 0u64;
    let mut encoded_bytes = 0u64;
    for layout in &layouts {
        let ids: Vec<u32> = (0..layout.num_tokens())
            .map(|p| layout.word_of_position(p as u32))
            .collect();
        let stats = varint::delta_stats(&ids);
        raw_bytes += stats.raw_bytes;
        encoded_bytes += stats.encoded_bytes;
    }
    let link = Interconnect::Pcie3;
    TransferCompression {
        raw_bytes,
        encoded_bytes,
        raw_transfer_s: link.transfer_time_s(raw_bytes),
        encoded_transfer_s: link.transfer_time_s(encoded_bytes),
    }
}

/// Render the chunk-stream compression report.
pub fn transfer_compression_text(t: &TransferCompression) -> String {
    let mut out = String::from(
        "Chunk-stream compression for the streamed schedule (PubMed twin, 4 chunks, PCIe 3.0)\n",
    );
    out.push_str(&format!(
        "{:<34} {:>14} {:>14}\n",
        "", "bytes", "transfer (ms)"
    ));
    out.push_str(&format!(
        "{:<34} {:>14} {:>14.3}\n",
        "raw u32 word-major stream",
        t.raw_bytes,
        t.raw_transfer_s * 1e3
    ));
    out.push_str(&format!(
        "{:<34} {:>14} {:>14.3}\n",
        "delta + LEB128 encoded",
        t.encoded_bytes,
        t.encoded_transfer_s * 1e3
    ));
    out.push_str(&format!(
        "encoded/raw ratio: {:.2}   PCIe transfer speedup: {:.2}x\n",
        t.ratio(),
        t.speedup()
    ));
    out
}

/// Render the ablation table.
pub fn ablations_text(rows: &[Ablation]) -> String {
    let mut out =
        String::from("Ablations of CuLDA_CGS design choices (NYTimes twin, Maxwell, simulated)\n");
    out.push_str(&format!(
        "{:<44} {:>14} {:>14} {:>9}\n",
        "Design choice", "with (MT/s)", "without (MT/s)", "speedup"
    ));
    for a in rows {
        out.push_str(&format!(
            "{:<44} {:>14.1} {:>14.1} {:>8.2}x\n",
            a.name,
            a.enabled_tokens_per_sec / 1e6,
            a.disabled_tokens_per_sec / 1e6,
            a.speedup()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_and_sharing_help_at_tiny_scale() {
        let mut scale = ExperimentScale::tiny();
        scale.tokens = 30_000;
        let rows = ablations(&scale);
        assert_eq!(rows.len(), 4);
        let by_name = |needle: &str| {
            rows.iter()
                .find(|a| a.name.contains(needle))
                .unwrap()
                .speedup()
        };
        assert!(by_name("compression") > 1.0);
        assert!(by_name("Shared p2") > 0.9); // sharing never hurts materially
        let text = ablations_text(&rows);
        assert!(text.contains("speedup"));
    }

    #[test]
    fn chunk_stream_compression_shrinks_the_transfer() {
        let mut scale = ExperimentScale::tiny();
        scale.tokens = 20_000;
        let t = transfer_compression(&scale);
        assert_eq!(t.raw_bytes % 4, 0);
        assert!(t.encoded_bytes > 0 && t.encoded_bytes < t.raw_bytes);
        // Word-major word ids are non-decreasing with long runs of zeros, so
        // the encoding should land near one byte per token.  The transfer
        // speedup is smaller than the byte ratio because the PCIe latency
        // term is unaffected by compression (and dominates at tiny scale).
        assert!(t.ratio() < 0.5, "ratio {}", t.ratio());
        assert!(t.speedup() > 1.2, "speedup {}", t.speedup());
        assert!(t.raw_transfer_s > t.encoded_transfer_s);
        let text = transfer_compression_text(&t);
        assert!(text.contains("LEB128"));
        assert!(text.contains("PCIe transfer speedup"));
    }
}
