//! Figure 7: per-iteration sampling speed (Tokens/sec) across platforms.

use criterion::{criterion_group, criterion_main, Criterion};
use culda_bench::{datasets, figures, ExperimentScale};

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    for (dataset, series) in figures::figure7(&scale) {
        println!("{}", figures::figure7_text(&dataset, &series));
    }

    let tiny = ExperimentScale::tiny();
    let dataset = datasets::nytimes(&tiny);
    let mut group = c.benchmark_group("figure7/per_iteration_series");
    group.sample_size(10);
    group.bench_function("nytimes_tiny", |b| {
        b.iter(|| std::hint::black_box(figures::figure7_dataset(&dataset, &tiny)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
