//! Figure 9: multi-GPU scalability on the PubMed twin (Pascal platform).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use culda_bench::{datasets, figures, ExperimentScale};
use culda_core::{LdaConfig, SessionBuilder};
use culda_gpusim::{DeviceSpec, Interconnect, MultiGpuSystem};

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let result = figures::figure9(&scale);
    println!("{}", figures::figure9_text(&result));

    let tiny = ExperimentScale::tiny();
    let dataset = datasets::pubmed(&tiny);
    let mut group = c.benchmark_group("figure9/one_iteration_by_gpu_count");
    group.sample_size(10);
    for gpus in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(gpus), &gpus, |b, &gpus| {
            let mut trainer = SessionBuilder::new()
                .corpus(&dataset.corpus)
                // Pinned to the paper's dense reduce: the figure reproduces the
                // published schedule, so the auto-tuned sharding default stays off.
                .config(
                    LdaConfig::with_topics(tiny.num_topics)
                        .seed(tiny.seed)
                        .sync_shards(1),
                )
                .system(MultiGpuSystem::homogeneous(
                    DeviceSpec::titan_xp_pascal(),
                    gpus,
                    tiny.seed,
                    Interconnect::Pcie3,
                ))
                .build()
                .unwrap();
            b.iter(|| std::hint::black_box(trainer.run_iteration()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
