//! Table 5: per-kernel execution-time breakdown of CuLDA_CGS.

use criterion::{criterion_group, criterion_main, Criterion};
use culda_bench::{tables, ExperimentScale};

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let rows = tables::table5(&scale);
    println!("{}", tables::table5_text(&rows));

    let tiny = ExperimentScale::tiny();
    let mut group = c.benchmark_group("table5/breakdown");
    group.sample_size(10);
    group.bench_function("full_run_tiny", |b| {
        b.iter(|| std::hint::black_box(tables::table5(&tiny)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
