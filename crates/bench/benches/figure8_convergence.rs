//! Figure 8: log-likelihood per token vs simulated time for every solver.

use criterion::{criterion_group, criterion_main, Criterion};
use culda_bench::{datasets, figures, ExperimentScale};

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    for (dataset, timelines) in figures::figure8(&scale) {
        println!("{}", figures::figure8_text(&dataset, &timelines));
    }

    let tiny = ExperimentScale::tiny();
    let dataset = datasets::pubmed(&tiny);
    let mut group = c.benchmark_group("figure8/convergence");
    group.sample_size(10);
    group.bench_function("pubmed_tiny_all_solvers", |b| {
        b.iter(|| std::hint::black_box(figures::figure8_dataset(&dataset, &tiny, true)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
