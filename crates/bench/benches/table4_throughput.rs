//! Table 4: average Tokens/sec of CuLDA_CGS on every platform vs WarpLDA.
//!
//! Prints the regenerated table at the quick scale, then benchmarks one
//! CuLDA training iteration per platform so `cargo bench` tracks the host
//! cost of the functional simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use culda_bench::{datasets, tables, ExperimentScale};
use culda_core::{LdaConfig, SessionBuilder};
use culda_gpusim::MultiGpuSystem;

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let rows = tables::table4(&scale);
    println!("{}", tables::table4_text(&rows));

    let tiny = ExperimentScale::tiny();
    let dataset = datasets::nytimes(&tiny);
    let mut group = c.benchmark_group("table4/one_iteration");
    group.sample_size(10);
    for spec in tables::gpu_platforms() {
        let name = spec.name.clone();
        group.bench_with_input(BenchmarkId::from_parameter(&name), &spec, |b, spec| {
            let mut trainer = SessionBuilder::new()
                .corpus(&dataset.corpus)
                // Pinned to the paper's dense reduce: the figure reproduces the
                // published schedule, so the auto-tuned sharding default stays off.
                .config(
                    LdaConfig::with_topics(tiny.num_topics)
                        .seed(tiny.seed)
                        .sync_shards(1),
                )
                .system(MultiGpuSystem::single(spec.clone(), tiny.seed))
                .build()
                .unwrap();
            b.iter(|| std::hint::black_box(trainer.run_iteration()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
