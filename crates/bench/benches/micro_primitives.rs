//! Micro-benchmarks of the data-structure primitives the kernels are built
//! from: index-tree construction and sampling, alias tables, prefix sums and
//! CSR rebuilds.  These track the host-side cost of the functional simulation
//! and double as regression guards for the `culda-sparse` crate.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use culda_sparse::{prefix, AliasTable, CsrBuilder, IndexTree};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn bench_index_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/index_tree");
    for &k in &[256usize, 1024, 4096] {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let weights: Vec<f32> = (0..k).map(|_| rng.gen_range(0.0..1.0)).collect();
        group.bench_with_input(BenchmarkId::new("build", k), &weights, |b, w| {
            b.iter(|| std::hint::black_box(IndexTree::new(w)))
        });
        let tree = IndexTree::new(&weights);
        group.bench_with_input(BenchmarkId::new("sample", k), &tree, |b, tree| {
            let mut u = 0.1f32;
            b.iter(|| {
                u = (u + 0.37) % 1.0;
                std::hint::black_box(tree.sample(u * tree.total()))
            })
        });
    }
    group.finish();
}

fn bench_alias_table(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/alias_table");
    for &k in &[256usize, 1024] {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let weights: Vec<f32> = (0..k).map(|_| rng.gen_range(0.0..1.0)).collect();
        group.bench_with_input(BenchmarkId::new("build", k), &weights, |b, w| {
            b.iter(|| std::hint::black_box(AliasTable::new(w)))
        });
        let table = AliasTable::new(&weights);
        group.bench_with_input(BenchmarkId::new("sample", k), &table, |b, table| {
            let mut rng = ChaCha8Rng::seed_from_u64(3);
            b.iter(|| std::hint::black_box(table.sample(&mut rng)))
        });
    }
    group.finish();
}

fn bench_prefix_and_csr(c: &mut Criterion) {
    let mut group = c.benchmark_group("micro/prefix_and_csr");
    let counts: Vec<u64> = (0..100_000u64).map(|i| i % 13).collect();
    group.bench_function("parallel_offsets_100k", |b| {
        b.iter(|| std::hint::black_box(prefix::parallel_offsets_u64(&counts)))
    });
    let rows: Vec<Vec<(u16, u32)>> = (0..2000)
        .map(|d| {
            (0..64u16)
                .map(|k| ((k * 7 + d as u16) % 96, 1u32))
                .collect()
        })
        .collect();
    group.bench_function("csr_rebuild_2000x96", |b| {
        b.iter(|| {
            let mut builder = CsrBuilder::new(rows.len(), 96);
            for row in &rows {
                builder.push_row(row.iter().copied());
            }
            std::hint::black_box(builder.finish())
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_index_tree,
    bench_alias_table,
    bench_prefix_and_csr
);
criterion_main!(benches);
