//! Table 1: Flops/Byte roofline characterisation of LDA sampling (§3.1).
//!
//! Prints the regenerated table, then benchmarks the analysis itself (it is
//! analytic, so this mostly guards against accidental regressions in the
//! metric code).

use criterion::{criterion_group, criterion_main, Criterion};
use culda_bench::tables;

fn bench(c: &mut Criterion) {
    println!("{}", tables::table1());
    c.bench_function("table1/roofline_analysis", |b| {
        b.iter(|| {
            let steps = culda_metrics::table1();
            let avg = culda_metrics::roofline::average_intensity();
            std::hint::black_box((steps, avg))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
