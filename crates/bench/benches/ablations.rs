//! Ablations of the §6 design choices (shared p2 tree, 16-bit compression,
//! tree fan-out, heavy-word splitting, chunk-stream compression).

use criterion::{criterion_group, criterion_main, Criterion};
use culda_bench::{ablation, ExperimentScale};

fn bench(c: &mut Criterion) {
    let scale = ExperimentScale::quick();
    let rows = ablation::ablations(&scale);
    println!("{}", ablation::ablations_text(&rows));
    println!(
        "{}",
        ablation::transfer_compression_text(&ablation::transfer_compression(&scale))
    );

    let tiny = ExperimentScale::tiny();
    let mut group = c.benchmark_group("ablations");
    group.sample_size(10);
    group.bench_function("all_tiny", |b| {
        b.iter(|| std::hint::black_box(ablation::ablations(&tiny)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
