//! Ablation benches for the extensions beyond the paper's evaluation:
//!
//! * the §5.2 tree reduce+broadcast versus a ring all-reduce, on a contended
//!   PCIe tree and on an NVLink mesh, across GPU counts and φ sizes;
//! * the vocabulary-sharded reduce (DESIGN.md §8): per-shard reduce work vs
//!   the synchronization cost the iteration still *sees* once shard reduces
//!   overlap sampling, across shard counts;
//! * energy per simulated sampling pass across device generations.
//!
//! These answer the "what if" questions DESIGN.md lists under the design
//! choices the paper fixes without ablating (flat interconnect, tree
//! collective, throughput-only evaluation).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use culda_gpusim::cost::kernel_time;
use culda_gpusim::{CostCounters, DeviceSpec, EnergyModel, Topology};

/// φ replica sizes (bytes) for representative (K, V) model shapes at 16-bit
/// precision: (K=1024, V=102k) ≈ NYTimes, (K=1024, V=141k) ≈ PubMed.
const PHI_BYTES: &[(&str, u64)] = &[
    ("nytimes_k1024", 1024 * 101_636 * 2),
    ("pubmed_k1024", 1024 * 141_043 * 2),
];

const ADD_BW: f64 = 500.0e9;

fn print_sync_table() {
    println!("φ synchronization time (ms): tree reduce+broadcast vs ring all-reduce");
    println!(
        "{:<16} {:<12} {:>5} {:>10} {:>10} {:>10}",
        "model", "topology", "GPUs", "tree", "ring", "tree/ring"
    );
    for &(name, bytes) in PHI_BYTES {
        for (topo_name, topo) in [
            ("pcie-tree", Topology::PcieTree),
            ("nvlink", Topology::NvLinkMesh),
        ] {
            for gpus in [2usize, 4, 8] {
                let (tree, ring, ratio) = topo.tree_vs_ring(gpus, bytes, ADD_BW);
                println!(
                    "{:<16} {:<12} {:>5} {:>10.3} {:>10.3} {:>10.2}",
                    name,
                    topo_name,
                    gpus,
                    tree * 1e3,
                    ring * 1e3,
                    ratio
                );
            }
        }
    }
}

fn print_sharded_sync_table() {
    // A sampling phase of 2× the dense sync time — the compute:sync balance
    // of the paper's 4-GPU NYTimes runs (Figure 9 discussion) — overlapped
    // with the shard reduces at depth 2.
    println!("\nsharded φ synchronization (ms), 4 GPUs: reduce work vs exposed-after-overlap");
    println!(
        "{:<16} {:<12} {:>7} {:>12} {:>12} {:>10}",
        "model", "topology", "shards", "work", "exposed", "hidden %"
    );
    for &(name, bytes) in PHI_BYTES {
        for (topo_name, topo) in [
            ("pcie-tree", Topology::PcieTree),
            ("nvlink", Topology::NvLinkMesh),
        ] {
            let compute = 2.0 * topo.tree_sync_time_s(4, bytes, ADD_BW);
            for shards in [1usize, 2, 4, 8, 16] {
                let depth = if shards == 1 { 0 } else { 2 };
                let (work, exposed) =
                    topo.overlapped_sync_exposed_s(4, bytes, shards, ADD_BW, compute, depth);
                println!(
                    "{:<16} {:<12} {:>7} {:>12.3} {:>12.3} {:>10.1}",
                    name,
                    topo_name,
                    shards,
                    work * 1e3,
                    exposed * 1e3,
                    (work - exposed).max(0.0) / work * 100.0
                );
            }
        }
    }
}

fn print_energy_table() {
    // One simulated NYTimes-scale sampling iteration worth of traffic,
    // derived from the §3.1 arithmetic intensity (0.27 Flops/Byte).
    let bytes_per_token = 400u64;
    let tokens = 99_542_125u64;
    let counters = CostCounters {
        dram_read_bytes: tokens * bytes_per_token * 9 / 10,
        dram_write_bytes: tokens * bytes_per_token / 10,
        flops: (tokens * bytes_per_token) * 27 / 100,
        ..CostCounters::default()
    };
    println!("\nenergy per NYTimes-scale sampling iteration:");
    println!(
        "{:<30} {:>10} {:>10} {:>14}",
        "device", "time (s)", "energy (J)", "tokens/J"
    );
    for spec in [
        DeviceSpec::xeon_e5_2690v4(),
        DeviceSpec::titan_x_maxwell(),
        DeviceSpec::titan_xp_pascal(),
        DeviceSpec::v100_volta(),
        DeviceSpec::a100_ampere(),
    ] {
        let time = kernel_time(&spec, &counters, 1_000_000);
        let energy = EnergyModel::for_spec(&spec).kernel_energy_j(&counters, &time);
        println!(
            "{:<30} {:>10.3} {:>10.0} {:>14.0}",
            spec.name,
            time.total_s,
            energy,
            tokens as f64 / energy
        );
    }
}

fn bench(c: &mut Criterion) {
    print_sync_table();
    print_sharded_sync_table();
    print_energy_table();

    let mut group = c.benchmark_group("collectives/sync_time_model");
    group.sample_size(20);
    for gpus in [2usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("tree_pcie", gpus), &gpus, |b, &gpus| {
            b.iter(|| {
                std::hint::black_box(Topology::PcieTree.tree_sync_time_s(
                    gpus,
                    PHI_BYTES[0].1,
                    ADD_BW,
                ))
            })
        });
        group.bench_with_input(BenchmarkId::new("ring_pcie", gpus), &gpus, |b, &gpus| {
            b.iter(|| {
                std::hint::black_box(Topology::PcieTree.ring_allreduce_time_s(
                    gpus,
                    PHI_BYTES[0].1,
                    ADD_BW,
                ))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
