//! Corpus statistics (Table 3 of the paper).

use crate::corpus::Corpus;
use serde::{Deserialize, Serialize};

/// Summary statistics of a corpus, matching the columns of Table 3 plus the
/// derived quantities the paper discusses in §7.1 (average document length
/// drives the initial sparsity of θ and therefore the throughput ramp-up).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CorpusStats {
    /// Dataset name (free-form label).
    pub name: String,
    /// Total token count `T`.
    pub num_tokens: u64,
    /// Document count `D`.
    pub num_docs: u64,
    /// Vocabulary size `V`.
    pub vocab_size: u64,
    /// Average document length `T / D`.
    pub avg_doc_len: f64,
    /// Longest document.
    pub max_doc_len: u64,
    /// Number of vocabulary entries that actually occur.
    pub words_in_use: u64,
}

impl CorpusStats {
    /// Compute statistics for a corpus.
    pub fn compute(name: impl Into<String>, corpus: &Corpus) -> Self {
        CorpusStats {
            name: name.into(),
            num_tokens: corpus.num_tokens() as u64,
            num_docs: corpus.num_docs() as u64,
            vocab_size: corpus.vocab_size() as u64,
            avg_doc_len: corpus.avg_doc_len(),
            max_doc_len: corpus.max_doc_len() as u64,
            words_in_use: corpus.words_in_use() as u64,
        }
    }

    /// Expected sparsity of a θ row after convergence given `K` topics: the
    /// number of non-zero topics per document is bounded by
    /// `min(doc_len, K)`, and for typical corpora is far below `K` — the
    /// property that makes sparsity-aware sampling (§6.1.1) profitable.
    pub fn expected_theta_row_nnz(&self, num_topics: usize) -> f64 {
        self.avg_doc_len.min(num_topics as f64)
    }

    /// A Table 3-style row: `dataset  #Tokens  #Documents  #Words`.
    pub fn table3_row(&self) -> String {
        format!(
            "{:<18} {:>14} {:>12} {:>10}",
            self.name, self.num_tokens, self.num_docs, self.vocab_size
        )
    }
}

impl std::fmt::Display for CorpusStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} tokens, {} docs, {} words (avg doc len {:.1}, max {})",
            self.name,
            self.num_tokens,
            self.num_docs,
            self.vocab_size,
            self.avg_doc_len,
            self.max_doc_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use crate::synthetic::DatasetProfile;

    #[test]
    fn stats_of_small_corpus() {
        let mut b = CorpusBuilder::new(8);
        b.push_doc(&[0, 1, 2, 3]);
        b.push_doc(&[1, 1]);
        let c = b.build();
        let s = CorpusStats::compute("tiny", &c);
        assert_eq!(s.num_tokens, 6);
        assert_eq!(s.num_docs, 2);
        assert_eq!(s.vocab_size, 8);
        assert_eq!(s.max_doc_len, 4);
        assert_eq!(s.words_in_use, 4);
        assert!((s.avg_doc_len - 3.0).abs() < 1e-12);
    }

    #[test]
    fn theta_nnz_estimate_is_bounded_by_k_and_doc_len() {
        let s = CorpusStats {
            name: "x".into(),
            num_tokens: 1000,
            num_docs: 10,
            vocab_size: 50,
            avg_doc_len: 100.0,
            max_doc_len: 200,
            words_in_use: 50,
        };
        assert_eq!(s.expected_theta_row_nnz(1024), 100.0);
        assert_eq!(s.expected_theta_row_nnz(32), 32.0);
    }

    #[test]
    fn table3_row_and_display_include_the_name() {
        let c = DatasetProfile::nytimes().scaled(0.0003).generate(1);
        let s = CorpusStats::compute("NYTimes-scaled", &c);
        assert!(s.table3_row().contains("NYTimes-scaled"));
        assert!(s.to_string().contains("tokens"));
    }
}
