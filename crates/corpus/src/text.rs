//! Plain-text ingestion pipeline.
//!
//! The paper consumes the UCI bag-of-words corpora (NYTimes, PubMed), which
//! are pre-tokenised.  A production LDA library also needs to build corpora
//! from raw text, so this module provides the conventional pipeline used to
//! produce those corpora in the first place: tokenisation, stop-word and
//! rare/frequent-word filtering, vocabulary interning and the final
//! [`Corpus`] assembly.
//!
//! ```
//! use culda_corpus::text::{TextPipeline, TokenizerOptions};
//!
//! let docs = [
//!     "The GPU samples topics from the corpus.",
//!     "The CPU schedules workloads for the GPU!",
//! ];
//! let (corpus, vocab) = TextPipeline::new(TokenizerOptions::default())
//!     .ingest_documents(docs.iter().copied())
//!     .build();
//! assert_eq!(corpus.num_docs(), 2);
//! assert!(vocab.id("gpu").is_some());
//! assert!(vocab.id("the").is_none()); // stop word
//! ```

use crate::corpus::{Corpus, CorpusBuilder, WordId};
use crate::vocab::Vocabulary;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read};

/// A conservative default English stop-word list (the usual function words
/// removed before topic modelling; matches the spirit of the UCI corpora,
/// which ship with stop words already stripped).
pub const DEFAULT_STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "been", "but", "by", "for", "from", "had", "has",
    "have", "he", "her", "his", "i", "if", "in", "into", "is", "it", "its", "my", "no", "not",
    "of", "on", "or", "our", "she", "so", "that", "the", "their", "them", "then", "there", "these",
    "they", "this", "to", "was", "we", "were", "which", "who", "will", "with", "would", "you",
    "your",
];

/// Options controlling how raw text is turned into tokens.
#[derive(Debug, Clone)]
pub struct TokenizerOptions {
    /// Lower-case every token before interning.
    pub lowercase: bool,
    /// Drop tokens shorter than this many characters.
    pub min_token_len: usize,
    /// Drop tokens longer than this many characters (0 disables the check).
    pub max_token_len: usize,
    /// Drop tokens that consist only of digits.
    pub drop_numeric: bool,
    /// Remove the built-in English stop words.
    pub remove_stopwords: bool,
}

impl Default for TokenizerOptions {
    fn default() -> Self {
        TokenizerOptions {
            lowercase: true,
            min_token_len: 2,
            max_token_len: 0,
            drop_numeric: true,
            remove_stopwords: true,
        }
    }
}

/// Splits raw text into normalised tokens according to [`TokenizerOptions`].
#[derive(Debug, Clone)]
pub struct Tokenizer {
    options: TokenizerOptions,
    stopwords: Vec<String>,
}

impl Tokenizer {
    /// Build a tokenizer with the default stop-word list.
    pub fn new(options: TokenizerOptions) -> Self {
        let stopwords = if options.remove_stopwords {
            DEFAULT_STOPWORDS.iter().map(|s| s.to_string()).collect()
        } else {
            Vec::new()
        };
        Tokenizer { options, stopwords }
    }

    /// Replace the stop-word list (implies stop-word removal).
    pub fn with_stopwords<I, S>(mut self, words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.stopwords = words
            .into_iter()
            .map(|w| {
                let w: String = w.into();
                if self.options.lowercase {
                    w.to_lowercase()
                } else {
                    w
                }
            })
            .collect();
        self.options.remove_stopwords = true;
        self
    }

    /// The active options.
    pub fn options(&self) -> &TokenizerOptions {
        &self.options
    }

    fn is_stopword(&self, token: &str) -> bool {
        self.options.remove_stopwords && self.stopwords.iter().any(|s| s == token)
    }

    /// Tokenise one document of raw text.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        for raw in text.split(|c: char| !c.is_alphanumeric() && c != '\'') {
            let raw = raw.trim_matches('\'');
            if raw.is_empty() {
                continue;
            }
            let token = if self.options.lowercase {
                raw.to_lowercase()
            } else {
                raw.to_string()
            };
            if token.chars().count() < self.options.min_token_len {
                continue;
            }
            if self.options.max_token_len > 0 && token.chars().count() > self.options.max_token_len
            {
                continue;
            }
            if self.options.drop_numeric && token.chars().all(|c| c.is_ascii_digit()) {
                continue;
            }
            if self.is_stopword(&token) {
                continue;
            }
            out.push(token);
        }
        out
    }
}

/// Vocabulary pruning thresholds applied after all documents are ingested.
#[derive(Debug, Clone, Copy)]
pub struct PruneOptions {
    /// Drop words that appear in fewer than this many documents.
    pub min_doc_freq: usize,
    /// Drop words that appear in more than this fraction of documents
    /// (1.0 disables the check).
    pub max_doc_ratio: f64,
    /// Keep at most this many words, preferring the most frequent
    /// (0 disables the cap).
    pub max_vocab: usize,
}

impl Default for PruneOptions {
    fn default() -> Self {
        PruneOptions {
            min_doc_freq: 1,
            max_doc_ratio: 1.0,
            max_vocab: 0,
        }
    }
}

/// Builds a [`Corpus`] + [`Vocabulary`] pair from raw text documents.
///
/// Documents are tokenised as they are ingested; the vocabulary is pruned and
/// word ids are assigned only when [`TextPipeline::build`] is called, so the
/// resulting ids are contiguous and ordered by descending corpus frequency
/// (the ordering the word-major GPU layout benefits from, §6.1.2).
#[derive(Debug)]
pub struct TextPipeline {
    tokenizer: Tokenizer,
    prune: PruneOptions,
    /// Tokenised documents, still as interning-stage ids.
    docs: Vec<Vec<u32>>,
    /// Interning-stage vocabulary: word → provisional id.
    intern: HashMap<String, u32>,
    words: Vec<String>,
    /// Per-word token counts and document frequencies (provisional ids).
    token_freq: Vec<u64>,
    doc_freq: Vec<u32>,
}

impl TextPipeline {
    /// Start a pipeline with the given tokenizer options and default pruning.
    pub fn new(options: TokenizerOptions) -> Self {
        TextPipeline {
            tokenizer: Tokenizer::new(options),
            prune: PruneOptions::default(),
            docs: Vec::new(),
            intern: HashMap::new(),
            words: Vec::new(),
            token_freq: Vec::new(),
            doc_freq: Vec::new(),
        }
    }

    /// Use a custom tokenizer (e.g. with a domain stop-word list).
    pub fn with_tokenizer(mut self, tokenizer: Tokenizer) -> Self {
        self.tokenizer = tokenizer;
        self
    }

    /// Set the vocabulary pruning thresholds.
    pub fn with_pruning(mut self, prune: PruneOptions) -> Self {
        self.prune = prune;
        self
    }

    /// Number of documents ingested so far.
    pub fn num_docs(&self) -> usize {
        self.docs.len()
    }

    /// Number of distinct words seen so far (before pruning).
    pub fn raw_vocab_size(&self) -> usize {
        self.words.len()
    }

    fn intern_token(&mut self, token: String) -> u32 {
        if let Some(&id) = self.intern.get(&token) {
            return id;
        }
        let id = self.words.len() as u32;
        self.intern.insert(token.clone(), id);
        self.words.push(token);
        self.token_freq.push(0);
        self.doc_freq.push(0);
        id
    }

    /// Ingest one document of raw text.
    pub fn ingest(&mut self, text: &str) -> &mut Self {
        let tokens = self.tokenizer.tokenize(text);
        let mut ids = Vec::with_capacity(tokens.len());
        for t in tokens {
            let id = self.intern_token(t);
            self.token_freq[id as usize] += 1;
            ids.push(id);
        }
        // Document frequency counts each word once per document.
        let mut seen = ids.clone();
        seen.sort_unstable();
        seen.dedup();
        for id in seen {
            self.doc_freq[id as usize] += 1;
        }
        self.docs.push(ids);
        self
    }

    /// Ingest many documents (builder style).
    pub fn ingest_documents<'a, I>(mut self, docs: I) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        for d in docs {
            self.ingest(d);
        }
        self
    }

    /// Ingest a reader treating every line as one document (a common
    /// one-document-per-line dump format).
    pub fn ingest_lines<R: Read>(&mut self, reader: R) -> std::io::Result<usize> {
        let reader = BufReader::new(reader);
        let mut n = 0;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            self.ingest(&line);
            n += 1;
        }
        Ok(n)
    }

    /// Decide which provisional word ids survive pruning and assign final ids
    /// ordered by descending token frequency.
    fn final_ids(&self) -> Vec<Option<WordId>> {
        let num_docs = self.docs.len().max(1);
        let max_df = (self.prune.max_doc_ratio * num_docs as f64).floor() as u32;
        let mut kept: Vec<u32> = (0..self.words.len() as u32)
            .filter(|&id| {
                let df = self.doc_freq[id as usize] as usize;
                if df < self.prune.min_doc_freq {
                    return false;
                }
                if self.prune.max_doc_ratio < 1.0 && self.doc_freq[id as usize] > max_df {
                    return false;
                }
                true
            })
            .collect();
        // Most frequent words first; ties broken lexicographically for
        // determinism.
        kept.sort_by(|&a, &b| {
            self.token_freq[b as usize]
                .cmp(&self.token_freq[a as usize])
                .then_with(|| self.words[a as usize].cmp(&self.words[b as usize]))
        });
        if self.prune.max_vocab > 0 {
            kept.truncate(self.prune.max_vocab);
        }
        let mut map = vec![None; self.words.len()];
        for (new_id, &old_id) in kept.iter().enumerate() {
            map[old_id as usize] = Some(new_id as WordId);
        }
        map
    }

    /// Finish the pipeline: prune the vocabulary, assign final word ids and
    /// assemble the corpus.  Documents that lose all their tokens to pruning
    /// are kept as empty documents so external document ids stay aligned.
    pub fn build(self) -> (Corpus, Vocabulary) {
        let map = self.final_ids();
        let kept_words: Vec<(WordId, &str)> = map
            .iter()
            .enumerate()
            .filter_map(|(old, new)| new.map(|n| (n, self.words[old].as_str())))
            .collect();
        let vocab_size = kept_words.len();
        let mut ordered = vec![""; vocab_size];
        for (new_id, word) in kept_words {
            ordered[new_id as usize] = word;
        }
        let vocab = Vocabulary::from_words(ordered.iter().copied());

        let mut builder = CorpusBuilder::new(vocab_size.max(1));
        let total: usize = self.docs.iter().map(|d| d.len()).sum();
        builder.reserve_tokens(total);
        let mut scratch = Vec::new();
        for doc in &self.docs {
            scratch.clear();
            scratch.extend(doc.iter().filter_map(|&old| map[old as usize]));
            builder.push_doc(&scratch);
        }
        (builder.build(), vocab)
    }
}

/// Read a UCI `vocab.*.txt` file: one word per line, line number = word id.
pub fn read_vocab<R: Read>(reader: R) -> std::io::Result<Vocabulary> {
    let reader = BufReader::new(reader);
    let mut words = Vec::new();
    for line in reader.lines() {
        let line = line?;
        let w = line.trim();
        if !w.is_empty() {
            words.push(w.to_string());
        }
    }
    Ok(Vocabulary::from_words(words.iter().map(|s| s.as_str())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizer_normalises_and_filters() {
        let t = Tokenizer::new(TokenizerOptions::default());
        let toks = t.tokenize("The GPU's 32 warps sample 1024 topics, quickly!");
        assert_eq!(toks, vec!["gpu's", "warps", "sample", "topics", "quickly"]);
    }

    #[test]
    fn tokenizer_respects_length_limits() {
        let t = Tokenizer::new(TokenizerOptions {
            min_token_len: 4,
            max_token_len: 6,
            remove_stopwords: false,
            ..TokenizerOptions::default()
        });
        let toks = t.tokenize("a abc abcd abcdef abcdefg");
        assert_eq!(toks, vec!["abcd", "abcdef"]);
    }

    #[test]
    fn tokenizer_custom_stopwords_replace_the_default_list() {
        let t = Tokenizer::new(TokenizerOptions::default()).with_stopwords(["gpu", "CPU"]);
        let toks = t.tokenize("GPU and CPU share the corpus");
        // Only the custom words are removed; the default English list no
        // longer applies once it has been replaced.
        assert_eq!(toks, vec!["and", "share", "the", "corpus"]);
    }

    #[test]
    fn pipeline_builds_corpus_and_vocab() {
        let docs = [
            "topic models infer topics from documents",
            "documents contain tokens and tokens map to topics",
            "sampling reassigns topics to tokens",
        ];
        let (corpus, vocab) = TextPipeline::new(TokenizerOptions::default())
            .ingest_documents(docs.iter().copied())
            .build();
        assert_eq!(corpus.num_docs(), 3);
        assert_eq!(corpus.vocab_size(), vocab.len());
        corpus.validate().unwrap();
        // "tokens" and "topics" both appear 3 times; the tie is broken
        // lexicographically, so "tokens" gets the smallest word id.
        assert_eq!(vocab.id("tokens"), Some(0));
        assert!(vocab.id("topics").is_some());
        // Every document has at least one surviving token.
        for d in 0..corpus.num_docs() {
            assert!(corpus.doc_len(d) > 0);
        }
    }

    #[test]
    fn pruning_by_doc_freq_and_cap() {
        let docs = ["alpha beta gamma", "alpha beta delta", "alpha epsilon zeta"];
        let (corpus, vocab) = TextPipeline::new(TokenizerOptions {
            remove_stopwords: false,
            min_token_len: 1,
            ..TokenizerOptions::default()
        })
        .with_pruning(PruneOptions {
            min_doc_freq: 2,
            max_doc_ratio: 1.0,
            max_vocab: 0,
        })
        .ingest_documents(docs.iter().copied())
        .build();
        // Only "alpha" (df=3) and "beta" (df=2) survive.
        assert_eq!(vocab.len(), 2);
        assert!(vocab.id("alpha").is_some());
        assert!(vocab.id("beta").is_some());
        assert!(vocab.id("gamma").is_none());
        assert_eq!(corpus.num_tokens(), 5);
    }

    #[test]
    fn pruning_max_doc_ratio_removes_ubiquitous_words() {
        let docs = [
            "common rare1",
            "common rare2",
            "common rare3",
            "common rare4",
        ];
        let (_, vocab) = TextPipeline::new(TokenizerOptions {
            remove_stopwords: false,
            min_token_len: 1,
            drop_numeric: false,
            ..TokenizerOptions::default()
        })
        .with_pruning(PruneOptions {
            min_doc_freq: 1,
            max_doc_ratio: 0.75,
            max_vocab: 0,
        })
        .ingest_documents(docs.iter().copied())
        .build();
        assert!(vocab.id("common").is_none());
        assert!(vocab.id("rare1").is_some());
    }

    #[test]
    fn max_vocab_keeps_most_frequent_words() {
        let docs = ["x x x y y z"];
        let (corpus, vocab) = TextPipeline::new(TokenizerOptions {
            remove_stopwords: false,
            min_token_len: 1,
            ..TokenizerOptions::default()
        })
        .with_pruning(PruneOptions {
            max_vocab: 2,
            ..PruneOptions::default()
        })
        .ingest_documents(docs.iter().copied())
        .build();
        assert_eq!(vocab.len(), 2);
        assert_eq!(vocab.id("x"), Some(0));
        assert_eq!(vocab.id("y"), Some(1));
        assert_eq!(corpus.num_tokens(), 5);
    }

    #[test]
    fn ingest_lines_treats_each_line_as_document() {
        let text = "first document here\n\nsecond document here\n";
        let mut pipeline = TextPipeline::new(TokenizerOptions::default());
        let n = pipeline.ingest_lines(text.as_bytes()).unwrap();
        assert_eq!(n, 2);
        let (corpus, _) = pipeline.build();
        assert_eq!(corpus.num_docs(), 2);
    }

    #[test]
    fn empty_documents_are_preserved_for_alignment() {
        let docs = ["the and of is to was", "real content words"];
        let (corpus, _) = TextPipeline::new(TokenizerOptions::default())
            .ingest_documents(docs.iter().copied())
            .build();
        assert_eq!(corpus.num_docs(), 2);
        assert_eq!(corpus.doc_len(0), 0);
        assert!(corpus.doc_len(1) > 0);
    }

    #[test]
    fn read_vocab_assigns_line_order_ids() {
        let file = "aardvark\nbison\n\ncat\n";
        let v = read_vocab(file.as_bytes()).unwrap();
        assert_eq!(v.len(), 3);
        assert_eq!(v.id("aardvark"), Some(0));
        assert_eq!(v.id("cat"), Some(2));
    }
}
