//! Workload partitioning and chunk layouts (§4, §5.1, §6.1.2, §6.2).
//!
//! CuLDA_CGS partitions the corpus **by document** into `C = M × G` chunks
//! that are balanced *by token count* ("the corpus is evenly partitioned by
//! number of tokens, instead of number of documents", §4).  Each chunk is then
//! preprocessed on the CPU into the layout the GPU kernels consume:
//!
//! * a **word-major** token ordering, so every thread block samples tokens of
//!   a single word and can share the p2 index tree and the p*(k) array in
//!   shared memory (§6.1.2);
//! * a **document–word map** — for every document, the positions of its
//!   tokens inside the word-major arrays — which the update-θ kernel uses to
//!   rebuild θ rows (§6.2, "the map is generated on CPU's side at the data
//!   preprocessing stage").

use crate::corpus::{Corpus, WordId};
use culda_sparse::prefix::parallel_offsets_u64;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A contiguous range of documents assigned to one chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DocRange {
    /// First (global) document index in the chunk.
    pub start: usize,
    /// One past the last (global) document index.
    pub end: usize,
}

impl DocRange {
    /// Number of documents in the range.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when the range holds no documents.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Token-balanced, partition-by-document chunking of a corpus.
#[derive(Debug, Clone)]
pub struct Partitioner {
    ranges: Vec<DocRange>,
    tokens_per_chunk: Vec<u64>,
}

impl Partitioner {
    /// Split `corpus` into `num_chunks` contiguous document ranges whose token
    /// counts are as balanced as possible.
    ///
    /// # Panics
    /// Panics if `num_chunks == 0`.
    pub fn by_tokens(corpus: &Corpus, num_chunks: usize) -> Self {
        assert!(num_chunks > 0, "must request at least one chunk");
        let d = corpus.num_docs();
        let doc_lens: Vec<u64> = (0..d).map(|i| corpus.doc_len(i) as u64).collect();
        let offsets = parallel_offsets_u64(&doc_lens);
        let total = *offsets.last().unwrap();

        let mut ranges = Vec::with_capacity(num_chunks);
        let mut tokens_per_chunk = Vec::with_capacity(num_chunks);
        let mut start = 0usize;
        for c in 0..num_chunks {
            // Ideal cumulative token count at the end of chunk c.
            let target = total * (c as u64 + 1) / num_chunks as u64;
            // First document index whose cumulative count reaches the target.
            let end = if c + 1 == num_chunks {
                d
            } else {
                let mut e = offsets.partition_point(|&t| t < target);
                e = e.clamp(start, d);
                // Never produce an empty chunk while documents remain.
                if e == start && start < d {
                    e = start + 1;
                }
                e.min(d)
            };
            ranges.push(DocRange { start, end });
            tokens_per_chunk.push(offsets[end] - offsets[start]);
            start = end;
        }
        Partitioner {
            ranges,
            tokens_per_chunk,
        }
    }

    /// The document ranges, one per chunk.
    pub fn ranges(&self) -> &[DocRange] {
        &self.ranges
    }

    /// Tokens assigned to each chunk.
    pub fn tokens_per_chunk(&self) -> &[u64] {
        &self.tokens_per_chunk
    }

    /// Number of chunks.
    pub fn num_chunks(&self) -> usize {
        self.ranges.len()
    }

    /// Load-imbalance factor: max chunk tokens / mean chunk tokens (1.0 is
    /// perfect balance).  Reported by the scheduling diagnostics.
    pub fn imbalance(&self) -> f64 {
        let max = *self.tokens_per_chunk.iter().max().unwrap_or(&0) as f64;
        let sum: u64 = self.tokens_per_chunk.iter().sum();
        if sum == 0 {
            return 1.0;
        }
        let mean = sum as f64 / self.num_chunks() as f64;
        max / mean
    }

    /// Build the GPU-side layout of every chunk (in parallel across OS
    /// threads — preprocessing is a CPU responsibility in the paper's
    /// system, Figure 3).  Each layout is a pure function of `(corpus,
    /// range)`, so the build order cannot affect the result.
    pub fn build_layouts(&self, corpus: &Corpus) -> Vec<ChunkLayout> {
        self.ranges
            .par_iter()
            .map(|&range| ChunkLayout::build(corpus, range))
            .collect()
    }
}

/// The device-side layout of one corpus chunk.
///
/// Token arrays are stored in **word-major** order: all tokens of word 0
/// first, then word 1, and so on.  `word_ptr` delimits each word's slice.
/// `doc_token_pos` groups, per local document, the word-major positions of
/// that document's tokens (the "document–word map" of §6.2).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkLayout {
    /// Global document range this chunk covers.
    pub range: DocRange,
    /// Vocabulary size (shared by all chunks).
    pub vocab_size: usize,
    /// `word_ptr[v]..word_ptr[v+1]` is the token slice of word `v`.
    pub word_ptr: Vec<u32>,
    /// Local document index of each token, in word-major order.
    pub token_doc: Vec<u32>,
    /// Local per-document token offsets (`local_docs + 1` entries).
    pub doc_ptr: Vec<u32>,
    /// For each local document, the word-major positions of its tokens.
    pub doc_token_pos: Vec<u32>,
}

impl ChunkLayout {
    /// Build the layout for the documents in `range`.
    pub fn build(corpus: &Corpus, range: DocRange) -> Self {
        let vocab_size = corpus.vocab_size();
        let local_docs = range.len();

        // Pass 1: count tokens per word within the chunk.
        let mut word_counts = vec![0u32; vocab_size];
        let mut num_tokens = 0usize;
        for d in range.start..range.end {
            for &w in corpus.doc(d) {
                word_counts[w as usize] += 1;
                num_tokens += 1;
            }
        }

        // Exclusive scan → word_ptr.
        let mut word_ptr = Vec::with_capacity(vocab_size + 1);
        let mut acc = 0u32;
        word_ptr.push(0);
        for &c in &word_counts {
            acc += c;
            word_ptr.push(acc);
        }
        debug_assert_eq!(acc as usize, num_tokens);

        // Pass 2: scatter tokens into word-major order, remembering where each
        // document's tokens landed (the document–word map).
        let mut cursor: Vec<u32> = word_ptr[..vocab_size].to_vec();
        let mut token_doc = vec![0u32; num_tokens];
        let mut doc_ptr = Vec::with_capacity(local_docs + 1);
        let mut doc_token_pos = Vec::with_capacity(num_tokens);
        doc_ptr.push(0);
        for (local_d, d) in (range.start..range.end).enumerate() {
            for &w in corpus.doc(d) {
                let pos = cursor[w as usize];
                cursor[w as usize] += 1;
                token_doc[pos as usize] = local_d as u32;
                doc_token_pos.push(pos);
            }
            doc_ptr.push(doc_token_pos.len() as u32);
        }

        ChunkLayout {
            range,
            vocab_size,
            word_ptr,
            token_doc,
            doc_ptr,
            doc_token_pos,
        }
    }

    /// Number of tokens in the chunk.
    #[inline]
    pub fn num_tokens(&self) -> usize {
        self.token_doc.len()
    }

    /// Number of (local) documents in the chunk.
    #[inline]
    pub fn num_docs(&self) -> usize {
        self.doc_ptr.len() - 1
    }

    /// Number of tokens of word `v` present in the chunk.
    #[inline]
    pub fn word_token_count(&self, v: usize) -> usize {
        (self.word_ptr[v + 1] - self.word_ptr[v]) as usize
    }

    /// The word-major token positions `[start, end)` of word `v`.
    #[inline]
    pub fn word_token_range(&self, v: usize) -> (usize, usize) {
        (self.word_ptr[v] as usize, self.word_ptr[v + 1] as usize)
    }

    /// Local token length of local document `d`.
    #[inline]
    pub fn doc_len(&self, d: usize) -> usize {
        (self.doc_ptr[d + 1] - self.doc_ptr[d]) as usize
    }

    /// Word-major positions of local document `d`'s tokens.
    #[inline]
    pub fn doc_positions(&self, d: usize) -> &[u32] {
        &self.doc_token_pos[self.doc_ptr[d] as usize..self.doc_ptr[d + 1] as usize]
    }

    /// The inverse of the document–word map: for every word-major position,
    /// the token's index within its *document* (original corpus token
    /// order).  `(global document id, slot)` is a partition-independent
    /// identity for a token, which is what keys the counter-based sampling
    /// RNG so that training is bit-reproducible across GPU topologies.
    pub fn token_slots(&self) -> Vec<u32> {
        let mut slots = vec![0u32; self.num_tokens()];
        for d in 0..self.num_docs() {
            for (t, &pos) in self.doc_positions(d).iter().enumerate() {
                slots[pos as usize] = t as u32;
            }
        }
        slots
    }

    /// Recover the word id of the token stored at word-major position `pos`
    /// (a binary search over `word_ptr`; kernels avoid it by iterating words,
    /// but tests and the θ log-likelihood code use it).
    pub fn word_of_position(&self, pos: u32) -> WordId {
        let v = self.word_ptr.partition_point(|&p| p <= pos) - 1;
        v as WordId
    }

    /// Distinct words that actually occur in this chunk.
    pub fn words_present(&self) -> usize {
        (0..self.vocab_size)
            .filter(|&v| self.word_token_count(v) > 0)
            .count()
    }

    /// Bytes of device memory this chunk layout occupies
    /// (word_ptr + token_doc + doc_ptr + doc_token_pos as u32, plus 2 bytes
    /// per token for the compressed topic assignment array that lives next to
    /// it on the device).
    pub fn device_bytes(&self) -> u64 {
        (self.word_ptr.len() * 4
            + self.token_doc.len() * 4
            + self.doc_ptr.len() * 4
            + self.doc_token_pos.len() * 4
            + self.num_tokens() * 2) as u64
    }

    /// Validate internal consistency (used by property tests).
    pub fn validate(&self) -> Result<(), String> {
        if self.word_ptr.len() != self.vocab_size + 1 {
            return Err("word_ptr length mismatch".into());
        }
        if *self.word_ptr.last().unwrap() as usize != self.token_doc.len() {
            return Err("word_ptr end does not match token count".into());
        }
        if self.doc_ptr.len() != self.range.len() + 1 {
            return Err("doc_ptr length mismatch".into());
        }
        if self.doc_token_pos.len() != self.token_doc.len() {
            return Err("doc_token_pos length mismatch".into());
        }
        // Every word-major position must be referenced exactly once.
        let mut seen = vec![false; self.num_tokens()];
        for &p in &self.doc_token_pos {
            let p = p as usize;
            if p >= seen.len() || seen[p] {
                return Err(format!("position {p} referenced twice or out of range"));
            }
            seen[p] = true;
        }
        // token_doc of each doc position must equal the owning doc.
        for d in 0..self.num_docs() {
            for &p in self.doc_positions(d) {
                if self.token_doc[p as usize] as usize != d {
                    return Err(format!("token at {p} does not belong to doc {d}"));
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;
    use crate::synthetic::DatasetProfile;

    fn small_corpus() -> Corpus {
        let mut b = CorpusBuilder::new(5);
        b.push_doc(&[0, 1, 1, 4]); // doc 0
        b.push_doc(&[2, 2]); // doc 1
        b.push_doc(&[4, 0, 3]); // doc 2
        b.push_doc(&[1]); // doc 3
        b.build()
    }

    #[test]
    fn partition_covers_all_documents_in_order() {
        let c = small_corpus();
        let p = Partitioner::by_tokens(&c, 2);
        let r = p.ranges();
        assert_eq!(r.len(), 2);
        assert_eq!(r[0].start, 0);
        assert_eq!(r.last().unwrap().end, c.num_docs());
        for w in r.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        let total: u64 = p.tokens_per_chunk().iter().sum();
        assert_eq!(total, c.num_tokens() as u64);
    }

    #[test]
    fn partition_single_chunk_is_whole_corpus() {
        let c = small_corpus();
        let p = Partitioner::by_tokens(&c, 1);
        assert_eq!(p.ranges(), &[DocRange { start: 0, end: 4 }]);
        assert_eq!(p.imbalance(), 1.0);
    }

    #[test]
    fn partition_is_token_balanced_on_realistic_corpus() {
        let corpus = DatasetProfile::nytimes().scaled(0.002).generate(5);
        for &chunks in &[2usize, 4, 8] {
            let p = Partitioner::by_tokens(&corpus, chunks);
            assert!(
                p.imbalance() < 1.10,
                "imbalance {} for {} chunks",
                p.imbalance(),
                chunks
            );
        }
    }

    #[test]
    fn partition_handles_more_chunks_than_documents() {
        let mut b = CorpusBuilder::new(3);
        b.push_doc(&[0]);
        b.push_doc(&[1]);
        let c = b.build();
        let p = Partitioner::by_tokens(&c, 5);
        assert_eq!(p.num_chunks(), 5);
        let total: u64 = p.tokens_per_chunk().iter().sum();
        assert_eq!(total, 2);
        assert_eq!(p.ranges().last().unwrap().end, 2);
    }

    #[test]
    fn chunk_layout_is_word_major() {
        let c = small_corpus();
        let layout = ChunkLayout::build(&c, DocRange { start: 0, end: 4 });
        layout.validate().unwrap();
        assert_eq!(layout.num_tokens(), 10);
        assert_eq!(layout.num_docs(), 4);
        // Word 1 occurs 3 times (docs 0, 0, 3).
        assert_eq!(layout.word_token_count(1), 3);
        let (s, e) = layout.word_token_range(1);
        let docs: Vec<u32> = layout.token_doc[s..e].to_vec();
        assert_eq!(docs, vec![0, 0, 3]);
        // word_of_position is the inverse of word_token_range.
        for v in 0..5 {
            let (s, e) = layout.word_token_range(v);
            for pos in s..e {
                assert_eq!(layout.word_of_position(pos as u32), v as WordId);
            }
        }
    }

    #[test]
    fn doc_word_map_points_back_to_owning_documents() {
        let c = small_corpus();
        let layout = ChunkLayout::build(&c, DocRange { start: 1, end: 3 });
        layout.validate().unwrap();
        assert_eq!(layout.num_docs(), 2);
        assert_eq!(layout.num_tokens(), 5);
        assert_eq!(layout.doc_len(0), 2); // global doc 1
        assert_eq!(layout.doc_len(1), 3); // global doc 2
                                          // All of local doc 0's positions hold tokens of word 2.
        for &p in layout.doc_positions(0) {
            assert_eq!(layout.word_of_position(p), 2);
        }
    }

    #[test]
    fn layouts_of_all_chunks_cover_corpus() {
        let corpus = DatasetProfile::pubmed().scaled(0.00002).generate(9);
        let p = Partitioner::by_tokens(&corpus, 4);
        let layouts = p.build_layouts(&corpus);
        assert_eq!(layouts.len(), 4);
        let tokens: usize = layouts.iter().map(|l| l.num_tokens()).sum();
        assert_eq!(tokens, corpus.num_tokens());
        for l in &layouts {
            l.validate().unwrap();
        }
    }

    #[test]
    fn empty_chunk_layout_is_valid() {
        let c = small_corpus();
        let layout = ChunkLayout::build(&c, DocRange { start: 2, end: 2 });
        layout.validate().unwrap();
        assert_eq!(layout.num_tokens(), 0);
        assert_eq!(layout.num_docs(), 0);
        assert_eq!(layout.words_present(), 0);
    }
}
