//! Train / held-out splits for model evaluation.
//!
//! The paper tracks training-set log-likelihood (Figure 8); a production
//! library also needs held-out evaluation, which requires splitting the
//! corpus before training.  Two standard protocols are provided:
//!
//! * [`split_documents`] — a document-level split: a fraction of documents is
//!   held out entirely, to be folded in with
//!   `culda_core::inference` after training.
//! * [`DocumentCompletion`] — the document-completion protocol: every test
//!   document is split into an *observed* half (used to estimate its topic
//!   mixture) and a *held-out* half (scored against that mixture), which is
//!   the standard way to compute held-out perplexity for LDA.

use crate::corpus::{Corpus, CorpusBuilder, WordId};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A document-level train/test split.
#[derive(Debug, Clone)]
pub struct DocumentSplit {
    /// Documents used for training.
    pub train: Corpus,
    /// Documents held out for evaluation.
    pub test: Corpus,
    /// Original corpus indices of the training documents, in `train` order.
    pub train_doc_ids: Vec<u32>,
    /// Original corpus indices of the test documents, in `test` order.
    pub test_doc_ids: Vec<u32>,
}

/// Split a corpus at the document level: each document is assigned to the
/// test set independently with probability `test_fraction`.
///
/// Both halves keep the full vocabulary so word ids remain comparable.
/// Empty documents always go to the training side (they carry no evaluation
/// signal).
pub fn split_documents(corpus: &Corpus, test_fraction: f64, seed: u64) -> DocumentSplit {
    assert!(
        (0.0..1.0).contains(&test_fraction),
        "test_fraction must be in [0, 1)"
    );
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut train = CorpusBuilder::new(corpus.vocab_size());
    let mut test = CorpusBuilder::new(corpus.vocab_size());
    let mut train_doc_ids = Vec::new();
    let mut test_doc_ids = Vec::new();
    for d in 0..corpus.num_docs() {
        let doc = corpus.doc(d);
        let to_test = !doc.is_empty() && rng.gen_bool(test_fraction);
        if to_test {
            test.push_doc(doc);
            test_doc_ids.push(d as u32);
        } else {
            train.push_doc(doc);
            train_doc_ids.push(d as u32);
        }
    }
    DocumentSplit {
        train: train.build(),
        test: test.build(),
        train_doc_ids,
        test_doc_ids,
    }
}

/// The document-completion split of one evaluation corpus: per document, an
/// observed token set and a held-out token set over the same vocabulary.
#[derive(Debug, Clone)]
pub struct DocumentCompletion {
    /// Per-document observed tokens (used to infer the document's topic mix).
    pub observed: Corpus,
    /// Per-document held-out tokens (scored against the inferred mix).
    pub heldout: Corpus,
}

impl DocumentCompletion {
    /// Split every document of `corpus` by assigning each token to the
    /// held-out side with probability `heldout_fraction` (tokens are
    /// shuffled first so word order does not bias the split).  Documents
    /// with fewer than two tokens keep all their tokens on the observed side.
    pub fn split(corpus: &Corpus, heldout_fraction: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&heldout_fraction),
            "heldout_fraction must be in [0, 1)"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x9E37_79B9_7F4A_7C15);
        let mut observed = CorpusBuilder::new(corpus.vocab_size());
        let mut heldout = CorpusBuilder::new(corpus.vocab_size());
        let mut scratch: Vec<WordId> = Vec::new();
        for d in 0..corpus.num_docs() {
            scratch.clear();
            scratch.extend_from_slice(corpus.doc(d));
            if scratch.len() < 2 {
                observed.push_doc(&scratch);
                heldout.push_doc(&[]);
                continue;
            }
            scratch.shuffle(&mut rng);
            // Keep at least one token on each side of a splittable document.
            let mut n_held = scratch
                .iter()
                .filter(|_| rng.gen_bool(heldout_fraction))
                .count();
            n_held = n_held.clamp(1, scratch.len() - 1);
            heldout.push_doc(&scratch[..n_held]);
            observed.push_doc(&scratch[n_held..]);
        }
        DocumentCompletion {
            observed: observed.build(),
            heldout: heldout.build(),
        }
    }

    /// Number of documents (identical in both halves).
    pub fn num_docs(&self) -> usize {
        self.observed.num_docs()
    }

    /// Total held-out tokens (the denominator of held-out perplexity).
    pub fn heldout_tokens(&self) -> usize {
        self.heldout.num_tokens()
    }

    /// Check the split invariants: same document count, same vocabulary, and
    /// per-document token multisets that partition the source document.
    pub fn validate_against(&self, source: &Corpus) -> Result<(), String> {
        if self.observed.num_docs() != source.num_docs()
            || self.heldout.num_docs() != source.num_docs()
        {
            return Err("document counts do not match the source corpus".into());
        }
        if self.observed.vocab_size() != source.vocab_size()
            || self.heldout.vocab_size() != source.vocab_size()
        {
            return Err("vocabulary sizes do not match the source corpus".into());
        }
        for d in 0..source.num_docs() {
            let mut combined: Vec<WordId> = self
                .observed
                .doc(d)
                .iter()
                .chain(self.heldout.doc(d))
                .copied()
                .collect();
            combined.sort_unstable();
            let mut original: Vec<WordId> = source.doc(d).to_vec();
            original.sort_unstable();
            if combined != original {
                return Err(format!("document {d} tokens are not partitioned"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::DatasetProfile;

    fn corpus() -> Corpus {
        DatasetProfile {
            name: "holdout".into(),
            num_docs: 120,
            vocab_size: 90,
            avg_doc_len: 20.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(11)
    }

    #[test]
    fn document_split_partitions_documents() {
        let c = corpus();
        let split = split_documents(&c, 0.25, 3);
        assert_eq!(split.train.num_docs() + split.test.num_docs(), c.num_docs());
        assert_eq!(
            split.train.num_tokens() + split.test.num_tokens(),
            c.num_tokens()
        );
        assert_eq!(split.train.vocab_size(), c.vocab_size());
        assert_eq!(split.test.vocab_size(), c.vocab_size());
        assert_eq!(split.train_doc_ids.len(), split.train.num_docs());
        assert_eq!(split.test_doc_ids.len(), split.test.num_docs());
        // Roughly a quarter of documents end up in the test set.
        let frac = split.test.num_docs() as f64 / c.num_docs() as f64;
        assert!(frac > 0.10 && frac < 0.45, "test fraction {frac}");
        // Doc-id mapping round-trips document contents.
        for (i, &orig) in split.test_doc_ids.iter().enumerate() {
            assert_eq!(split.test.doc(i), c.doc(orig as usize));
        }
    }

    #[test]
    fn document_split_is_deterministic_per_seed() {
        let c = corpus();
        let a = split_documents(&c, 0.3, 7);
        let b = split_documents(&c, 0.3, 7);
        assert_eq!(a.test_doc_ids, b.test_doc_ids);
        let c2 = split_documents(&c, 0.3, 8);
        assert_ne!(a.test_doc_ids, c2.test_doc_ids);
    }

    #[test]
    fn completion_split_partitions_every_document() {
        let c = corpus();
        let dc = DocumentCompletion::split(&c, 0.5, 9);
        dc.validate_against(&c).unwrap();
        assert_eq!(dc.num_docs(), c.num_docs());
        assert_eq!(
            dc.observed.num_tokens() + dc.heldout.num_tokens(),
            c.num_tokens()
        );
        assert!(dc.heldout_tokens() > 0);
        // Every splittable document keeps at least one observed token.
        for d in 0..c.num_docs() {
            if c.doc_len(d) >= 2 {
                assert!(dc.observed.doc_len(d) >= 1);
                assert!(dc.heldout.doc_len(d) >= 1);
            }
        }
    }

    #[test]
    fn completion_split_keeps_tiny_documents_observed() {
        let mut b = CorpusBuilder::new(5);
        b.push_doc(&[2]);
        b.push_doc(&[]);
        b.push_doc(&[1, 3, 3, 4]);
        let c = b.build();
        let dc = DocumentCompletion::split(&c, 0.5, 1);
        dc.validate_against(&c).unwrap();
        assert_eq!(dc.observed.doc_len(0), 1);
        assert_eq!(dc.heldout.doc_len(0), 0);
        assert_eq!(dc.observed.doc_len(1), 0);
    }

    #[test]
    #[should_panic(expected = "test_fraction")]
    fn document_split_rejects_bad_fraction() {
        let c = corpus();
        let _ = split_documents(&c, 1.0, 0);
    }
}
