//! The in-memory corpus representation.
//!
//! A corpus is a collection of `D` documents over a vocabulary of `V` words;
//! each document is a sequence of tokens, each token an occurrence of one
//! word (§2.1).  Tokens are stored flattened in document-major order with a
//! CSR-style document pointer array, which keeps the representation compact
//! (8 bytes amortised per token) and makes token-balanced partitioning a
//! prefix-sum problem.

use serde::{Deserialize, Serialize};

/// Index of a document within a corpus.
pub type DocId = u32;
/// Index of a word within the vocabulary.
pub type WordId = u32;

/// An immutable tokenised corpus.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Corpus {
    vocab_size: usize,
    /// `doc_ptr[d]..doc_ptr[d+1]` is the token range of document `d`.
    doc_ptr: Vec<u64>,
    /// Word id of every token, flattened in document order.
    tokens: Vec<WordId>,
}

impl Corpus {
    /// Number of documents `D`.
    #[inline]
    pub fn num_docs(&self) -> usize {
        self.doc_ptr.len() - 1
    }

    /// Vocabulary size `V`.
    #[inline]
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Total number of tokens `T`.
    #[inline]
    pub fn num_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Length (token count) of document `d`.
    #[inline]
    pub fn doc_len(&self, d: usize) -> usize {
        (self.doc_ptr[d + 1] - self.doc_ptr[d]) as usize
    }

    /// The tokens (word ids) of document `d`.
    #[inline]
    pub fn doc(&self, d: usize) -> &[WordId] {
        &self.tokens[self.doc_ptr[d] as usize..self.doc_ptr[d + 1] as usize]
    }

    /// The document pointer array (`D + 1` entries).
    #[inline]
    pub fn doc_ptr(&self) -> &[u64] {
        &self.doc_ptr
    }

    /// All tokens flattened in document order.
    #[inline]
    pub fn tokens(&self) -> &[WordId] {
        &self.tokens
    }

    /// Average document length (`T / D`); 0.0 for an empty corpus.
    pub fn avg_doc_len(&self) -> f64 {
        if self.num_docs() == 0 {
            0.0
        } else {
            self.num_tokens() as f64 / self.num_docs() as f64
        }
    }

    /// Length of the longest document.
    pub fn max_doc_len(&self) -> usize {
        (0..self.num_docs())
            .map(|d| self.doc_len(d))
            .max()
            .unwrap_or(0)
    }

    /// Per-word token counts (the empirical word-frequency distribution).
    pub fn word_frequencies(&self) -> Vec<u64> {
        let mut freq = vec![0u64; self.vocab_size];
        for &w in &self.tokens {
            freq[w as usize] += 1;
        }
        freq
    }

    /// Number of distinct words that actually occur at least once.
    pub fn words_in_use(&self) -> usize {
        self.word_frequencies().iter().filter(|&&f| f > 0).count()
    }

    /// Iterate `(doc, word)` pairs over every token in document order.
    pub fn iter_tokens(&self) -> impl Iterator<Item = (DocId, WordId)> + '_ {
        (0..self.num_docs()).flat_map(move |d| self.doc(d).iter().map(move |&w| (d as DocId, w)))
    }

    /// Estimated bytes of the device-resident corpus chunk representation
    /// (token word ids as u32 + topic assignments as u16 + doc map as u32).
    pub fn device_bytes_estimate(&self) -> u64 {
        self.num_tokens() as u64 * (4 + 2 + 4) + self.doc_ptr.len() as u64 * 8
    }

    /// Check structural invariants (monotone doc_ptr, word ids in range).
    pub fn validate(&self) -> Result<(), String> {
        if self.doc_ptr.is_empty() || self.doc_ptr[0] != 0 {
            return Err("doc_ptr must start with 0".into());
        }
        if *self.doc_ptr.last().unwrap() as usize != self.tokens.len() {
            return Err("doc_ptr end does not match token count".into());
        }
        if self.doc_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err("doc_ptr is not monotone".into());
        }
        if let Some(&w) = self.tokens.iter().find(|&&w| w as usize >= self.vocab_size) {
            return Err(format!("word id {w} out of range (V={})", self.vocab_size));
        }
        Ok(())
    }
}

/// Builder assembling a [`Corpus`] one document at a time.
#[derive(Debug, Clone)]
pub struct CorpusBuilder {
    vocab_size: usize,
    doc_ptr: Vec<u64>,
    tokens: Vec<WordId>,
}

impl CorpusBuilder {
    /// Start a corpus over a vocabulary of `vocab_size` words.
    pub fn new(vocab_size: usize) -> Self {
        CorpusBuilder {
            vocab_size,
            doc_ptr: vec![0],
            tokens: Vec::new(),
        }
    }

    /// Pre-allocate space for an expected number of tokens.
    pub fn reserve_tokens(&mut self, tokens: usize) {
        self.tokens.reserve(tokens);
    }

    /// Append a document given its token word ids.
    ///
    /// # Panics
    /// Panics (in debug builds) if any word id is out of range.
    pub fn push_doc(&mut self, words: &[WordId]) -> DocId {
        debug_assert!(
            words.iter().all(|&w| (w as usize) < self.vocab_size),
            "word id out of vocabulary range"
        );
        self.tokens.extend_from_slice(words);
        self.doc_ptr.push(self.tokens.len() as u64);
        (self.doc_ptr.len() - 2) as DocId
    }

    /// Append a document given bag-of-words `(word, count)` pairs, expanding
    /// each pair into `count` tokens (this is how UCI corpora are stored).
    pub fn push_doc_bow(&mut self, pairs: &[(WordId, u32)]) -> DocId {
        for &(w, c) in pairs {
            debug_assert!((w as usize) < self.vocab_size);
            for _ in 0..c {
                self.tokens.push(w);
            }
        }
        self.doc_ptr.push(self.tokens.len() as u64);
        (self.doc_ptr.len() - 2) as DocId
    }

    /// Number of documents pushed so far.
    pub fn num_docs(&self) -> usize {
        self.doc_ptr.len() - 1
    }

    /// Number of tokens pushed so far.
    pub fn num_tokens(&self) -> usize {
        self.tokens.len()
    }

    /// Finish building the corpus.
    pub fn build(self) -> Corpus {
        let c = Corpus {
            vocab_size: self.vocab_size,
            doc_ptr: self.doc_ptr,
            tokens: self.tokens,
        };
        debug_assert!(c.validate().is_ok());
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Corpus {
        let mut b = CorpusBuilder::new(6);
        b.push_doc(&[0, 1, 1, 3]);
        b.push_doc(&[]);
        b.push_doc(&[5, 5, 2]);
        b.build()
    }

    #[test]
    fn basic_shape() {
        let c = small();
        assert_eq!(c.num_docs(), 3);
        assert_eq!(c.num_tokens(), 7);
        assert_eq!(c.vocab_size(), 6);
        assert_eq!(c.doc_len(0), 4);
        assert_eq!(c.doc_len(1), 0);
        assert_eq!(c.doc(2), &[5, 5, 2]);
        c.validate().unwrap();
    }

    #[test]
    fn word_frequencies_count_tokens() {
        let c = small();
        assert_eq!(c.word_frequencies(), vec![1, 2, 1, 1, 0, 2]);
        assert_eq!(c.words_in_use(), 5);
    }

    #[test]
    fn avg_and_max_doc_len() {
        let c = small();
        assert!((c.avg_doc_len() - 7.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.max_doc_len(), 4);
    }

    #[test]
    fn iter_tokens_visits_every_token_once() {
        let c = small();
        let pairs: Vec<_> = c.iter_tokens().collect();
        assert_eq!(pairs.len(), 7);
        assert_eq!(pairs[0], (0, 0));
        assert_eq!(pairs[4], (2, 5));
    }

    #[test]
    fn bow_expansion_matches_explicit_tokens() {
        let mut a = CorpusBuilder::new(4);
        a.push_doc_bow(&[(1, 2), (3, 1)]);
        let mut b = CorpusBuilder::new(4);
        b.push_doc(&[1, 1, 3]);
        assert_eq!(a.build(), b.build());
    }

    #[test]
    fn empty_corpus_is_valid() {
        let c = CorpusBuilder::new(10).build();
        c.validate().unwrap();
        assert_eq!(c.num_docs(), 0);
        assert_eq!(c.avg_doc_len(), 0.0);
        assert_eq!(c.max_doc_len(), 0);
    }

    #[test]
    fn builder_counts_match_built_corpus() {
        let mut b = CorpusBuilder::new(3);
        b.reserve_tokens(16);
        b.push_doc(&[0, 1, 2]);
        b.push_doc(&[2]);
        assert_eq!(b.num_docs(), 2);
        assert_eq!(b.num_tokens(), 4);
        let c = b.build();
        assert_eq!(c.num_docs(), 2);
        assert_eq!(c.num_tokens(), 4);
    }
}
