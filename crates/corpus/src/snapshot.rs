//! Compact binary snapshots of corpora and vocabularies.
//!
//! Preprocessing a billion-token corpus (tokenising, pruning, building the
//! word-major layouts) is itself expensive, so CuLDA_CGS-style pipelines
//! preprocess once and reload the result for every training run.  The format
//! here is a small, versioned, little-endian container:
//!
//! ```text
//! magic  "CLDC"          4 bytes
//! version u32            currently 1
//! vocab_size u64
//! num_docs   u64
//! num_tokens u64
//! doc_ptr    (num_docs + 1) × u64
//! tokens     num_tokens × u32
//! ```
//!
//! Vocabularies are stored as the UCI plain-text format (one word per line)
//! via [`write_vocab`] so they stay interoperable with the original datasets.

use crate::corpus::{Corpus, CorpusBuilder};
use crate::vocab::Vocabulary;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying a corpus snapshot.
pub const MAGIC: &[u8; 4] = b"CLDC";
/// Current snapshot format version.
pub const VERSION: u32 = 1;

/// Errors produced while reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying IO failure.
    Io(io::Error),
    /// The magic bytes do not match [`MAGIC`].
    BadMagic([u8; 4]),
    /// The format version is not supported.
    UnsupportedVersion(u32),
    /// Structural inconsistency (counts, pointers or word ids out of range).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "io error: {e}"),
            SnapshotError::BadMagic(m) => write!(f, "bad magic bytes {m:?}"),
            SnapshotError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            SnapshotError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

fn write_u32<W: Write>(w: &mut W, v: u32) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn write_u64<W: Write>(w: &mut W, v: u64) -> io::Result<()> {
    w.write_all(&v.to_le_bytes())
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

/// Serialize a corpus into `writer`.
pub fn write_corpus<W: Write>(corpus: &Corpus, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(MAGIC)?;
    write_u32(&mut w, VERSION)?;
    write_u64(&mut w, corpus.vocab_size() as u64)?;
    write_u64(&mut w, corpus.num_docs() as u64)?;
    write_u64(&mut w, corpus.num_tokens() as u64)?;
    for &p in corpus.doc_ptr() {
        write_u64(&mut w, p)?;
    }
    for &t in corpus.tokens() {
        write_u32(&mut w, t)?;
    }
    w.flush()
}

/// Deserialize a corpus from `reader`, verifying structural invariants.
pub fn read_corpus<R: Read>(reader: R) -> Result<Corpus, SnapshotError> {
    let mut r = BufReader::new(reader);
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if &magic != MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = read_u32(&mut r)?;
    if version != VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let vocab_size = read_u64(&mut r)? as usize;
    let num_docs = read_u64(&mut r)? as usize;
    let num_tokens = read_u64(&mut r)? as usize;

    // The header counts are untrusted: cap the up-front reservations so a
    // corrupt header fails at the next `read_exact` (a clean error) instead
    // of aborting the process on an absurd allocation.
    const MAX_PREALLOC: usize = 1 << 20;
    let mut doc_ptr = Vec::with_capacity(num_docs.saturating_add(1).min(MAX_PREALLOC));
    for _ in 0..=num_docs {
        doc_ptr.push(read_u64(&mut r)?);
    }
    if doc_ptr.first() != Some(&0) || doc_ptr.last().copied() != Some(num_tokens as u64) {
        return Err(SnapshotError::Corrupt("doc_ptr endpoints are wrong".into()));
    }
    if doc_ptr.windows(2).any(|w| w[0] > w[1]) {
        return Err(SnapshotError::Corrupt("doc_ptr is not monotone".into()));
    }

    let mut builder = CorpusBuilder::new(vocab_size);
    builder.reserve_tokens(num_tokens.min(MAX_PREALLOC));
    let mut doc = Vec::new();
    for d in 0..num_docs {
        let len = (doc_ptr[d + 1] - doc_ptr[d]) as usize;
        doc.clear();
        for _ in 0..len {
            let w = read_u32(&mut r)?;
            if w as usize >= vocab_size {
                return Err(SnapshotError::Corrupt(format!(
                    "word id {w} out of range (V = {vocab_size})"
                )));
            }
            doc.push(w);
        }
        builder.push_doc(&doc);
    }
    let corpus = builder.build();
    corpus.validate().map_err(SnapshotError::Corrupt)?;
    Ok(corpus)
}

/// Write a corpus snapshot to `path`.
pub fn save_corpus<P: AsRef<Path>>(corpus: &Corpus, path: P) -> io::Result<()> {
    write_corpus(corpus, File::create(path)?)
}

/// Load a corpus snapshot from `path`.
pub fn load_corpus<P: AsRef<Path>>(path: P) -> Result<Corpus, SnapshotError> {
    read_corpus(File::open(path)?)
}

/// Write a vocabulary in the UCI plain-text format (one word per line,
/// line order = word id).
pub fn write_vocab<W: Write>(vocab: &Vocabulary, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for word in vocab.iter() {
        writeln!(w, "{word}")?;
    }
    w.flush()
}

/// Write a vocabulary to `path` in the UCI plain-text format.
pub fn save_vocab<P: AsRef<Path>>(vocab: &Vocabulary, path: P) -> io::Result<()> {
    write_vocab(vocab, File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::DatasetProfile;
    use crate::text::read_vocab;

    fn corpus() -> Corpus {
        DatasetProfile {
            name: "snapshot".into(),
            num_docs: 60,
            vocab_size: 45,
            avg_doc_len: 12.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(5)
    }

    #[test]
    fn corpus_roundtrip_preserves_everything() {
        let c = corpus();
        let mut buf = Vec::new();
        write_corpus(&c, &mut buf).unwrap();
        let back = read_corpus(buf.as_slice()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn empty_corpus_roundtrips() {
        let c = CorpusBuilder::new(7).build();
        let mut buf = Vec::new();
        write_corpus(&c, &mut buf).unwrap();
        let back = read_corpus(buf.as_slice()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut buf = Vec::new();
        write_corpus(&corpus(), &mut buf).unwrap();
        buf[0] = b'X';
        match read_corpus(buf.as_slice()) {
            Err(SnapshotError::BadMagic(_)) => {}
            other => panic!("expected BadMagic, got {other:?}"),
        }
    }

    #[test]
    fn unsupported_version_is_rejected() {
        let mut buf = Vec::new();
        write_corpus(&corpus(), &mut buf).unwrap();
        buf[4..8].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            read_corpus(buf.as_slice()),
            Err(SnapshotError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn out_of_range_word_id_is_rejected() {
        let mut b = CorpusBuilder::new(4);
        b.push_doc(&[0, 1, 2, 3]);
        let c = b.build();
        let mut buf = Vec::new();
        write_corpus(&c, &mut buf).unwrap();
        // Patch the last token (final 4 bytes) to an out-of-range id.
        let n = buf.len();
        buf[n - 4..].copy_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(
            read_corpus(buf.as_slice()),
            Err(SnapshotError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_snapshot_is_an_io_error() {
        let mut buf = Vec::new();
        write_corpus(&corpus(), &mut buf).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(matches!(
            read_corpus(buf.as_slice()),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn file_roundtrip_via_paths() {
        let dir = std::env::temp_dir().join("culda_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corpus.cldc");
        let c = corpus();
        save_corpus(&c, &path).unwrap();
        let back = load_corpus(&path).unwrap();
        assert_eq!(back, c);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn vocab_roundtrip_through_uci_format() {
        let v = Vocabulary::from_words(["gpu", "lda", "topic"]);
        let mut buf = Vec::new();
        write_vocab(&v, &mut buf).unwrap();
        let back = read_vocab(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back.id("lda"), Some(1));
        assert_eq!(back.word(2), Some("topic"));
    }
}
