//! UCI bag-of-words (`docword.txt`) format support.
//!
//! The NYTimes and PubMed corpora the paper evaluates on are distributed by
//! the UCI machine-learning repository in a simple text format:
//!
//! ```text
//! D
//! W
//! NNZ
//! docID wordID count
//! docID wordID count
//! ...
//! ```
//!
//! with 1-based `docID`/`wordID`.  This module parses and writes that format
//! so the real corpora can be used directly (`Corpus::validate` guards
//! against malformed input), and so synthetic corpora can be exported for
//! cross-checking against other LDA implementations.

use crate::corpus::{Corpus, CorpusBuilder, WordId};
use std::io::{BufRead, BufReader, BufWriter, Read, Write};

/// Errors produced while parsing a bag-of-words file.
#[derive(Debug)]
pub enum BowError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural problem with the file contents.
    Parse(String),
}

impl std::fmt::Display for BowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BowError::Io(e) => write!(f, "I/O error: {e}"),
            BowError::Parse(msg) => write!(f, "parse error: {msg}"),
        }
    }
}

impl std::error::Error for BowError {}

impl From<std::io::Error> for BowError {
    fn from(e: std::io::Error) -> Self {
        BowError::Io(e)
    }
}

fn parse_line<T: std::str::FromStr>(line: &str, what: &str) -> Result<T, BowError> {
    line.trim()
        .parse()
        .map_err(|_| BowError::Parse(format!("expected {what}, got {line:?}")))
}

/// Read a corpus from a UCI bag-of-words stream.
///
/// Entries must be grouped by document (they are in the UCI distributions);
/// word counts for the same document may appear in any order.
pub fn read_bow<R: Read>(reader: R) -> Result<Corpus, BowError> {
    let mut lines = BufReader::new(reader).lines();
    let mut next = || -> Result<String, BowError> {
        lines
            .next()
            .ok_or_else(|| BowError::Parse("unexpected end of file in header".into()))?
            .map_err(BowError::Io)
    };
    let d: usize = parse_line(&next()?, "document count D")?;
    let w: usize = parse_line(&next()?, "vocabulary size W")?;
    let nnz: usize = parse_line(&next()?, "non-zero count NNZ")?;

    let mut builder = CorpusBuilder::new(w);
    builder.reserve_tokens(nnz);
    let mut current_doc: usize = 0; // 0 means "no document started yet" (ids are 1-based)
    let mut pairs: Vec<(WordId, u32)> = Vec::new();
    let mut seen = 0usize;

    for line in lines {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let doc: usize = parse_line(it.next().unwrap_or(""), "docID")?;
        let word: usize = parse_line(it.next().unwrap_or(""), "wordID")?;
        let count: u32 = parse_line(it.next().unwrap_or(""), "count")?;
        if doc == 0 || doc > d {
            return Err(BowError::Parse(format!("docID {doc} out of range 1..={d}")));
        }
        if word == 0 || word > w {
            return Err(BowError::Parse(format!(
                "wordID {word} out of range 1..={w}"
            )));
        }
        if doc < current_doc {
            return Err(BowError::Parse(format!(
                "entries are not grouped by document (doc {doc} after {current_doc})"
            )));
        }
        if doc > current_doc {
            if current_doc > 0 {
                builder.push_doc_bow(&pairs);
                pairs.clear();
            }
            // Emit empty documents for any skipped ids.
            for _ in current_doc + 1..doc {
                builder.push_doc_bow(&[]);
            }
            current_doc = doc;
        }
        pairs.push(((word - 1) as WordId, count));
        seen += 1;
    }
    if current_doc > 0 {
        builder.push_doc_bow(&pairs);
    }
    for _ in current_doc..d {
        builder.push_doc_bow(&[]);
    }
    if seen != nnz {
        return Err(BowError::Parse(format!(
            "header declared {nnz} entries but file contains {seen}"
        )));
    }
    let corpus = builder.build();
    corpus.validate().map_err(BowError::Parse)?;
    Ok(corpus)
}

/// Write a corpus in UCI bag-of-words format.
pub fn write_bow<W: Write>(corpus: &Corpus, writer: W) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    // Count (doc, word) pairs.
    let mut nnz = 0usize;
    let mut per_doc: Vec<Vec<(WordId, u32)>> = Vec::with_capacity(corpus.num_docs());
    for d in 0..corpus.num_docs() {
        let mut counts: std::collections::BTreeMap<WordId, u32> = std::collections::BTreeMap::new();
        for &word in corpus.doc(d) {
            *counts.entry(word).or_insert(0) += 1;
        }
        nnz += counts.len();
        per_doc.push(counts.into_iter().collect());
    }
    writeln!(w, "{}", corpus.num_docs())?;
    writeln!(w, "{}", corpus.vocab_size())?;
    writeln!(w, "{nnz}")?;
    for (d, pairs) in per_doc.iter().enumerate() {
        for &(word, count) in pairs {
            writeln!(w, "{} {} {}", d + 1, word + 1, count)?;
        }
    }
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusBuilder;

    fn sample_corpus() -> Corpus {
        let mut b = CorpusBuilder::new(5);
        b.push_doc(&[0, 0, 3]);
        b.push_doc(&[]);
        b.push_doc(&[2, 4, 4, 4]);
        b.build()
    }

    #[test]
    fn write_then_read_round_trips_token_counts() {
        let corpus = sample_corpus();
        let mut buf = Vec::new();
        write_bow(&corpus, &mut buf).unwrap();
        let parsed = read_bow(buf.as_slice()).unwrap();
        assert_eq!(parsed.num_docs(), corpus.num_docs());
        assert_eq!(parsed.num_tokens(), corpus.num_tokens());
        assert_eq!(parsed.vocab_size(), corpus.vocab_size());
        assert_eq!(parsed.word_frequencies(), corpus.word_frequencies());
        for d in 0..corpus.num_docs() {
            assert_eq!(parsed.doc_len(d), corpus.doc_len(d));
        }
    }

    #[test]
    fn parses_uci_style_content() {
        let text = "3\n4\n4\n1 1 2\n1 3 1\n3 2 1\n3 4 2\n";
        let corpus = read_bow(text.as_bytes()).unwrap();
        assert_eq!(corpus.num_docs(), 3);
        assert_eq!(corpus.vocab_size(), 4);
        assert_eq!(corpus.num_tokens(), 6);
        assert_eq!(corpus.doc_len(1), 0);
        assert_eq!(corpus.doc(0), &[0, 0, 2]);
    }

    #[test]
    fn rejects_out_of_range_ids() {
        let text = "1\n2\n1\n1 3 1\n";
        assert!(matches!(read_bow(text.as_bytes()), Err(BowError::Parse(_))));
        let text = "1\n2\n1\n2 1 1\n";
        assert!(matches!(read_bow(text.as_bytes()), Err(BowError::Parse(_))));
    }

    #[test]
    fn rejects_wrong_nnz() {
        let text = "1\n2\n5\n1 1 1\n";
        assert!(matches!(read_bow(text.as_bytes()), Err(BowError::Parse(_))));
    }

    #[test]
    fn rejects_unsorted_documents() {
        let text = "2\n2\n2\n2 1 1\n1 1 1\n";
        assert!(matches!(read_bow(text.as_bytes()), Err(BowError::Parse(_))));
    }

    #[test]
    fn rejects_truncated_header() {
        assert!(matches!(
            read_bow("3\n4\n".as_bytes()),
            Err(BowError::Parse(_))
        ));
    }
}
