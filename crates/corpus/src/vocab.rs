//! Vocabulary: bidirectional mapping between word strings and word ids.
//!
//! The training kernels only ever see integer word ids; the vocabulary is
//! needed at the edges — when ingesting raw text or UCI `vocab.*.txt` files
//! and when printing the top words of each learned topic (see the
//! `nytimes_topics` example).

use crate::corpus::WordId;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A bidirectional word ↔ id mapping.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Vocabulary {
    words: Vec<String>,
    index: HashMap<String, WordId>,
}

impl Vocabulary {
    /// An empty vocabulary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from an ordered list of words (line order defines the ids, as in
    /// the UCI `vocab.<dataset>.txt` files).
    pub fn from_words<I, S>(words: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let mut v = Vocabulary::new();
        for w in words {
            v.intern(&w.into());
        }
        v
    }

    /// Generate a synthetic vocabulary `w0, w1, …` of the given size, used by
    /// the synthetic corpora where no real word strings exist.
    pub fn synthetic(size: usize) -> Self {
        Self::from_words((0..size).map(|i| format!("w{i}")))
    }

    /// Number of distinct words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the vocabulary holds no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Return the id of `word`, inserting it if necessary.
    pub fn intern(&mut self, word: &str) -> WordId {
        if let Some(&id) = self.index.get(word) {
            return id;
        }
        let id = self.words.len() as WordId;
        self.words.push(word.to_owned());
        self.index.insert(word.to_owned(), id);
        id
    }

    /// Look up an existing word's id.
    pub fn id(&self, word: &str) -> Option<WordId> {
        self.index.get(word).copied()
    }

    /// The word string for an id.
    pub fn word(&self, id: WordId) -> Option<&str> {
        self.words.get(id as usize).map(String::as_str)
    }

    /// Iterate over all words in id order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.words.iter().map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut v = Vocabulary::new();
        let a = v.intern("gpu");
        let b = v.intern("lda");
        let a2 = v.intern("gpu");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn lookup_both_directions() {
        let v = Vocabulary::from_words(["alpha", "beta", "gamma"]);
        assert_eq!(v.id("beta"), Some(1));
        assert_eq!(v.word(2), Some("gamma"));
        assert_eq!(v.id("delta"), None);
        assert_eq!(v.word(9), None);
    }

    #[test]
    fn synthetic_vocabulary_has_requested_size() {
        let v = Vocabulary::synthetic(100);
        assert_eq!(v.len(), 100);
        assert_eq!(v.word(42), Some("w42"));
        assert_eq!(v.id("w99"), Some(99));
    }

    #[test]
    fn iter_preserves_id_order() {
        let v = Vocabulary::from_words(["x", "y", "z"]);
        let collected: Vec<_> = v.iter().collect();
        assert_eq!(collected, vec!["x", "y", "z"]);
    }
}
