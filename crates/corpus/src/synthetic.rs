//! Synthetic corpus generators.
//!
//! The paper's corpora (Table 3) cannot ship with this repository, so the
//! experiments run on synthetic corpora whose *statistics* match the
//! published ones at a configurable scale:
//!
//! * document count, vocabulary size and average document length follow the
//!   per-dataset profile ([`DatasetProfile::nytimes`], [`DatasetProfile::pubmed`]);
//! * word frequencies follow a Zipf law (natural-language corpora are
//!   strongly Zipfian, which is what makes the word-major shared-memory reuse
//!   of §6.1.2 effective);
//! * document lengths follow a log-normal distribution with the profile's
//!   mean (NYTimes averages 332 tokens/doc, PubMed 90 — the paper attributes
//!   the difference in throughput ramp-up between the two datasets to exactly
//!   this, §7.1).
//!
//! A second generator, [`LdaGenerator`], draws corpora from a *known* LDA
//! model (Dirichlet topic–word and document–topic distributions) so that
//! convergence and topic-recovery tests have a ground truth.

use crate::corpus::{Corpus, CorpusBuilder, WordId};
use culda_sparse::AliasTable;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Statistical profile of a dataset (one row of Table 3).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatasetProfile {
    /// Human-readable dataset name.
    pub name: String,
    /// Number of documents `D`.
    pub num_docs: usize,
    /// Vocabulary size `V`.
    pub vocab_size: usize,
    /// Average document length (tokens per document).
    pub avg_doc_len: f64,
    /// Zipf exponent of the word-frequency distribution.
    pub zipf_exponent: f64,
    /// Log-normal σ of the document-length distribution.
    pub doc_len_sigma: f64,
}

impl DatasetProfile {
    /// The NYTimes profile from Table 3
    /// (99,542,125 tokens / 299,752 documents / 101,636 words; ≈332 tokens per document).
    pub fn nytimes() -> Self {
        DatasetProfile {
            name: "NYTimes".into(),
            num_docs: 299_752,
            vocab_size: 101_636,
            avg_doc_len: 332.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.55,
        }
    }

    /// The PubMed profile from Table 3
    /// (737,869,083 tokens / 8,200,000 documents / 141,043 words; ≈90 tokens per document).
    pub fn pubmed() -> Self {
        DatasetProfile {
            name: "PubMed".into(),
            num_docs: 8_200_000,
            vocab_size: 141_043,
            avg_doc_len: 90.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.45,
        }
    }

    /// Expected total token count implied by the profile.
    pub fn expected_tokens(&self) -> u64 {
        (self.num_docs as f64 * self.avg_doc_len).round() as u64
    }

    /// Scale the profile down (or up) by a factor in `(0, ∞)`.
    ///
    /// The document count scales linearly and the vocabulary with the square
    /// root of the factor (Heaps' law); the average document length — which
    /// is what determines per-token sampling cost and θ sparsity — is kept.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0, "scale factor must be positive");
        DatasetProfile {
            name: format!("{}(x{factor:.4})", self.name),
            num_docs: ((self.num_docs as f64 * factor).round() as usize).max(1),
            vocab_size: ((self.vocab_size as f64 * factor.sqrt()).round() as usize).max(16),
            avg_doc_len: self.avg_doc_len,
            zipf_exponent: self.zipf_exponent,
            doc_len_sigma: self.doc_len_sigma,
        }
    }

    /// A small profile suitable for laptop-scale experiments: roughly
    /// `target_tokens` tokens while preserving the dataset's document-length
    /// characteristics.
    pub fn scaled_to_tokens(&self, target_tokens: u64) -> Self {
        let factor = target_tokens as f64 / self.expected_tokens() as f64;
        self.scaled(factor)
    }

    /// Generate a synthetic corpus matching this profile.
    pub fn generate(&self, seed: u64) -> Corpus {
        SyntheticCorpus::new(self.clone()).generate(seed)
    }
}

/// Zipfian corpus generator driven by a [`DatasetProfile`].
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    profile: DatasetProfile,
}

impl SyntheticCorpus {
    /// Create a generator for the given profile.
    pub fn new(profile: DatasetProfile) -> Self {
        SyntheticCorpus { profile }
    }

    /// The profile this generator was built from.
    pub fn profile(&self) -> &DatasetProfile {
        &self.profile
    }

    /// Zipfian word weights `w_r ∝ 1 / r^s` over the vocabulary.
    fn word_weights(&self) -> Vec<f32> {
        let s = self.profile.zipf_exponent;
        (1..=self.profile.vocab_size)
            .map(|rank| (1.0 / (rank as f64).powf(s)) as f32)
            .collect()
    }

    /// Draw a document length from a log-normal with the profile's mean.
    fn draw_doc_len<R: Rng>(&self, rng: &mut R) -> usize {
        let sigma = self.profile.doc_len_sigma;
        let mu = self.profile.avg_doc_len.ln() - sigma * sigma / 2.0;
        let z = standard_normal(rng);
        let len = (mu + sigma * z).exp();
        len.round().max(1.0) as usize
    }

    /// Generate the corpus.
    pub fn generate(&self, seed: u64) -> Corpus {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let table = AliasTable::new(&self.word_weights());
        let mut builder = CorpusBuilder::new(self.profile.vocab_size);
        builder.reserve_tokens(self.profile.expected_tokens() as usize);
        let mut doc = Vec::new();
        for _ in 0..self.profile.num_docs {
            let len = self.draw_doc_len(&mut rng);
            doc.clear();
            doc.reserve(len);
            for _ in 0..len {
                doc.push(table.sample(&mut rng) as WordId);
            }
            builder.push_doc(&doc);
        }
        builder.build()
    }
}

/// Generator that draws a corpus from a known LDA model, providing ground
/// truth for convergence and topic-recovery tests.
#[derive(Debug, Clone)]
pub struct LdaGenerator {
    /// Number of topics in the generating model.
    pub num_topics: usize,
    /// Vocabulary size.
    pub vocab_size: usize,
    /// Number of documents to generate.
    pub num_docs: usize,
    /// Average document length.
    pub avg_doc_len: f64,
    /// Dirichlet concentration for document–topic mixtures.
    pub alpha: f64,
    /// Dirichlet concentration for topic–word distributions.
    pub beta: f64,
}

impl LdaGenerator {
    /// A small, well-separated configuration used throughout the test suites.
    pub fn small(num_topics: usize, vocab_size: usize, num_docs: usize, avg_doc_len: f64) -> Self {
        LdaGenerator {
            num_topics,
            vocab_size,
            num_docs,
            avg_doc_len,
            alpha: 0.1,
            beta: 0.05,
        }
    }

    /// Generate `(corpus, true_topic_word_distributions)`.
    ///
    /// The returned distributions are row-stochastic (`num_topics × vocab_size`).
    pub fn generate(&self, seed: u64) -> (Corpus, Vec<Vec<f64>>) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        // Topic–word distributions φ_k ~ Dirichlet(β).
        let phi: Vec<Vec<f64>> = (0..self.num_topics)
            .map(|_| dirichlet(&mut rng, self.vocab_size, self.beta))
            .collect();
        let phi_tables: Vec<AliasTable> = phi
            .iter()
            .map(|row| AliasTable::new(&row.iter().map(|&p| p as f32).collect::<Vec<_>>()))
            .collect();

        let mut builder = CorpusBuilder::new(self.vocab_size);
        let mut doc = Vec::new();
        for _ in 0..self.num_docs {
            // Document–topic mixture θ_d ~ Dirichlet(α).
            let theta = dirichlet(&mut rng, self.num_topics, self.alpha);
            let theta_table = AliasTable::new(&theta.iter().map(|&p| p as f32).collect::<Vec<_>>());
            let len = poisson_like(&mut rng, self.avg_doc_len).max(1);
            doc.clear();
            for _ in 0..len {
                let k = theta_table.sample(&mut rng);
                let w = phi_tables[k].sample(&mut rng) as WordId;
                doc.push(w);
            }
            builder.push_doc(&doc);
        }
        (builder.build(), phi)
    }
}

/// Standard normal via Box–Muller (avoids a dependency on `rand_distr`).
fn standard_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Marsaglia–Tsang gamma sampler (shape `a > 0`, unit scale).
fn gamma_sample<R: Rng>(rng: &mut R, a: f64) -> f64 {
    if a < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^(1/a)
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        return gamma_sample(rng, a + 1.0) * u.powf(1.0 / a);
    }
    let d = a - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = standard_normal(rng);
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v3 = v * v * v;
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        if u.ln() < 0.5 * x * x + d - d * v3 + d * v3.ln() {
            return d * v3;
        }
    }
}

/// Draw a symmetric Dirichlet(concentration) vector of the given dimension.
fn dirichlet<R: Rng>(rng: &mut R, dim: usize, concentration: f64) -> Vec<f64> {
    let mut draws: Vec<f64> = (0..dim).map(|_| gamma_sample(rng, concentration)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Degenerate (can only happen with pathological concentration): uniform.
        return vec![1.0 / dim as f64; dim];
    }
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

/// Approximate Poisson draw with the given mean (normal approximation for
/// large means, which is all the generators need).
fn poisson_like<R: Rng>(rng: &mut R, mean: f64) -> usize {
    if mean < 30.0 {
        // Knuth's algorithm for small means.
        let l = (-mean).exp();
        let mut k = 0usize;
        let mut p = 1.0;
        loop {
            p *= rng.gen::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
        }
    }
    let z = standard_normal(rng);
    (mean + mean.sqrt() * z).round().max(0.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_profiles_match_paper() {
        let nyt = DatasetProfile::nytimes();
        assert_eq!(nyt.num_docs, 299_752);
        assert_eq!(nyt.vocab_size, 101_636);
        // 299,752 × 332 ≈ 99.5M tokens (paper: 99,542,125).
        let tokens = nyt.expected_tokens();
        assert!((tokens as f64 - 99_542_125.0).abs() / 99_542_125.0 < 0.01);

        let pm = DatasetProfile::pubmed();
        assert_eq!(pm.num_docs, 8_200_000);
        assert_eq!(pm.vocab_size, 141_043);
        let tokens = pm.expected_tokens();
        assert!((tokens as f64 - 737_869_083.0).abs() / 737_869_083.0 < 0.02);
    }

    #[test]
    fn scaled_profile_preserves_doc_length() {
        let p = DatasetProfile::nytimes().scaled(0.001);
        assert_eq!(p.avg_doc_len, 332.0);
        assert!(p.num_docs >= 299 && p.num_docs <= 301);
        assert!(p.vocab_size < 101_636);
    }

    #[test]
    fn scaled_to_tokens_hits_target() {
        let p = DatasetProfile::pubmed().scaled_to_tokens(100_000);
        let got = p.expected_tokens();
        assert!(
            (got as f64 - 100_000.0).abs() / 100_000.0 < 0.1,
            "expected ≈100k tokens, profile implies {got}"
        );
    }

    #[test]
    fn generated_corpus_matches_profile_statistics() {
        let profile = DatasetProfile {
            name: "test".into(),
            num_docs: 500,
            vocab_size: 200,
            avg_doc_len: 50.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.5,
        };
        let corpus = profile.generate(42);
        corpus.validate().unwrap();
        assert_eq!(corpus.num_docs(), 500);
        assert_eq!(corpus.vocab_size(), 200);
        let avg = corpus.avg_doc_len();
        assert!((avg - 50.0).abs() / 50.0 < 0.15, "avg doc len {avg}");
    }

    #[test]
    fn generated_corpus_is_zipfian() {
        let profile = DatasetProfile {
            name: "zipf".into(),
            num_docs: 400,
            vocab_size: 500,
            avg_doc_len: 80.0,
            zipf_exponent: 1.1,
            doc_len_sigma: 0.4,
        };
        let corpus = profile.generate(7);
        let freq = corpus.word_frequencies();
        // The most frequent word should dominate the median word by a large
        // factor — the signature of a heavy-tailed distribution.
        let max = *freq.iter().max().unwrap();
        let mut sorted = freq.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        assert!(max > 20 * median.max(1), "max {max} vs median {median}");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let profile = DatasetProfile::nytimes().scaled(0.0005);
        let a = profile.generate(11);
        let b = profile.generate(11);
        let c = profile.generate(12);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn lda_generator_produces_recoverable_structure() {
        let gen = LdaGenerator::small(4, 100, 200, 40.0);
        let (corpus, phi) = gen.generate(3);
        corpus.validate().unwrap();
        assert_eq!(phi.len(), 4);
        assert_eq!(phi[0].len(), 100);
        for row in &phi {
            let sum: f64 = row.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "topic distribution must sum to 1");
        }
        assert!(corpus.num_tokens() > 200 * 20);
    }

    #[test]
    fn dirichlet_sums_to_one_and_respects_dim() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for &conc in &[0.05, 0.5, 5.0] {
            let v = dirichlet(&mut rng, 32, conc);
            assert_eq!(v.len(), 32);
            let s: f64 = v.iter().sum();
            assert!((s - 1.0).abs() < 1e-9);
            assert!(v.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn gamma_sampler_has_correct_mean() {
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let a = 3.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| gamma_sample(&mut rng, a)).sum::<f64>() / n as f64;
        assert!((mean - a).abs() < 0.1, "gamma mean {mean}, expected {a}");
    }

    #[test]
    fn poisson_like_has_correct_mean_small_and_large() {
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        for &mean in &[5.0f64, 120.0] {
            let n = 5_000;
            let got: f64 = (0..n)
                .map(|_| poisson_like(&mut rng, mean) as f64)
                .sum::<f64>()
                / n as f64;
            assert!((got - mean).abs() / mean < 0.08, "mean {got} vs {mean}");
        }
    }
}
