//! Incremental document storage for streaming/online training.
//!
//! Batch training consumes an immutable [`Corpus`]; the streaming session in
//! `culda-core` instead grows (and shrinks) its corpus while a model is live.
//! This module provides the storage layer for that workflow:
//!
//! * [`Document`] — one not-yet-ingested document (a sequence of word ids);
//! * [`CorpusBuffer`] — an append-only document store with tombstone-based
//!   retirement, vocabulary growth, and compaction.
//!
//! Every pushed document receives a **stable uid**: a monotonically
//! increasing 64-bit identity that is never reused, independent of how
//! documents are batched into `push` calls and of later retirements.  The
//! uid is what the streaming trainer keys its counter-based RNG streams by,
//! which is why ingestion batching cannot change sampled assignments (see
//! `DESIGN.md` §9).
//!
//! Retirement only *tombstones* a document: the storage row stays in place
//! (so live document order — ascending uid — never changes) until
//! [`CorpusBuffer::compact`] drops the dead rows.  Compaction is a pure
//! storage operation: the live view returned by
//! [`CorpusBuffer::live_corpus`] is identical before and after.

use crate::corpus::{Corpus, CorpusBuilder, WordId};
use serde::{Deserialize, Serialize};

/// A single document handed to a streaming session for ingestion.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Document {
    /// The token word ids, in original document order.
    pub words: Vec<WordId>,
}

impl Document {
    /// A document over the given word ids.
    pub fn new(words: impl Into<Vec<WordId>>) -> Self {
        Document {
            words: words.into(),
        }
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True when the document holds no tokens.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }
}

impl From<Vec<WordId>> for Document {
    fn from(words: Vec<WordId>) -> Self {
        Document { words }
    }
}

impl From<&[WordId]> for Document {
    fn from(words: &[WordId]) -> Self {
        Document {
            words: words.to_vec(),
        }
    }
}

#[derive(Debug, Clone)]
struct BufferedDoc {
    uid: u64,
    words: Vec<WordId>,
    alive: bool,
}

/// An append-only document store with tombstone retirement.
///
/// ```
/// use culda_corpus::stream::CorpusBuffer;
///
/// let mut buf = CorpusBuffer::new(4);
/// let a = buf.push(&[0, 1, 1]);
/// let b = buf.push(&[2, 3]);
/// assert_eq!((a, b), (0, 1));
/// assert_eq!(buf.live_tokens(), 5);
///
/// buf.retire(a).unwrap();
/// assert_eq!(buf.num_live_docs(), 1);
/// assert!(buf.tombstone_fraction() > 0.5);
///
/// buf.compact();
/// assert_eq!(buf.tombstone_fraction(), 0.0);
/// assert_eq!(buf.live_corpus().num_docs(), 1);
/// // uids are never reused, even after compaction.
/// assert_eq!(buf.push(&[0]), 2);
/// ```
#[derive(Debug, Clone)]
pub struct CorpusBuffer {
    vocab_size: usize,
    docs: Vec<BufferedDoc>,
    next_uid: u64,
    live_docs: usize,
    live_tokens: u64,
    dead_tokens: u64,
}

impl CorpusBuffer {
    /// An empty buffer over an initial vocabulary of `vocab_size` words
    /// (`0` is fine: the vocabulary grows on demand, see
    /// [`CorpusBuffer::push`]).
    pub fn new(vocab_size: usize) -> Self {
        CorpusBuffer {
            vocab_size,
            docs: Vec::new(),
            next_uid: 0,
            live_docs: 0,
            live_tokens: 0,
            dead_tokens: 0,
        }
    }

    /// Rebuild a buffer from persisted parts (the streaming-session resume
    /// path): live documents with their original uids, in ascending uid
    /// order, plus the uid counter to continue from.
    ///
    /// # Panics
    /// Panics if uids are not strictly ascending or `next_uid` does not
    /// exceed them all.
    pub fn from_parts(vocab_size: usize, docs: Vec<(u64, Vec<WordId>)>, next_uid: u64) -> Self {
        let mut buf = CorpusBuffer::new(vocab_size);
        let mut prev: Option<u64> = None;
        for (uid, words) in docs {
            assert!(
                prev.is_none_or(|p| p < uid),
                "buffer uids must be strictly ascending"
            );
            assert!(uid < next_uid, "next_uid must exceed every stored uid");
            prev = Some(uid);
            buf.live_docs += 1;
            buf.live_tokens += words.len() as u64;
            for &w in &words {
                buf.vocab_size = buf.vocab_size.max(w as usize + 1);
            }
            buf.docs.push(BufferedDoc {
                uid,
                words,
                alive: true,
            });
        }
        buf.next_uid = next_uid;
        buf
    }

    /// Append a document and return its stable uid.  Word ids beyond the
    /// current vocabulary grow it (the incremental vocabulary append path:
    /// new words simply extend the id range, exactly as the UCI formats do
    /// when a fresh crawl extends the dictionary).
    pub fn push(&mut self, words: &[WordId]) -> u64 {
        for &w in words {
            self.vocab_size = self.vocab_size.max(w as usize + 1);
        }
        let uid = self.next_uid;
        self.next_uid += 1;
        self.live_docs += 1;
        self.live_tokens += words.len() as u64;
        self.docs.push(BufferedDoc {
            uid,
            words: words.to_vec(),
            alive: true,
        });
        uid
    }

    /// Tombstone a live document.  Returns an error naming the uid when it
    /// is unknown or already retired.
    pub fn retire(&mut self, uid: u64) -> Result<(), String> {
        match self.find(uid) {
            Some(i) if self.docs[i].alive => {
                self.docs[i].alive = false;
                self.live_docs -= 1;
                let len = self.docs[i].words.len() as u64;
                self.live_tokens -= len;
                self.dead_tokens += len;
                Ok(())
            }
            Some(_) => Err(format!("document {uid} is already retired")),
            None => Err(format!("unknown document uid {uid}")),
        }
    }

    fn find(&self, uid: u64) -> Option<usize> {
        self.docs.binary_search_by_key(&uid, |d| d.uid).ok()
    }

    /// The tokens of a document (live or tombstoned), if it is still stored.
    pub fn words(&self, uid: u64) -> Option<&[WordId]> {
        self.find(uid).map(|i| self.docs[i].words.as_slice())
    }

    /// Whether `uid` names a live (stored and not retired) document.
    pub fn is_alive(&self, uid: u64) -> bool {
        self.find(uid).map(|i| self.docs[i].alive).unwrap_or(false)
    }

    /// Uids of the live documents, ascending — the document order of
    /// [`CorpusBuffer::live_corpus`].
    pub fn live_uids(&self) -> Vec<u64> {
        self.docs
            .iter()
            .filter(|d| d.alive)
            .map(|d| d.uid)
            .collect()
    }

    /// Number of live documents.
    pub fn num_live_docs(&self) -> usize {
        self.live_docs
    }

    /// Tokens across the live documents.
    pub fn live_tokens(&self) -> u64 {
        self.live_tokens
    }

    /// Tokens held by tombstoned rows that have not been compacted away yet.
    pub fn dead_tokens(&self) -> u64 {
        self.dead_tokens
    }

    /// Current vocabulary size (grows with pushed documents, never shrinks).
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Widen the vocabulary to at least `vocab_size` words (callers that
    /// ingest a pre-built corpus keep its full id range even when the
    /// trailing words have no occurrences yet).
    pub fn ensure_vocab(&mut self, vocab_size: usize) {
        self.vocab_size = self.vocab_size.max(vocab_size);
    }

    /// The uid the next pushed document will receive.
    pub fn next_uid(&self) -> u64 {
        self.next_uid
    }

    /// Fraction of stored tokens that belong to tombstoned rows
    /// (`0.0` for an empty buffer).
    pub fn tombstone_fraction(&self) -> f64 {
        let total = self.live_tokens + self.dead_tokens;
        if total == 0 {
            0.0
        } else {
            self.dead_tokens as f64 / total as f64
        }
    }

    /// Drop tombstoned rows from storage.  Live document order (and every
    /// uid) is unchanged; only the backing memory shrinks.
    pub fn compact(&mut self) {
        self.docs.retain(|d| d.alive);
        self.dead_tokens = 0;
    }

    /// An immutable [`Corpus`] over the live documents, in ascending uid
    /// order, with the buffer's current vocabulary size.
    pub fn live_corpus(&self) -> Corpus {
        let mut b = CorpusBuilder::new(self.vocab_size);
        b.reserve_tokens(self.live_tokens as usize);
        for d in self.docs.iter().filter(|d| d.alive) {
            b.push_doc(&d.words);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_grows_vocabulary_and_assigns_monotone_uids() {
        let mut buf = CorpusBuffer::new(2);
        assert_eq!(buf.push(&[0, 1]), 0);
        assert_eq!(buf.push(&[5, 5]), 1);
        assert_eq!(buf.vocab_size(), 6);
        assert_eq!(buf.num_live_docs(), 2);
        assert_eq!(buf.live_tokens(), 4);
        assert_eq!(buf.next_uid(), 2);
        let corpus = buf.live_corpus();
        corpus.validate().unwrap();
        assert_eq!(corpus.vocab_size(), 6);
    }

    #[test]
    fn retire_tombstones_without_reordering_live_docs() {
        let mut buf = CorpusBuffer::new(3);
        let a = buf.push(&[0]);
        let b = buf.push(&[1, 1]);
        let c = buf.push(&[2]);
        buf.retire(b).unwrap();
        assert!(!buf.is_alive(b));
        assert!(buf.is_alive(a) && buf.is_alive(c));
        assert_eq!(buf.live_uids(), vec![a, c]);
        assert_eq!(buf.live_corpus().doc(1), &[2]);
        assert_eq!(buf.dead_tokens(), 2);
        assert!(buf.retire(b).is_err(), "double retire is rejected");
        assert!(buf.retire(99).is_err(), "unknown uid is rejected");
    }

    #[test]
    fn compact_preserves_the_live_view_and_uid_stream() {
        let mut buf = CorpusBuffer::new(4);
        for i in 0..6 {
            buf.push(&[(i % 4) as u32]);
        }
        buf.retire(0).unwrap();
        buf.retire(3).unwrap();
        let before = buf.live_corpus();
        let uids_before = buf.live_uids();
        buf.compact();
        assert_eq!(buf.live_corpus(), before);
        assert_eq!(buf.live_uids(), uids_before);
        assert_eq!(buf.tombstone_fraction(), 0.0);
        assert!(buf.words(0).is_none(), "compacted rows are gone");
        assert_eq!(buf.push(&[1]), 6, "uids continue past retired ones");
    }

    #[test]
    fn from_parts_round_trips() {
        let mut buf = CorpusBuffer::new(2);
        buf.push(&[0, 1]);
        buf.push(&[1]);
        buf.push(&[0]);
        buf.retire(1).unwrap();
        buf.compact();
        let docs: Vec<(u64, Vec<u32>)> = buf
            .live_uids()
            .into_iter()
            .map(|uid| (uid, buf.words(uid).unwrap().to_vec()))
            .collect();
        let back = CorpusBuffer::from_parts(buf.vocab_size(), docs, buf.next_uid());
        assert_eq!(back.live_corpus(), buf.live_corpus());
        assert_eq!(back.live_uids(), buf.live_uids());
        assert_eq!(back.next_uid(), buf.next_uid());
    }

    #[test]
    fn document_conversions() {
        let d = Document::new(vec![1u32, 2, 3]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        let from_slice: Document = [4u32, 5].as_slice().into();
        assert_eq!(from_slice.words, vec![4, 5]);
        let from_vec: Document = vec![7u32].into();
        assert_eq!(from_vec.words, vec![7]);
        assert!(Document::new(Vec::new()).is_empty());
    }
}
