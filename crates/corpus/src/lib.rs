//! # culda-corpus
//!
//! Corpus representation, dataset generators and workload partitioning for
//! the CuLDA_CGS reproduction.
//!
//! The paper evaluates on two UCI bag-of-words corpora, NYTimes and PubMed
//! (Table 3).  Those corpora are not redistributable with this repository, so
//! this crate provides:
//!
//! * [`Corpus`] — the in-memory token representation (documents are slices of
//!   word ids, exactly the "collection of documents, each a group of tokens"
//!   of §2.1);
//! * [`bow`] — a reader/writer for the UCI `docword.txt` bag-of-words format
//!   so the real corpora can be dropped in when available;
//! * [`synthetic`] — synthetic corpus generators whose statistics (document
//!   count, vocabulary size, average document length, Zipfian word skew)
//!   match the published Table 3 numbers at configurable scale;
//! * [`partition`] — the partition-by-document, token-balanced chunking of
//!   §5.1 together with the word-major layout and the document–word map the
//!   GPU kernels consume (§6.1.2, §6.2);
//! * [`stats`] — corpus statistics used to print Table 3;
//! * [`stream`] — the incremental document/vocabulary append path for
//!   streaming sessions ([`Document`] + the tombstoning [`CorpusBuffer`]);
//! * [`text`] — raw-text ingestion (tokenisation, stop words, frequency
//!   pruning) producing a [`Corpus`] + [`Vocabulary`] pair;
//! * [`holdout`] — train/test splits (document-level and document-completion)
//!   for held-out evaluation;
//! * [`snapshot`] — versioned binary corpus snapshots so preprocessing is
//!   done once and reloaded per run.

#![warn(missing_docs)]

pub mod bow;
pub mod corpus;
pub mod holdout;
pub mod partition;
pub mod snapshot;
pub mod stats;
pub mod stream;
pub mod synthetic;
pub mod text;
pub mod vocab;

pub use corpus::{Corpus, CorpusBuilder, DocId, WordId};
pub use holdout::{split_documents, DocumentCompletion, DocumentSplit};
pub use partition::{ChunkLayout, Partitioner};
pub use snapshot::{load_corpus, save_corpus, SnapshotError};
pub use stats::CorpusStats;
pub use stream::{CorpusBuffer, Document};
pub use synthetic::{DatasetProfile, LdaGenerator, SyntheticCorpus};
pub use text::{TextPipeline, Tokenizer, TokenizerOptions};
pub use vocab::Vocabulary;
