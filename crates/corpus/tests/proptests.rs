//! Property-based tests for the corpus crate: snapshot round-trips, holdout
//! splits, text-pipeline pruning and token-balanced partitioning must hold
//! for *arbitrary* corpora, not just the hand-picked ones in the unit tests.

use culda_corpus::holdout::{split_documents, DocumentCompletion};
use culda_corpus::snapshot::{read_corpus, write_corpus};
use culda_corpus::text::{PruneOptions, TextPipeline, TokenizerOptions};
use culda_corpus::{Corpus, CorpusBuilder, Partitioner};
use proptest::prelude::*;

/// Strategy: an arbitrary small corpus (possibly with empty documents) over a
/// vocabulary of `1..=max_vocab` words.
fn arb_corpus(
    max_docs: usize,
    max_doc_len: usize,
    max_vocab: u32,
) -> impl Strategy<Value = Corpus> {
    (1..=max_vocab).prop_flat_map(move |vocab| {
        prop::collection::vec(
            prop::collection::vec(0..vocab, 0..=max_doc_len),
            0..=max_docs,
        )
        .prop_map(move |docs| {
            let mut b = CorpusBuilder::new(vocab as usize);
            for d in &docs {
                b.push_doc(d);
            }
            b.build()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        failure_persistence: FileFailurePersistence::WithSource("proptest-regressions"),
        ..ProptestConfig::default()
    })]

    #[test]
    fn snapshot_roundtrip_is_identity(corpus in arb_corpus(40, 30, 200)) {
        let mut buf = Vec::new();
        write_corpus(&corpus, &mut buf).unwrap();
        let back = read_corpus(buf.as_slice()).unwrap();
        prop_assert_eq!(back, corpus);
    }

    #[test]
    fn snapshot_rejects_any_truncation(corpus in arb_corpus(20, 20, 100), cut in 0.0f64..1.0) {
        let mut buf = Vec::new();
        write_corpus(&corpus, &mut buf).unwrap();
        let keep = ((buf.len() as f64) * cut) as usize;
        if keep < buf.len() {
            buf.truncate(keep);
            prop_assert!(read_corpus(buf.as_slice()).is_err());
        }
    }

    #[test]
    fn document_split_partitions_tokens_and_docs(
        corpus in arb_corpus(60, 25, 150),
        fraction in 0.0f64..0.9,
        seed in any::<u64>(),
    ) {
        let split = split_documents(&corpus, fraction, seed);
        prop_assert_eq!(split.train.num_docs() + split.test.num_docs(), corpus.num_docs());
        prop_assert_eq!(
            split.train.num_tokens() + split.test.num_tokens(),
            corpus.num_tokens()
        );
        prop_assert_eq!(split.train_doc_ids.len(), split.train.num_docs());
        prop_assert_eq!(split.test_doc_ids.len(), split.test.num_docs());
        // Every original document appears exactly once across the two sides.
        let mut seen: Vec<u32> = split
            .train_doc_ids
            .iter()
            .chain(&split.test_doc_ids)
            .copied()
            .collect();
        seen.sort_unstable();
        let expect: Vec<u32> = (0..corpus.num_docs() as u32).collect();
        prop_assert_eq!(seen, expect);
        // Contents survive the mapping.
        for (i, &orig) in split.train_doc_ids.iter().enumerate() {
            prop_assert_eq!(split.train.doc(i), corpus.doc(orig as usize));
        }
    }

    #[test]
    fn completion_split_preserves_every_token_multiset(
        corpus in arb_corpus(50, 30, 120),
        fraction in 0.05f64..0.95,
        seed in any::<u64>(),
    ) {
        let dc = DocumentCompletion::split(&corpus, fraction, seed);
        prop_assert!(dc.validate_against(&corpus).is_ok());
        prop_assert_eq!(
            dc.observed.num_tokens() + dc.heldout.num_tokens(),
            corpus.num_tokens()
        );
        for d in 0..corpus.num_docs() {
            if corpus.doc_len(d) >= 2 {
                prop_assert!(dc.observed.doc_len(d) >= 1);
                prop_assert!(dc.heldout.doc_len(d) >= 1);
            } else {
                prop_assert_eq!(dc.heldout.doc_len(d), 0);
            }
        }
    }

    #[test]
    fn token_balanced_partitioning_is_exhaustive_and_balanced(
        corpus in arb_corpus(80, 40, 100),
        chunks in 1usize..8,
    ) {
        let partitioner = Partitioner::by_tokens(&corpus, chunks);
        let per_chunk = partitioner.tokens_per_chunk();
        prop_assert_eq!(per_chunk.iter().sum::<u64>(), corpus.num_tokens() as u64);
        let ranges = partitioner.ranges();
        // Ranges tile the document space in order without gaps or overlaps.
        let mut next = 0usize;
        for r in ranges {
            prop_assert_eq!(r.start, next);
            prop_assert!(r.end >= r.start);
            next = r.end;
        }
        prop_assert_eq!(next, corpus.num_docs());
        // No chunk exceeds the total by construction; when a chunk is larger
        // than the ideal share, it is because a single document straddles the
        // boundary, so the overshoot is bounded by the longest document.
        if corpus.num_tokens() > 0 {
            let ideal = corpus.num_tokens() as u64 / chunks as u64;
            let longest = corpus.max_doc_len() as u64;
            for &t in per_chunk {
                prop_assert!(t <= ideal + longest + 1);
            }
        }
    }

    #[test]
    fn text_pipeline_never_grows_under_stricter_pruning(
        docs in prop::collection::vec("[a-e]{1,4}( [a-e]{1,4}){0,15}", 1..30),
        min_df in 1usize..4,
    ) {
        let build = |min_doc_freq: usize| {
            let mut p = TextPipeline::new(TokenizerOptions {
                remove_stopwords: false,
                min_token_len: 1,
                ..TokenizerOptions::default()
            })
            .with_pruning(PruneOptions { min_doc_freq, ..PruneOptions::default() });
            for d in &docs {
                p.ingest(d);
            }
            p.build()
        };
        let (loose_corpus, loose_vocab) = build(1);
        let (strict_corpus, strict_vocab) = build(min_df);
        prop_assert_eq!(loose_corpus.num_docs(), docs.len());
        prop_assert_eq!(strict_corpus.num_docs(), docs.len());
        prop_assert!(strict_vocab.len() <= loose_vocab.len());
        prop_assert!(strict_corpus.num_tokens() <= loose_corpus.num_tokens());
        prop_assert!(loose_corpus.validate().is_ok());
        prop_assert!(strict_corpus.validate().is_ok());
        // Word ids are assigned by descending frequency: id 0 must be at
        // least as frequent as any other id.
        let freq = loose_corpus.word_frequencies();
        if freq.len() > 1 {
            prop_assert!(freq[0] >= *freq.iter().max().unwrap() || freq[0] == 0);
        }
    }
}
