//! An AliasLDA-style Metropolis–Hastings sampler (Li, Ahmed, Ravi, Smola,
//! KDD'14 — reference \[19\] of the paper, "Reducing the sampling complexity of
//! topic models").
//!
//! AliasLDA splits the collapsed conditional exactly as CuLDA_CGS does
//! (Eq. 6 of the paper):
//!
//! * a **sparse document term** `p_d(k) ∝ θ_{d,k} · (φ_{k,v} + β)/(n_k + Vβ)`
//!   whose support is the `K_d ≪ K` topics present in the document — this is
//!   evaluated *exactly* and fresh for every token;
//! * a **dense word term** `p_w(k) ∝ α · (φ_{k,v} + β)/(n_k + Vβ)` which is
//!   drawn in O(1) from a per-word **stale alias table** rebuilt once per
//!   iteration, with the staleness corrected by a Metropolis–Hastings
//!   acceptance step against the exact conditional.
//!
//! The difference from [`crate::lightlda::LightLda`] is the proposal: LightLDA
//! cycles between a doc proposal and a word proposal, whereas AliasLDA uses a
//! single *mixture* proposal (exact sparse part + stale dense part) per MH
//! step, which is the historical ancestor of the paper's own S/Q split.
//!
//! Like the other CPU baselines, the sampler runs functionally on the host
//! and its simulated time is charged to a CPU roofline spec at cache-line
//! granularity.

use crate::solver::LdaSolver;
use culda_corpus::Corpus;
use culda_gpusim::cost::{kernel_time, CostCounters};
use culda_gpusim::DeviceSpec;
use culda_metrics::special::ln_gamma;
use culda_sparse::StaleAliasProposal;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Bytes charged per random access to a large model structure.
const CACHE_LINE: u64 = 64;

/// An AliasLDA-style sparse + stale-alias Metropolis–Hastings sampler.
pub struct AliasLda {
    num_topics: usize,
    alpha: f64,
    beta: f64,
    mh_steps: usize,
    docs: Vec<Vec<u32>>,
    z: Vec<Vec<u16>>,
    doc_topic: Vec<Vec<u32>>,
    topic_word: Vec<Vec<u32>>,
    topic_total: Vec<u64>,
    vocab_size: usize,
    num_tokens: u64,
    elapsed_s: f64,
    rng: ChaCha8Rng,
    spec: DeviceSpec,
    label: String,
}

impl AliasLda {
    /// Initialise with random assignments, timed against `spec`.
    pub fn new(
        corpus: &Corpus,
        num_topics: usize,
        alpha: f64,
        beta: f64,
        mh_steps: usize,
        seed: u64,
        spec: DeviceSpec,
    ) -> Self {
        assert!(mh_steps >= 1, "at least one MH step per token is required");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let vocab_size = corpus.vocab_size();
        let mut docs = Vec::with_capacity(corpus.num_docs());
        let mut z = Vec::with_capacity(corpus.num_docs());
        let mut doc_topic = vec![vec![0u32; num_topics]; corpus.num_docs()];
        let mut topic_word = vec![vec![0u32; vocab_size]; num_topics];
        let mut topic_total = vec![0u64; num_topics];
        for d in 0..corpus.num_docs() {
            let words: Vec<u32> = corpus.doc(d).to_vec();
            let mut zd = Vec::with_capacity(words.len());
            for &w in &words {
                let k = rng.gen_range(0..num_topics);
                zd.push(k as u16);
                doc_topic[d][k] += 1;
                topic_word[k][w as usize] += 1;
                topic_total[k] += 1;
            }
            docs.push(words);
            z.push(zd);
        }
        let label = format!("AliasLDA ({})", spec.name);
        AliasLda {
            num_topics,
            alpha,
            beta,
            mh_steps,
            docs,
            z,
            doc_topic,
            topic_word,
            topic_total,
            vocab_size,
            num_tokens: corpus.num_tokens() as u64,
            elapsed_s: 0.0,
            rng,
            spec,
            label,
        }
    }

    /// The paper's priors (`α = 50/K`, `β = 0.01`), two MH steps per token,
    /// timed on the Volta platform's Xeon.
    pub fn with_paper_priors(corpus: &Corpus, num_topics: usize, seed: u64) -> Self {
        Self::new(
            corpus,
            num_topics,
            50.0 / num_topics as f64,
            0.01,
            2,
            seed,
            DeviceSpec::xeon_e5_2690v4(),
        )
    }

    /// φ as dense per-topic word counts.
    pub fn topic_word(&self) -> &[Vec<u32>] {
        &self.topic_word
    }

    /// Consistency check (tests).
    pub fn validate(&self) -> Result<(), String> {
        let total: u64 = self.topic_total.iter().sum();
        if total != self.num_tokens {
            return Err(format!("n_k sums to {total}, expected {}", self.num_tokens));
        }
        let theta: u64 = self
            .doc_topic
            .iter()
            .flat_map(|r| r.iter().map(|&c| c as u64))
            .sum();
        if theta != self.num_tokens {
            return Err(format!("θ sums to {theta}, expected {}", self.num_tokens));
        }
        for (k, row) in self.topic_word.iter().enumerate() {
            let s: u64 = row.iter().map(|&c| c as u64).sum();
            if s != self.topic_total[k] {
                return Err(format!(
                    "φ row {k} sums to {s}, n_k is {}",
                    self.topic_total[k]
                ));
            }
        }
        Ok(())
    }

    /// The exact (unnormalised) collapsed conditional of topic `k` for word
    /// `w` in document `d` with the current token removed.
    #[inline]
    fn posterior_mass(&self, d: usize, w: usize, k: usize) -> f64 {
        let v_beta = self.beta * self.vocab_size as f64;
        (self.doc_topic[d][k] as f64 + self.alpha) * (self.topic_word[k][w] as f64 + self.beta)
            / (self.topic_total[k] as f64 + v_beta)
    }

    /// The fresh per-topic weight of the dense/word part of the proposal
    /// (without the `α` factor); the stale counterpart lives in
    /// [`StaleWordProposal::weights`].
    #[inline]
    fn word_weight(&self, w: usize, k: usize) -> f64 {
        let v_beta = self.beta * self.vocab_size as f64;
        (self.topic_word[k][w] as f64 + self.beta) / (self.topic_total[k] as f64 + v_beta)
    }

    /// Stale per-word alias tables over `(φ_{k,v} + β)/(n_k + Vβ)`, rebuilt
    /// once per iteration exactly as the original system amortises them.
    /// Construction is the shared [`StaleAliasProposal`] of `culda-sparse`,
    /// the same bundle the `AliasHybridSampler` kernel builds on the GPU.
    fn build_word_proposals(&self) -> Vec<StaleAliasProposal> {
        let v_beta = self.beta * self.vocab_size as f64;
        (0..self.vocab_size)
            .map(|w| {
                let weights: Vec<f64> = (0..self.num_topics)
                    .map(|k| {
                        (self.topic_word[k][w] as f64 + self.beta)
                            / (self.topic_total[k] as f64 + v_beta)
                    })
                    .collect();
                StaleAliasProposal::from_weights(weights)
            })
            .collect()
    }

    /// The unnormalised proposal density `q(k)` of the mixture proposal for a
    /// token of word `w` in document `d`: the exact sparse doc part plus the
    /// `α`-weighted stale word part.
    #[inline]
    fn proposal_mass(&self, d: usize, w: usize, k: usize, stale: &StaleAliasProposal) -> f64 {
        self.doc_topic[d][k] as f64 * self.word_weight(w, k) + self.alpha * stale.weight(k)
    }
}

impl LdaSolver for AliasLda {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_iteration(&mut self) -> f64 {
        let mut counters = CostCounters::zero();

        // Stale alias tables: one build per word per iteration, as in the
        // original AliasLDA amortisation argument.
        let proposals = self.build_word_proposals();
        counters.dram_read_bytes += (self.num_topics * self.vocab_size) as u64 * 4;
        counters.dram_write_bytes += (self.num_topics * self.vocab_size) as u64 * 12;
        counters.flops += (self.num_topics * self.vocab_size) as u64 * 3;

        // Scratch reused across documents: distinct topics of the current
        // document and their sparse-bucket cumulative weights.
        let mut doc_topics: Vec<u16> = Vec::new();
        let mut doc_cumulative: Vec<f64> = Vec::new();

        for d in 0..self.docs.len() {
            let len = self.docs[d].len();
            if len == 0 {
                continue;
            }
            for t in 0..len {
                let w = self.docs[d][t] as usize;
                let mut k = self.z[d][t] as usize;
                let stale = &proposals[w];

                // Remove the token so all masses use the collapsed "−di"
                // statistics; it is re-inserted under the final topic.
                self.doc_topic[d][k] -= 1;
                self.topic_word[k][w] -= 1;
                self.topic_total[k] -= 1;
                counters.dram_write_bytes += 12;

                // Exact sparse doc bucket: support is the topics with a
                // non-zero θ_{d,·} entry, found by scanning the document's
                // assignments (K_d ≤ L_d distinct topics).
                doc_topics.clear();
                doc_cumulative.clear();
                let mut sparse_mass = 0.0f64;
                for &zt in &self.z[d] {
                    let kt = zt as usize;
                    if kt == k && self.doc_topic[d][kt] == 0 {
                        continue; // the removed token's topic may have emptied
                    }
                    if doc_topics.contains(&zt) {
                        continue;
                    }
                    doc_topics.push(zt);
                    sparse_mass += self.doc_topic[d][kt] as f64 * self.word_weight(w, kt);
                    doc_cumulative.push(sparse_mass);
                }
                counters.dram_read_bytes += doc_topics.len() as u64 * CACHE_LINE / 4;
                counters.flops += doc_topics.len() as u64 * 4;

                let dense_mass = self.alpha * stale.mass();
                let total_mass = sparse_mass + dense_mass;

                for _ in 0..self.mh_steps {
                    // Draw from the mixture proposal.
                    let pick: f64 = self.rng.gen::<f64>() * total_mass;
                    counters.rng_draws += 1;
                    let k_prop = if pick < sparse_mass && !doc_topics.is_empty() {
                        // Exact sparse part: inverse-CDF over the cumulative
                        // weights of the document's topics.
                        let idx = doc_cumulative
                            .partition_point(|&c| c < pick)
                            .min(doc_topics.len() - 1);
                        doc_topics[idx] as usize
                    } else {
                        // Stale dense part: O(1) alias draw.
                        stale.table().sample(&mut self.rng)
                    };
                    counters.dram_read_bytes += CACHE_LINE;
                    counters.rng_draws += 1;

                    if k_prop == k {
                        continue;
                    }

                    // Metropolis–Hastings correction for the staleness of the
                    // alias part: accept with p(k')q(k) / (p(k)q(k')).
                    let accept = self.posterior_mass(d, w, k_prop)
                        * self.proposal_mass(d, w, k, stale)
                        / (self.posterior_mass(d, w, k) * self.proposal_mass(d, w, k_prop, stale));
                    counters.dram_read_bytes += 2 * CACHE_LINE;
                    counters.flops += 16;
                    counters.rng_draws += 1;
                    if self.rng.gen::<f64>() < accept {
                        k = k_prop;
                        counters.atomic_ops += 2;
                    }
                }

                // Re-insert the token under its (possibly new) topic.
                self.doc_topic[d][k] += 1;
                self.topic_word[k][w] += 1;
                self.topic_total[k] += 1;
                self.z[d][t] = k as u16;
                counters.dram_write_bytes += 14;
            }
        }

        let time = kernel_time(&self.spec, &counters, 100_000).total_s;
        self.elapsed_s += time;
        time
    }

    fn num_tokens(&self) -> u64 {
        self.num_tokens
    }

    fn loglik_per_token(&self) -> f64 {
        if self.num_tokens == 0 {
            return 0.0;
        }
        let k = self.num_topics as f64;
        let v = self.vocab_size as f64;
        let mut ll = 0.0;
        for row in &self.doc_topic {
            let len: u64 = row.iter().map(|&c| c as u64).sum();
            if len == 0 {
                continue;
            }
            ll += ln_gamma(k * self.alpha) - k * ln_gamma(self.alpha);
            for &c in row {
                ll += ln_gamma(c as f64 + self.alpha);
            }
            ll -= ln_gamma(len as f64 + k * self.alpha);
        }
        for (kk, row) in self.topic_word.iter().enumerate() {
            ll += ln_gamma(v * self.beta) - v * ln_gamma(self.beta);
            for &c in row {
                ll += ln_gamma(c as f64 + self.beta);
            }
            ll -= ln_gamma(self.topic_total[kk] as f64 + v * self.beta);
        }
        ll / self.num_tokens as f64
    }

    fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }
}

impl crate::solver::SolverState for AliasLda {
    fn doc_topic_counts(&self) -> Vec<Vec<u32>> {
        self.doc_topic.clone()
    }

    fn topic_word_counts(&self) -> Vec<Vec<u32>> {
        self.topic_word.clone()
    }

    fn topic_totals_vec(&self) -> Vec<u64> {
        self.topic_total.clone()
    }

    fn z_assignments(&self) -> Vec<Vec<u16>> {
        self.z.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::DatasetProfile;

    fn corpus() -> Corpus {
        DatasetProfile {
            name: "alias".into(),
            num_docs: 100,
            vocab_size: 80,
            avg_doc_len: 18.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(23)
    }

    #[test]
    fn counts_remain_consistent_across_iterations() {
        let corpus = corpus();
        let mut a = AliasLda::with_paper_priors(&corpus, 8, 4);
        a.validate().unwrap();
        for _ in 0..4 {
            a.run_iteration();
            a.validate().unwrap();
        }
    }

    #[test]
    fn likelihood_improves_and_time_accumulates() {
        let corpus = corpus();
        let mut a = AliasLda::with_paper_priors(&corpus, 16, 5);
        let before = a.loglik_per_token();
        let mut total = 0.0;
        for _ in 0..12 {
            total += a.run_iteration();
        }
        let after = a.loglik_per_token();
        assert!(after > before, "{before} → {after}");
        assert!((a.elapsed_s() - total).abs() < 1e-12);
        assert!(total > 0.0);
    }

    #[test]
    fn proposal_mass_matches_posterior_when_fresh() {
        // Immediately after building the stale tables (before any topic
        // changes), q(k) = θ_{d,k}·w(k) + α·w(k) equals the exact conditional
        // up to the shared normaliser, so the acceptance ratio is exactly 1.
        let corpus = corpus();
        let a = AliasLda::with_paper_priors(&corpus, 8, 6);
        let proposals = a.build_word_proposals();
        let d = 0;
        let w = a.docs[d][0] as usize;
        for k in 0..8 {
            let q = a.proposal_mass(d, w, k, &proposals[w]);
            let p = a.posterior_mass(d, w, k);
            assert!((q - p).abs() < 1e-12 * p.max(1.0), "topic {k}: {q} vs {p}");
        }
    }

    #[test]
    fn more_mh_steps_cost_more_simulated_time() {
        let corpus = corpus();
        let mut fast = AliasLda::new(
            &corpus,
            8,
            50.0 / 8.0,
            0.01,
            1,
            9,
            DeviceSpec::xeon_e5_2690v4(),
        );
        let mut slow = AliasLda::new(
            &corpus,
            8,
            50.0 / 8.0,
            0.01,
            4,
            9,
            DeviceSpec::xeon_e5_2690v4(),
        );
        let t_fast = fast.run_iteration();
        let t_slow = slow.run_iteration();
        assert!(t_slow > t_fast, "{t_slow} vs {t_fast}");
    }

    #[test]
    fn empty_documents_are_handled() {
        let mut b = culda_corpus::CorpusBuilder::new(5);
        b.push_doc(&[]);
        b.push_doc(&[0, 1, 2]);
        let corpus = b.build();
        let mut a = AliasLda::with_paper_priors(&corpus, 4, 1);
        a.run_iteration();
        a.validate().unwrap();
    }

    #[test]
    fn single_topic_degenerates_gracefully() {
        let corpus = corpus();
        let mut a = AliasLda::with_paper_priors(&corpus, 1, 2);
        a.run_iteration();
        a.validate().unwrap();
        // With K = 1 every token must stay in topic 0.
        assert!(a.z.iter().flatten().all(|&z| z == 0));
    }

    #[test]
    #[should_panic(expected = "at least one MH step")]
    fn zero_mh_steps_is_rejected() {
        let corpus = corpus();
        let _ = AliasLda::new(&corpus, 8, 0.1, 0.01, 0, 1, DeviceSpec::xeon_e5_2690v4());
    }
}
