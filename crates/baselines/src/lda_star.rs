//! An LDA*-style distributed baseline (Yu et al., VLDB'17).
//!
//! LDA* trains LDA on a CPU cluster behind a parameter server; the machines
//! are connected by 10 Gb/s Ethernet, and §7.2 of the CuLDA paper argues that
//! the per-iteration model synchronization over that network is what limits
//! it.  LDA*'s code is not public (the paper cites its reported PubMed
//! results), so this baseline models the system as:
//!
//! * **compute**: the per-iteration sampling work of a WarpLDA-style CPU
//!   sampler, divided across `num_workers` machines (perfect compute
//!   scaling — deliberately generous to the baseline);
//! * **communication**: each worker pushes its φ delta to the parameter
//!   server and pulls the fresh model every iteration, i.e. `2 × φ bytes` per
//!   worker over a shared 10 GbE fabric.
//!
//! The functional sampling runs once on the full corpus (a synchronized
//! parameter server makes every worker see the same model at iteration
//! boundaries, so the statistics match a single synchronized sampler).  The
//! substitution is documented in `DESIGN.md`.

use crate::solver::{LdaSolver, SolverState};
use crate::warplda::WarpLda;
use culda_corpus::Corpus;
use culda_gpusim::{DeviceSpec, Interconnect};

/// The LDA*-style distributed baseline.
pub struct LdaStar {
    sampler: WarpLda,
    num_workers: usize,
    network: Interconnect,
    phi_bytes: u64,
    elapsed_s: f64,
}

impl LdaStar {
    /// Build the baseline with `num_workers` CPU workers (the paper's PubMed
    /// configuration uses 20 nodes) connected by 10 Gb/s Ethernet.
    pub fn new(corpus: &Corpus, num_topics: usize, num_workers: usize, seed: u64) -> Self {
        assert!(num_workers >= 1);
        let sampler = WarpLda::new(
            corpus,
            num_topics,
            50.0 / num_topics as f64,
            0.01,
            seed,
            DeviceSpec::xeon_e5_2690v4(),
        );
        // The parameter-server traffic is the dense K × V model in 32-bit
        // counts (LDA* does not use the 16-bit compression of §6.1.3).
        let phi_bytes = (num_topics * corpus.vocab_size()) as u64 * 4;
        LdaStar {
            sampler,
            num_workers,
            network: Interconnect::Ethernet10G,
            phi_bytes,
            elapsed_s: 0.0,
        }
    }

    /// Per-iteration synchronization time: every worker pushes its delta and
    /// pulls the new model over the shared 10 GbE fabric.
    pub fn sync_time_s(&self) -> f64 {
        if self.num_workers <= 1 {
            return 0.0;
        }
        2.0 * self.network.transfer_time_s(self.phi_bytes)
    }

    /// Number of workers.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }
}

impl LdaSolver for LdaStar {
    fn name(&self) -> String {
        format!("LDA*-style ({} nodes, 10GbE)", self.num_workers)
    }

    fn run_iteration(&mut self) -> f64 {
        let compute = self.sampler.run_iteration() / self.num_workers as f64;
        let time = compute + self.sync_time_s();
        // `run_iteration` on the inner sampler already accumulated its own
        // elapsed time; track the distributed time separately.
        self.elapsed_s += time;
        time
    }

    fn num_tokens(&self) -> u64 {
        self.sampler.num_tokens()
    }

    fn loglik_per_token(&self) -> f64 {
        self.sampler.loglik_per_token()
    }

    fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }
}

impl SolverState for LdaStar {
    fn doc_topic_counts(&self) -> Vec<Vec<u32>> {
        self.sampler.doc_topic_counts()
    }

    fn topic_word_counts(&self) -> Vec<Vec<u32>> {
        self.sampler.topic_word_counts()
    }

    fn topic_totals_vec(&self) -> Vec<u64> {
        self.sampler.topic_totals_vec()
    }

    fn z_assignments(&self) -> Vec<Vec<u16>> {
        self.sampler.z_assignments()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::DatasetProfile;

    fn corpus() -> Corpus {
        DatasetProfile {
            name: "ldastar".into(),
            num_docs: 120,
            vocab_size: 100,
            avg_doc_len: 20.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(9)
    }

    #[test]
    fn more_workers_reduce_compute_but_not_network() {
        let corpus = corpus();
        let mut two = LdaStar::new(&corpus, 16, 2, 1);
        let mut twenty = LdaStar::new(&corpus, 16, 20, 1);
        let t2 = two.run_iteration();
        let t20 = twenty.run_iteration();
        // The network term is identical, so scaling is sublinear.
        assert!(t20 < t2);
        assert!(
            t20 > t2 / 10.0,
            "scaling cannot be near-linear: {t2} vs {t20}"
        );
        assert_eq!(two.sync_time_s(), twenty.sync_time_s());
    }

    #[test]
    fn network_dominates_at_scale() {
        // With a large model (K × V), the 10 GbE sync exceeds the per-worker
        // compute share — the effect §7.2 attributes LDA*'s limits to.
        let corpus = DatasetProfile {
            name: "big-vocab".into(),
            num_docs: 150,
            vocab_size: 3000,
            avg_doc_len: 20.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(3);
        let mut star = LdaStar::new(&corpus, 256, 20, 2);
        let total = star.run_iteration();
        assert!(
            star.sync_time_s() > total * 0.5,
            "sync {} should dominate iteration {total}",
            star.sync_time_s()
        );
    }

    #[test]
    fn converges_like_its_inner_sampler() {
        let corpus = corpus();
        let mut star = LdaStar::new(&corpus, 8, 4, 7);
        let before = star.loglik_per_token();
        for _ in 0..8 {
            star.run_iteration();
        }
        assert!(star.loglik_per_token() > before);
        assert!(star.elapsed_s() > 0.0);
        assert!(star.name().contains("4 nodes"));
    }
}
