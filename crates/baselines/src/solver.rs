//! The common solver interface used by the comparison harness (Figure 8).

use culda_core::CuLdaTrainer;
use culda_metrics::log_likelihood;

/// An LDA solver that can be driven one iteration at a time and report its
/// simulated elapsed time and model quality.
pub trait LdaSolver {
    /// Human-readable name of the solver/platform combination.
    fn name(&self) -> String;
    /// Run one full pass over the corpus; returns the simulated time of the
    /// iteration in seconds.
    fn run_iteration(&mut self) -> f64;
    /// Total number of tokens in the corpus.
    fn num_tokens(&self) -> u64;
    /// Joint log-likelihood per token of the current state.
    fn loglik_per_token(&self) -> f64;
    /// Accumulated simulated training time.
    fn elapsed_s(&self) -> f64;
}

/// Read-only access to a solver's model state, in solver-agnostic dense
/// form.  Every solver in the workspace implements this alongside
/// [`LdaSolver`]; the cross-sampler conformance suite in `culda-testkit`
/// checks its invariants (count conservation, non-negativity, φ/θ
/// normalization, seed determinism) through this interface alone.
pub trait SolverState {
    /// θ as dense per-document topic counts (`D × K`, corpus order).
    fn doc_topic_counts(&self) -> Vec<Vec<u32>>;
    /// φ as dense per-topic word counts (`K × V`).
    fn topic_word_counts(&self) -> Vec<Vec<u32>>;
    /// Per-topic totals `n_k` (`K` entries).
    fn topic_totals_vec(&self) -> Vec<u64>;
    /// The topic assignment of every token, per document in corpus order
    /// and per token in original document order.
    fn z_assignments(&self) -> Vec<Vec<u16>>;
}

/// [`LdaSolver`] adapter for the CuLDA_CGS trainer itself.
pub struct CuLdaSolver {
    trainer: CuLdaTrainer,
    label: String,
}

impl CuLdaSolver {
    /// Wrap a trainer under a display label (e.g. `"CuLDA_CGS (Volta)"`).
    pub fn new(trainer: CuLdaTrainer, label: impl Into<String>) -> Self {
        CuLdaSolver {
            trainer,
            label: label.into(),
        }
    }

    /// Access the wrapped trainer.
    pub fn trainer(&self) -> &CuLdaTrainer {
        &self.trainer
    }

    /// Mutable access to the wrapped trainer.
    pub fn trainer_mut(&mut self) -> &mut CuLdaTrainer {
        &mut self.trainer
    }
}

impl SolverState for CuLdaSolver {
    fn doc_topic_counts(&self) -> Vec<Vec<u32>> {
        self.trainer.merged_theta().to_dense()
    }

    fn topic_word_counts(&self) -> Vec<Vec<u32>> {
        let phi = self.trainer.global_phi();
        (0..phi.rows()).map(|k| phi.row(k).to_vec()).collect()
    }

    fn topic_totals_vec(&self) -> Vec<u64> {
        self.trainer
            .global_nk()
            .iter()
            .map(|&n| u64::try_from(n).expect("negative topic total"))
            .collect()
    }

    fn z_assignments(&self) -> Vec<Vec<u16>> {
        self.trainer.z_snapshot()
    }
}

impl LdaSolver for CuLdaSolver {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_iteration(&mut self) -> f64 {
        self.trainer.run_iteration().sim_time_s
    }

    fn num_tokens(&self) -> u64 {
        self.trainer.total_tokens()
    }

    fn loglik_per_token(&self) -> f64 {
        let cfg = self.trainer.config();
        log_likelihood(
            &self.trainer.merged_theta(),
            &self.trainer.global_phi(),
            &self.trainer.global_nk(),
            cfg.alpha,
            cfg.beta,
        )
        .per_token()
    }

    fn elapsed_s(&self) -> f64 {
        self.trainer.sim_time_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_core::{LdaConfig, SessionBuilder};
    use culda_corpus::DatasetProfile;
    use culda_gpusim::{DeviceSpec, MultiGpuSystem};

    #[test]
    fn culda_adapter_reports_consistent_quantities() {
        let corpus = DatasetProfile {
            name: "adapter".into(),
            num_docs: 80,
            vocab_size: 60,
            avg_doc_len: 15.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(4);
        let trainer = SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(8).seed(1))
            .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 1))
            .build()
            .unwrap();
        let mut solver = CuLdaSolver::new(trainer, "CuLDA (Volta)");
        assert_eq!(solver.name(), "CuLDA (Volta)");
        assert_eq!(solver.num_tokens(), corpus.num_tokens() as u64);
        let before = solver.loglik_per_token();
        let t0 = solver.run_iteration();
        let t1 = solver.run_iteration();
        assert!(t0 > 0.0 && t1 > 0.0);
        assert!((solver.elapsed_s() - (t0 + t1)).abs() < 1e-12);
        let _ = before; // quality assertions live in the integration tests
        assert!(solver.loglik_per_token().is_finite());
    }
}
