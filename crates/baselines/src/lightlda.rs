//! A LightLDA-style cycle-proposal Metropolis–Hastings sampler
//! (Yuan et al., WWW'15 — reference \[35\] of the paper).
//!
//! LightLDA factorises the collapsed conditional into a *document* term and a
//! *word* term and alternates between two cheap proposals:
//!
//! * the **doc proposal** `q_d(k) ∝ θ_{d,k} + α`, drawn in O(1) by picking a
//!   random token of the document (or a uniform topic with probability
//!   `Kα / (L_d + Kα)`);
//! * the **word proposal** `q_w(k) ∝ φ_{k,v} + β`, drawn in O(1) from a
//!   per-word alias table that is rebuilt lazily once per iteration.
//!
//! Each proposal is accepted with the full Metropolis–Hastings ratio, so the
//! chain targets the exact CGS posterior.  The difference from the
//! WarpLDA-style baseline is the proposal/acceptance factorisation (WarpLDA
//! uses the *opposite* term in each acceptance, LightLDA uses the full ratio)
//! and the number of MH steps per token (`mh_steps`, 2 by default as in the
//! original system).
//!
//! Like the other CPU baselines, the sampler runs functionally on the host
//! and its time is charged to a CPU roofline spec at cache-line granularity.

use crate::solver::LdaSolver;
use culda_corpus::Corpus;
use culda_gpusim::cost::{kernel_time, CostCounters};
use culda_gpusim::DeviceSpec;
use culda_metrics::special::ln_gamma;
use culda_sparse::AliasTable;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Bytes charged per random access to a large model structure.
const CACHE_LINE: u64 = 64;

/// A LightLDA-style cycle-proposal MH sampler.
pub struct LightLda {
    num_topics: usize,
    alpha: f64,
    beta: f64,
    mh_steps: usize,
    docs: Vec<Vec<u32>>,
    z: Vec<Vec<u16>>,
    doc_topic: Vec<Vec<u32>>,
    topic_word: Vec<Vec<u32>>,
    topic_total: Vec<u64>,
    vocab_size: usize,
    num_tokens: u64,
    elapsed_s: f64,
    rng: ChaCha8Rng,
    spec: DeviceSpec,
    label: String,
}

impl LightLda {
    /// Initialise with random assignments, timed against `spec`.
    pub fn new(
        corpus: &Corpus,
        num_topics: usize,
        alpha: f64,
        beta: f64,
        mh_steps: usize,
        seed: u64,
        spec: DeviceSpec,
    ) -> Self {
        assert!(mh_steps >= 1, "at least one MH step per token is required");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let vocab_size = corpus.vocab_size();
        let mut docs = Vec::with_capacity(corpus.num_docs());
        let mut z = Vec::with_capacity(corpus.num_docs());
        let mut doc_topic = vec![vec![0u32; num_topics]; corpus.num_docs()];
        let mut topic_word = vec![vec![0u32; vocab_size]; num_topics];
        let mut topic_total = vec![0u64; num_topics];
        for d in 0..corpus.num_docs() {
            let words: Vec<u32> = corpus.doc(d).to_vec();
            let mut zd = Vec::with_capacity(words.len());
            for &w in &words {
                let k = rng.gen_range(0..num_topics);
                zd.push(k as u16);
                doc_topic[d][k] += 1;
                topic_word[k][w as usize] += 1;
                topic_total[k] += 1;
            }
            docs.push(words);
            z.push(zd);
        }
        let label = format!("LightLDA ({})", spec.name);
        LightLda {
            num_topics,
            alpha,
            beta,
            mh_steps,
            docs,
            z,
            doc_topic,
            topic_word,
            topic_total,
            vocab_size,
            num_tokens: corpus.num_tokens() as u64,
            elapsed_s: 0.0,
            rng,
            spec,
            label,
        }
    }

    /// The paper's priors (`α = 50/K`, `β = 0.01`), two MH steps per token,
    /// timed on the Volta platform's Xeon.
    pub fn with_paper_priors(corpus: &Corpus, num_topics: usize, seed: u64) -> Self {
        Self::new(
            corpus,
            num_topics,
            50.0 / num_topics as f64,
            0.01,
            2,
            seed,
            DeviceSpec::xeon_e5_2690v4(),
        )
    }

    /// φ as dense per-topic word counts.
    pub fn topic_word(&self) -> &[Vec<u32>] {
        &self.topic_word
    }

    /// Consistency check (tests).
    pub fn validate(&self) -> Result<(), String> {
        let total: u64 = self.topic_total.iter().sum();
        if total != self.num_tokens {
            return Err(format!("n_k sums to {total}, expected {}", self.num_tokens));
        }
        let theta: u64 = self
            .doc_topic
            .iter()
            .flat_map(|r| r.iter().map(|&c| c as u64))
            .sum();
        if theta != self.num_tokens {
            return Err(format!("θ sums to {theta}, expected {}", self.num_tokens));
        }
        Ok(())
    }

    /// The exact (unnormalised) collapsed conditional of topic `k` for word
    /// `w` in document `d`, used in the acceptance ratios.
    #[inline]
    fn posterior_mass(&self, d: usize, w: usize, k: usize) -> f64 {
        let v_beta = self.beta * self.vocab_size as f64;
        (self.doc_topic[d][k] as f64 + self.alpha) * (self.topic_word[k][w] as f64 + self.beta)
            / (self.topic_total[k] as f64 + v_beta)
    }

    /// Per-word alias tables over `φ_{·,w} + β`, rebuilt once per iteration.
    fn build_word_proposals(&self) -> Vec<AliasTable> {
        (0..self.vocab_size)
            .map(|w| {
                let weights: Vec<f32> = (0..self.num_topics)
                    .map(|k| (self.topic_word[k][w] as f64 + self.beta) as f32)
                    .collect();
                AliasTable::new(&weights)
            })
            .collect()
    }
}

impl LdaSolver for LightLda {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_iteration(&mut self) -> f64 {
        let alpha_k = self.alpha * self.num_topics as f64;
        let mut counters = CostCounters::zero();

        let proposals = self.build_word_proposals();
        counters.dram_read_bytes += (self.num_topics * self.vocab_size) as u64 * 4;
        counters.dram_write_bytes += (self.num_topics * self.vocab_size) as u64 * 8;
        counters.flops += (self.num_topics * self.vocab_size) as u64 * 2;

        for d in 0..self.docs.len() {
            let len = self.docs[d].len();
            if len == 0 {
                continue;
            }
            for t in 0..len {
                let w = self.docs[d][t] as usize;
                let mut k = self.z[d][t] as usize;

                // Remove the token from the counts so proposals and
                // acceptance ratios use the collapsed "−di" statistics; it is
                // added back under the final topic after the MH steps.
                self.doc_topic[d][k] -= 1;
                self.topic_word[k][w] -= 1;
                self.topic_total[k] -= 1;
                counters.dram_write_bytes += 12;

                for step in 0..self.mh_steps {
                    // Alternate doc / word proposals (the "cycle" proposal).
                    let (k_prop, q_ratio) = if step % 2 == 0 {
                        // Doc proposal q(k) ∝ θ_{d,k} + α.
                        let u: f64 = self.rng.gen::<f64>() * (len as f64 + alpha_k);
                        let kp = if u < len as f64 {
                            self.z[d][self.rng.gen_range(0..len)] as usize
                        } else {
                            self.rng.gen_range(0..self.num_topics)
                        };
                        // q(k)/q(k') for the acceptance ratio.
                        let q_new = self.doc_topic[d][kp] as f64 + self.alpha;
                        let q_old = self.doc_topic[d][k] as f64 + self.alpha;
                        (kp, q_old / q_new)
                    } else {
                        // Word proposal q(k) ∝ φ_{k,v} + β.
                        let kp = proposals[w].sample(&mut self.rng);
                        let q_new = self.topic_word[kp][w] as f64 + self.beta;
                        let q_old = self.topic_word[k][w] as f64 + self.beta;
                        (kp, q_old / q_new)
                    };
                    counters.dram_read_bytes += 2 * CACHE_LINE;
                    counters.flops += 10;
                    counters.rng_draws += 2;

                    if k_prop == k {
                        continue;
                    }
                    // Full MH acceptance with the exact posterior masses.
                    let accept =
                        self.posterior_mass(d, w, k_prop) / self.posterior_mass(d, w, k) * q_ratio;
                    counters.dram_read_bytes += 2 * CACHE_LINE;
                    counters.flops += 8;
                    counters.rng_draws += 1;
                    if self.rng.gen::<f64>() < accept {
                        k = k_prop;
                        counters.atomic_ops += 2;
                    }
                }
                // Re-insert the token under its (possibly new) topic.
                self.doc_topic[d][k] += 1;
                self.topic_word[k][w] += 1;
                self.topic_total[k] += 1;
                self.z[d][t] = k as u16;
                counters.dram_write_bytes += 14;
            }
        }

        let time = kernel_time(&self.spec, &counters, 100_000).total_s;
        self.elapsed_s += time;
        time
    }

    fn num_tokens(&self) -> u64 {
        self.num_tokens
    }

    fn loglik_per_token(&self) -> f64 {
        if self.num_tokens == 0 {
            return 0.0;
        }
        let k = self.num_topics as f64;
        let v = self.vocab_size as f64;
        let mut ll = 0.0;
        for row in &self.doc_topic {
            let len: u64 = row.iter().map(|&c| c as u64).sum();
            if len == 0 {
                continue;
            }
            ll += ln_gamma(k * self.alpha) - k * ln_gamma(self.alpha);
            for &c in row {
                ll += ln_gamma(c as f64 + self.alpha);
            }
            ll -= ln_gamma(len as f64 + k * self.alpha);
        }
        for (kk, row) in self.topic_word.iter().enumerate() {
            ll += ln_gamma(v * self.beta) - v * ln_gamma(self.beta);
            for &c in row {
                ll += ln_gamma(c as f64 + self.beta);
            }
            ll -= ln_gamma(self.topic_total[kk] as f64 + v * self.beta);
        }
        ll / self.num_tokens as f64
    }

    fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }
}

impl crate::solver::SolverState for LightLda {
    fn doc_topic_counts(&self) -> Vec<Vec<u32>> {
        self.doc_topic.clone()
    }

    fn topic_word_counts(&self) -> Vec<Vec<u32>> {
        self.topic_word.clone()
    }

    fn topic_totals_vec(&self) -> Vec<u64> {
        self.topic_total.clone()
    }

    fn z_assignments(&self) -> Vec<Vec<u16>> {
        self.z.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::DatasetProfile;

    fn corpus() -> Corpus {
        DatasetProfile {
            name: "light".into(),
            num_docs: 100,
            vocab_size: 80,
            avg_doc_len: 18.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(17)
    }

    #[test]
    fn counts_remain_consistent_across_iterations() {
        let corpus = corpus();
        let mut l = LightLda::with_paper_priors(&corpus, 8, 4);
        l.validate().unwrap();
        for _ in 0..4 {
            l.run_iteration();
            l.validate().unwrap();
        }
    }

    #[test]
    fn likelihood_improves_and_time_accumulates() {
        let corpus = corpus();
        let mut l = LightLda::with_paper_priors(&corpus, 16, 5);
        let before = l.loglik_per_token();
        let mut total = 0.0;
        for _ in 0..12 {
            total += l.run_iteration();
        }
        let after = l.loglik_per_token();
        assert!(after > before, "{before} → {after}");
        assert!((l.elapsed_s() - total).abs() < 1e-12);
        assert!(total > 0.0);
    }

    #[test]
    fn more_mh_steps_cost_more_simulated_time() {
        let corpus = corpus();
        let mut fast = LightLda::new(
            &corpus,
            8,
            50.0 / 8.0,
            0.01,
            1,
            9,
            DeviceSpec::xeon_e5_2690v4(),
        );
        let mut slow = LightLda::new(
            &corpus,
            8,
            50.0 / 8.0,
            0.01,
            4,
            9,
            DeviceSpec::xeon_e5_2690v4(),
        );
        let t_fast = fast.run_iteration();
        let t_slow = slow.run_iteration();
        assert!(t_slow > t_fast, "{t_slow} vs {t_fast}");
    }

    #[test]
    fn empty_documents_are_handled() {
        let mut b = culda_corpus::CorpusBuilder::new(5);
        b.push_doc(&[]);
        b.push_doc(&[0, 1, 2]);
        let corpus = b.build();
        let mut l = LightLda::with_paper_priors(&corpus, 4, 1);
        l.run_iteration();
        l.validate().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one MH step")]
    fn zero_mh_steps_is_rejected() {
        let corpus = corpus();
        let _ = LightLda::new(&corpus, 8, 0.1, 0.01, 0, 1, DeviceSpec::xeon_e5_2690v4());
    }
}
