//! A WarpLDA-style Metropolis–Hastings CPU sampler (Chen et al., VLDB'16).
//!
//! WarpLDA is the CPU baseline of §7.2: an O(1)-per-token sampler that
//! replaces the exact collapsed conditional with two alternating
//! Metropolis–Hastings proposals —
//!
//! * a **document proposal** `q ∝ θ_{d,k} + α`, drawn by picking the topic of
//!   a random token of the same document (or a uniform topic with the
//!   α-smoothing probability), accepted with the ratio of the word factors;
//! * a **word proposal** `q ∝ (φ_{k,w} + β)/(n_k + βV)`, drawn from a per-word
//!   alias table rebuilt once per iteration, accepted with the ratio of the
//!   document factors.
//!
//! Functionally the sampler runs for real on the host (so its convergence in
//! Figure 8 is genuine).  Its *reported* time is produced by the same
//! roofline cost model the GPU kernels use, evaluated against the Xeon spec
//! the paper ran WarpLDA on: per-token costs are charged at cache-line
//! granularity because the model accesses (φ columns, alias tables, other
//! tokens' assignments) are effectively random over a working set far larger
//! than the last-level cache — the exact effect §3.2 blames for the limited
//! scalability of CPU LDA.

use crate::solver::LdaSolver;
use culda_corpus::Corpus;
use culda_gpusim::cost::{kernel_time, CostCounters};
use culda_gpusim::DeviceSpec;
use culda_metrics::special::ln_gamma;
use culda_sparse::AliasTable;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Bytes charged per random access to a large model structure (one cache
/// line, the dominant cost of pointer-chasing samplers on CPUs).
const CACHE_LINE: u64 = 64;

/// A WarpLDA-style MH sampler over a corpus.
pub struct WarpLda {
    num_topics: usize,
    alpha: f64,
    beta: f64,
    docs: Vec<Vec<u32>>,
    z: Vec<Vec<u16>>,
    doc_topic: Vec<Vec<u32>>,
    topic_word: Vec<Vec<u32>>,
    topic_total: Vec<u64>,
    vocab_size: usize,
    num_tokens: u64,
    elapsed_s: f64,
    rng: ChaCha8Rng,
    spec: DeviceSpec,
    label: String,
}

impl WarpLda {
    /// Initialise with random assignments, to be timed against `spec`
    /// (normally [`DeviceSpec::xeon_e5_2690v4`], the paper's WarpLDA host).
    pub fn new(
        corpus: &Corpus,
        num_topics: usize,
        alpha: f64,
        beta: f64,
        seed: u64,
        spec: DeviceSpec,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let vocab_size = corpus.vocab_size();
        let mut docs = Vec::with_capacity(corpus.num_docs());
        let mut z = Vec::with_capacity(corpus.num_docs());
        let mut doc_topic = vec![vec![0u32; num_topics]; corpus.num_docs()];
        let mut topic_word = vec![vec![0u32; vocab_size]; num_topics];
        let mut topic_total = vec![0u64; num_topics];
        for d in 0..corpus.num_docs() {
            let words: Vec<u32> = corpus.doc(d).to_vec();
            let mut zd = Vec::with_capacity(words.len());
            for &w in &words {
                let k = rng.gen_range(0..num_topics);
                zd.push(k as u16);
                doc_topic[d][k] += 1;
                topic_word[k][w as usize] += 1;
                topic_total[k] += 1;
            }
            docs.push(words);
            z.push(zd);
        }
        let label = format!("WarpLDA ({})", spec.name);
        WarpLda {
            num_topics,
            alpha,
            beta,
            docs,
            z,
            doc_topic,
            topic_word,
            topic_total,
            vocab_size,
            num_tokens: corpus.num_tokens() as u64,
            elapsed_s: 0.0,
            rng,
            spec,
            label,
        }
    }

    /// The paper's configuration: `α = 50/K`, `β = 0.01`, timed on the Xeon
    /// E5-2690 v4 of the Volta platform.
    pub fn with_paper_priors(corpus: &Corpus, num_topics: usize, seed: u64) -> Self {
        Self::new(
            corpus,
            num_topics,
            50.0 / num_topics as f64,
            0.01,
            seed,
            DeviceSpec::xeon_e5_2690v4(),
        )
    }

    /// φ as dense per-topic word counts.
    pub fn topic_word(&self) -> &[Vec<u32>] {
        &self.topic_word
    }

    /// Per-word alias tables over `(φ_{·,w} + β)/(n_· + βV)` (rebuilt once per
    /// iteration, as WarpLDA does).
    fn build_word_proposals(&self) -> Vec<AliasTable> {
        let v_beta = self.beta * self.vocab_size as f64;
        (0..self.vocab_size)
            .map(|w| {
                let weights: Vec<f32> = (0..self.num_topics)
                    .map(|k| {
                        ((self.topic_word[k][w] as f64 + self.beta)
                            / (self.topic_total[k] as f64 + v_beta)) as f32
                    })
                    .collect();
                AliasTable::new(&weights)
            })
            .collect()
    }

    /// Consistency check (tests).
    pub fn validate(&self) -> Result<(), String> {
        let total: u64 = self.topic_total.iter().sum();
        if total != self.num_tokens {
            return Err(format!("n_k sums to {total}, expected {}", self.num_tokens));
        }
        Ok(())
    }
}

impl LdaSolver for WarpLda {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_iteration(&mut self) -> f64 {
        let v_beta = self.beta * self.vocab_size as f64;
        let alpha_k = self.alpha * self.num_topics as f64;
        let mut counters = CostCounters::zero();

        // Word-proposal alias tables, rebuilt once per iteration.
        let proposals = self.build_word_proposals();
        counters.dram_read_bytes += (self.num_topics * self.vocab_size) as u64 * 4;
        counters.dram_write_bytes += (self.num_topics * self.vocab_size) as u64 * 8;
        counters.flops += (self.num_topics * self.vocab_size) as u64 * 3;

        for d in 0..self.docs.len() {
            let len = self.docs[d].len();
            if len == 0 {
                continue;
            }
            for t in 0..len {
                let w = self.docs[d][t] as usize;
                let mut k = self.z[d][t] as usize;

                // ---- Document proposal. ----
                let u: f64 = self.rng.gen::<f64>() * (len as f64 + alpha_k);
                let k_prop = if u < len as f64 {
                    self.z[d][self.rng.gen_range(0..len)] as usize
                } else {
                    self.rng.gen_range(0..self.num_topics)
                };
                if k_prop != k {
                    let accept = ((self.topic_word[k_prop][w] as f64 + self.beta)
                        * (self.topic_total[k] as f64 + v_beta))
                        / ((self.topic_word[k][w] as f64 + self.beta)
                            * (self.topic_total[k_prop] as f64 + v_beta));
                    if self.rng.gen::<f64>() < accept {
                        self.doc_topic[d][k] -= 1;
                        self.topic_word[k][w] -= 1;
                        self.topic_total[k] -= 1;
                        k = k_prop;
                        self.doc_topic[d][k] += 1;
                        self.topic_word[k][w] += 1;
                        self.topic_total[k] += 1;
                    }
                }
                // Doc phase cost: another token's z, two φ entries, two n_k.
                counters.dram_read_bytes += 3 * CACHE_LINE + 16;
                counters.flops += 12;
                counters.rng_draws += 3;

                // ---- Word proposal. ----
                let k_prop = proposals[w].sample(&mut self.rng);
                if k_prop != k {
                    let accept = (self.doc_topic[d][k_prop] as f64 + self.alpha)
                        / (self.doc_topic[d][k] as f64 + self.alpha);
                    if self.rng.gen::<f64>() < accept {
                        self.doc_topic[d][k] -= 1;
                        self.topic_word[k][w] -= 1;
                        self.topic_total[k] -= 1;
                        k = k_prop;
                        self.doc_topic[d][k] += 1;
                        self.topic_word[k][w] += 1;
                        self.topic_total[k] += 1;
                    }
                }
                // Word phase cost: alias table bucket, two θ entries, z write.
                counters.dram_read_bytes += 3 * CACHE_LINE;
                counters.dram_write_bytes += 4;
                counters.flops += 6;
                counters.rng_draws += 3;

                self.z[d][t] = k as u16;
            }
        }

        // Time the pass on the CPU roofline (saturated parallel region).
        let time = kernel_time(&self.spec, &counters, 100_000).total_s;
        self.elapsed_s += time;
        time
    }

    fn num_tokens(&self) -> u64 {
        self.num_tokens
    }

    fn loglik_per_token(&self) -> f64 {
        if self.num_tokens == 0 {
            return 0.0;
        }
        let k = self.num_topics as f64;
        let v = self.vocab_size as f64;
        let mut ll = 0.0;
        for row in &self.doc_topic {
            let len: u64 = row.iter().map(|&c| c as u64).sum();
            if len == 0 {
                continue;
            }
            ll += ln_gamma(k * self.alpha) - k * ln_gamma(self.alpha);
            for &c in row {
                ll += ln_gamma(c as f64 + self.alpha);
            }
            ll -= ln_gamma(len as f64 + k * self.alpha);
        }
        for (kk, row) in self.topic_word.iter().enumerate() {
            ll += ln_gamma(v * self.beta) - v * ln_gamma(self.beta);
            for &c in row {
                ll += ln_gamma(c as f64 + self.beta);
            }
            ll -= ln_gamma(self.topic_total[kk] as f64 + v * self.beta);
        }
        ll / self.num_tokens as f64
    }

    fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }
}

impl crate::solver::SolverState for WarpLda {
    fn doc_topic_counts(&self) -> Vec<Vec<u32>> {
        self.doc_topic.clone()
    }

    fn topic_word_counts(&self) -> Vec<Vec<u32>> {
        self.topic_word.clone()
    }

    fn topic_totals_vec(&self) -> Vec<u64> {
        self.topic_total.clone()
    }

    fn z_assignments(&self) -> Vec<Vec<u16>> {
        self.z.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::DatasetProfile;

    fn corpus() -> Corpus {
        DatasetProfile {
            name: "warp".into(),
            num_docs: 100,
            vocab_size: 80,
            avg_doc_len: 20.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(6)
    }

    #[test]
    fn counts_remain_consistent() {
        let corpus = corpus();
        let mut w = WarpLda::with_paper_priors(&corpus, 8, 4);
        for _ in 0..4 {
            w.run_iteration();
            w.validate().unwrap();
        }
    }

    #[test]
    fn likelihood_improves_and_time_accumulates() {
        let corpus = corpus();
        let mut w = WarpLda::with_paper_priors(&corpus, 8, 5);
        let before = w.loglik_per_token();
        let mut total = 0.0;
        for _ in 0..12 {
            total += w.run_iteration();
        }
        let after = w.loglik_per_token();
        assert!(after > before, "{before} → {after}");
        assert!((w.elapsed_s() - total).abs() < 1e-12);
        assert!(total > 0.0);
    }

    #[test]
    fn warplda_is_slower_per_iteration_than_a_gpu_would_be() {
        // Not a full Table 4 reproduction (that lives in the bench harness),
        // just the sanity check that the CPU cost model yields a throughput
        // far below the GPU memory-bandwidth bound.
        let corpus = corpus();
        let mut w = WarpLda::with_paper_priors(&corpus, 16, 5);
        let t = w.run_iteration();
        let tokens_per_sec = corpus.num_tokens() as f64 / t;
        // The Xeon cannot exceed a few hundred million tokens/s under this
        // model; the Volta GPU sits around 600M in the paper.
        assert!(tokens_per_sec < 600e6, "{tokens_per_sec}");
        assert!(tokens_per_sec > 1e6);
    }
}
