//! # culda-baselines
//!
//! The solvers CuLDA_CGS is compared against in §7.2 of the paper, plus an
//! exact serial reference used for correctness testing:
//!
//! * [`cpu_cgs::CpuCgs`] — textbook collapsed Gibbs sampling on the CPU with
//!   exact decrement/increment bookkeeping.  Not a performance baseline; it
//!   is the statistical reference the fast solvers are validated against.
//! * [`warplda::WarpLda`] — a WarpLDA-style Metropolis–Hastings sampler
//!   (Chen et al., VLDB'16): O(1) work per token via alternating
//!   document-proposal and word-proposal phases with delayed count updates.
//!   This is the CPU solution the paper benchmarks against (Table 4, Fig. 8).
//! * [`saberlda::SaberLda`] — a SaberLDA-style single-GPU configuration
//!   (Li et al., ASPLOS'17): sparsity-aware GPU sampling *without* CuLDA's
//!   block-shared p2 tree and 16-bit compression, and limited to one GPU.
//!   The paper compares against SaberLDA's published numbers; this
//!   configuration reproduces the algorithmic gap on the same simulated
//!   substrate (the substitution is documented in `DESIGN.md`).
//! * [`lda_star::LdaStar`] — an LDA*-style distributed solver (Yu et al.,
//!   VLDB'17): CPU workers behind a parameter server connected by 10 Gb/s
//!   Ethernet, whose model synchronization is the bottleneck §7.2 discusses.
//! * [`sparselda::SparseLda`] — the exact sparsity-aware CPU sampler of Yao
//!   et al. (KDD'09, the paper's reference \[32\]), with the s/r/q bucket
//!   decomposition the paper's own S/Q split descends from.
//! * [`lightlda::LightLda`] — a LightLDA-style cycle-proposal MH sampler
//!   (Yuan et al., WWW'15, reference \[35\]), alias-table word proposals and
//!   O(1) work per token.
//! * [`alias_lda::AliasLda`] — an AliasLDA-style sampler (Li et al., KDD'14,
//!   reference \[19\]): exact sparse document term plus a stale per-word alias
//!   proposal corrected by Metropolis–Hastings — the ancestor of the paper's
//!   own S/Q decomposition.
//!
//! All solvers implement [`solver::LdaSolver`], so the Figure 8 harness can
//! drive them interchangeably.

#![warn(missing_docs)]

pub mod alias_lda;
pub mod cpu_cgs;
pub mod lda_star;
pub mod lightlda;
pub mod saberlda;
pub mod solver;
pub mod sparselda;
pub mod warplda;

pub use alias_lda::AliasLda;
pub use cpu_cgs::CpuCgs;
pub use lda_star::LdaStar;
pub use lightlda::LightLda;
pub use saberlda::SaberLda;
pub use solver::{CuLdaSolver, LdaSolver, SolverState};
pub use sparselda::SparseLda;
pub use warplda::WarpLda;
