//! Exact collapsed Gibbs sampling on the CPU.
//!
//! This is the textbook algorithm of §2.1 (Eq. 1) with strict bookkeeping:
//! before sampling a token its current topic is removed from θ, φ and `n_k`,
//! the full K-dimensional conditional is formed, a topic is drawn, and the
//! counts are re-incremented.  It is O(K) per token and makes no
//! approximation, so it serves as the statistical reference that the
//! sparsity-aware, delayed-update GPU solver is validated against.

use crate::solver::LdaSolver;
use culda_corpus::Corpus;
use culda_metrics::special::ln_gamma;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Exact serial collapsed Gibbs sampler.
pub struct CpuCgs {
    /// Number of topics `K`.
    num_topics: usize,
    alpha: f64,
    beta: f64,
    /// Per-document token word ids.
    docs: Vec<Vec<u32>>,
    /// Topic assignment of every token (parallel to `docs`).
    z: Vec<Vec<u16>>,
    /// θ: per-document topic counts (dense, `D × K`).
    doc_topic: Vec<Vec<u32>>,
    /// φ: per-topic word counts (dense, `K × V`).
    topic_word: Vec<Vec<u32>>,
    /// `n_k`: per-topic totals.
    topic_total: Vec<u64>,
    vocab_size: usize,
    num_tokens: u64,
    elapsed_s: f64,
    rng: ChaCha8Rng,
    /// Scratch for the conditional distribution.
    prob: Vec<f64>,
}

impl CpuCgs {
    /// Initialise with a uniformly random topic assignment.
    pub fn new(corpus: &Corpus, num_topics: usize, alpha: f64, beta: f64, seed: u64) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let vocab_size = corpus.vocab_size();
        let mut docs = Vec::with_capacity(corpus.num_docs());
        let mut z = Vec::with_capacity(corpus.num_docs());
        let mut doc_topic = vec![vec![0u32; num_topics]; corpus.num_docs()];
        let mut topic_word = vec![vec![0u32; vocab_size]; num_topics];
        let mut topic_total = vec![0u64; num_topics];
        for d in 0..corpus.num_docs() {
            let words: Vec<u32> = corpus.doc(d).to_vec();
            let mut zd = Vec::with_capacity(words.len());
            for &w in &words {
                let k = rng.gen_range(0..num_topics);
                zd.push(k as u16);
                doc_topic[d][k] += 1;
                topic_word[k][w as usize] += 1;
                topic_total[k] += 1;
            }
            docs.push(words);
            z.push(zd);
        }
        CpuCgs {
            num_topics,
            alpha,
            beta,
            docs,
            z,
            doc_topic,
            topic_word,
            topic_total,
            vocab_size,
            num_tokens: corpus.num_tokens() as u64,
            elapsed_s: 0.0,
            rng,
            prob: vec![0.0; num_topics],
        }
    }

    /// Convenience constructor with the paper's hyper-parameters
    /// (`α = 50/K`, `β = 0.01`).
    pub fn with_paper_priors(corpus: &Corpus, num_topics: usize, seed: u64) -> Self {
        Self::new(corpus, num_topics, 50.0 / num_topics as f64, 0.01, seed)
    }

    /// θ as dense per-document counts.
    pub fn doc_topic(&self) -> &[Vec<u32>] {
        &self.doc_topic
    }

    /// φ as dense per-topic word counts.
    pub fn topic_word(&self) -> &[Vec<u32>] {
        &self.topic_word
    }

    /// `n_k` totals.
    pub fn topic_total(&self) -> &[u64] {
        &self.topic_total
    }

    /// Verify that all count matrices are consistent with the assignments.
    pub fn validate(&self) -> Result<(), String> {
        let total: u64 = self.topic_total.iter().sum();
        if total != self.num_tokens {
            return Err(format!("n_k sums to {total}, expected {}", self.num_tokens));
        }
        for (d, zd) in self.z.iter().enumerate() {
            let len: u32 = self.doc_topic[d].iter().sum();
            if len as usize != zd.len() {
                return Err(format!("doc {d} counts {len} != {} tokens", zd.len()));
            }
        }
        Ok(())
    }
}

impl LdaSolver for CpuCgs {
    fn name(&self) -> String {
        "Exact CGS (CPU reference)".into()
    }

    fn run_iteration(&mut self) -> f64 {
        let v_beta = self.beta * self.vocab_size as f64;
        let start = std::time::Instant::now();
        for d in 0..self.docs.len() {
            for t in 0..self.docs[d].len() {
                let w = self.docs[d][t] as usize;
                let old = self.z[d][t] as usize;
                // Remove the token from the counts.
                self.doc_topic[d][old] -= 1;
                self.topic_word[old][w] -= 1;
                self.topic_total[old] -= 1;
                // Full conditional p(k) ∝ (θ_dk + α)(φ_kw + β)/(n_k + βV).
                let mut sum = 0.0;
                for k in 0..self.num_topics {
                    let p = (self.doc_topic[d][k] as f64 + self.alpha)
                        * (self.topic_word[k][w] as f64 + self.beta)
                        / (self.topic_total[k] as f64 + v_beta);
                    sum += p;
                    self.prob[k] = sum;
                }
                let u = self.rng.gen::<f64>() * sum;
                let new = self
                    .prob
                    .partition_point(|&p| p <= u)
                    .min(self.num_topics - 1);
                // Re-insert with the new topic.
                self.z[d][t] = new as u16;
                self.doc_topic[d][new] += 1;
                self.topic_word[new][w] += 1;
                self.topic_total[new] += 1;
            }
        }
        // The reference runs on the host for real; report its true wall time.
        let elapsed = start.elapsed().as_secs_f64();
        self.elapsed_s += elapsed;
        elapsed
    }

    fn num_tokens(&self) -> u64 {
        self.num_tokens
    }

    fn loglik_per_token(&self) -> f64 {
        if self.num_tokens == 0 {
            return 0.0;
        }
        let k = self.num_topics as f64;
        let v = self.vocab_size as f64;
        let mut ll = 0.0;
        for (d, row) in self.doc_topic.iter().enumerate() {
            let len: u64 = row.iter().map(|&c| c as u64).sum();
            if len == 0 {
                continue;
            }
            ll += ln_gamma(k * self.alpha) - k * ln_gamma(self.alpha);
            for &c in row {
                ll += ln_gamma(c as f64 + self.alpha);
            }
            ll -= ln_gamma(len as f64 + k * self.alpha);
            let _ = d;
        }
        for (kk, row) in self.topic_word.iter().enumerate() {
            ll += ln_gamma(v * self.beta) - v * ln_gamma(self.beta);
            for &c in row {
                ll += ln_gamma(c as f64 + self.beta);
            }
            ll -= ln_gamma(self.topic_total[kk] as f64 + v * self.beta);
        }
        ll / self.num_tokens as f64
    }

    fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }
}

impl crate::solver::SolverState for CpuCgs {
    fn doc_topic_counts(&self) -> Vec<Vec<u32>> {
        self.doc_topic.clone()
    }

    fn topic_word_counts(&self) -> Vec<Vec<u32>> {
        self.topic_word.clone()
    }

    fn topic_totals_vec(&self) -> Vec<u64> {
        self.topic_total.clone()
    }

    fn z_assignments(&self) -> Vec<Vec<u16>> {
        self.z.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::DatasetProfile;

    fn corpus() -> Corpus {
        DatasetProfile {
            name: "cgs".into(),
            num_docs: 60,
            vocab_size: 50,
            avg_doc_len: 20.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(10)
    }

    #[test]
    fn counts_stay_consistent_across_iterations() {
        let corpus = corpus();
        let mut cgs = CpuCgs::with_paper_priors(&corpus, 6, 3);
        cgs.validate().unwrap();
        for _ in 0..3 {
            cgs.run_iteration();
            cgs.validate().unwrap();
        }
        let total: u64 = cgs.topic_total().iter().sum();
        assert_eq!(total, corpus.num_tokens() as u64);
    }

    #[test]
    fn likelihood_improves_with_sampling() {
        let corpus = corpus();
        let mut cgs = CpuCgs::with_paper_priors(&corpus, 6, 7);
        let before = cgs.loglik_per_token();
        for _ in 0..10 {
            cgs.run_iteration();
        }
        let after = cgs.loglik_per_token();
        assert!(after > before, "{before} → {after}");
        assert!(cgs.elapsed_s() > 0.0);
    }

    #[test]
    fn recovers_planted_topics_better_than_random() {
        // Corpus drawn from a known 3-topic model; after Gibbs sweeps the
        // learned topic-word matrix should be much less uniform than at init.
        let (corpus, _) = culda_corpus::LdaGenerator::small(3, 60, 120, 25.0).generate(5);
        let mut cgs = CpuCgs::with_paper_priors(&corpus, 3, 1);
        let entropy = |m: &CpuCgs| -> f64 {
            m.topic_word()
                .iter()
                .map(|row| {
                    let total: f64 = row.iter().map(|&c| c as f64 + 1e-9).sum();
                    -row.iter()
                        .map(|&c| {
                            let p = (c as f64 + 1e-9) / total;
                            p * p.ln()
                        })
                        .sum::<f64>()
                })
                .sum::<f64>()
        };
        let before = entropy(&cgs);
        for _ in 0..20 {
            cgs.run_iteration();
        }
        let after = entropy(&cgs);
        assert!(
            after < before,
            "topic entropy should drop: {before} → {after}"
        );
    }
}
