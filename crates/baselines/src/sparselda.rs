//! A SparseLDA-style CPU sampler (Yao, Mimno, McCallum, KDD'09).
//!
//! SparseLDA is the sparsity-aware exact CGS sampler the paper's own S/Q
//! decomposition (§6.1.1) descends from: the collapsed conditional
//!
//! ```text
//! p(k) ∝ (θ_{d,k} + α)(φ_{k,v} + β) / (n_k + Vβ)
//! ```
//!
//! is split into three buckets,
//!
//! ```text
//! s(k) = αβ / (n_k + Vβ)                    — constant "smoothing" mass
//! r(k) = θ_{d,k} β / (n_k + Vβ)             — document-sparse mass
//! q(k) = (θ_{d,k} + α) φ_{k,v} / (n_k + Vβ) — word-sparse mass
//! ```
//!
//! Only `r` must be updated when a token of the document changes topic and
//! only `q` depends on the word, so one sampling step costs
//! `O(K_d + K_w)` instead of `O(K)`.  This is an *exact* CGS sampler
//! (unlike the WarpLDA MH baseline), so it doubles as a statistical reference
//! for convergence comparisons, and it is the natural CPU anchor for the
//! ablation that disables CuLDA's GPU-specific optimizations.
//!
//! Timing follows the same convention as the other CPU baselines: the pass
//! runs functionally on the host and is charged to the CPU roofline spec at
//! cache-line granularity for the random model accesses.

use crate::solver::LdaSolver;
use culda_corpus::Corpus;
use culda_gpusim::cost::{kernel_time, CostCounters};
use culda_gpusim::DeviceSpec;
use culda_metrics::special::ln_gamma;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Bytes charged per random access to a large model structure.
const CACHE_LINE: u64 = 64;

/// A SparseLDA-style exact CGS sampler.
pub struct SparseLda {
    num_topics: usize,
    alpha: f64,
    beta: f64,
    docs: Vec<Vec<u32>>,
    z: Vec<Vec<u16>>,
    /// Sparse per-document topic counts, kept as (topic, count) lists.
    doc_topic: Vec<Vec<(u16, u32)>>,
    topic_word: Vec<Vec<u32>>,
    topic_total: Vec<u64>,
    vocab_size: usize,
    num_tokens: u64,
    elapsed_s: f64,
    rng: ChaCha8Rng,
    spec: DeviceSpec,
    label: String,
}

impl SparseLda {
    /// Initialise with random assignments, timed against `spec`.
    pub fn new(
        corpus: &Corpus,
        num_topics: usize,
        alpha: f64,
        beta: f64,
        seed: u64,
        spec: DeviceSpec,
    ) -> Self {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let vocab_size = corpus.vocab_size();
        let mut docs = Vec::with_capacity(corpus.num_docs());
        let mut z = Vec::with_capacity(corpus.num_docs());
        let mut doc_topic: Vec<Vec<(u16, u32)>> = vec![Vec::new(); corpus.num_docs()];
        let mut topic_word = vec![vec![0u32; vocab_size]; num_topics];
        let mut topic_total = vec![0u64; num_topics];
        for d in 0..corpus.num_docs() {
            let words: Vec<u32> = corpus.doc(d).to_vec();
            let mut zd = Vec::with_capacity(words.len());
            for &w in &words {
                let k = rng.gen_range(0..num_topics) as u16;
                zd.push(k);
                Self::sparse_add(&mut doc_topic[d], k, 1);
                topic_word[k as usize][w as usize] += 1;
                topic_total[k as usize] += 1;
            }
            docs.push(words);
            z.push(zd);
        }
        let label = format!("SparseLDA ({})", spec.name);
        SparseLda {
            num_topics,
            alpha,
            beta,
            docs,
            z,
            doc_topic,
            topic_word,
            topic_total,
            vocab_size,
            num_tokens: corpus.num_tokens() as u64,
            elapsed_s: 0.0,
            rng,
            spec,
            label,
        }
    }

    /// The paper's priors (`α = 50/K`, `β = 0.01`) on the Volta platform Xeon.
    pub fn with_paper_priors(corpus: &Corpus, num_topics: usize, seed: u64) -> Self {
        Self::new(
            corpus,
            num_topics,
            50.0 / num_topics as f64,
            0.01,
            seed,
            DeviceSpec::xeon_e5_2690v4(),
        )
    }

    /// φ as dense per-topic word counts.
    pub fn topic_word(&self) -> &[Vec<u32>] {
        &self.topic_word
    }

    /// Number of non-zero document–topic entries (the sparsity the sampler
    /// exploits; shrinks as the model converges).
    pub fn theta_nnz(&self) -> usize {
        self.doc_topic.iter().map(|d| d.len()).sum()
    }

    fn sparse_add(row: &mut Vec<(u16, u32)>, topic: u16, delta: i32) {
        if let Some(pos) = row.iter().position(|&(k, _)| k == topic) {
            let new = row[pos].1 as i64 + delta as i64;
            debug_assert!(new >= 0, "negative sparse count");
            if new == 0 {
                row.swap_remove(pos);
            } else {
                row[pos].1 = new as u32;
            }
        } else {
            debug_assert!(delta > 0, "removing a missing topic");
            row.push((topic, delta as u32));
        }
    }

    /// Consistency check (tests).
    pub fn validate(&self) -> Result<(), String> {
        let total: u64 = self.topic_total.iter().sum();
        if total != self.num_tokens {
            return Err(format!("n_k sums to {total}, expected {}", self.num_tokens));
        }
        let theta_total: u64 = self
            .doc_topic
            .iter()
            .flat_map(|d| d.iter().map(|&(_, c)| c as u64))
            .sum();
        if theta_total != self.num_tokens {
            return Err(format!(
                "θ sums to {theta_total}, expected {}",
                self.num_tokens
            ));
        }
        for (d, row) in self.doc_topic.iter().enumerate() {
            let len: u64 = row.iter().map(|&(_, c)| c as u64).sum();
            if len != self.docs[d].len() as u64 {
                return Err(format!(
                    "document {d} counts {len} != {}",
                    self.docs[d].len()
                ));
            }
        }
        Ok(())
    }
}

impl LdaSolver for SparseLda {
    fn name(&self) -> String {
        self.label.clone()
    }

    fn run_iteration(&mut self) -> f64 {
        let v_beta = self.beta * self.vocab_size as f64;
        let mut counters = CostCounters::zero();

        // The smoothing bucket s(k) depends only on n_k; compute it once per
        // pass and patch the affected topics after every reassignment.
        let mut s_total: f64 = (0..self.num_topics)
            .map(|k| self.alpha * self.beta / (self.topic_total[k] as f64 + v_beta))
            .sum();
        counters.dram_read_bytes += self.num_topics as u64 * 8;
        counters.flops += self.num_topics as u64 * 3;

        for d in 0..self.docs.len() {
            if self.docs[d].is_empty() {
                continue;
            }
            // r(k) over the document's non-zero topics.
            let mut r_total: f64 = self.doc_topic[d]
                .iter()
                .map(|&(k, c)| {
                    c as f64 * self.beta / (self.topic_total[k as usize] as f64 + v_beta)
                })
                .sum();
            counters.dram_read_bytes += self.doc_topic[d].len() as u64 * 8;
            counters.flops += self.doc_topic[d].len() as u64 * 3;

            for t in 0..self.docs[d].len() {
                let w = self.docs[d][t] as usize;
                let old = self.z[d][t];

                // Remove the token from the counts and patch s and r.
                let old_total = self.topic_total[old as usize] as f64;
                s_total -= self.alpha * self.beta / (old_total + v_beta);
                let old_doc_count = self.doc_topic[d]
                    .iter()
                    .find(|&&(k, _)| k == old)
                    .map(|&(_, c)| c)
                    .unwrap_or(0) as f64;
                r_total -= old_doc_count * self.beta / (old_total + v_beta);
                Self::sparse_add(&mut self.doc_topic[d], old, -1);
                self.topic_word[old as usize][w] -= 1;
                self.topic_total[old as usize] -= 1;
                let new_total = self.topic_total[old as usize] as f64;
                s_total += self.alpha * self.beta / (new_total + v_beta);
                let new_doc_count = old_doc_count - 1.0;
                r_total += new_doc_count * self.beta / (new_total + v_beta);

                // q(k) over the word's non-zero topics.
                let mut q_total = 0.0;
                let mut q_terms: Vec<(u16, f64)> = Vec::new();
                for k in 0..self.num_topics {
                    let phi = self.topic_word[k][w];
                    if phi == 0 {
                        continue;
                    }
                    let doc_c = self.doc_topic[d]
                        .iter()
                        .find(|&&(kk, _)| kk as usize == k)
                        .map(|&(_, c)| c)
                        .unwrap_or(0) as f64;
                    let term =
                        (doc_c + self.alpha) * phi as f64 / (self.topic_total[k] as f64 + v_beta);
                    q_total += term;
                    q_terms.push((k as u16, term));
                }
                counters.dram_read_bytes += CACHE_LINE + q_terms.len() as u64 * 8;
                counters.flops += self.num_topics as u64 + q_terms.len() as u64 * 4;
                counters.rng_draws += 1;

                // Sample from the three buckets.
                let u: f64 = self.rng.gen::<f64>() * (s_total + r_total + q_total);
                let new = if u < q_total {
                    // Word bucket: walk the word-sparse terms.
                    let mut acc = 0.0;
                    let mut chosen = q_terms.last().map(|&(k, _)| k).unwrap_or(0);
                    for &(k, term) in &q_terms {
                        acc += term;
                        if u <= acc {
                            chosen = k;
                            break;
                        }
                    }
                    chosen
                } else if u < q_total + r_total {
                    // Document bucket: walk the document-sparse terms.
                    let target = u - q_total;
                    let mut acc = 0.0;
                    let mut chosen = self.doc_topic[d].last().map(|&(k, _)| k).unwrap_or(0);
                    for &(k, c) in &self.doc_topic[d] {
                        acc +=
                            c as f64 * self.beta / (self.topic_total[k as usize] as f64 + v_beta);
                        if target <= acc {
                            chosen = k;
                            break;
                        }
                    }
                    chosen
                } else {
                    // Smoothing bucket: walk all topics (rare: mass ∝ αβ).
                    let target = u - q_total - r_total;
                    let mut acc = 0.0;
                    let mut chosen = (self.num_topics - 1) as u16;
                    for k in 0..self.num_topics {
                        acc += self.alpha * self.beta / (self.topic_total[k] as f64 + v_beta);
                        if target <= acc {
                            chosen = k as u16;
                            break;
                        }
                    }
                    chosen
                };
                counters.dram_read_bytes += CACHE_LINE;
                counters.int_ops += 8;

                // Add the token back under the new topic and patch s and r.
                let before_total = self.topic_total[new as usize] as f64;
                s_total -= self.alpha * self.beta / (before_total + v_beta);
                let before_doc = self.doc_topic[d]
                    .iter()
                    .find(|&&(k, _)| k == new)
                    .map(|&(_, c)| c)
                    .unwrap_or(0) as f64;
                r_total -= before_doc * self.beta / (before_total + v_beta);
                Self::sparse_add(&mut self.doc_topic[d], new, 1);
                self.topic_word[new as usize][w] += 1;
                self.topic_total[new as usize] += 1;
                let after_total = self.topic_total[new as usize] as f64;
                s_total += self.alpha * self.beta / (after_total + v_beta);
                r_total += (before_doc + 1.0) * self.beta / (after_total + v_beta);

                self.z[d][t] = new;
                counters.dram_write_bytes += 12;
                counters.flops += 10;
            }
        }

        let time = kernel_time(&self.spec, &counters, 100_000).total_s;
        self.elapsed_s += time;
        time
    }

    fn num_tokens(&self) -> u64 {
        self.num_tokens
    }

    fn loglik_per_token(&self) -> f64 {
        if self.num_tokens == 0 {
            return 0.0;
        }
        let k = self.num_topics as f64;
        let v = self.vocab_size as f64;
        let mut ll = 0.0;
        // Document side: zero-count topics contribute lnΓ(α) each, so only
        // the stored non-zeros need the full term.
        for (d, row) in self.doc_topic.iter().enumerate() {
            let len = self.docs[d].len() as f64;
            if len == 0.0 {
                continue;
            }
            ll += ln_gamma(k * self.alpha) - row.len() as f64 * ln_gamma(self.alpha);
            for &(_, c) in row {
                ll += ln_gamma(c as f64 + self.alpha);
            }
            ll -= ln_gamma(len + k * self.alpha);
        }
        // Topic side: zero-count words likewise contribute lnΓ(β) each.
        for (kk, row) in self.topic_word.iter().enumerate() {
            ll += ln_gamma(v * self.beta);
            for &c in row {
                if c > 0 {
                    ll += ln_gamma(c as f64 + self.beta) - ln_gamma(self.beta);
                }
            }
            ll -= ln_gamma(self.topic_total[kk] as f64 + v * self.beta);
        }
        ll / self.num_tokens as f64
    }

    fn elapsed_s(&self) -> f64 {
        self.elapsed_s
    }
}

impl crate::solver::SolverState for SparseLda {
    fn doc_topic_counts(&self) -> Vec<Vec<u32>> {
        self.doc_topic
            .iter()
            .map(|row| {
                let mut dense = vec![0u32; self.num_topics];
                for &(k, c) in row {
                    dense[k as usize] = c;
                }
                dense
            })
            .collect()
    }

    fn topic_word_counts(&self) -> Vec<Vec<u32>> {
        self.topic_word.clone()
    }

    fn topic_totals_vec(&self) -> Vec<u64> {
        self.topic_total.clone()
    }

    fn z_assignments(&self) -> Vec<Vec<u16>> {
        self.z.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::DatasetProfile;

    fn corpus() -> Corpus {
        DatasetProfile {
            name: "sparse".into(),
            num_docs: 100,
            vocab_size: 80,
            avg_doc_len: 18.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(13)
    }

    #[test]
    fn counts_remain_consistent_across_iterations() {
        let corpus = corpus();
        let mut s = SparseLda::with_paper_priors(&corpus, 8, 4);
        s.validate().unwrap();
        for _ in 0..4 {
            s.run_iteration();
            s.validate().unwrap();
        }
    }

    #[test]
    fn likelihood_improves_and_theta_sparsifies() {
        let corpus = corpus();
        let mut s = SparseLda::with_paper_priors(&corpus, 16, 5);
        let ll_before = s.loglik_per_token();
        let nnz_before = s.theta_nnz();
        let mut total = 0.0;
        for _ in 0..12 {
            total += s.run_iteration();
        }
        let ll_after = s.loglik_per_token();
        assert!(ll_after > ll_before, "{ll_before} → {ll_after}");
        assert!(s.theta_nnz() <= nnz_before);
        assert!((s.elapsed_s() - total).abs() < 1e-12);
        assert!(total > 0.0);
    }

    #[test]
    fn sparse_add_inserts_updates_and_removes() {
        let mut row: Vec<(u16, u32)> = Vec::new();
        SparseLda::sparse_add(&mut row, 3, 1);
        SparseLda::sparse_add(&mut row, 3, 1);
        SparseLda::sparse_add(&mut row, 7, 1);
        assert_eq!(row.iter().find(|&&(k, _)| k == 3).unwrap().1, 2);
        SparseLda::sparse_add(&mut row, 3, -1);
        SparseLda::sparse_add(&mut row, 3, -1);
        assert!(row.iter().all(|&(k, _)| k != 3));
        assert_eq!(row.len(), 1);
    }

    #[test]
    fn empty_documents_are_handled() {
        let mut b = culda_corpus::CorpusBuilder::new(5);
        b.push_doc(&[]);
        b.push_doc(&[0, 1, 2]);
        let corpus = b.build();
        let mut s = SparseLda::with_paper_priors(&corpus, 4, 1);
        s.run_iteration();
        s.validate().unwrap();
    }
}
