//! A SaberLDA-style single-GPU baseline (Li et al., ASPLOS'17).
//!
//! SaberLDA's source is not public; the paper compares against its *reported*
//! throughput (120 M tokens/s for NYTimes on a GTX 1080, §7.2).  To reproduce
//! the comparison on the same substrate, this baseline runs the same
//! sparsity-aware GPU sampler but **without** the two optimisations the paper
//! credits for CuLDA_CGS's advantage, and restricted to a single GPU:
//!
//! * no block-shared p2 tree / p*(k) reuse (each sampler rebuilds the dense
//!   structures through L1, §6.1.2);
//! * no 16-bit precision compression (§6.1.3);
//! * partition-by-word style single-GPU execution: no multi-GPU scaling.
//!
//! The substitution is documented in `DESIGN.md`; the quantity being
//! reproduced is the *relative ordering and rough factor* between CuLDA_CGS
//! and a prior-generation GPU sampler, not SaberLDA's exact internals.

use crate::solver::{CuLdaSolver, LdaSolver};
use culda_core::{CuLdaTrainer, LdaConfig, SessionBuilder};
use culda_corpus::Corpus;
use culda_gpusim::{DeviceSpec, MultiGpuSystem};

/// The SaberLDA-style baseline: a handicapped single-GPU configuration of the
/// same sampler family.
pub struct SaberLda {
    inner: CuLdaSolver,
}

impl SaberLda {
    /// Build the baseline on the given GPU spec (the published numbers use a
    /// GTX 1080).
    pub fn new(
        corpus: &Corpus,
        num_topics: usize,
        seed: u64,
        spec: DeviceSpec,
    ) -> Result<Self, culda_core::TrainerError> {
        let mut config = LdaConfig::with_topics(num_topics).seed(seed);
        config.share_p2_tree = false;
        config.compress_16bit = false;
        let label = format!("SaberLDA-style ({})", spec.name);
        let system = MultiGpuSystem::single(spec, seed);
        let trainer = SessionBuilder::new()
            .corpus(corpus)
            .config(config)
            .system(system)
            .build()?;
        Ok(SaberLda {
            inner: CuLdaSolver::new(trainer, label),
        })
    }

    /// Build on the GTX 1080 used by the published SaberLDA results.
    pub fn on_gtx_1080(
        corpus: &Corpus,
        num_topics: usize,
        seed: u64,
    ) -> Result<Self, culda_core::TrainerError> {
        Self::new(corpus, num_topics, seed, DeviceSpec::gtx_1080())
    }

    /// Access the underlying trainer (for breakdowns in the harness).
    pub fn trainer(&self) -> &CuLdaTrainer {
        self.inner.trainer()
    }
}

impl crate::solver::SolverState for SaberLda {
    fn doc_topic_counts(&self) -> Vec<Vec<u32>> {
        self.inner.doc_topic_counts()
    }

    fn topic_word_counts(&self) -> Vec<Vec<u32>> {
        self.inner.topic_word_counts()
    }

    fn topic_totals_vec(&self) -> Vec<u64> {
        self.inner.topic_totals_vec()
    }

    fn z_assignments(&self) -> Vec<Vec<u16>> {
        self.inner.z_assignments()
    }
}

impl LdaSolver for SaberLda {
    fn name(&self) -> String {
        self.inner.name()
    }

    fn run_iteration(&mut self) -> f64 {
        self.inner.run_iteration()
    }

    fn num_tokens(&self) -> u64 {
        self.inner.num_tokens()
    }

    fn loglik_per_token(&self) -> f64 {
        self.inner.loglik_per_token()
    }

    fn elapsed_s(&self) -> f64 {
        self.inner.elapsed_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::DatasetProfile;

    fn corpus() -> Corpus {
        DatasetProfile {
            name: "saber".into(),
            num_docs: 200,
            vocab_size: 150,
            avg_doc_len: 30.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(2)
    }

    #[test]
    fn saberlda_converges_but_slower_than_culda_on_the_same_gpu() {
        let corpus = corpus();
        let mut saber = SaberLda::new(&corpus, 16, 3, DeviceSpec::titan_x_maxwell()).unwrap();
        let mut culda = CuLdaSolver::new(
            SessionBuilder::new()
                .corpus(&corpus)
                .config(LdaConfig::with_topics(16).seed(3))
                .system(MultiGpuSystem::single(DeviceSpec::titan_x_maxwell(), 3))
                .build()
                .unwrap(),
            "CuLDA",
        );
        let before = saber.loglik_per_token();
        let mut saber_time = 0.0;
        let mut culda_time = 0.0;
        for _ in 0..5 {
            saber_time += saber.run_iteration();
            culda_time += culda.run_iteration();
        }
        assert!(saber.loglik_per_token() > before);
        assert!(
            saber_time > culda_time,
            "SaberLDA-style ({saber_time}s) should be slower than CuLDA ({culda_time}s)"
        );
    }

    #[test]
    fn name_mentions_the_device() {
        let corpus = corpus();
        let saber = SaberLda::on_gtx_1080(&corpus, 8, 1).unwrap();
        assert!(saber.name().contains("GTX 1080"));
        assert_eq!(saber.num_tokens(), corpus.num_tokens() as u64);
    }
}
