//! Joint log-likelihood of a collapsed LDA state.
//!
//! The paper's quality metric (Figure 8) is the "log-likelyhood per token":
//! the collapsed joint probability `log p(w, z | α, β)` of the current topic
//! assignment, divided by the token count.  With the usual conjugate algebra,
//!
//! ```text
//! log p(w, z) = Σ_d [ lnΓ(Kα) − K lnΓ(α) + Σ_k lnΓ(θ_{d,k} + α) − lnΓ(L_d + Kα) ]
//!             + Σ_k [ lnΓ(Vβ) − V lnΓ(β) + Σ_v lnΓ(φ_{k,v} + β) − lnΓ(n_k + Vβ) ]
//! ```
//!
//! where `θ` and `φ` are the count matrices of §2.1, `L_d` the document
//! length and `n_k = Σ_v φ_{k,v}` the topic totals.  Zero counts contribute
//! `lnΓ(α)` / `lnΓ(β)` terms, which is what makes the sparse θ representation
//! convenient here too.

use crate::special::ln_gamma;
use culda_sparse::{CsrMatrix, DenseMatrix};
use serde::{Deserialize, Serialize};

/// The document side and topic side of the joint likelihood, kept separate
/// because the document part is computed per chunk (θ is partitioned across
/// GPUs) while the topic part is global.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LikelihoodParts {
    /// `Σ_d [...]` — depends on θ only.
    pub doc_part: f64,
    /// `Σ_k [...]` — depends on φ only.
    pub topic_part: f64,
    /// Total number of tokens the state covers.
    pub num_tokens: u64,
}

impl LikelihoodParts {
    /// Total joint log-likelihood.
    pub fn total(&self) -> f64 {
        self.doc_part + self.topic_part
    }

    /// Log-likelihood per token — the y-axis of Figure 8.
    pub fn per_token(&self) -> f64 {
        if self.num_tokens == 0 {
            return 0.0;
        }
        self.total() / self.num_tokens as f64
    }
}

/// Document-side contribution of a θ chunk (rows are documents of the chunk).
pub fn doc_log_likelihood(theta: &CsrMatrix, alpha: f64) -> f64 {
    let k = theta.cols() as f64;
    let lg_alpha = ln_gamma(alpha);
    let lg_k_alpha = ln_gamma(k * alpha);
    let mut acc = 0.0;
    for d in 0..theta.rows() {
        let (_, vals) = theta.row(d);
        let doc_len: u64 = vals.iter().map(|&v| v as u64).sum();
        if doc_len == 0 {
            continue;
        }
        acc += lg_k_alpha - k * lg_alpha;
        for &v in vals {
            acc += ln_gamma(v as f64 + alpha);
        }
        // Topics with zero count contribute lnΓ(α) each.
        acc += (k - vals.len() as f64) * lg_alpha;
        acc -= ln_gamma(doc_len as f64 + k * alpha);
    }
    acc
}

/// Topic-side contribution of the global φ matrix (`K × V`) and the topic
/// totals `n_k`.
pub fn topic_log_likelihood(phi: &DenseMatrix<u32>, nk: &[i64], beta: f64) -> f64 {
    let v = phi.cols() as f64;
    let lg_beta = ln_gamma(beta);
    let lg_v_beta = ln_gamma(v * beta);
    let mut acc = 0.0;
    for k in 0..phi.rows() {
        acc += lg_v_beta - v * lg_beta;
        let mut nnz = 0usize;
        for &c in phi.row(k) {
            if c > 0 {
                acc += ln_gamma(c as f64 + beta);
                nnz += 1;
            }
        }
        // Words with zero count in this topic contribute lnΓ(β) each.
        acc += (v - nnz as f64) * lg_beta;
        acc -= ln_gamma(nk[k] as f64 + v * beta);
    }
    acc
}

/// Full joint log-likelihood of a collapsed state.
pub fn log_likelihood(
    theta: &CsrMatrix,
    phi: &DenseMatrix<u32>,
    nk: &[i64],
    alpha: f64,
    beta: f64,
) -> LikelihoodParts {
    assert_eq!(phi.rows(), nk.len(), "φ rows and n_k length must agree");
    assert_eq!(
        theta.cols(),
        phi.rows(),
        "θ columns must equal φ rows (= K)"
    );
    let num_tokens = theta.total();
    LikelihoodParts {
        doc_part: doc_log_likelihood(theta, alpha),
        topic_part: topic_log_likelihood(phi, nk, beta),
        num_tokens,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_sparse::CsrBuilder;

    /// Build a consistent (θ, φ, nk) state from explicit token assignments.
    fn state_from_assignments(
        num_topics: usize,
        vocab: usize,
        docs: &[Vec<(usize, usize)>], // per doc: (word, topic)
    ) -> (CsrMatrix, DenseMatrix<u32>, Vec<i64>) {
        let mut theta_b = CsrBuilder::new(docs.len(), num_topics);
        let mut phi = DenseMatrix::<u32>::zeros(num_topics, vocab);
        let mut nk = vec![0i64; num_topics];
        for doc in docs {
            let mut row = vec![0u32; num_topics];
            for &(w, k) in doc {
                row[k] += 1;
                *phi.get_mut(k, w) += 1;
                nk[k] += 1;
            }
            theta_b.push_dense_row(&row);
        }
        (theta_b.finish(), phi, nk)
    }

    #[test]
    fn single_token_matches_closed_form() {
        // One document, one token, K=2, V=3, assigned to topic 0, word 1.
        let (theta, phi, nk) = state_from_assignments(2, 3, &[vec![(1, 0)]]);
        let alpha = 0.5;
        let beta = 0.1;
        let ll = log_likelihood(&theta, &phi, &nk, alpha, beta);
        // Doc part: lnΓ(2α) − 2lnΓ(α) + lnΓ(1+α) + lnΓ(α) − lnΓ(1+2α)
        let doc =
            ln_gamma(2.0 * alpha) - 2.0 * ln_gamma(alpha) + ln_gamma(1.0 + alpha) + ln_gamma(alpha)
                - ln_gamma(1.0 + 2.0 * alpha);
        // Topic part: for topic 0: lnΓ(3β) − 3lnΓ(β) + [lnΓ(1+β) + 2lnΓ(β)] − lnΓ(1+3β)
        //             for topic 1: lnΓ(3β) − 3lnΓ(β) + 3lnΓ(β) − lnΓ(3β) = 0
        let topic = ln_gamma(3.0 * beta) - 3.0 * ln_gamma(beta)
            + ln_gamma(1.0 + beta)
            + 2.0 * ln_gamma(beta)
            - ln_gamma(1.0 + 3.0 * beta)
            + (ln_gamma(3.0 * beta) - 3.0 * ln_gamma(beta) + 3.0 * ln_gamma(beta)
                - ln_gamma(3.0 * beta));
        assert!(
            (ll.doc_part - doc).abs() < 1e-9,
            "{} vs {}",
            ll.doc_part,
            doc
        );
        assert!(
            (ll.topic_part - topic).abs() < 1e-9,
            "{} vs {}",
            ll.topic_part,
            topic
        );
        assert_eq!(ll.num_tokens, 1);
        assert!(ll.per_token() < 0.0);
    }

    #[test]
    fn likelihood_is_negative_and_finite() {
        let docs: Vec<Vec<(usize, usize)>> = (0..20)
            .map(|d| (0..30).map(|t| ((d * 7 + t) % 50, (d + t) % 8)).collect())
            .collect();
        let (theta, phi, nk) = state_from_assignments(8, 50, &docs);
        let ll = log_likelihood(&theta, &phi, &nk, 50.0 / 8.0, 0.01);
        assert!(ll.total().is_finite());
        assert!(ll.total() < 0.0);
        assert_eq!(ll.num_tokens, 20 * 30);
        assert!(ll.per_token() > -20.0 && ll.per_token() < 0.0);
    }

    #[test]
    fn concentrated_assignment_beats_scattered_assignment() {
        // Same corpus; one assignment concentrates each word in one topic,
        // the other scatters tokens across topics at random.  The
        // concentrated (well-fit) assignment must have higher likelihood.
        let vocab = 20;
        let num_topics = 4;
        let concentrated: Vec<Vec<(usize, usize)>> = (0..16)
            .map(|d| {
                let topic = d % num_topics;
                (0..25).map(|t| ((topic * 5 + t % 5), topic)).collect()
            })
            .collect();
        let scattered: Vec<Vec<(usize, usize)>> = (0..16)
            .map(|d| {
                (0..25)
                    .map(|t| ((d % num_topics) * 5 + t % 5, (d * 13 + t * 7) % num_topics))
                    .collect()
            })
            .collect();
        let (t1, p1, n1) = state_from_assignments(num_topics, vocab, &concentrated);
        let (t2, p2, n2) = state_from_assignments(num_topics, vocab, &scattered);
        let a = log_likelihood(&t1, &p1, &n1, 0.1, 0.01).total();
        let b = log_likelihood(&t2, &p2, &n2, 0.1, 0.01).total();
        assert!(a > b, "concentrated {a} should beat scattered {b}");
    }

    #[test]
    fn empty_state_has_zero_likelihood_per_token() {
        let theta = CsrMatrix::zeros(0, 4);
        let phi = DenseMatrix::<u32>::zeros(4, 10);
        let nk = vec![0i64; 4];
        let ll = log_likelihood(&theta, &phi, &nk, 0.1, 0.01);
        assert_eq!(ll.num_tokens, 0);
        assert_eq!(ll.per_token(), 0.0);
        assert_eq!(ll.doc_part, 0.0);
    }

    #[test]
    #[should_panic]
    fn mismatched_shapes_are_rejected() {
        let theta = CsrMatrix::zeros(1, 4);
        let phi = DenseMatrix::<u32>::zeros(5, 10);
        let nk = vec![0i64; 5];
        let _ = log_likelihood(&theta, &phi, &nk, 0.1, 0.01);
    }
}
