//! The `#Tokens/sec` throughput metric (Eq. 2).
//!
//! `#Tokens/sec = (#Tokens × #Iterations) / ElapsedTime`, reported per
//! iteration in Figure 7 and averaged over the first 100 iterations in
//! Table 4.

use serde::{Deserialize, Serialize};

/// Tokens per second given a token count and an elapsed time.
pub fn tokens_per_sec(tokens: u64, iterations: u64, elapsed_s: f64) -> f64 {
    if elapsed_s <= 0.0 {
        return 0.0;
    }
    (tokens as f64 * iterations as f64) / elapsed_s
}

/// A per-iteration throughput series (one line of Figure 7).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ThroughputSeries {
    /// Label of the series (platform / solver name).
    pub label: String,
    /// Token count processed per iteration.
    pub tokens_per_iteration: u64,
    /// Elapsed (simulated) seconds of each iteration.
    pub iteration_times_s: Vec<f64>,
}

impl ThroughputSeries {
    /// Start a series.
    pub fn new(label: impl Into<String>, tokens_per_iteration: u64) -> Self {
        ThroughputSeries {
            label: label.into(),
            tokens_per_iteration,
            iteration_times_s: Vec::new(),
        }
    }

    /// Record the elapsed time of the next iteration.
    pub fn push_iteration(&mut self, elapsed_s: f64) {
        self.iteration_times_s.push(elapsed_s);
    }

    /// Number of iterations recorded.
    pub fn len(&self) -> usize {
        self.iteration_times_s.len()
    }

    /// True when no iterations have been recorded.
    pub fn is_empty(&self) -> bool {
        self.iteration_times_s.is_empty()
    }

    /// Tokens/sec of iteration `i`.
    pub fn iteration_throughput(&self, i: usize) -> f64 {
        tokens_per_sec(self.tokens_per_iteration, 1, self.iteration_times_s[i])
    }

    /// The per-iteration throughput values (the y-values of one Figure 7 line).
    pub fn per_iteration(&self) -> Vec<f64> {
        (0..self.len())
            .map(|i| self.iteration_throughput(i))
            .collect()
    }

    /// Average Tokens/sec over the first `n` iterations (Table 4 uses the
    /// first 100): total tokens divided by total time.
    pub fn average_over_first(&self, n: usize) -> f64 {
        let n = n.min(self.len());
        if n == 0 {
            return 0.0;
        }
        let total_time: f64 = self.iteration_times_s[..n].iter().sum();
        tokens_per_sec(self.tokens_per_iteration, n as u64, total_time)
    }

    /// Total elapsed time of the first `n` iterations.
    pub fn elapsed_over_first(&self, n: usize) -> f64 {
        self.iteration_times_s[..n.min(self.len())].iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokens_per_sec_matches_eq2() {
        // 1M tokens, 100 iterations, 10 seconds → 10M tokens/sec.
        assert_eq!(tokens_per_sec(1_000_000, 100, 10.0), 1e7);
        assert_eq!(tokens_per_sec(100, 1, 0.0), 0.0);
    }

    #[test]
    fn series_per_iteration_and_average() {
        let mut s = ThroughputSeries::new("Volta", 1_000_000);
        s.push_iteration(0.01);
        s.push_iteration(0.005);
        s.push_iteration(0.005);
        assert_eq!(s.len(), 3);
        assert_eq!(s.iteration_throughput(0), 1e8);
        assert_eq!(s.iteration_throughput(1), 2e8);
        // Average over all three: 3M tokens / 0.02 s = 150M/s.
        assert!((s.average_over_first(100) - 1.5e8).abs() < 1e-3);
        assert!((s.elapsed_over_first(2) - 0.015).abs() < 1e-12);
        assert_eq!(s.per_iteration().len(), 3);
    }

    #[test]
    fn throughput_ramps_up_when_iterations_get_faster() {
        let mut s = ThroughputSeries::new("ramp", 1000);
        for i in 0..10 {
            s.push_iteration(1.0 / (1.0 + i as f64));
        }
        let tp = s.per_iteration();
        assert!(tp.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn empty_series_average_is_zero() {
        let s = ThroughputSeries::new("empty", 10);
        assert!(s.is_empty());
        assert_eq!(s.average_over_first(10), 0.0);
    }
}
