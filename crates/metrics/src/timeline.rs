//! Convergence-over-time series (Figure 8).
//!
//! Figure 8 plots log-likelihood per token against wall-clock time for every
//! evaluated solver.  [`Timeline`] collects `(time, iteration, LL/token)`
//! points for one solver run and can render them as CSV for external
//! plotting, and answer the "time to reach quality X" queries used in the
//! comparison harness.

use serde::{Deserialize, Serialize};

/// One measurement point of a solver run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergencePoint {
    /// Simulated (or measured) wall-clock time since training started.
    pub time_s: f64,
    /// Iteration index (0-based, recorded *after* the iteration completes).
    pub iteration: u32,
    /// Log-likelihood per token at this point.
    pub loglik_per_token: f64,
}

/// A labelled convergence series.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    /// Label of the run (solver + platform + dataset).
    pub label: String,
    points: Vec<ConvergencePoint>,
}

impl Timeline {
    /// An empty timeline with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Timeline {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Append a point; time must be non-decreasing.
    pub fn push(&mut self, point: ConvergencePoint) {
        if let Some(last) = self.points.last() {
            debug_assert!(point.time_s >= last.time_s, "time must not go backwards");
        }
        self.points.push(point);
    }

    /// The recorded points in order.
    pub fn points(&self) -> &[ConvergencePoint] {
        &self.points
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no points have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The best (largest) log-likelihood per token seen so far.
    pub fn best_loglik(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|p| p.loglik_per_token)
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// First time at which the run reached `target` log-likelihood per token
    /// (`None` if it never did) — the "time to quality" comparison of §7.2.
    pub fn time_to_reach(&self, target: f64) -> Option<f64> {
        self.points
            .iter()
            .find(|p| p.loglik_per_token >= target)
            .map(|p| p.time_s)
    }

    /// Render as CSV (`time_s,iteration,loglik_per_token` with a header).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("time_s,iteration,loglik_per_token\n");
        for p in &self.points {
            out.push_str(&format!(
                "{},{},{}\n",
                p.time_s, p.iteration, p.loglik_per_token
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Timeline {
        let mut t = Timeline::new("CuLDA/Volta/NYTimes");
        for i in 0..5u32 {
            t.push(ConvergencePoint {
                time_s: i as f64 * 0.5,
                iteration: i,
                loglik_per_token: -10.0 + i as f64,
            });
        }
        t
    }

    #[test]
    fn push_and_query() {
        let t = sample();
        assert_eq!(t.len(), 5);
        assert_eq!(t.best_loglik(), Some(-6.0));
        assert_eq!(t.time_to_reach(-8.0), Some(1.0));
        assert_eq!(t.time_to_reach(-5.0), None);
    }

    #[test]
    fn empty_timeline_queries() {
        let t = Timeline::new("empty");
        assert!(t.is_empty());
        assert_eq!(t.best_loglik(), None);
        assert_eq!(t.time_to_reach(-1.0), None);
    }

    #[test]
    fn csv_has_header_and_one_line_per_point() {
        let t = sample();
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 6);
        assert!(csv.starts_with("time_s,iteration,loglik_per_token"));
        assert!(csv.contains("2,4,-6"));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn time_going_backwards_is_rejected_in_debug() {
        let mut t = Timeline::new("bad");
        t.push(ConvergencePoint {
            time_s: 1.0,
            iteration: 0,
            loglik_per_token: -5.0,
        });
        t.push(ConvergencePoint {
            time_s: 0.5,
            iteration: 1,
            loglik_per_token: -4.0,
        });
    }
}
