//! The Flops/Byte characterisation of LDA sampling (§3.1, Table 1).
//!
//! The paper analyses each step of one sparsity-aware CGS sampling and counts
//! the floating-point operations and bytes moved, assuming 32-bit integers,
//! 32-bit floats and a CSR-stored θ.  Reproducing those expressions serves
//! two purposes: the `experiments table1` command prints the table, and the
//! simulator's kernels are cross-checked against the same ratios (their
//! measured Flops/Byte must stay below every device's roofline ridge point,
//! i.e. LDA must remain memory-bound on every platform — the claim the whole
//! paper builds on).

use serde::{Deserialize, Serialize};

/// Size in bytes of the integer type used for counts/indices.
pub const INT_BYTES: f64 = 4.0;
/// Size in bytes of the floating-point type used for probabilities.
pub const FLOAT_BYTES: f64 = 4.0;

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RooflineStep {
    /// Step name as it appears in the paper.
    pub name: &'static str,
    /// The formula as printed in Table 1 (for documentation/reporting).
    pub formula: &'static str,
    /// Evaluated Flops/Byte value.
    pub flops_per_byte: f64,
}

/// Compute Table 1.  `K_d` (the number of non-zero θ entries of the sampled
/// document) cancels in every per-`K_d` expression, so the table is
/// independent of the actual document, exactly as in the paper.
pub fn table1() -> Vec<RooflineStep> {
    vec![
        RooflineStep {
            name: "Compute S",
            formula: "4*Kd / (3*Int*Kd)",
            flops_per_byte: 4.0 / (3.0 * INT_BYTES),
        },
        RooflineStep {
            name: "Compute Q",
            formula: "2*K / (2*Int*K)",
            flops_per_byte: 2.0 / (2.0 * INT_BYTES),
        },
        RooflineStep {
            name: "Sampling from p1(k)",
            formula: "6*Kd / ((3*Int + 2*Float)*Kd)",
            flops_per_byte: 6.0 / (3.0 * INT_BYTES + 2.0 * FLOAT_BYTES),
        },
        RooflineStep {
            name: "Sampling from p2(k)",
            formula: "3*K / ((2*Int + 2*Float)*K)",
            flops_per_byte: 3.0 / (2.0 * INT_BYTES + 2.0 * FLOAT_BYTES),
        },
    ]
}

/// The average arithmetic intensity over the four steps — the paper reports
/// 0.27 Flops/Byte.
pub fn average_intensity() -> f64 {
    let t = table1();
    t.iter().map(|s| s.flops_per_byte).sum::<f64>() / t.len() as f64
}

/// Whether a workload of the given intensity is memory-bound on a processor
/// whose roofline ridge point (peak FLOPS / peak bandwidth) is `ridge`.
pub fn is_memory_bound(flops_per_byte: f64, ridge: f64) -> bool {
    flops_per_byte < ridge
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values_match_the_paper() {
        let t = table1();
        let by_name = |n: &str| t.iter().find(|s| s.name == n).unwrap().flops_per_byte;
        assert!((by_name("Compute S") - 0.33).abs() < 0.01);
        assert!((by_name("Compute Q") - 0.25).abs() < 0.01);
        assert!((by_name("Sampling from p1(k)") - 0.30).abs() < 0.01);
        assert!((by_name("Sampling from p2(k)") - 0.19).abs() < 0.01);
    }

    #[test]
    fn average_is_about_027() {
        let avg = average_intensity();
        assert!((avg - 0.27).abs() < 0.01, "avg = {avg}");
    }

    #[test]
    fn lda_is_memory_bound_on_every_platform_of_table_2() {
        // Ridge points: CPU 470/51.2 ≈ 9.2; GPUs are higher still.
        let avg = average_intensity();
        for ridge in [9.2, 6100.0 / 336.0, 12100.0 / 550.0, 14000.0 / 900.0] {
            assert!(is_memory_bound(avg, ridge));
        }
    }

    #[test]
    fn compute_bound_detection_works() {
        assert!(!is_memory_bound(100.0, 9.2));
    }
}
