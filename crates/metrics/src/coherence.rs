//! Topic-quality metrics: UMass coherence and topic diversity.
//!
//! Throughput (Table 4) and joint likelihood (Figure 8) measure how fast a
//! sampler mixes, but say little about whether the learned topics are
//! interpretable.  The standard intrinsic measures are provided here:
//!
//! * [`umass_coherence`] — the UMass score of Mimno et al.: for the top-`N`
//!   words of a topic, sum `log((D(w_i, w_j) + 1) / D(w_j))` over ordered
//!   pairs, where `D(·)` counts documents of the reference corpus containing
//!   the word(s).  Less negative is better.
//! * [`npmi_coherence`] — normalised pointwise mutual information (Bouma /
//!   Lau et al.): the NPMI of every top-word pair, averaged; ranges from −1
//!   (never co-occur) through 0 (independent) to +1 (always co-occur) and
//!   correlates better with human topic ratings than UMass.
//! * [`topic_diversity`] — the fraction of distinct words among the top-`N`
//!   words of all topics (1.0 means no topic shares a headline word with
//!   another).

use culda_corpus::{Corpus, WordId};
use culda_sparse::DenseMatrix;
use std::collections::{HashMap, HashSet};

/// Document-frequency index over a reference corpus, built once and reused
/// for every topic's coherence score.
#[derive(Debug)]
pub struct CooccurrenceIndex {
    /// Per-word document frequency.
    doc_freq: Vec<u32>,
    /// Documents containing each word, as sorted document-id lists.
    postings: Vec<Vec<u32>>,
    num_docs: usize,
}

impl CooccurrenceIndex {
    /// Build the index from a corpus.
    pub fn build(corpus: &Corpus) -> Self {
        let v = corpus.vocab_size();
        let mut postings: Vec<Vec<u32>> = vec![Vec::new(); v];
        for d in 0..corpus.num_docs() {
            let mut words: Vec<WordId> = corpus.doc(d).to_vec();
            words.sort_unstable();
            words.dedup();
            for w in words {
                postings[w as usize].push(d as u32);
            }
        }
        let doc_freq = postings.iter().map(|p| p.len() as u32).collect();
        CooccurrenceIndex {
            doc_freq,
            postings,
            num_docs: corpus.num_docs(),
        }
    }

    /// Number of documents indexed.
    pub fn num_docs(&self) -> usize {
        self.num_docs
    }

    /// Document frequency of a word.
    pub fn doc_freq(&self, w: WordId) -> u32 {
        self.doc_freq[w as usize]
    }

    /// Number of documents containing both words (sorted-list intersection).
    pub fn co_doc_freq(&self, a: WordId, b: WordId) -> u32 {
        let (pa, pb) = (&self.postings[a as usize], &self.postings[b as usize]);
        let (mut i, mut j, mut count) = (0usize, 0usize, 0u32);
        while i < pa.len() && j < pb.len() {
            match pa[i].cmp(&pb[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }
}

/// The top-`n` words of topic `k` in a `K × V` count matrix, highest count
/// first (ties broken by word id for determinism).
pub fn top_words(phi: &DenseMatrix<u32>, topic: usize, n: usize) -> Vec<WordId> {
    let mut pairs: Vec<(WordId, u32)> = phi
        .row(topic)
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .map(|(w, &c)| (w as WordId, c))
        .collect();
    pairs.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    pairs.truncate(n);
    pairs.into_iter().map(|(w, _)| w).collect()
}

/// UMass coherence of one ordered top-word list against a reference corpus.
///
/// Words absent from every document are skipped (they cannot contribute a
/// finite score).  Returns 0.0 when fewer than two usable words remain.
pub fn umass_coherence(index: &CooccurrenceIndex, top: &[WordId]) -> f64 {
    let usable: Vec<WordId> = top
        .iter()
        .copied()
        .filter(|&w| index.doc_freq(w) > 0)
        .collect();
    if usable.len() < 2 {
        return 0.0;
    }
    let mut score = 0.0;
    for i in 1..usable.len() {
        for j in 0..i {
            let co = index.co_doc_freq(usable[i], usable[j]) as f64;
            let dj = index.doc_freq(usable[j]) as f64;
            score += ((co + 1.0) / dj).ln();
        }
    }
    score
}

/// NPMI coherence of one ordered top-word list against a reference corpus.
///
/// For every unordered pair of usable top words the normalised PMI
/// `ln(p(wi,wj) / (p(wi)p(wj))) / (−ln p(wi,wj))` is computed from document
/// frequencies; pairs that never co-occur contribute −1.  The topic score is
/// the mean over pairs, in `[−1, 1]`.  Returns 0.0 when fewer than two usable
/// words remain.
pub fn npmi_coherence(index: &CooccurrenceIndex, top: &[WordId]) -> f64 {
    let usable: Vec<WordId> = top
        .iter()
        .copied()
        .filter(|&w| index.doc_freq(w) > 0)
        .collect();
    if usable.len() < 2 || index.num_docs() == 0 {
        return 0.0;
    }
    let d = index.num_docs() as f64;
    let mut score = 0.0;
    let mut pairs = 0usize;
    for i in 1..usable.len() {
        for j in 0..i {
            let co = index.co_doc_freq(usable[i], usable[j]) as f64;
            pairs += 1;
            if co == 0.0 {
                score += -1.0;
                continue;
            }
            let p_ij = co / d;
            let p_i = index.doc_freq(usable[i]) as f64 / d;
            let p_j = index.doc_freq(usable[j]) as f64 / d;
            if p_ij >= 1.0 {
                // Both words are in every document: perfectly associated.
                score += 1.0;
                continue;
            }
            score += (p_ij / (p_i * p_j)).ln() / -p_ij.ln();
        }
    }
    score / pairs as f64
}

/// NPMI coherence of every topic's top-`n` words; returns one score per topic.
pub fn npmi_coherence_all(index: &CooccurrenceIndex, phi: &DenseMatrix<u32>, n: usize) -> Vec<f64> {
    (0..phi.rows())
        .map(|k| npmi_coherence(index, &top_words(phi, k, n)))
        .collect()
}

/// Mean NPMI coherence over all topics.
pub fn mean_npmi_coherence(index: &CooccurrenceIndex, phi: &DenseMatrix<u32>, n: usize) -> f64 {
    let scores = npmi_coherence_all(index, phi, n);
    if scores.is_empty() {
        0.0
    } else {
        scores.iter().sum::<f64>() / scores.len() as f64
    }
}

/// UMass coherence of every topic's top-`n` words; returns one score per topic.
pub fn umass_coherence_all(
    index: &CooccurrenceIndex,
    phi: &DenseMatrix<u32>,
    n: usize,
) -> Vec<f64> {
    (0..phi.rows())
        .map(|k| umass_coherence(index, &top_words(phi, k, n)))
        .collect()
}

/// Mean UMass coherence over all topics (the single number usually reported).
pub fn mean_umass_coherence(index: &CooccurrenceIndex, phi: &DenseMatrix<u32>, n: usize) -> f64 {
    let scores = umass_coherence_all(index, phi, n);
    if scores.is_empty() {
        0.0
    } else {
        scores.iter().sum::<f64>() / scores.len() as f64
    }
}

/// Topic diversity: distinct words among all topics' top-`n` words divided by
/// `K × n`.  1.0 means every topic has its own headline vocabulary.
pub fn topic_diversity(phi: &DenseMatrix<u32>, n: usize) -> f64 {
    let k = phi.rows();
    if k == 0 || n == 0 {
        return 0.0;
    }
    let mut distinct: HashSet<WordId> = HashSet::new();
    let mut listed = 0usize;
    for topic in 0..k {
        let top = top_words(phi, topic, n);
        listed += top.len();
        distinct.extend(top);
    }
    if listed == 0 {
        0.0
    } else {
        distinct.len() as f64 / listed as f64
    }
}

/// Per-topic token share (`n_k / Σ n_k`), a quick check for degenerate runs
/// where a handful of topics absorb the whole corpus.
pub fn topic_balance(phi: &DenseMatrix<u32>) -> Vec<f64> {
    let totals: Vec<u64> = phi.row_sums();
    let sum: u64 = totals.iter().sum();
    if sum == 0 {
        return vec![0.0; phi.rows()];
    }
    totals.iter().map(|&t| t as f64 / sum as f64).collect()
}

/// Map word-id top lists to human-readable strings with a vocabulary lookup
/// function (useful for reports and the CLI).
pub fn readable_top_words<F>(top: &[WordId], lookup: F) -> Vec<String>
where
    F: Fn(WordId) -> Option<String>,
{
    top.iter()
        .map(|&w| lookup(w).unwrap_or_else(|| format!("word{w}")))
        .collect()
}

/// Convenience: build the index and compute mean coherence + diversity in one
/// call (what the examples and CLI report).
pub fn topic_quality_report(corpus: &Corpus, phi: &DenseMatrix<u32>, top_n: usize) -> TopicQuality {
    let index = CooccurrenceIndex::build(corpus);
    TopicQuality {
        mean_coherence: mean_umass_coherence(&index, phi, top_n),
        mean_npmi: mean_npmi_coherence(&index, phi, top_n),
        diversity: topic_diversity(phi, top_n),
        per_topic_coherence: umass_coherence_all(&index, phi, top_n),
        top_n,
    }
}

/// Summary of topic quality for one trained model.
#[derive(Debug, Clone, PartialEq)]
pub struct TopicQuality {
    /// Mean UMass coherence over topics.
    pub mean_coherence: f64,
    /// Mean NPMI coherence over topics (−1…1, higher is better).
    pub mean_npmi: f64,
    /// Topic diversity of the top-word lists.
    pub diversity: f64,
    /// Per-topic coherence scores.
    pub per_topic_coherence: Vec<f64>,
    /// Top-word list length the scores were computed with.
    pub top_n: usize,
}

impl TopicQuality {
    /// Number of topics scored.
    pub fn num_topics(&self) -> usize {
        self.per_topic_coherence.len()
    }
}

/// Count how many of the reference topics are "recovered" by the learned φ:
/// a reference topic counts as recovered when some learned topic places at
/// least `overlap` of the reference topic's top-`n` words inside its own
/// top-`n` list.  Used by tests against the synthetic LDA generator, where
/// the reference topics are known.
pub fn topics_recovered(
    learned: &DenseMatrix<u32>,
    reference_top: &[Vec<WordId>],
    n: usize,
    overlap: usize,
) -> usize {
    let learned_tops: Vec<HashSet<WordId>> = (0..learned.rows())
        .map(|k| top_words(learned, k, n).into_iter().collect())
        .collect();
    let mut recovered = 0;
    for rt in reference_top {
        let want: HashSet<WordId> = rt.iter().copied().take(n).collect();
        let hit = learned_tops
            .iter()
            .any(|lt| lt.intersection(&want).count() >= overlap);
        if hit {
            recovered += 1;
        }
    }
    recovered
}

/// Build a `HashMap`-backed lookup closure from parallel word/id lists (test
/// helper exposed because the CLI uses it too).
pub fn lookup_from_pairs(pairs: &[(WordId, String)]) -> impl Fn(WordId) -> Option<String> + '_ {
    let map: HashMap<WordId, &str> = pairs.iter().map(|(w, s)| (*w, s.as_str())).collect();
    move |w| map.get(&w).map(|s| s.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::CorpusBuilder;

    /// Corpus where words {0,1,2} always co-occur and {3,4,5} always co-occur,
    /// with no cross-group documents.
    fn two_cluster_corpus() -> Corpus {
        let mut b = CorpusBuilder::new(6);
        for _ in 0..10 {
            b.push_doc(&[0, 1, 2, 0]);
            b.push_doc(&[3, 4, 5, 5]);
        }
        b.build()
    }

    fn phi_two_topics() -> DenseMatrix<u32> {
        let mut phi = DenseMatrix::zeros(2, 6);
        for (w, c) in [(0, 30), (1, 20), (2, 20)] {
            phi.set(0, w, c);
        }
        for (w, c) in [(3, 30), (4, 20), (5, 40)] {
            phi.set(1, w, c);
        }
        phi
    }

    #[test]
    fn index_counts_doc_and_co_doc_frequencies() {
        let c = two_cluster_corpus();
        let idx = CooccurrenceIndex::build(&c);
        assert_eq!(idx.num_docs(), 20);
        assert_eq!(idx.doc_freq(0), 10);
        assert_eq!(idx.doc_freq(5), 10);
        assert_eq!(idx.co_doc_freq(0, 1), 10);
        assert_eq!(idx.co_doc_freq(0, 3), 0);
        assert_eq!(idx.co_doc_freq(2, 2), 10);
    }

    #[test]
    fn coherent_topics_score_higher_than_mixed_topics() {
        let c = two_cluster_corpus();
        let idx = CooccurrenceIndex::build(&c);
        let coherent = umass_coherence(&idx, &[0, 1, 2]);
        let mixed = umass_coherence(&idx, &[0, 3, 1]);
        assert!(
            coherent > mixed,
            "coherent {coherent} should beat mixed {mixed}"
        );
    }

    #[test]
    fn top_words_order_and_truncation() {
        let phi = phi_two_topics();
        assert_eq!(top_words(&phi, 0, 2), vec![0, 1]);
        assert_eq!(top_words(&phi, 1, 2), vec![5, 3]);
        assert_eq!(top_words(&phi, 0, 10).len(), 3);
    }

    #[test]
    fn diversity_of_disjoint_topics_is_one() {
        let phi = phi_two_topics();
        assert!((topic_diversity(&phi, 3) - 1.0).abs() < 1e-12);
        // Two identical topics halve the diversity.
        let mut same = DenseMatrix::zeros(2, 6);
        for k in 0..2 {
            same.set(k, 0, 5);
            same.set(k, 1, 3);
        }
        assert!((topic_diversity(&same, 2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn npmi_separates_perfect_cooccurrence_from_never_cooccurring() {
        let c = two_cluster_corpus();
        let idx = CooccurrenceIndex::build(&c);
        // Words 0,1,2 co-occur in every document that contains any of them.
        let coherent = npmi_coherence(&idx, &[0, 1, 2]);
        // Words from opposite clusters never co-occur.
        let disjoint = npmi_coherence(&idx, &[0, 3]);
        assert!((disjoint - -1.0).abs() < 1e-12, "disjoint {disjoint}");
        assert!(coherent > 0.9, "coherent {coherent}");
        assert!(coherent <= 1.0 + 1e-12);
        assert!(coherent > npmi_coherence(&idx, &[0, 3, 1]));
    }

    #[test]
    fn npmi_of_independent_words_is_near_zero() {
        // Word 1 appears in every document; word 0 in half of them.  Their
        // joint probability then factorises, so NPMI ≈ 0.
        let mut b = CorpusBuilder::new(3);
        for i in 0..20 {
            if i % 2 == 0 {
                b.push_doc(&[0, 1]);
            } else {
                b.push_doc(&[1, 2]);
            }
        }
        let idx = CooccurrenceIndex::build(&b.build());
        let score = npmi_coherence(&idx, &[0, 1]);
        assert!(score.abs() < 1e-9, "independent pair scored {score}");
    }

    #[test]
    fn npmi_degenerate_inputs_return_zero() {
        let c = two_cluster_corpus();
        let idx = CooccurrenceIndex::build(&c);
        assert_eq!(npmi_coherence(&idx, &[]), 0.0);
        assert_eq!(npmi_coherence(&idx, &[4]), 0.0);
        let all = npmi_coherence_all(&idx, &phi_two_topics(), 3);
        assert_eq!(all.len(), 2);
        assert!(all.iter().all(|s| s.is_finite()));
        let mean = mean_npmi_coherence(&idx, &phi_two_topics(), 3);
        assert!((mean - (all[0] + all[1]) / 2.0).abs() < 1e-12);
    }

    #[test]
    fn quality_report_combines_both_metrics() {
        let c = two_cluster_corpus();
        let phi = phi_two_topics();
        let q = topic_quality_report(&c, &phi, 3);
        assert_eq!(q.num_topics(), 2);
        assert_eq!(q.top_n, 3);
        assert!((q.diversity - 1.0).abs() < 1e-12);
        // Perfectly co-occurring clusters give log((D+1)/D) > 0 pair terms,
        // so the score is near (slightly above) zero — just require it is
        // finite and consistent with the per-topic scores.
        assert!(q.mean_coherence.is_finite());
        let mean: f64 =
            q.per_topic_coherence.iter().sum::<f64>() / q.per_topic_coherence.len() as f64;
        assert!((mean - q.mean_coherence).abs() < 1e-12);
        // The two clusters never mix, so the NPMI of both topics is maximal.
        assert!(q.mean_npmi > 0.9 && q.mean_npmi <= 1.0 + 1e-12);
    }

    #[test]
    fn balance_sums_to_one_and_flags_skew() {
        let phi = phi_two_topics();
        let b = topic_balance(&phi);
        assert!((b.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(b[1] > b[0]);
        let empty = DenseMatrix::zeros(3, 4);
        assert_eq!(topic_balance(&empty), vec![0.0; 3]);
    }

    #[test]
    fn degenerate_inputs_do_not_panic() {
        let c = two_cluster_corpus();
        let idx = CooccurrenceIndex::build(&c);
        assert_eq!(umass_coherence(&idx, &[]), 0.0);
        assert_eq!(umass_coherence(&idx, &[2]), 0.0);
        let empty = DenseMatrix::zeros(0, 0);
        assert_eq!(topic_diversity(&empty, 5), 0.0);
    }

    #[test]
    fn recovery_counts_reference_topics() {
        let phi = phi_two_topics();
        let reference = vec![vec![0, 1, 2], vec![3, 4, 5], vec![0, 4, 5]];
        // Topics 1 and 2 of the reference are recovered with overlap 2; the
        // third mixes both clusters but still shares 2 words with topic 1.
        assert_eq!(topics_recovered(&phi, &reference, 3, 3), 2);
        assert_eq!(topics_recovered(&phi, &reference, 3, 2), 3);
        assert_eq!(topics_recovered(&phi, &reference, 3, 4), 0);
    }

    #[test]
    fn readable_top_words_fall_back_to_placeholders() {
        let pairs = vec![(0u32, "gpu".to_string()), (2u32, "lda".to_string())];
        let lookup = lookup_from_pairs(&pairs);
        let words = readable_top_words(&[0, 1, 2], lookup);
        assert_eq!(words, vec!["gpu", "word1", "lda"]);
    }
}
