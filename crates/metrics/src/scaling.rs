//! Multi-GPU scaling summaries (Figure 9).
//!
//! Figure 9(b) plots the throughput of CuLDA_CGS on 1, 2 and 4 GPUs
//! normalised to the single-GPU run (1.93× and 2.99× in the paper).  This
//! module packages the bookkeeping: collecting `(gpu count, throughput)`
//! pairs, normalising them, computing parallel efficiency and estimating the
//! serial fraction with Amdahl's law (the paper invokes Amdahl when arguing
//! that synchronization must be optimized, §3.2).

use serde::{Deserialize, Serialize};

/// One measured configuration of a scaling sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScalingPoint {
    /// Number of GPUs (or workers) used.
    pub num_gpus: usize,
    /// Measured throughput in tokens/second.
    pub tokens_per_sec: f64,
}

/// A scaling sweep over GPU counts, anchored at the smallest configuration.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ScalingSeries {
    points: Vec<ScalingPoint>,
}

impl ScalingSeries {
    /// Empty series.
    pub fn new() -> Self {
        ScalingSeries { points: Vec::new() }
    }

    /// Record one configuration.  Points may arrive in any order; they are
    /// kept sorted by GPU count.
    pub fn push(&mut self, num_gpus: usize, tokens_per_sec: f64) {
        assert!(num_gpus > 0, "num_gpus must be positive");
        assert!(
            tokens_per_sec.is_finite() && tokens_per_sec > 0.0,
            "throughput must be positive"
        );
        self.points.push(ScalingPoint {
            num_gpus,
            tokens_per_sec,
        });
        self.points.sort_by_key(|p| p.num_gpus);
    }

    /// All recorded points, sorted by GPU count.
    pub fn points(&self) -> &[ScalingPoint] {
        &self.points
    }

    /// Number of recorded configurations.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the series is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The baseline point (smallest GPU count), if any.
    pub fn baseline(&self) -> Option<ScalingPoint> {
        self.points.first().copied()
    }

    /// Speedup of every configuration relative to the baseline, as
    /// `(num_gpus, speedup)` pairs — the series plotted in Figure 9(b).
    pub fn speedups(&self) -> Vec<(usize, f64)> {
        let Some(base) = self.baseline() else {
            return Vec::new();
        };
        self.points
            .iter()
            .map(|p| {
                (
                    p.num_gpus,
                    p.tokens_per_sec / base.tokens_per_sec * base.num_gpus as f64,
                )
            })
            .collect()
    }

    /// Parallel efficiency (`speedup / num_gpus`) per configuration.
    pub fn efficiencies(&self) -> Vec<(usize, f64)> {
        self.speedups()
            .into_iter()
            .map(|(g, s)| (g, s / g as f64))
            .collect()
    }

    /// Speedup at a specific GPU count, if that configuration was measured.
    pub fn speedup_at(&self, num_gpus: usize) -> Option<f64> {
        self.speedups()
            .into_iter()
            .find(|&(g, _)| g == num_gpus)
            .map(|(_, s)| s)
    }

    /// Least-squares estimate of the Amdahl serial fraction `s` from all
    /// measured points: for each point, `s_i = (G/S − 1) / (G − 1)` where `S`
    /// is the measured speedup on `G` GPUs; the estimate is their mean over
    /// configurations with `G > 1`.  Returns `None` when no multi-GPU point
    /// exists.
    pub fn amdahl_serial_fraction(&self) -> Option<f64> {
        let speedups = self.speedups();
        let samples: Vec<f64> = speedups
            .iter()
            .filter(|&&(g, _)| g > 1)
            .map(|&(g, s)| {
                let g = g as f64;
                ((g / s) - 1.0) / (g - 1.0)
            })
            .collect();
        if samples.is_empty() {
            None
        } else {
            Some(samples.iter().sum::<f64>() / samples.len() as f64)
        }
    }

    /// Predicted speedup on `num_gpus` GPUs under Amdahl's law with the
    /// estimated serial fraction (useful for extrapolating the sweep).
    pub fn amdahl_predicted_speedup(&self, num_gpus: usize) -> Option<f64> {
        let s = self.amdahl_serial_fraction()?;
        let g = num_gpus as f64;
        Some(1.0 / (s + (1.0 - s) / g))
    }

    /// Render the series as aligned text rows (`#GPUs  Tokens/sec  Speedup
    /// Efficiency`), matching the format of the experiment harness output.
    pub fn to_table(&self) -> String {
        let mut out = String::from("#GPUs  MTokens/sec  Speedup  Efficiency\n");
        let speedups = self.speedups();
        for (p, (_, s)) in self.points.iter().zip(&speedups) {
            out.push_str(&format!(
                "{:>5}  {:>11.1}  {:>7.2}  {:>9.1}%\n",
                p.num_gpus,
                p.tokens_per_sec / 1e6,
                s,
                s / p.num_gpus as f64 * 100.0
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_series() -> ScalingSeries {
        // The paper's Figure 9 numbers on PubMed / Pascal.
        let mut s = ScalingSeries::new();
        s.push(1, 213.0e6);
        s.push(2, 213.0e6 * 1.93);
        s.push(4, 213.0e6 * 2.99);
        s
    }

    #[test]
    fn speedups_are_relative_to_the_baseline() {
        let s = paper_series();
        let sp = s.speedups();
        assert_eq!(sp.len(), 3);
        assert!((sp[0].1 - 1.0).abs() < 1e-12);
        assert!((sp[1].1 - 1.93).abs() < 1e-9);
        assert!((sp[2].1 - 2.99).abs() < 1e-9);
        assert_eq!(s.speedup_at(4).map(|v| (v * 100.0).round()), Some(299.0));
        assert_eq!(s.speedup_at(8), None);
    }

    #[test]
    fn efficiency_decreases_with_gpu_count() {
        let s = paper_series();
        let eff = s.efficiencies();
        assert!(eff[0].1 > eff[1].1 && eff[1].1 > eff[2].1);
        assert!(eff[2].1 > 0.7, "4-GPU efficiency {:.2}", eff[2].1);
    }

    #[test]
    fn points_are_sorted_regardless_of_insertion_order() {
        let mut s = ScalingSeries::new();
        s.push(4, 400.0);
        s.push(1, 100.0);
        s.push(2, 190.0);
        let gpus: Vec<usize> = s.points().iter().map(|p| p.num_gpus).collect();
        assert_eq!(gpus, vec![1, 2, 4]);
        assert_eq!(s.baseline().unwrap().num_gpus, 1);
    }

    #[test]
    fn amdahl_fraction_matches_the_observed_saturation() {
        let s = paper_series();
        let frac = s.amdahl_serial_fraction().unwrap();
        // 1.93× at 2 GPUs and 2.99× at 4 GPUs correspond to a serial share of
        // roughly 4–11%.
        assert!(frac > 0.02 && frac < 0.15, "serial fraction {frac}");
        let pred8 = s.amdahl_predicted_speedup(8).unwrap();
        assert!(pred8 > 2.99 && pred8 < 8.0);
    }

    #[test]
    fn perfect_scaling_has_zero_serial_fraction() {
        let mut s = ScalingSeries::new();
        s.push(1, 100.0);
        s.push(2, 200.0);
        s.push(4, 400.0);
        let frac = s.amdahl_serial_fraction().unwrap();
        assert!(frac.abs() < 1e-9);
        for (_, e) in s.efficiencies() {
            assert!((e - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_series_behave() {
        let empty = ScalingSeries::new();
        assert!(empty.is_empty());
        assert!(empty.speedups().is_empty());
        assert!(empty.amdahl_serial_fraction().is_none());
        let mut single = ScalingSeries::new();
        single.push(1, 50.0);
        assert_eq!(single.len(), 1);
        assert!(single.amdahl_serial_fraction().is_none());
        assert!(single.amdahl_predicted_speedup(4).is_none());
    }

    #[test]
    fn table_rendering_contains_every_configuration() {
        let s = paper_series();
        let t = s.to_table();
        assert!(t.contains("#GPUs"));
        assert_eq!(t.lines().count(), 4);
        assert!(t.contains("1.93") || t.contains("1.9"));
    }

    #[test]
    #[should_panic(expected = "num_gpus must be positive")]
    fn zero_gpus_is_rejected() {
        ScalingSeries::new().push(0, 1.0);
    }
}
