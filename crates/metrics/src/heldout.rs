//! Held-out predictive likelihood and perplexity.
//!
//! The training-set joint likelihood ([`crate::likelihood`]) tracks mixing
//! speed, but model selection needs the probability the trained model assigns
//! to *unseen* tokens.  Under the document-completion protocol
//! (`culda_corpus::holdout::DocumentCompletion`), each test document `d` has
//! an inferred topic mixture `θ̂_d` (estimated from its observed half) and the
//! held-out half is scored as
//!
//! ```text
//! log p(w_held | θ̂, φ̂) = Σ_{tokens (d,v)} log Σ_k θ̂_{d,k} · φ̂_{k,v}
//! ```
//!
//! with the smoothed point estimates
//! `θ̂_{d,k} = (n_{d,k} + α) / (L_d + Kα)` and
//! `φ̂_{k,v} = (n_{k,v} + β) / (n_k + Vβ)`.

use culda_corpus::Corpus;
use culda_sparse::{CsrMatrix, DenseMatrix};
use serde::{Deserialize, Serialize};

/// Smoothed point estimate of the topic–word distributions, rows normalised
/// to probabilities.  `phi` holds counts (`K × V`), `nk` the topic totals.
pub fn estimate_phi(phi: &DenseMatrix<u32>, nk: &[i64], beta: f64) -> Vec<Vec<f64>> {
    assert_eq!(phi.rows(), nk.len());
    let v = phi.cols() as f64;
    (0..phi.rows())
        .map(|k| {
            let denom = nk[k] as f64 + v * beta;
            phi.row(k)
                .iter()
                .map(|&c| (c as f64 + beta) / denom)
                .collect()
        })
        .collect()
}

/// Smoothed point estimate of one document's topic mixture from its θ counts.
pub fn estimate_theta_row(counts: &[(u16, u32)], num_topics: usize, alpha: f64) -> Vec<f64> {
    let len: u64 = counts.iter().map(|&(_, c)| c as u64).sum();
    let denom = len as f64 + num_topics as f64 * alpha;
    let mut row = vec![alpha / denom; num_topics];
    for &(k, c) in counts {
        row[k as usize] = (c as f64 + alpha) / denom;
    }
    row
}

/// Smoothed per-document topic mixtures from a θ count matrix.
pub fn estimate_theta(theta: &CsrMatrix, alpha: f64) -> Vec<Vec<f64>> {
    (0..theta.rows())
        .map(|d| {
            let (cols, vals) = theta.row(d);
            let counts: Vec<(u16, u32)> = cols.iter().copied().zip(vals.iter().copied()).collect();
            estimate_theta_row(&counts, theta.cols(), alpha)
        })
        .collect()
}

/// Result of a held-out evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeldoutScore {
    /// Total log-probability of the held-out tokens.
    pub log_prob: f64,
    /// Number of held-out tokens scored.
    pub num_tokens: u64,
}

impl HeldoutScore {
    /// Mean log-probability per held-out token.
    pub fn per_token(&self) -> f64 {
        if self.num_tokens == 0 {
            0.0
        } else {
            self.log_prob / self.num_tokens as f64
        }
    }

    /// Held-out perplexity `exp(−log p / N)` (lower is better).
    pub fn perplexity(&self) -> f64 {
        (-self.per_token()).exp()
    }
}

/// Score a held-out corpus against per-document topic mixtures and the
/// topic–word probabilities.
///
/// `theta_hat[d]` must be the mixture of held-out document `d` (documents are
/// aligned by index with `heldout`); `phi_hat[k][v]` the word probabilities.
///
/// # Panics
/// Panics if the shapes disagree (document counts, topic counts, vocabulary).
pub fn heldout_log_likelihood(
    heldout: &Corpus,
    theta_hat: &[Vec<f64>],
    phi_hat: &[Vec<f64>],
) -> HeldoutScore {
    assert_eq!(
        heldout.num_docs(),
        theta_hat.len(),
        "one θ̂ row per held-out document required"
    );
    let k = phi_hat.len();
    assert!(k > 0, "φ̂ must have at least one topic");
    assert!(
        theta_hat.iter().all(|r| r.len() == k),
        "θ̂ rows must have K entries"
    );
    assert!(
        phi_hat.iter().all(|r| r.len() == heldout.vocab_size()),
        "φ̂ rows must have V entries"
    );
    let mut log_prob = 0.0;
    let mut num_tokens = 0u64;
    for d in 0..heldout.num_docs() {
        let mix = &theta_hat[d];
        for &w in heldout.doc(d) {
            let mut p = 0.0;
            for (t, phi_row) in phi_hat.iter().enumerate() {
                p += mix[t] * phi_row[w as usize];
            }
            // Guard against probability underflow from degenerate estimates.
            log_prob += p.max(f64::MIN_POSITIVE).ln();
            num_tokens += 1;
        }
    }
    HeldoutScore {
        log_prob,
        num_tokens,
    }
}

/// Convenience wrapper: estimate θ̂ from a count matrix (one row per held-out
/// document, e.g. produced by fold-in Gibbs sampling), estimate φ̂ from the
/// trained counts and score the held-out corpus.
pub fn evaluate_heldout(
    heldout: &Corpus,
    theta_counts: &CsrMatrix,
    phi_counts: &DenseMatrix<u32>,
    nk: &[i64],
    alpha: f64,
    beta: f64,
) -> HeldoutScore {
    let theta_hat = estimate_theta(theta_counts, alpha);
    let phi_hat = estimate_phi(phi_counts, nk, beta);
    heldout_log_likelihood(heldout, &theta_hat, &phi_hat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::CorpusBuilder;
    use culda_sparse::CsrBuilder;

    fn phi_counts() -> (DenseMatrix<u32>, Vec<i64>) {
        // Topic 0 favours words {0,1}; topic 1 favours words {2,3}.
        let mut phi = DenseMatrix::zeros(2, 4);
        phi.set(0, 0, 40);
        phi.set(0, 1, 40);
        phi.set(1, 2, 40);
        phi.set(1, 3, 40);
        let nk = vec![80, 80];
        (phi, nk)
    }

    #[test]
    fn phi_estimates_are_normalised_and_ordered() {
        let (phi, nk) = phi_counts();
        let est = estimate_phi(&phi, &nk, 0.01);
        for row in &est {
            let s: f64 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-9, "row sums to {s}");
        }
        assert!(est[0][0] > est[0][2]);
        assert!(est[1][2] > est[1][0]);
    }

    #[test]
    fn theta_estimates_are_normalised() {
        let row = estimate_theta_row(&[(0, 3), (2, 1)], 4, 0.1);
        assert!((row.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(row[0] > row[2] && row[2] > row[1]);
        let mut b = CsrBuilder::new(2, 4);
        b.push_row([(0u16, 2u32)]);
        b.push_row([(3u16, 5u32)]);
        let theta = b.finish();
        let est = estimate_theta(&theta, 0.5);
        assert_eq!(est.len(), 2);
        for r in &est {
            assert!((r.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn matched_documents_score_better_than_mismatched() {
        let (phi, nk) = phi_counts();
        let phi_hat = estimate_phi(&phi, &nk, 0.01);
        // Document that talks about topic-0 words.
        let mut b = CorpusBuilder::new(4);
        b.push_doc(&[0, 1, 0, 1]);
        let heldout = b.build();
        let aligned = heldout_log_likelihood(&heldout, &[vec![0.95, 0.05]], &phi_hat);
        let misaligned = heldout_log_likelihood(&heldout, &[vec![0.05, 0.95]], &phi_hat);
        assert!(aligned.log_prob > misaligned.log_prob);
        assert_eq!(aligned.num_tokens, 4);
        assert!(aligned.perplexity() < misaligned.perplexity());
    }

    #[test]
    fn evaluate_heldout_end_to_end() {
        let (phi, nk) = phi_counts();
        let mut tb = CsrBuilder::new(2, 2);
        tb.push_row([(0u16, 6u32)]); // document 0 is topic-0 heavy
        tb.push_row([(1u16, 6u32)]); // document 1 is topic-1 heavy
        let theta = tb.finish();
        let mut cb = CorpusBuilder::new(4);
        cb.push_doc(&[0, 1, 1]);
        cb.push_doc(&[2, 3, 2]);
        let heldout = cb.build();
        let score = evaluate_heldout(&heldout, &theta, &phi, &nk, 0.1, 0.01);
        assert_eq!(score.num_tokens, 6);
        assert!(score.per_token() < 0.0);
        assert!(score.perplexity() > 1.0);
        // Perplexity should be far below the uniform-model baseline of V = 4.
        assert!(score.perplexity() < 4.0);
    }

    #[test]
    fn empty_heldout_scores_zero() {
        let (phi, nk) = phi_counts();
        let phi_hat = estimate_phi(&phi, &nk, 0.01);
        let heldout = CorpusBuilder::new(4).build();
        let score = heldout_log_likelihood(&heldout, &[], &phi_hat);
        assert_eq!(score.num_tokens, 0);
        assert_eq!(score.per_token(), 0.0);
        assert_eq!(score.perplexity(), 1.0);
    }

    #[test]
    #[should_panic(expected = "one θ̂ row per held-out document")]
    fn shape_mismatch_panics() {
        let (phi, nk) = phi_counts();
        let phi_hat = estimate_phi(&phi, &nk, 0.01);
        let mut b = CorpusBuilder::new(4);
        b.push_doc(&[0]);
        let heldout = b.build();
        let _ = heldout_log_likelihood(&heldout, &[], &phi_hat);
    }
}
