//! Perplexity: the conventional transformation of log-likelihood per token.

/// `exp(−LL/T)` — lower is better.  Defined as `f64::INFINITY` when the state
/// covers no tokens.
pub fn perplexity_per_token(log_likelihood: f64, num_tokens: u64) -> f64 {
    if num_tokens == 0 {
        return f64::INFINITY;
    }
    (-log_likelihood / num_tokens as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_model_perplexity_equals_vocabulary_size() {
        // A model assigning probability 1/V to every token has LL = -T ln V
        // and therefore perplexity exactly V.
        let v = 1000.0f64;
        let t = 500u64;
        let ll = -(t as f64) * v.ln();
        let p = perplexity_per_token(ll, t);
        assert!((p - v).abs() / v < 1e-12);
    }

    #[test]
    fn better_likelihood_means_lower_perplexity() {
        let t = 100;
        assert!(perplexity_per_token(-500.0, t) < perplexity_per_token(-700.0, t));
    }

    #[test]
    fn empty_state_is_infinite() {
        assert!(perplexity_per_token(0.0, 0).is_infinite());
    }
}
