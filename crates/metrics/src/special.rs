//! Special functions: `ln Γ`.
//!
//! The LDA joint log-likelihood is a sum of log-gamma terms; `std` does not
//! expose `lgamma`, so a Lanczos approximation (g = 7, n = 9 coefficients,
//! accurate to ~1e-13 over the range the likelihood needs) is implemented
//! here and verified against exact factorials and the duplication formula.

/// Lanczos coefficients for g = 7.
const LANCZOS_G: f64 = 7.0;
const LANCZOS_COEF: [f64; 9] = [
    0.999_999_999_999_809_9,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_1,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function for `x > 0`.
///
/// # Panics
/// Debug-asserts `x > 0`; LDA count arguments are always of the form
/// `count + hyperparameter > 0`.
pub fn ln_gamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "ln_gamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection formula keeps the Lanczos series well-conditioned.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS_COEF[0];
    for (i, &c) in LANCZOS_COEF.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + LANCZOS_G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln Γ(x + n) − ln Γ(x)` for a non-negative integer `n`, computed without
/// cancellation when `n` is small (the common case in incremental likelihood
/// updates).
pub fn ln_gamma_ratio(x: f64, n: u64) -> f64 {
    if n <= 32 {
        let mut acc = 0.0;
        for i in 0..n {
            acc += (x + i as f64).ln();
        }
        acc
    } else {
        ln_gamma(x + n as f64) - ln_gamma(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_factorials() {
        // Γ(n+1) = n!
        let facts: [(f64, f64); 6] = [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (4.0, 6.0),
            (5.0, 24.0),
            (11.0, 3_628_800.0),
        ];
        for (x, fact) in facts {
            assert!((ln_gamma(x) - fact.ln()).abs() < 1e-10, "x={x}");
        }
    }

    #[test]
    fn half_integer_values() {
        // Γ(1/2) = √π, Γ(3/2) = √π/2.
        let sqrt_pi = std::f64::consts::PI.sqrt();
        assert!((ln_gamma(0.5) - sqrt_pi.ln()).abs() < 1e-10);
        assert!((ln_gamma(1.5) - (sqrt_pi / 2.0).ln()).abs() < 1e-10);
    }

    #[test]
    fn recurrence_holds() {
        // ln Γ(x+1) = ln Γ(x) + ln x
        for &x in &[0.1, 0.7, 3.3, 42.0, 1234.5] {
            assert!(
                (ln_gamma(x + 1.0) - ln_gamma(x) - x.ln()).abs() < 1e-9,
                "x={x}"
            );
        }
    }

    #[test]
    fn large_arguments_match_stirling() {
        let x = 1e6_f64;
        let stirling = (x - 0.5) * x.ln() - x + 0.5 * (2.0 * std::f64::consts::PI).ln();
        assert!((ln_gamma(x) - stirling).abs() / stirling.abs() < 1e-7);
    }

    #[test]
    fn ratio_matches_difference() {
        for &(x, n) in &[(0.1f64, 5u64), (2.5, 32), (0.01, 100), (7.0, 1000)] {
            let direct = ln_gamma(x + n as f64) - ln_gamma(x);
            assert!((ln_gamma_ratio(x, n) - direct).abs() < 1e-8, "x={x} n={n}");
        }
        assert_eq!(ln_gamma_ratio(3.3, 0), 0.0);
    }
}
