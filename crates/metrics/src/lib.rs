//! # culda-metrics
//!
//! Evaluation metrics for the CuLDA_CGS reproduction:
//!
//! * [`likelihood`] — the joint log-likelihood per token used as the model
//!   quality metric throughout §7 (Figure 8 plots it against wall-clock time);
//! * [`perplexity`] — the conventional `exp(-LL/T)` transformation;
//! * [`throughput`] — the `#Tokens/sec` metric of Eq. 2 (Table 4, Figure 7);
//! * [`roofline`] — the Flops/Byte characterisation of §3.1 (Table 1);
//! * [`timeline`] — convergence-over-time series used to regenerate Figure 8;
//! * [`special`] — the `ln Γ` implementation the likelihood needs;
//! * [`coherence`] — UMass topic coherence, diversity and planted-topic
//!   recovery (intrinsic topic quality, beyond the paper's metrics);
//! * [`heldout`] — held-out predictive likelihood and perplexity under the
//!   document-completion protocol;
//! * [`scaling`] — multi-GPU speedup/efficiency summaries and the Amdahl fit
//!   behind Figure 9.

#![warn(missing_docs)]

pub mod coherence;
pub mod heldout;
pub mod likelihood;
pub mod perplexity;
pub mod roofline;
pub mod scaling;
pub mod special;
pub mod throughput;
pub mod timeline;

pub use coherence::{topic_diversity, topic_quality_report, CooccurrenceIndex, TopicQuality};
pub use heldout::{evaluate_heldout, heldout_log_likelihood, HeldoutScore};
pub use likelihood::{log_likelihood, LikelihoodParts};
pub use perplexity::perplexity_per_token;
pub use roofline::{table1, RooflineStep};
pub use scaling::{ScalingPoint, ScalingSeries};
pub use throughput::{tokens_per_sec, ThroughputSeries};
pub use timeline::{ConvergencePoint, Timeline};
