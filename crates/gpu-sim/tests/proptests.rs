//! Property-based tests for the GPU-simulator cost, occupancy, collective and
//! transfer models: the invariants here must hold for *any* device spec and
//! any kernel footprint, not just the Table-2 presets.

use culda_gpusim::cost::{kernel_time, CostCounters};
use culda_gpusim::occupancy::{theoretical_occupancy, ArchLimits, KernelResources};
use culda_gpusim::{Arch, DeviceSpec, Interconnect, ReducePlan};
use proptest::prelude::*;

fn arb_arch() -> impl Strategy<Value = Arch> {
    prop_oneof![
        Just(Arch::Kepler),
        Just(Arch::Maxwell),
        Just(Arch::Pascal),
        Just(Arch::Volta),
        Just(Arch::Ampere),
    ]
}

fn arb_resources() -> impl Strategy<Value = KernelResources> {
    (1u32..=2048, 0u32..=256, 0u64..(256 * 1024)).prop_map(
        |(threads_per_block, registers_per_thread, shared_mem_per_block)| KernelResources {
            threads_per_block,
            registers_per_thread,
            shared_mem_per_block,
        },
    )
}

fn arb_counters() -> impl Strategy<Value = CostCounters> {
    (
        0u64..1 << 32,
        0u64..1 << 32,
        0u64..1 << 28,
        0u64..1 << 28,
        0u64..1 << 30,
        0u64..1 << 30,
        0u64..1 << 24,
        0u64..1 << 24,
    )
        .prop_map(
            |(
                dram_read_bytes,
                dram_write_bytes,
                shared_bytes,
                l1_bytes,
                flops,
                int_ops,
                atomic_ops,
                rng_draws,
            )| {
                CostCounters {
                    dram_read_bytes,
                    dram_write_bytes,
                    shared_bytes,
                    l1_bytes,
                    flops,
                    int_ops,
                    atomic_ops,
                    rng_draws,
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        failure_persistence: FileFailurePersistence::WithSource("proptest-regressions"),
        ..ProptestConfig::default()
    })]
    /// Occupancy is always a valid fraction, its warp count is consistent
    /// with its block count, and a block that fits never reports zero blocks.
    #[test]
    fn occupancy_is_a_consistent_fraction(arch in arb_arch(), usage in arb_resources()) {
        let limits = ArchLimits::for_arch(arch);
        let occ = theoretical_occupancy(&limits, &usage);
        prop_assert!(occ.fraction >= 0.0 && occ.fraction <= 1.0 + 1e-12);
        let warps_per_block = usage.threads_per_block.div_ceil(limits.warp_size);
        prop_assert_eq!(occ.active_warps_per_sm, occ.blocks_per_sm * warps_per_block);
        prop_assert!(occ.active_warps_per_sm <= limits.max_warps_per_sm);
        prop_assert!(occ.blocks_per_sm <= limits.max_blocks_per_sm);
        let fits = usage.threads_per_block <= limits.max_threads_per_block
            && warps_per_block <= limits.max_warps_per_sm
            && usage.shared_mem_per_block <= limits.shared_mem_per_sm
            && (usage.registers_per_thread as u64 * usage.threads_per_block as u64)
                <= limits.registers_per_sm;
        prop_assert_eq!(occ.blocks_per_sm > 0, fits);
    }

    /// Adding shared memory to a kernel never increases its occupancy.
    #[test]
    fn occupancy_is_monotone_in_shared_memory(
        arch in arb_arch(),
        usage in arb_resources(),
        extra in 0u64..(64 * 1024),
    ) {
        let limits = ArchLimits::for_arch(arch);
        let base = theoretical_occupancy(&limits, &usage);
        let mut heavier = usage;
        heavier.shared_mem_per_block = usage.shared_mem_per_block.saturating_add(extra);
        let worse = theoretical_occupancy(&limits, &heavier);
        prop_assert!(worse.blocks_per_sm <= base.blocks_per_sm);
        prop_assert!(worse.fraction <= base.fraction + 1e-12);
    }

    /// Kernel time is positive, finite, and monotone in the DRAM traffic.
    #[test]
    fn kernel_time_is_positive_and_monotone(
        counters in arb_counters(),
        extra_bytes in 1u64..1 << 30,
        grid in 1usize..1_000_000,
    ) {
        let spec = DeviceSpec::v100_volta();
        let t = kernel_time(&spec, &counters, grid);
        prop_assert!(t.total_s.is_finite() && t.total_s > 0.0);
        prop_assert!(t.total_s + 1e-15 >= t.memory_s.max(t.compute_s).max(t.atomic_s));

        let mut more = counters;
        more.dram_read_bytes += extra_bytes;
        let t_more = kernel_time(&spec, &more, grid);
        prop_assert!(t_more.total_s >= t.total_s);
        prop_assert!(t_more.memory_s >= t.memory_s);
    }

    /// A faster-memory device never runs the same kernel slower.
    #[test]
    fn higher_bandwidth_devices_are_never_slower(counters in arb_counters(), grid in 1usize..100_000) {
        let maxwell = kernel_time(&DeviceSpec::titan_x_maxwell(), &counters, grid);
        let volta = kernel_time(&DeviceSpec::v100_volta(), &counters, grid);
        prop_assert!(volta.memory_s <= maxwell.memory_s + 1e-15);
    }

    /// The §5.2 tree reduce needs exactly ⌈log2 G⌉ rounds and touches every
    /// non-root GPU exactly once as a sender.
    #[test]
    fn reduce_plan_has_log_rounds_and_covers_all_sources(gpus in 1usize..64) {
        let plan = ReducePlan::tree_reduce(gpus);
        let expected_rounds = (gpus as f64).log2().ceil() as usize;
        prop_assert_eq!(plan.num_rounds(), expected_rounds);
        let mut senders: Vec<usize> = plan
            .rounds()
            .iter()
            .flatten()
            .map(|step| step.src)
            .collect();
        senders.sort_unstable();
        senders.dedup();
        prop_assert_eq!(senders.len(), gpus - 1);
        prop_assert!(plan.rounds().iter().flatten().all(|s| s.dst < gpus && s.src < gpus && s.src != s.dst));
    }

    /// Transfer time is monotone in the byte count and strictly dominated by
    /// the slower link for the same payload.
    #[test]
    fn transfer_time_is_monotone_and_ordered(bytes in 0u64..1 << 34, extra in 1u64..1 << 30) {
        let pcie = Interconnect::Pcie3;
        let nvlink = Interconnect::NvLink;
        let ethernet = Interconnect::Ethernet10G;
        prop_assert!(pcie.transfer_time_s(bytes + extra) >= pcie.transfer_time_s(bytes));
        prop_assert!(nvlink.transfer_time_s(bytes) <= pcie.transfer_time_s(bytes) + 1e-15);
        prop_assert!(pcie.transfer_time_s(bytes) <= ethernet.transfer_time_s(bytes) + 1e-15);
    }
}
