//! A CUDA-style theoretical occupancy calculator.
//!
//! §6.1.2 of the paper fixes the sampler layout at 32 warps (= 32 samplers,
//! 1024 threads) per thread block and keeps the p2 index tree and the shared
//! p*(k) array in shared memory.  How many such blocks an SM can host — and
//! therefore how well the memory latency of the gather-heavy sampling kernel
//! is hidden — is decided by the per-SM resource limits of the architecture:
//! resident warps, resident blocks, shared memory, and the register file.
//! This module reproduces the vendor occupancy calculator for the simulated
//! devices so those trade-offs can be analysed and tested without hardware.
//!
//! [`Device::occupancy`](crate::device::DeviceSpec::occupancy) remains the
//! coarse grid-size derate used by the cost model; this calculator answers
//! the *per-block resource* question the paper's "32 samplers per block, K
//! floats of shared memory" design implies.

use crate::device::Arch;
use serde::{Deserialize, Serialize};

/// Per-SM resource limits of one GPU architecture generation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchLimits {
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Maximum resident thread blocks per SM.
    pub max_blocks_per_sm: u32,
    /// Maximum threads per thread block.
    pub max_threads_per_block: u32,
    /// Shared memory per SM, in bytes.
    pub shared_mem_per_sm: u64,
    /// 32-bit registers per SM.
    pub registers_per_sm: u64,
    /// Warp width.
    pub warp_size: u32,
}

impl ArchLimits {
    /// The published per-SM limits of `arch`.
    ///
    /// CPU "architectures" have no SIMT occupancy notion; they are mapped to
    /// a single hardware thread per core (one warp of width 1).
    pub fn for_arch(arch: Arch) -> Self {
        match arch {
            Arch::Kepler => ArchLimits {
                max_warps_per_sm: 64,
                max_blocks_per_sm: 16,
                max_threads_per_block: 1024,
                shared_mem_per_sm: 48 * 1024,
                registers_per_sm: 65_536,
                warp_size: 32,
            },
            Arch::Maxwell => ArchLimits {
                max_warps_per_sm: 64,
                max_blocks_per_sm: 32,
                max_threads_per_block: 1024,
                shared_mem_per_sm: 96 * 1024,
                registers_per_sm: 65_536,
                warp_size: 32,
            },
            Arch::Pascal => ArchLimits {
                max_warps_per_sm: 64,
                max_blocks_per_sm: 32,
                max_threads_per_block: 1024,
                shared_mem_per_sm: 96 * 1024,
                registers_per_sm: 65_536,
                warp_size: 32,
            },
            Arch::Volta => ArchLimits {
                max_warps_per_sm: 64,
                max_blocks_per_sm: 32,
                max_threads_per_block: 1024,
                shared_mem_per_sm: 96 * 1024,
                registers_per_sm: 65_536,
                warp_size: 32,
            },
            Arch::Ampere => ArchLimits {
                max_warps_per_sm: 64,
                max_blocks_per_sm: 32,
                max_threads_per_block: 1024,
                shared_mem_per_sm: 164 * 1024,
                registers_per_sm: 65_536,
                warp_size: 32,
            },
            Arch::Cpu => ArchLimits {
                max_warps_per_sm: 2, // two hardware threads per core
                max_blocks_per_sm: 2,
                max_threads_per_block: 1,
                shared_mem_per_sm: 0,
                registers_per_sm: 0,
                warp_size: 1,
            },
        }
    }
}

/// Per-block resource footprint of one kernel.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KernelResources {
    /// Threads per block (the paper's sampling kernel uses 32 warps = 1024).
    pub threads_per_block: u32,
    /// 32-bit registers per thread.
    pub registers_per_thread: u32,
    /// Static + dynamic shared memory per block, in bytes.
    pub shared_mem_per_block: u64,
}

impl KernelResources {
    /// The footprint of the paper's sampling kernel for `num_topics` topics:
    /// 32 samplers (warps) per block, a shared p*(k) array of `K` floats, the
    /// shared p2 index tree (internal nodes of a `fanout`-ary tree over `K`
    /// leaves), and a register budget typical of a hand-tuned sampling
    /// kernel.
    pub fn sampling_kernel(num_topics: usize, tree_fanout: usize) -> Self {
        assert!(tree_fanout >= 2, "index trees need a fan-out of at least 2");
        let p_star_bytes = num_topics as u64 * 4;
        // Internal nodes of an N-ary tree with K leaves: ceil(K/N) + ceil(K/N²) + ...
        let mut internal = 0u64;
        let mut level = num_topics;
        while level > 1 {
            level = level.div_ceil(tree_fanout);
            internal += level as u64;
        }
        // A 1024-thread block can only keep 64 registers per thread on a
        // 64k-register SM; the memory-bound sampler is compiled to half that
        // so two blocks stay resident and the warp limit, not the register
        // file, decides occupancy (the paper's intent for "32 samplers").
        KernelResources {
            threads_per_block: 32 * 32,
            registers_per_thread: 32,
            shared_mem_per_block: p_star_bytes + internal * 4,
        }
    }
}

/// What stopped more blocks from being resident on an SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OccupancyLimiter {
    /// The per-SM resident-warp limit.
    Warps,
    /// The per-SM resident-block limit.
    Blocks,
    /// Shared-memory capacity.
    SharedMemory,
    /// Register-file capacity.
    Registers,
    /// The block does not fit the device at all (zero resident blocks).
    DoesNotFit,
}

/// The result of the theoretical occupancy calculation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Occupancy {
    /// Resident thread blocks per SM.
    pub blocks_per_sm: u32,
    /// Resident warps per SM.
    pub active_warps_per_sm: u32,
    /// `active_warps_per_sm / max_warps_per_sm`.
    pub fraction: f64,
    /// The resource that limited the block count.
    pub limiter: OccupancyLimiter,
}

/// Compute the theoretical occupancy of a kernel on an architecture.
pub fn theoretical_occupancy(limits: &ArchLimits, usage: &KernelResources) -> Occupancy {
    let warps_per_block = usage.threads_per_block.div_ceil(limits.warp_size.max(1));
    if usage.threads_per_block == 0
        || usage.threads_per_block > limits.max_threads_per_block
        || warps_per_block > limits.max_warps_per_sm
        || usage.shared_mem_per_block > limits.shared_mem_per_sm
    {
        return Occupancy {
            blocks_per_sm: 0,
            active_warps_per_sm: 0,
            fraction: 0.0,
            limiter: OccupancyLimiter::DoesNotFit,
        };
    }

    let by_warps = limits.max_warps_per_sm / warps_per_block;
    let by_blocks = limits.max_blocks_per_sm;
    let by_shared = if usage.shared_mem_per_block == 0 {
        u32::MAX
    } else {
        (limits.shared_mem_per_sm / usage.shared_mem_per_block) as u32
    };
    let regs_per_block = usage.registers_per_thread as u64 * usage.threads_per_block as u64;
    let by_registers = if regs_per_block == 0 {
        u32::MAX
    } else {
        (limits.registers_per_sm / regs_per_block) as u32
    };

    let blocks = by_warps.min(by_blocks).min(by_shared).min(by_registers);
    // On ties, report the more fundamental limit first (warps, then the
    // resident-block cap, then the capacities).
    let limiter = if blocks == 0 {
        OccupancyLimiter::DoesNotFit
    } else if blocks == by_warps {
        OccupancyLimiter::Warps
    } else if blocks == by_blocks {
        OccupancyLimiter::Blocks
    } else if blocks == by_shared {
        OccupancyLimiter::SharedMemory
    } else {
        OccupancyLimiter::Registers
    };

    let active_warps = blocks * warps_per_block;
    Occupancy {
        blocks_per_sm: blocks,
        active_warps_per_sm: active_warps,
        fraction: active_warps as f64 / limits.max_warps_per_sm as f64,
        limiter,
    }
}

/// Occupancy of the paper's sampling kernel (32 warps per block, shared
/// p*(k) + p2 tree of `num_topics` entries) on `arch`.
pub fn sampling_occupancy(arch: Arch, num_topics: usize, tree_fanout: usize) -> Occupancy {
    theoretical_occupancy(
        &ArchLimits::for_arch(arch),
        &KernelResources::sampling_kernel(num_topics, tree_fanout),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configuration_saturates_the_warp_limit() {
        // K = 1024, 32-way tree: ~4 KiB of p*(k) plus a ~132-entry tree.  A
        // 1024-thread block is 32 warps, so two blocks fill the 64-warp SM —
        // shared memory is nowhere near the limit, warps are.
        let occ = sampling_occupancy(Arch::Volta, 1024, 32);
        assert_eq!(occ.blocks_per_sm, 2);
        assert_eq!(occ.active_warps_per_sm, 64);
        assert!((occ.fraction - 1.0).abs() < 1e-12);
        assert_eq!(occ.limiter, OccupancyLimiter::Warps);
    }

    #[test]
    fn huge_topic_counts_become_shared_memory_bound() {
        // K = 16k topics → 64 KiB of p*(k) alone; only one block fits the
        // 96 KiB Volta SM and shared memory is the limiter.
        let occ = sampling_occupancy(Arch::Volta, 16 * 1024, 32);
        assert_eq!(occ.blocks_per_sm, 1);
        assert_eq!(occ.limiter, OccupancyLimiter::SharedMemory);
        assert!(occ.fraction < 1.0);

        // And at K = 32k the block no longer fits at all on Kepler's 48 KiB.
        let kepler = sampling_occupancy(Arch::Kepler, 32 * 1024, 32);
        assert_eq!(kepler.blocks_per_sm, 0);
        assert_eq!(kepler.limiter, OccupancyLimiter::DoesNotFit);
    }

    #[test]
    fn ampere_fits_more_shared_memory_bound_blocks_than_volta() {
        let volta = sampling_occupancy(Arch::Volta, 8 * 1024, 32);
        let ampere = sampling_occupancy(Arch::Ampere, 8 * 1024, 32);
        assert!(ampere.blocks_per_sm >= volta.blocks_per_sm);
        assert!(ampere.fraction >= volta.fraction);
    }

    #[test]
    fn register_pressure_limits_small_blocks() {
        let limits = ArchLimits::for_arch(Arch::Pascal);
        let usage = KernelResources {
            threads_per_block: 256,
            registers_per_thread: 255,
            shared_mem_per_block: 0,
        };
        let occ = theoretical_occupancy(&limits, &usage);
        assert_eq!(occ.limiter, OccupancyLimiter::Registers);
        assert!(occ.blocks_per_sm < limits.max_blocks_per_sm);
        assert!(occ.fraction < 1.0);
    }

    #[test]
    fn tiny_blocks_hit_the_resident_block_limit() {
        let limits = ArchLimits::for_arch(Arch::Volta);
        let usage = KernelResources {
            threads_per_block: 32,
            registers_per_thread: 16,
            shared_mem_per_block: 16,
        };
        let occ = theoretical_occupancy(&limits, &usage);
        assert_eq!(occ.limiter, OccupancyLimiter::Blocks);
        assert_eq!(occ.blocks_per_sm, limits.max_blocks_per_sm);
        // 32 blocks of one warp each: half the 64-warp capacity.
        assert!((occ.fraction - 0.5).abs() < 1e-12);
    }

    #[test]
    fn oversized_blocks_do_not_fit() {
        let limits = ArchLimits::for_arch(Arch::Maxwell);
        let usage = KernelResources {
            threads_per_block: 2048,
            registers_per_thread: 16,
            shared_mem_per_block: 0,
        };
        let occ = theoretical_occupancy(&limits, &usage);
        assert_eq!(occ.blocks_per_sm, 0);
        assert_eq!(occ.limiter, OccupancyLimiter::DoesNotFit);
        assert_eq!(occ.fraction, 0.0);
    }

    #[test]
    fn binary_trees_need_more_shared_memory_than_warp_wide_trees() {
        let wide = KernelResources::sampling_kernel(4096, 32);
        let binary = KernelResources::sampling_kernel(4096, 2);
        assert!(binary.shared_mem_per_block > wide.shared_mem_per_block);
    }

    #[test]
    fn cpu_limits_are_degenerate_but_total() {
        let occ = theoretical_occupancy(
            &ArchLimits::for_arch(Arch::Cpu),
            &KernelResources {
                threads_per_block: 1,
                registers_per_thread: 0,
                shared_mem_per_block: 0,
            },
        );
        assert!(occ.blocks_per_sm >= 1);
        assert!(occ.fraction > 0.0);
    }

    #[test]
    #[should_panic(expected = "fan-out")]
    fn sampling_kernel_rejects_degenerate_fanout() {
        let _ = KernelResources::sampling_kernel(1024, 1);
    }
}
