//! Energy estimation for simulated kernels.
//!
//! The paper evaluates throughput only, but "cost of large-scale LDA
//! training" (§1) is ultimately a joules question in production, and the same
//! operation counters the roofline model consumes are exactly what an
//! energy-per-operation model needs.  The model follows the usual
//! architecture-evaluation convention:
//!
//! ```text
//! E = dram_bytes · e_dram + on_chip_bytes · e_onchip
//!   + flops · e_flop + atomics · e_atomic + t · P_static
//! ```
//!
//! with per-architecture coefficients (pJ/byte, pJ/flop) taken from the
//! public literature on GPU energy breakdowns.  Absolute joules are rough;
//! what the model preserves is the *relative* picture: LDA sampling energy is
//! dominated by DRAM traffic, and newer HBM parts do more work per joule.

use crate::cost::{CostCounters, KernelTime};
use crate::device::{Arch, DeviceSpec};
use serde::{Deserialize, Serialize};

/// Per-operation energy coefficients for one device.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Picojoules per byte of off-chip (DRAM/HBM) traffic.
    pub pj_per_dram_byte: f64,
    /// Picojoules per byte served on-chip (shared memory / L1).
    pub pj_per_onchip_byte: f64,
    /// Picojoules per single-precision floating-point operation.
    pub pj_per_flop: f64,
    /// Picojoules per integer ALU operation.
    pub pj_per_int_op: f64,
    /// Picojoules per global atomic operation.
    pub pj_per_atomic: f64,
    /// Static (leakage + idle) power in watts, charged per second of
    /// simulated kernel time.
    pub static_power_w: f64,
}

impl EnergyModel {
    /// Coefficients for a device spec, selected by architecture generation.
    pub fn for_spec(spec: &DeviceSpec) -> Self {
        match spec.arch {
            // GDDR5-era GPUs: expensive DRAM accesses, higher static power
            // per unit of work.
            Arch::Kepler => EnergyModel {
                pj_per_dram_byte: 24.0,
                pj_per_onchip_byte: 1.4,
                pj_per_flop: 12.0,
                pj_per_int_op: 3.0,
                pj_per_atomic: 60.0,
                static_power_w: 80.0,
            },
            Arch::Maxwell => EnergyModel {
                pj_per_dram_byte: 20.0,
                pj_per_onchip_byte: 1.2,
                pj_per_flop: 8.0,
                pj_per_int_op: 2.2,
                pj_per_atomic: 50.0,
                static_power_w: 70.0,
            },
            Arch::Pascal => EnergyModel {
                pj_per_dram_byte: 16.0,
                pj_per_onchip_byte: 1.0,
                pj_per_flop: 5.5,
                pj_per_int_op: 1.8,
                pj_per_atomic: 40.0,
                static_power_w: 65.0,
            },
            // HBM2 parts: cheaper bytes, cheaper flops.
            Arch::Volta => EnergyModel {
                pj_per_dram_byte: 12.0,
                pj_per_onchip_byte: 0.8,
                pj_per_flop: 3.5,
                pj_per_int_op: 1.2,
                pj_per_atomic: 30.0,
                static_power_w: 60.0,
            },
            Arch::Ampere => EnergyModel {
                pj_per_dram_byte: 9.0,
                pj_per_onchip_byte: 0.6,
                pj_per_flop: 2.5,
                pj_per_int_op: 0.9,
                pj_per_atomic: 22.0,
                static_power_w: 55.0,
            },
            // Server CPUs: cheap cache hits, expensive per-op energy, high
            // package power.
            Arch::Cpu => EnergyModel {
                pj_per_dram_byte: 30.0,
                pj_per_onchip_byte: 2.5,
                pj_per_flop: 20.0,
                pj_per_int_op: 6.0,
                pj_per_atomic: 120.0,
                static_power_w: 90.0,
            },
        }
    }

    /// Dynamic (per-operation) energy of a kernel in joules.
    pub fn dynamic_energy_j(&self, counters: &CostCounters) -> f64 {
        let pj = counters.dram_bytes() as f64 * self.pj_per_dram_byte
            + (counters.shared_bytes + counters.l1_bytes) as f64 * self.pj_per_onchip_byte
            + counters.flops as f64 * self.pj_per_flop
            + counters.int_ops as f64 * self.pj_per_int_op
            + counters.atomic_ops as f64 * self.pj_per_atomic
            // RNG draws are a handful of integer operations each.
            + counters.rng_draws as f64 * 4.0 * self.pj_per_int_op;
        pj * 1e-12
    }

    /// Total kernel energy: dynamic energy plus static power over the kernel
    /// duration.
    pub fn kernel_energy_j(&self, counters: &CostCounters, time: &KernelTime) -> f64 {
        self.dynamic_energy_j(counters) + self.static_power_w * time.total_s
    }
}

/// Accumulated energy of one training run (or one device's share of it).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyReport {
    /// Total energy in joules.
    pub total_j: f64,
    /// Dynamic share of the total (joules).
    pub dynamic_j: f64,
    /// Simulated time the static power was integrated over (seconds).
    pub active_time_s: f64,
    /// Tokens processed, for the tokens-per-joule figure of merit.
    pub tokens: u64,
}

impl EnergyReport {
    /// Add one kernel's contribution.
    pub fn add_kernel(
        &mut self,
        model: &EnergyModel,
        counters: &CostCounters,
        time: &KernelTime,
        tokens: u64,
    ) {
        let dynamic = model.dynamic_energy_j(counters);
        self.dynamic_j += dynamic;
        self.total_j += dynamic + model.static_power_w * time.total_s;
        self.active_time_s += time.total_s;
        self.tokens += tokens;
    }

    /// Merge another report (e.g. from another device).
    pub fn merge(&mut self, other: &EnergyReport) {
        self.total_j += other.total_j;
        self.dynamic_j += other.dynamic_j;
        self.active_time_s += other.active_time_s;
        self.tokens += other.tokens;
    }

    /// Tokens sampled per joule — the energy-efficiency figure of merit.
    pub fn tokens_per_joule(&self) -> f64 {
        if self.total_j <= 0.0 {
            0.0
        } else {
            self.tokens as f64 / self.total_j
        }
    }

    /// Average power over the active time, in watts.
    pub fn average_power_w(&self) -> f64 {
        if self.active_time_s <= 0.0 {
            0.0
        } else {
            self.total_j / self.active_time_s
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::kernel_time;

    /// A counter profile shaped like one LDA sampling pass: memory dominated
    /// (§3.1: 0.27 Flops/Byte).
    fn lda_like_counters() -> CostCounters {
        CostCounters {
            dram_read_bytes: 90_000_000,
            dram_write_bytes: 10_000_000,
            shared_bytes: 40_000_000,
            l1_bytes: 5_000_000,
            flops: 27_000_000,
            int_ops: 20_000_000,
            atomic_ops: 1_000_000,
            rng_draws: 2_000_000,
        }
    }

    #[test]
    fn dram_traffic_dominates_lda_energy() {
        let model = EnergyModel::for_spec(&DeviceSpec::v100_volta());
        let c = lda_like_counters();
        let dram_only = CostCounters {
            dram_read_bytes: c.dram_read_bytes,
            dram_write_bytes: c.dram_write_bytes,
            ..CostCounters::zero()
        };
        let total = model.dynamic_energy_j(&c);
        let dram = model.dynamic_energy_j(&dram_only);
        assert!(dram / total > 0.5, "DRAM share {:.2}", dram / total);
    }

    #[test]
    fn newer_architectures_do_more_work_per_joule() {
        let c = lda_like_counters();
        let seq = [
            DeviceSpec::titan_x_maxwell(),
            DeviceSpec::titan_xp_pascal(),
            DeviceSpec::v100_volta(),
            DeviceSpec::a100_ampere(),
        ];
        let energies: Vec<f64> = seq
            .iter()
            .map(|s| {
                let t = kernel_time(s, &c, 100_000);
                EnergyModel::for_spec(s).kernel_energy_j(&c, &t)
            })
            .collect();
        for pair in energies.windows(2) {
            assert!(pair[1] < pair[0], "energy should drop: {energies:?}");
        }
    }

    #[test]
    fn report_accumulates_and_merges() {
        let spec = DeviceSpec::v100_volta();
        let model = EnergyModel::for_spec(&spec);
        let c = lda_like_counters();
        let t = kernel_time(&spec, &c, 100_000);
        let mut a = EnergyReport::default();
        a.add_kernel(&model, &c, &t, 1_000_000);
        a.add_kernel(&model, &c, &t, 1_000_000);
        let mut b = EnergyReport::default();
        b.add_kernel(&model, &c, &t, 500_000);
        a.merge(&b);
        assert_eq!(a.tokens, 2_500_000);
        assert!(a.total_j > a.dynamic_j);
        assert!(a.tokens_per_joule() > 0.0);
        assert!(a.average_power_w() > 0.0);
        // Static power should be a visible but not dominant share for a
        // bandwidth-saturating kernel.
        let static_share = (a.total_j - a.dynamic_j) / a.total_j;
        assert!(
            static_share > 0.0 && static_share < 0.9,
            "share {static_share}"
        );
    }

    #[test]
    fn empty_report_is_safe() {
        let r = EnergyReport::default();
        assert_eq!(r.tokens_per_joule(), 0.0);
        assert_eq!(r.average_power_w(), 0.0);
    }

    #[test]
    fn cpu_energy_per_token_exceeds_gpu() {
        let c = lda_like_counters();
        let cpu_spec = DeviceSpec::xeon_e5_2690v4();
        let gpu_spec = DeviceSpec::v100_volta();
        let cpu_t = kernel_time(&cpu_spec, &c, 100_000);
        let gpu_t = kernel_time(&gpu_spec, &c, 100_000);
        let cpu_e = EnergyModel::for_spec(&cpu_spec).kernel_energy_j(&c, &cpu_t);
        let gpu_e = EnergyModel::for_spec(&gpu_spec).kernel_energy_j(&c, &gpu_t);
        assert!(cpu_e > gpu_e, "cpu {cpu_e} vs gpu {gpu_e}");
    }
}
