//! Operation counting and the roofline cost model.
//!
//! The paper's §3 characterisation shows LDA sampling performs roughly 0.27
//! floating-point operations per byte of memory traffic, far below the
//! FLOPS/bandwidth ratio of any evaluated processor, so execution time is
//! governed by memory traffic.  The simulator therefore converts the counters
//! accumulated by each kernel into time with a roofline model
//! (`time = max(memory term, compute term, atomic term)`), adjusted for
//! occupancy and a fixed kernel-launch overhead.

use crate::device::DeviceSpec;
use serde::{Deserialize, Serialize};

/// Counters accumulated by a simulated thread block (and summed per kernel).
///
/// All byte counters refer to *off-chip* (DRAM) traffic unless stated
/// otherwise.  Shared-memory and L1 traffic are tracked separately because
/// they are served on-chip and only contribute a (much cheaper) bandwidth
/// term of their own.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostCounters {
    /// Bytes read from device DRAM.
    pub dram_read_bytes: u64,
    /// Bytes written to device DRAM.
    pub dram_write_bytes: u64,
    /// Bytes served by the software-managed shared memory.
    pub shared_bytes: u64,
    /// Bytes served by the (hardware) L1 cache.
    pub l1_bytes: u64,
    /// Single-precision floating point operations.
    pub flops: u64,
    /// Integer ALU operations.
    pub int_ops: u64,
    /// Global-memory atomic operations.
    pub atomic_ops: u64,
    /// Random numbers drawn (each costs a few ALU operations).
    pub rng_draws: u64,
}

impl CostCounters {
    /// A zeroed counter set.
    pub fn zero() -> Self {
        Self::default()
    }

    /// Total off-chip traffic in bytes.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_read_bytes + self.dram_write_bytes
    }

    /// The `Flops/Byte` arithmetic-intensity metric of §3 (Eq. 3).
    pub fn flops_per_byte(&self) -> f64 {
        if self.dram_bytes() == 0 {
            return 0.0;
        }
        self.flops as f64 / self.dram_bytes() as f64
    }

    /// Element-wise accumulation.
    pub fn add(&mut self, other: &CostCounters) {
        self.dram_read_bytes += other.dram_read_bytes;
        self.dram_write_bytes += other.dram_write_bytes;
        self.shared_bytes += other.shared_bytes;
        self.l1_bytes += other.l1_bytes;
        self.flops += other.flops;
        self.int_ops += other.int_ops;
        self.atomic_ops += other.atomic_ops;
        self.rng_draws += other.rng_draws;
    }
}

impl std::ops::AddAssign for CostCounters {
    fn add_assign(&mut self, rhs: Self) {
        self.add(&rhs);
    }
}

impl std::iter::Sum for CostCounters {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        let mut acc = CostCounters::zero();
        for c in iter {
            acc.add(&c);
        }
        acc
    }
}

/// The simulated execution time of one kernel launch, broken into the
/// roofline components (useful for diagnostics and for the ablation benches).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct KernelTime {
    /// Off-chip memory time in seconds.
    pub memory_s: f64,
    /// On-chip (shared + L1) memory time in seconds.
    pub on_chip_s: f64,
    /// ALU/FPU time in seconds.
    pub compute_s: f64,
    /// Atomic-operation time in seconds.
    pub atomic_s: f64,
    /// Fixed launch overhead in seconds.
    pub launch_s: f64,
    /// Occupancy derate applied (1.0 = fully occupied device).
    pub occupancy: f64,
    /// Final simulated wall-clock time of the launch in seconds.
    pub total_s: f64,
}

impl KernelTime {
    /// Which roofline term dominated this launch.
    pub fn bound_by(&self) -> Bound {
        let m = self.memory_s.max(self.on_chip_s);
        if m >= self.compute_s && m >= self.atomic_s {
            Bound::Memory
        } else if self.compute_s >= self.atomic_s {
            Bound::Compute
        } else {
            Bound::Atomic
        }
    }
}

/// The resource that bounds a kernel under the roofline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Bound {
    /// Off-chip memory bandwidth bound (the common case for LDA, §3).
    Memory,
    /// ALU/FPU bound.
    Compute,
    /// Atomic-throughput bound.
    Atomic,
}

/// Convert accumulated counters into simulated time on a device.
///
/// `grid_blocks` is the number of thread blocks launched; small grids cannot
/// occupy all SMs, which the occupancy derate captures (this is what makes a
/// single long word assigned to a single block a "long-tail" problem, §6.1.2).
pub fn kernel_time(spec: &DeviceSpec, counters: &CostCounters, grid_blocks: usize) -> KernelTime {
    let occupancy = spec.occupancy(grid_blocks);

    let eff_bw = spec.effective_bandwidth_bytes_per_s();
    let memory_s = counters.dram_bytes() as f64 / eff_bw / occupancy;

    let on_chip_bw = spec.on_chip_bandwidth_bytes_per_s();
    let on_chip_s = (counters.shared_bytes + counters.l1_bytes) as f64 / on_chip_bw / occupancy;

    let alu_ops = counters.flops + counters.int_ops + counters.rng_draws * 8;
    let compute_s = alu_ops as f64 / (spec.peak_gflops * 1e9) / occupancy;

    let atomic_s = counters.atomic_ops as f64 / (spec.atomic_gops_per_s * 1e9) / occupancy;

    let launch_s = spec.kernel_launch_overhead_s;
    let total_s = memory_s.max(on_chip_s).max(compute_s).max(atomic_s) + launch_s;

    KernelTime {
        memory_s,
        on_chip_s,
        compute_s,
        atomic_s,
        launch_s,
        occupancy,
        total_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;

    fn volta() -> DeviceSpec {
        DeviceSpec::v100_volta()
    }

    #[test]
    fn counters_accumulate() {
        let mut a = CostCounters {
            dram_read_bytes: 10,
            flops: 5,
            ..CostCounters::zero()
        };
        let b = CostCounters {
            dram_read_bytes: 2,
            dram_write_bytes: 3,
            atomic_ops: 1,
            ..CostCounters::zero()
        };
        a += b;
        assert_eq!(a.dram_read_bytes, 12);
        assert_eq!(a.dram_bytes(), 15);
        assert_eq!(a.atomic_ops, 1);
    }

    #[test]
    fn flops_per_byte_matches_definition() {
        let c = CostCounters {
            dram_read_bytes: 80,
            dram_write_bytes: 20,
            flops: 27,
            ..CostCounters::zero()
        };
        assert!((c.flops_per_byte() - 0.27).abs() < 1e-12);
        assert_eq!(CostCounters::zero().flops_per_byte(), 0.0);
    }

    #[test]
    fn memory_bound_kernel_time_scales_with_bytes() {
        let spec = volta();
        let small = CostCounters {
            dram_read_bytes: 1 << 20,
            ..CostCounters::zero()
        };
        let large = CostCounters {
            dram_read_bytes: 1 << 24,
            ..CostCounters::zero()
        };
        let grid = 10_000;
        let t_small = kernel_time(&spec, &small, grid);
        let t_large = kernel_time(&spec, &large, grid);
        assert_eq!(t_small.bound_by(), Bound::Memory);
        let ratio = (t_large.total_s - t_large.launch_s) / (t_small.total_s - t_small.launch_s);
        assert!((ratio - 16.0).abs() < 0.5, "ratio {ratio}");
    }

    #[test]
    fn low_intensity_workload_is_memory_bound_on_all_presets() {
        // 0.27 flops/byte, the paper's LDA characterisation.
        let c = CostCounters {
            dram_read_bytes: 1_000_000,
            flops: 270_000,
            ..CostCounters::zero()
        };
        for spec in [
            DeviceSpec::titan_x_maxwell(),
            DeviceSpec::titan_xp_pascal(),
            DeviceSpec::v100_volta(),
            DeviceSpec::xeon_e5_2690v4(),
        ] {
            let t = kernel_time(&spec, &c, 100_000);
            assert_eq!(
                t.bound_by(),
                Bound::Memory,
                "{} not memory bound",
                spec.name
            );
        }
    }

    #[test]
    fn faster_memory_means_faster_kernels() {
        let c = CostCounters {
            dram_read_bytes: 1 << 26,
            flops: 1 << 22,
            ..CostCounters::zero()
        };
        let grid = 50_000;
        let t_maxwell = kernel_time(&DeviceSpec::titan_x_maxwell(), &c, grid).total_s;
        let t_pascal = kernel_time(&DeviceSpec::titan_xp_pascal(), &c, grid).total_s;
        let t_volta = kernel_time(&DeviceSpec::v100_volta(), &c, grid).total_s;
        assert!(t_volta < t_pascal && t_pascal < t_maxwell);
    }

    #[test]
    fn tiny_grids_are_penalised_by_occupancy() {
        let spec = volta();
        let c = CostCounters {
            dram_read_bytes: 1 << 22,
            ..CostCounters::zero()
        };
        let t_full = kernel_time(&spec, &c, 100_000);
        let t_tiny = kernel_time(&spec, &c, 4);
        assert!(t_tiny.total_s > t_full.total_s);
        assert!(t_tiny.occupancy < 0.2);
        assert!((t_full.occupancy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn atomic_heavy_kernel_is_atomic_bound() {
        let spec = volta();
        let c = CostCounters {
            dram_read_bytes: 1024,
            atomic_ops: 1 << 28,
            ..CostCounters::zero()
        };
        let t = kernel_time(&spec, &c, 100_000);
        assert_eq!(t.bound_by(), Bound::Atomic);
    }
}
