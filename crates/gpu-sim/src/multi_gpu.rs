//! A single-machine multi-GPU system (Figure 2 / Figure 3).
//!
//! The system owns `G` [`Device`] instances connected to the host (and to
//! each other) by one [`Interconnect`].  The trainer drives the devices in
//! parallel (one rayon task per device, mirroring "for i ∈ [0, C] do in
//! parallel" of Algorithm 1) and asks the system for the simulated cost of
//! host↔device transfers and φ synchronizations.

use crate::cluster::ClusterTopology;
use crate::collective;
use crate::device::{Device, DeviceSpec};
use crate::transfer::Interconnect;
use std::sync::Arc;

/// `G` GPUs plus their interconnect — optionally grouped into the nodes of a
/// simulated cluster (see [`crate::cluster`]).
#[derive(Debug)]
pub struct MultiGpuSystem {
    devices: Vec<Arc<Device>>,
    interconnect: Interconnect,
    /// `Some` when the devices are spread over a multi-node cluster; the
    /// `interconnect` field is then the *intra*-node link and the topology
    /// carries the inter-node fabric.  Grouping affects costing only — the
    /// devices (ids, specs, seeds) are identical to the flat system's.
    cluster: Option<ClusterTopology>,
}

impl MultiGpuSystem {
    /// Build a homogeneous system of `num_gpus` devices of the given spec.
    ///
    /// Each device gets a distinct RNG stream derived from `seed`.
    pub fn homogeneous(
        spec: DeviceSpec,
        num_gpus: usize,
        seed: u64,
        interconnect: Interconnect,
    ) -> Self {
        assert!(num_gpus >= 1, "a system needs at least one GPU");
        let devices = (0..num_gpus)
            .map(|i| {
                Arc::new(Device::new(
                    i,
                    spec.clone(),
                    seed.wrapping_add(i as u64 * 0x9E37_79B9),
                ))
            })
            .collect();
        MultiGpuSystem {
            devices,
            interconnect,
            cluster: None,
        }
    }

    /// Build a clustered system: `topology.total_gpus()` devices numbered
    /// node-major, joined within a node by `intra_link` and across nodes by
    /// the topology's fabric.  Device ids and seeds are **identical** to the
    /// flat [`MultiGpuSystem::homogeneous`] system of the same total GPU
    /// count, so regrouping GPUs into nodes never perturbs any RNG stream.
    pub fn clustered(
        spec: DeviceSpec,
        topology: ClusterTopology,
        seed: u64,
        intra_link: Interconnect,
    ) -> Self {
        let mut system = Self::homogeneous(spec, topology.total_gpus(), seed, intra_link);
        system.cluster = Some(topology);
        system
    }

    /// Assemble a system from existing (possibly shared) devices — the
    /// per-node view constructor of [`crate::cluster::ClusterSystem`].
    pub(crate) fn from_parts(
        devices: Vec<Arc<Device>>,
        interconnect: Interconnect,
        cluster: Option<ClusterTopology>,
    ) -> Self {
        assert!(!devices.is_empty(), "a system needs at least one GPU");
        MultiGpuSystem {
            devices,
            interconnect,
            cluster,
        }
    }

    /// Single-GPU convenience constructor over PCIe 3.0.
    pub fn single(spec: DeviceSpec, seed: u64) -> Self {
        Self::homogeneous(spec, 1, seed, Interconnect::Pcie3)
    }

    /// Number of GPUs `G`.
    pub fn num_gpus(&self) -> usize {
        self.devices.len()
    }

    /// Device `i`.
    pub fn device(&self, i: usize) -> &Arc<Device> {
        &self.devices[i]
    }

    /// All devices.
    pub fn devices(&self) -> &[Arc<Device>] {
        &self.devices
    }

    /// The GPU↔GPU / CPU↔GPU interconnect (the *intra*-node link when the
    /// system is clustered).
    pub fn interconnect(&self) -> Interconnect {
        self.interconnect
    }

    /// The cluster topology, when this system's devices are spread over
    /// multiple nodes (see [`MultiGpuSystem::clustered`]).
    pub fn cluster(&self) -> Option<ClusterTopology> {
        self.cluster
    }

    /// Number of cluster nodes the devices are spread over (1 for a plain
    /// single-node system).
    pub fn num_nodes(&self) -> usize {
        self.cluster.map_or(1, |c| c.num_nodes)
    }

    /// Simulated time of one host→device (or device→host) copy of `bytes`.
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        self.interconnect.transfer_time_s(bytes)
    }

    /// Simulated time of a full *flat* φ synchronization (tree reduce +
    /// broadcast, §5.2) when every replica is `bytes` large.  The
    /// element-wise addition runs at the receiving GPU's effective memory
    /// bandwidth.  On a multi-node cluster this is the topology-oblivious
    /// baseline: every tree round crosses the slow fabric (the hierarchical
    /// alternative is [`MultiGpuSystem::phi_hier_sync_time_s`]).
    pub fn phi_sync_time_s(&self, bytes: u64) -> f64 {
        let add_bw = self.add_bandwidth_bytes_per_s();
        match self.cluster {
            Some(topo) if topo.num_nodes > 1 => topo.flat_sync_time_s(bytes, add_bw),
            _ => collective::sync_time_s(self.num_gpus(), bytes, self.interconnect, add_bw),
        }
    }

    /// Simulated time of the *hierarchical* φ synchronization of one `bytes`
    /// replica: per-node tree reduce over the intra-node link → inter-node
    /// leader exchange over the fabric → per-node broadcast back.  On a
    /// single-node system this equals [`MultiGpuSystem::phi_sync_time_s`]
    /// exactly.
    pub fn phi_hier_sync_time_s(&self, bytes: u64) -> f64 {
        self.phi_hier_local_time_s(bytes) + self.phi_inter_exchange_time_s(bytes)
    }

    /// The intra-node half of the hierarchical sync: per-node reduce +
    /// broadcast over the local link, all nodes concurrent.  Equals the full
    /// [`MultiGpuSystem::phi_sync_time_s`] on a single-node system.
    pub fn phi_hier_local_time_s(&self, bytes: u64) -> f64 {
        let add_bw = self.add_bandwidth_bytes_per_s();
        match self.cluster {
            Some(topo) if topo.num_nodes > 1 => {
                topo.hier_local_time_s(bytes, self.interconnect, add_bw)
            }
            _ => collective::sync_time_s(self.num_gpus(), bytes, self.interconnect, add_bw),
        }
    }

    /// The inter-node half of the hierarchical sync: exchange of `bytes` of
    /// already-reduced shard data among the node leaders over the fabric.
    /// Zero on a single-node system.
    pub fn phi_inter_exchange_time_s(&self, bytes: u64) -> f64 {
        match self.cluster {
            Some(topo) if topo.num_nodes > 1 => {
                topo.inter_exchange_time_s(bytes, self.add_bandwidth_bytes_per_s())
            }
            _ => 0.0,
        }
    }

    /// Bytes one `bytes`-sized replica sync moves on each interconnect tier,
    /// as `(intra_node_bytes, inter_node_bytes)`, for the flat
    /// (`hierarchical = false`) or hierarchical schedule.  On a single-node
    /// system all traffic is intra-node either way.
    pub fn phi_sync_tier_bytes(&self, bytes: u64, hierarchical: bool) -> (u64, u64) {
        match self.cluster {
            Some(topo) if topo.num_nodes > 1 => {
                if hierarchical {
                    (topo.hier_intra_bytes(bytes), topo.hier_inter_bytes(bytes))
                } else {
                    (0, topo.flat_fabric_bytes(bytes))
                }
            }
            _ => {
                let g = self.num_gpus() as u64;
                (2 * g.saturating_sub(1) * bytes, 0)
            }
        }
    }

    /// The bandwidth the element-wise reduce additions run at (the first
    /// device's effective memory bandwidth — systems are homogeneous).
    fn add_bandwidth_bytes_per_s(&self) -> f64 {
        self.devices[0].spec.effective_bandwidth_bytes_per_s()
    }

    /// The slowest device's simulated busy time — the per-iteration wall
    /// clock of the data-parallel section (all devices run concurrently).
    pub fn max_busy_time_s(&self) -> f64 {
        self.devices
            .iter()
            .map(|d| d.busy_time_s())
            .fold(0.0, f64::max)
    }

    /// Aggregate per-kernel breakdown across all devices (Table 5 is reported
    /// per platform, i.e. over the whole system).
    pub fn aggregate_breakdown(&self) -> Vec<(String, f64)> {
        let agg = crate::profile::Profiler::new();
        for d in &self.devices {
            agg.merge(&d.profiler);
        }
        agg.percentages()
    }

    /// Reset every device's simulated clock and profile.
    pub fn reset_time(&self) {
        for d in &self.devices {
            d.reset_time();
        }
    }

    /// A fresh system with the same device specs, per-device seeds and
    /// interconnect, but zeroed clocks, profiles and memory trackers.
    ///
    /// Streaming sessions rebuild their trainer whenever the corpus
    /// membership changes (ingest/retire); each rebuild registers its chunk
    /// working set with the device memory trackers again, so it must start
    /// from a system without the previous build's allocations.  Because the
    /// seeds are copied verbatim, a rebuilt trainer draws from exactly the
    /// same per-device RNG streams as the original.
    pub fn fresh_like(&self) -> MultiGpuSystem {
        MultiGpuSystem {
            devices: self
                .devices
                .iter()
                .map(|d| Arc::new(Device::new(d.id, d.spec.clone(), d.seed)))
                .collect(),
            interconnect: self.interconnect,
            cluster: self.cluster,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{BlockCtx, LaunchConfig};

    #[test]
    fn homogeneous_system_has_distinct_seeds() {
        let sys =
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 4, 7, Interconnect::Pcie3);
        assert_eq!(sys.num_gpus(), 4);
        let seeds: Vec<u64> = sys.devices().iter().map(|d| d.seed).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), 4);
    }

    #[test]
    fn phi_sync_time_grows_with_gpu_count_but_sublinearly() {
        let bytes = 256 << 20;
        let mk = |g| {
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), g, 0, Interconnect::Pcie3)
                .phi_sync_time_s(bytes)
        };
        assert_eq!(mk(1), 0.0);
        let t2 = mk(2);
        let t4 = mk(4);
        let t8 = mk(8);
        assert!(t2 > 0.0);
        assert!(t4 > t2 && t8 > t4);
        // Tree synchronization: 8 GPUs cost 3× the rounds of 2 GPUs, not 7×.
        assert!(t8 < 4.0 * t2);
    }

    #[test]
    fn max_busy_time_tracks_the_slowest_device() {
        let sys = MultiGpuSystem::homogeneous(DeviceSpec::v100_volta(), 2, 1, Interconnect::Pcie3);
        sys.device(0).record_time("sampling", 1.0);
        sys.device(1).record_time("sampling", 2.5);
        assert_eq!(sys.max_busy_time_s(), 2.5);
        sys.reset_time();
        assert_eq!(sys.max_busy_time_s(), 0.0);
    }

    #[test]
    fn aggregate_breakdown_merges_devices() {
        let sys = MultiGpuSystem::homogeneous(DeviceSpec::v100_volta(), 2, 1, Interconnect::Pcie3);
        let kernel = |_b: usize, ctx: &mut BlockCtx| ctx.read_global(1 << 20);
        sys.device(0)
            .launch("sampling", LaunchConfig::new(1000), &kernel);
        sys.device(1)
            .launch("sampling", LaunchConfig::new(1000), &kernel);
        sys.device(1)
            .launch("update_phi", LaunchConfig::new(1000), &kernel);
        let breakdown = sys.aggregate_breakdown();
        assert_eq!(breakdown[0].0, "sampling");
        assert!(breakdown[0].1 > 60.0);
    }

    #[test]
    #[should_panic]
    fn zero_gpu_system_is_rejected() {
        let _ = MultiGpuSystem::homogeneous(DeviceSpec::v100_volta(), 0, 0, Interconnect::Pcie3);
    }

    #[test]
    fn clustered_system_costs_hierarchical_sync_below_flat() {
        let topo = ClusterTopology::new(2, 2, Interconnect::Ethernet10G);
        let sys =
            MultiGpuSystem::clustered(DeviceSpec::titan_xp_pascal(), topo, 7, Interconnect::Pcie3);
        assert_eq!(sys.num_gpus(), 4);
        assert_eq!(sys.num_nodes(), 2);
        let bytes = 4 << 20;
        let flat = sys.phi_sync_time_s(bytes);
        let hier = sys.phi_hier_sync_time_s(bytes);
        assert!(hier < flat, "hier {hier} should beat flat {flat}");
        // Tier accounting: flat puts everything on the fabric, hierarchical
        // pushes the G-fold reduction onto the local links.
        assert_eq!(sys.phi_sync_tier_bytes(bytes, false), (0, 6 * bytes));
        assert_eq!(sys.phi_sync_tier_bytes(bytes, true), (4 * bytes, 2 * bytes));
        // A single-node system reports the same cost through both paths and
        // keeps all bytes intra-node.
        let single =
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 4, 7, Interconnect::Pcie3);
        assert_eq!(
            single.phi_sync_time_s(bytes),
            single.phi_hier_sync_time_s(bytes)
        );
        assert_eq!(single.phi_sync_tier_bytes(bytes, true), (6 * bytes, 0));
        assert_eq!(single.phi_inter_exchange_time_s(bytes), 0.0);
        // fresh_like preserves the cluster grouping (streaming rebuilds).
        assert_eq!(sys.fresh_like().cluster(), Some(topo));
    }
}
