//! Device-memory and shared-memory capacity tracking.
//!
//! GPUs have an order of magnitude less memory than the host (§3.2: "A
//! typical GPU has only 12GB–16GB memory"), which is what forces the
//! `M > 1` streaming schedule of Algorithm 1.  The simulator does not copy
//! token data into a separate address space — that would only burn host RAM —
//! but it *does* enforce the capacity constraint so that the scheduler makes
//! the same `M` decision the real system would.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Error returned when an allocation does not fit in device memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OutOfMemory {
    /// Bytes requested by the failing allocation.
    pub requested: u64,
    /// Bytes free at the time of the request.
    pub available: u64,
    /// Total device capacity.
    pub capacity: u64,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "device out of memory: requested {} bytes, {} free of {} total",
            self.requested, self.available, self.capacity
        )
    }
}

impl std::error::Error for OutOfMemory {}

/// A named-allocation tracker for one device's global memory.
#[derive(Debug)]
pub struct DeviceMemory {
    capacity: u64,
    inner: Mutex<HashMap<String, u64>>,
}

impl DeviceMemory {
    /// A tracker for a device with the given capacity in bytes.
    pub fn new(capacity: u64) -> Self {
        DeviceMemory {
            capacity,
            inner: Mutex::new(HashMap::new()),
        }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.inner.lock().values().sum()
    }

    /// Bytes currently free.
    pub fn available(&self) -> u64 {
        self.capacity - self.allocated()
    }

    /// Allocate `bytes` under `name`.  Allocating an existing name resizes it
    /// (the old size is released first).
    pub fn alloc(&self, name: &str, bytes: u64) -> Result<(), OutOfMemory> {
        let mut inner = self.inner.lock();
        let existing = inner.get(name).copied().unwrap_or(0);
        let used: u64 = inner.values().sum::<u64>() - existing;
        if used + bytes > self.capacity {
            return Err(OutOfMemory {
                requested: bytes,
                available: self.capacity - used,
                capacity: self.capacity,
            });
        }
        inner.insert(name.to_owned(), bytes);
        Ok(())
    }

    /// Free the allocation registered under `name` (freeing an unknown name
    /// is a no-op, matching `cudaFree(nullptr)` semantics).
    pub fn free(&self, name: &str) {
        self.inner.lock().remove(name);
    }

    /// Whether an additional allocation of `bytes` would fit right now.
    pub fn would_fit(&self, bytes: u64) -> bool {
        self.available() >= bytes
    }

    /// Snapshot of the named allocations (for diagnostics).
    pub fn allocations(&self) -> Vec<(String, u64)> {
        let mut v: Vec<_> = self
            .inner
            .lock()
            .iter()
            .map(|(k, &b)| (k.clone(), b))
            .collect();
        v.sort();
        v
    }
}

/// Shared-memory budget of a single thread block (§6.1: the index tree for
/// p2 and the p*(k) array must fit; otherwise the kernel spills to L1/DRAM).
#[derive(Debug, Clone, Copy)]
pub struct SharedMemory {
    capacity: u64,
    used: u64,
}

impl SharedMemory {
    /// A budget of `capacity` bytes (48 KiB on Maxwell/Pascal, 96 KiB on Volta).
    pub fn new(capacity: u64) -> Self {
        SharedMemory { capacity, used: 0 }
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes allocated so far by this block.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Try to reserve `bytes`; returns `false` (and leaves the budget
    /// unchanged) when the block's shared memory is exhausted, in which case
    /// the caller must fall back to global memory.
    pub fn try_alloc(&mut self, bytes: u64) -> bool {
        if self.used + bytes <= self.capacity {
            self.used += bytes;
            true
        } else {
            false
        }
    }

    /// Release all allocations (end of block).
    pub fn reset(&mut self) {
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_free_update_accounting() {
        let mem = DeviceMemory::new(1000);
        mem.alloc("phi", 400).unwrap();
        mem.alloc("theta", 300).unwrap();
        assert_eq!(mem.allocated(), 700);
        assert_eq!(mem.available(), 300);
        mem.free("phi");
        assert_eq!(mem.allocated(), 300);
        assert_eq!(mem.allocations(), vec![("theta".to_string(), 300)]);
    }

    #[test]
    fn oom_is_reported_with_details() {
        let mem = DeviceMemory::new(100);
        mem.alloc("a", 80).unwrap();
        let err = mem.alloc("b", 50).unwrap_err();
        assert_eq!(err.requested, 50);
        assert_eq!(err.available, 20);
        assert_eq!(err.capacity, 100);
        assert!(err.to_string().contains("out of memory"));
        // Failed allocation must not change accounting.
        assert_eq!(mem.allocated(), 80);
    }

    #[test]
    fn realloc_same_name_resizes() {
        let mem = DeviceMemory::new(100);
        mem.alloc("chunk", 90).unwrap();
        // Shrinking an existing allocation succeeds even though 90 + 40 > 100.
        mem.alloc("chunk", 40).unwrap();
        assert_eq!(mem.allocated(), 40);
    }

    #[test]
    fn would_fit_checks_available() {
        let mem = DeviceMemory::new(64);
        assert!(mem.would_fit(64));
        mem.alloc("x", 60).unwrap();
        assert!(!mem.would_fit(5));
        assert!(mem.would_fit(4));
    }

    #[test]
    fn free_unknown_name_is_noop() {
        let mem = DeviceMemory::new(10);
        mem.free("nothing");
        assert_eq!(mem.allocated(), 0);
    }

    #[test]
    fn shared_memory_budget() {
        let mut sm = SharedMemory::new(100);
        assert!(sm.try_alloc(60));
        assert!(sm.try_alloc(40));
        assert!(!sm.try_alloc(1));
        assert_eq!(sm.used(), 100);
        sm.reset();
        assert_eq!(sm.used(), 0);
        assert!(sm.try_alloc(100));
    }
}
