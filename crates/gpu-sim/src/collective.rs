//! The reduce + broadcast model-synchronization schedule of §5.2 (Figure 4).
//!
//! After every iteration the per-GPU replicas of the topic–word matrix φ must
//! be combined: `φ = φ0 + φ1 + … + φG−1`, and the combined matrix pushed back
//! to every GPU.  The paper performs both steps entirely on the GPUs with a
//! binary tree: in round `r`, GPU `i + 2^r` sends its partial sum to GPU `i`
//! (for every `i` that is a multiple of `2^{r+1}`), so the reduction takes
//! `⌈log2 G⌉` rounds; the broadcast mirrors the tree in reverse.
//!
//! This module produces the transfer schedule (who sends to whom in each
//! round) and the simulated time of the whole synchronization; the actual
//! matrix additions are performed by the caller (culda-core) on the real
//! replica data.

use crate::transfer::Interconnect;
use serde::{Deserialize, Serialize};

/// One point-to-point copy: `src` device sends its buffer to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step {
    /// Sending device index.
    pub src: usize,
    /// Receiving device index.
    pub dst: usize,
}

/// The full reduce (or broadcast) schedule, as rounds of parallel steps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReducePlan {
    rounds: Vec<Vec<Step>>,
}

impl ReducePlan {
    /// Binary-tree reduction over `num_devices` devices, with device 0 as the
    /// root (Figure 4: GPU1→GPU0 and GPU3→GPU2 in round 0, GPU2→GPU0 in
    /// round 1 for G = 4).
    pub fn tree_reduce(num_devices: usize) -> Self {
        assert!(num_devices >= 1);
        let mut rounds = Vec::new();
        let mut stride = 1usize;
        while stride < num_devices {
            let mut steps = Vec::new();
            let mut i = 0usize;
            while i + stride < num_devices {
                steps.push(Step {
                    src: i + stride,
                    dst: i,
                });
                i += stride * 2;
            }
            rounds.push(steps);
            stride *= 2;
        }
        ReducePlan { rounds }
    }

    /// Binary-tree broadcast from device 0 — the reverse of the reduction.
    pub fn tree_broadcast(num_devices: usize) -> Self {
        let mut plan = Self::tree_reduce(num_devices);
        plan.rounds.reverse();
        for round in &mut plan.rounds {
            for step in round.iter_mut() {
                std::mem::swap(&mut step.src, &mut step.dst);
            }
        }
        ReducePlan {
            rounds: plan.rounds,
        }
    }

    /// The rounds in execution order; steps within a round run in parallel.
    pub fn rounds(&self) -> &[Vec<Step>] {
        &self.rounds
    }

    /// Number of rounds (⌈log2 G⌉ for G devices).
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total number of point-to-point copies in the plan (G − 1 for a tree).
    pub fn num_steps(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// Simulated time of the plan when each step moves `bytes` over `link`
    /// and the receiving GPU folds the buffer in at `add_bandwidth` bytes/s.
    ///
    /// Steps in a round are concurrent, so a round costs one transfer plus
    /// one fold; rounds are sequential.
    pub fn time_s(&self, bytes: u64, link: Interconnect, add_bandwidth_bytes_per_s: f64) -> f64 {
        let per_round = link.transfer_time_s(bytes)
            + if add_bandwidth_bytes_per_s > 0.0 {
                bytes as f64 / add_bandwidth_bytes_per_s
            } else {
                0.0
            };
        per_round * self.num_rounds() as f64
    }
}

/// Total simulated time of one φ synchronization (reduce then broadcast) over
/// `num_devices` devices, each replica being `bytes` large.
///
/// `add_bandwidth_bytes_per_s` is the effective bandwidth of the element-wise
/// addition on the receiving GPU; the broadcast requires no addition.
pub fn sync_time_s(
    num_devices: usize,
    bytes: u64,
    link: Interconnect,
    add_bandwidth_bytes_per_s: f64,
) -> f64 {
    if num_devices <= 1 {
        return 0.0;
    }
    let reduce =
        ReducePlan::tree_reduce(num_devices).time_s(bytes, link, add_bandwidth_bytes_per_s);
    let broadcast = ReducePlan::tree_broadcast(num_devices).time_s(bytes, link, 0.0);
    reduce + broadcast
}

/// Split `bytes` into `shards` transfer sizes as evenly as possible, the
/// remainder going to the leading shards — the column-even split used by the
/// topology/bench cost models.  (The trainer's own sync costs each shard
/// from its actual token-balanced column range instead; see
/// `culda-core::sync`.)
pub fn shard_bytes(bytes: u64, shards: usize) -> Vec<u64> {
    assert!(shards >= 1, "at least one shard");
    let shards_u = shards as u64;
    let base = bytes / shards_u;
    let rem = bytes % shards_u;
    (0..shards_u).map(|s| base + u64::from(s < rem)).collect()
}

/// Per-shard simulated times of a vocabulary-sharded φ synchronization: the
/// §5.2 tree reduce + broadcast, run once per shard with a barrier only at the
/// shard boundary (not across the full `K × V` replica).
///
/// Each shard moves `bytes / shards` per tree step, so the *sum* of the
/// returned times slightly exceeds [`sync_time_s`] of the dense replica (every
/// shard pays the per-round link latency); the payoff is that the shards are
/// independently schedulable, which is what lets the trainer overlap shard
/// `s`'s reduce with the sampling of shard `s + 1` (see
/// [`overlapped_span_s`]).
pub fn sharded_sync_times_s(
    num_devices: usize,
    bytes: u64,
    shards: usize,
    link: Interconnect,
    add_bandwidth_bytes_per_s: f64,
) -> Vec<f64> {
    shard_bytes(bytes, shards)
        .into_iter()
        .map(|b| sync_time_s(num_devices, b, link, add_bandwidth_bytes_per_s))
        .collect()
}

/// Makespan of a shard pipeline: stage `s` computes for `compute_s[s]`
/// seconds and then reduces for `sync_s[s]` seconds, where reduces serialise
/// on the interconnect, compute serialises on the SMs, and at most
/// `max_in_flight` shard reduces may be outstanding while compute continues
/// (the overlap-depth knob: it bounds the staging buffers a real
/// implementation would need).
///
/// `max_in_flight == 0` disables the overlap entirely: every reduce waits for
/// all compute, the sharded-but-serial schedule.
pub fn overlapped_span_s(compute_s: &[f64], sync_s: &[f64], max_in_flight: usize) -> f64 {
    assert_eq!(compute_s.len(), sync_s.len());
    if compute_s.is_empty() {
        return 0.0;
    }
    if max_in_flight == 0 {
        return compute_s.iter().sum::<f64>() + sync_s.iter().sum::<f64>();
    }
    let n = compute_s.len();
    let mut compute_end = vec![0.0f64; n];
    let mut sync_end = vec![0.0f64; n];
    for s in 0..n {
        let mut start = if s == 0 { 0.0 } else { compute_end[s - 1] };
        // Bounded buffering: shard s's compute may not begin until the reduce
        // of shard s - max_in_flight has drained.
        if s >= max_in_flight {
            start = start.max(sync_end[s - max_in_flight]);
        }
        compute_end[s] = start + compute_s[s];
        let sync_start = compute_end[s].max(if s == 0 { 0.0 } else { sync_end[s - 1] });
        sync_end[s] = sync_start + sync_s[s];
    }
    sync_end[n - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_reduce_schedule_for_four_gpus() {
        let plan = ReducePlan::tree_reduce(4);
        assert_eq!(plan.num_rounds(), 2);
        assert_eq!(
            plan.rounds()[0],
            vec![Step { src: 1, dst: 0 }, Step { src: 3, dst: 2 }]
        );
        assert_eq!(plan.rounds()[1], vec![Step { src: 2, dst: 0 }]);
        assert_eq!(plan.num_steps(), 3);
    }

    #[test]
    fn broadcast_mirrors_reduce() {
        let plan = ReducePlan::tree_broadcast(4);
        assert_eq!(plan.num_rounds(), 2);
        assert_eq!(plan.rounds()[0], vec![Step { src: 0, dst: 2 }]);
        assert_eq!(
            plan.rounds()[1],
            vec![Step { src: 0, dst: 1 }, Step { src: 2, dst: 3 }]
        );
    }

    #[test]
    fn rounds_grow_logarithmically() {
        assert_eq!(ReducePlan::tree_reduce(1).num_rounds(), 0);
        assert_eq!(ReducePlan::tree_reduce(2).num_rounds(), 1);
        assert_eq!(ReducePlan::tree_reduce(4).num_rounds(), 2);
        assert_eq!(ReducePlan::tree_reduce(8).num_rounds(), 3);
        assert_eq!(ReducePlan::tree_reduce(16).num_rounds(), 4);
        // Non-power-of-two device counts still reduce everything to device 0.
        assert_eq!(ReducePlan::tree_reduce(5).num_steps(), 4);
        assert_eq!(ReducePlan::tree_reduce(7).num_steps(), 6);
    }

    #[test]
    fn every_device_receives_the_broadcast() {
        for g in 1..10usize {
            let plan = ReducePlan::tree_broadcast(g);
            let mut has = vec![false; g];
            has[0] = true;
            for round in plan.rounds() {
                for step in round {
                    assert!(has[step.src], "device {} sent before it had data", step.src);
                    has[step.dst] = true;
                }
            }
            assert!(has.iter().all(|&h| h), "broadcast incomplete for G={g}");
        }
    }

    #[test]
    fn sync_time_is_zero_for_one_device_and_grows_logarithmically() {
        let bytes = 1 << 30;
        let link = Interconnect::Pcie3;
        assert_eq!(sync_time_s(1, bytes, link, 1e11), 0.0);
        let t2 = sync_time_s(2, bytes, link, 1e11);
        let t4 = sync_time_s(4, bytes, link, 1e11);
        let t8 = sync_time_s(8, bytes, link, 1e11);
        assert!(t2 > 0.0);
        // log2 scaling: doubling the devices adds one reduce + one broadcast round.
        assert!((t4 / t2 - 2.0).abs() < 0.05);
        assert!((t8 / t2 - 3.0).abs() < 0.05);
    }

    #[test]
    fn shard_bytes_partition_exactly() {
        assert_eq!(shard_bytes(100, 1), vec![100]);
        assert_eq!(shard_bytes(100, 4), vec![25, 25, 25, 25]);
        assert_eq!(shard_bytes(10, 3), vec![4, 3, 3]);
        for (bytes, shards) in [(1u64, 5usize), (0, 3), (1 << 30, 7)] {
            let parts = shard_bytes(bytes, shards);
            assert_eq!(parts.len(), shards);
            assert_eq!(parts.iter().sum::<u64>(), bytes);
        }
    }

    #[test]
    fn sharded_sync_work_exceeds_dense_only_by_latency() {
        let bytes = 256 << 20;
        let link = Interconnect::Pcie3;
        let dense = sync_time_s(4, bytes, link, 1e11);
        for shards in [2usize, 4, 8] {
            let per_shard = sharded_sync_times_s(4, bytes, shards, link, 1e11);
            assert_eq!(per_shard.len(), shards);
            let total: f64 = per_shard.iter().sum();
            // Sharding never reduces the total work moved…
            assert!(total >= dense, "{shards} shards: {total} < dense {dense}");
            // …and the overhead is bounded by the extra per-round latencies.
            let extra_rounds = ((shards - 1) * 2 * ReducePlan::tree_reduce(4).num_rounds()) as f64;
            assert!(total <= dense + extra_rounds * link.latency_s() * 1.01);
        }
    }

    #[test]
    fn single_device_sharded_sync_is_free() {
        let times = sharded_sync_times_s(1, 1 << 30, 4, Interconnect::Pcie3, 1e11);
        assert!(times.iter().all(|&t| t == 0.0));
    }

    #[test]
    fn overlap_hides_sync_behind_compute() {
        // 4 equal shards, sync shorter than compute: all but the last shard's
        // reduce hides completely.
        let compute = [1.0; 4];
        let sync = [0.5; 4];
        let overlapped = overlapped_span_s(&compute, &sync, 2);
        assert!((overlapped - (4.0 + 0.5)).abs() < 1e-9, "{overlapped}");
        // No overlap: everything serialises.
        let serial = overlapped_span_s(&compute, &sync, 0);
        assert!((serial - 6.0).abs() < 1e-9);
        assert!(overlapped < serial);
    }

    #[test]
    fn overlap_depth_one_still_beats_serial_and_depth_caps_in_flight() {
        // Sync dominates: the pipeline is sync-bound, the span approaches
        // first compute + all syncs regardless of depth.
        let compute = [0.1; 4];
        let sync = [1.0; 4];
        let d1 = overlapped_span_s(&compute, &sync, 1);
        let d4 = overlapped_span_s(&compute, &sync, 4);
        let serial = overlapped_span_s(&compute, &sync, 0);
        assert!(d1 <= serial && d4 <= d1 + 1e-12);
        // With depth 1 the compute of shard s+1 waits for sync s; with depth
        // 4 it never waits, so the bound is first compute + sum of syncs.
        assert!((d4 - (0.1 + 4.0)).abs() < 1e-9, "{d4}");
        // depth-1 lockstep: c0 (0.1) then alternating sync/compute pairs.
        assert!(d1 >= d4);
    }

    #[test]
    fn overlapped_span_of_empty_pipeline_is_zero() {
        assert_eq!(overlapped_span_s(&[], &[], 2), 0.0);
    }

    #[test]
    fn ethernet_sync_is_far_slower_than_pcie() {
        let bytes = 512 << 20;
        let pcie = sync_time_s(4, bytes, Interconnect::Pcie3, 1e11);
        let eth = sync_time_s(4, bytes, Interconnect::Ethernet10G, 1e11);
        assert!(eth > 10.0 * pcie, "eth {eth} vs pcie {pcie}");
    }
}
