//! The reduce + broadcast model-synchronization schedule of §5.2 (Figure 4).
//!
//! After every iteration the per-GPU replicas of the topic–word matrix φ must
//! be combined: `φ = φ0 + φ1 + … + φG−1`, and the combined matrix pushed back
//! to every GPU.  The paper performs both steps entirely on the GPUs with a
//! binary tree: in round `r`, GPU `i + 2^r` sends its partial sum to GPU `i`
//! (for every `i` that is a multiple of `2^{r+1}`), so the reduction takes
//! `⌈log2 G⌉` rounds; the broadcast mirrors the tree in reverse.
//!
//! This module produces the transfer schedule (who sends to whom in each
//! round) and the simulated time of the whole synchronization; the actual
//! matrix additions are performed by the caller (culda-core) on the real
//! replica data.

use crate::transfer::Interconnect;
use serde::{Deserialize, Serialize};

/// One point-to-point copy: `src` device sends its buffer to `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Step {
    /// Sending device index.
    pub src: usize,
    /// Receiving device index.
    pub dst: usize,
}

/// The full reduce (or broadcast) schedule, as rounds of parallel steps.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReducePlan {
    rounds: Vec<Vec<Step>>,
}

impl ReducePlan {
    /// Binary-tree reduction over `num_devices` devices, with device 0 as the
    /// root (Figure 4: GPU1→GPU0 and GPU3→GPU2 in round 0, GPU2→GPU0 in
    /// round 1 for G = 4).
    pub fn tree_reduce(num_devices: usize) -> Self {
        assert!(num_devices >= 1);
        let mut rounds = Vec::new();
        let mut stride = 1usize;
        while stride < num_devices {
            let mut steps = Vec::new();
            let mut i = 0usize;
            while i + stride < num_devices {
                steps.push(Step {
                    src: i + stride,
                    dst: i,
                });
                i += stride * 2;
            }
            rounds.push(steps);
            stride *= 2;
        }
        ReducePlan { rounds }
    }

    /// Binary-tree broadcast from device 0 — the reverse of the reduction.
    pub fn tree_broadcast(num_devices: usize) -> Self {
        let mut plan = Self::tree_reduce(num_devices);
        plan.rounds.reverse();
        for round in &mut plan.rounds {
            for step in round.iter_mut() {
                std::mem::swap(&mut step.src, &mut step.dst);
            }
        }
        ReducePlan {
            rounds: plan.rounds,
        }
    }

    /// The rounds in execution order; steps within a round run in parallel.
    pub fn rounds(&self) -> &[Vec<Step>] {
        &self.rounds
    }

    /// Number of rounds (⌈log2 G⌉ for G devices).
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total number of point-to-point copies in the plan (G − 1 for a tree).
    pub fn num_steps(&self) -> usize {
        self.rounds.iter().map(Vec::len).sum()
    }

    /// Simulated time of the plan when each step moves `bytes` over `link`
    /// and the receiving GPU folds the buffer in at `add_bandwidth` bytes/s.
    ///
    /// Steps in a round are concurrent, so a round costs one transfer plus
    /// one fold; rounds are sequential.
    pub fn time_s(&self, bytes: u64, link: Interconnect, add_bandwidth_bytes_per_s: f64) -> f64 {
        let per_round = link.transfer_time_s(bytes)
            + if add_bandwidth_bytes_per_s > 0.0 {
                bytes as f64 / add_bandwidth_bytes_per_s
            } else {
                0.0
            };
        per_round * self.num_rounds() as f64
    }
}

/// Total simulated time of one φ synchronization (reduce then broadcast) over
/// `num_devices` devices, each replica being `bytes` large.
///
/// `add_bandwidth_bytes_per_s` is the effective bandwidth of the element-wise
/// addition on the receiving GPU; the broadcast requires no addition.
pub fn sync_time_s(
    num_devices: usize,
    bytes: u64,
    link: Interconnect,
    add_bandwidth_bytes_per_s: f64,
) -> f64 {
    if num_devices <= 1 {
        return 0.0;
    }
    let reduce =
        ReducePlan::tree_reduce(num_devices).time_s(bytes, link, add_bandwidth_bytes_per_s);
    let broadcast = ReducePlan::tree_broadcast(num_devices).time_s(bytes, link, 0.0);
    reduce + broadcast
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure4_reduce_schedule_for_four_gpus() {
        let plan = ReducePlan::tree_reduce(4);
        assert_eq!(plan.num_rounds(), 2);
        assert_eq!(
            plan.rounds()[0],
            vec![Step { src: 1, dst: 0 }, Step { src: 3, dst: 2 }]
        );
        assert_eq!(plan.rounds()[1], vec![Step { src: 2, dst: 0 }]);
        assert_eq!(plan.num_steps(), 3);
    }

    #[test]
    fn broadcast_mirrors_reduce() {
        let plan = ReducePlan::tree_broadcast(4);
        assert_eq!(plan.num_rounds(), 2);
        assert_eq!(plan.rounds()[0], vec![Step { src: 0, dst: 2 }]);
        assert_eq!(
            plan.rounds()[1],
            vec![Step { src: 0, dst: 1 }, Step { src: 2, dst: 3 }]
        );
    }

    #[test]
    fn rounds_grow_logarithmically() {
        assert_eq!(ReducePlan::tree_reduce(1).num_rounds(), 0);
        assert_eq!(ReducePlan::tree_reduce(2).num_rounds(), 1);
        assert_eq!(ReducePlan::tree_reduce(4).num_rounds(), 2);
        assert_eq!(ReducePlan::tree_reduce(8).num_rounds(), 3);
        assert_eq!(ReducePlan::tree_reduce(16).num_rounds(), 4);
        // Non-power-of-two device counts still reduce everything to device 0.
        assert_eq!(ReducePlan::tree_reduce(5).num_steps(), 4);
        assert_eq!(ReducePlan::tree_reduce(7).num_steps(), 6);
    }

    #[test]
    fn every_device_receives_the_broadcast() {
        for g in 1..10usize {
            let plan = ReducePlan::tree_broadcast(g);
            let mut has = vec![false; g];
            has[0] = true;
            for round in plan.rounds() {
                for step in round {
                    assert!(has[step.src], "device {} sent before it had data", step.src);
                    has[step.dst] = true;
                }
            }
            assert!(has.iter().all(|&h| h), "broadcast incomplete for G={g}");
        }
    }

    #[test]
    fn sync_time_is_zero_for_one_device_and_grows_logarithmically() {
        let bytes = 1 << 30;
        let link = Interconnect::Pcie3;
        assert_eq!(sync_time_s(1, bytes, link, 1e11), 0.0);
        let t2 = sync_time_s(2, bytes, link, 1e11);
        let t4 = sync_time_s(4, bytes, link, 1e11);
        let t8 = sync_time_s(8, bytes, link, 1e11);
        assert!(t2 > 0.0);
        // log2 scaling: doubling the devices adds one reduce + one broadcast round.
        assert!((t4 / t2 - 2.0).abs() < 0.05);
        assert!((t8 / t2 - 3.0).abs() < 0.05);
    }

    #[test]
    fn ethernet_sync_is_far_slower_than_pcie() {
        let bytes = 512 << 20;
        let pcie = sync_time_s(4, bytes, Interconnect::Pcie3, 1e11);
        let eth = sync_time_s(4, bytes, Interconnect::Ethernet10G, 1e11);
        assert!(eth > 10.0 * pcie, "eth {eth} vs pcie {pcie}");
    }
}
