//! Device specifications and device instances.
//!
//! The presets mirror Table 2 of the paper (the three evaluation platforms)
//! plus the GTX 1080 used by the cited SaberLDA results and the Xeon CPUs the
//! CPU baselines run on.  Peak numbers are the vendor specifications the
//! paper quotes; *effective* numbers are derived with per-architecture
//! efficiency factors that reflect how much of the peak an irregular,
//! gather-heavy workload like LDA sampling can realistically achieve.

use crate::cost::{kernel_time, CostCounters, KernelTime};
use crate::memory::DeviceMemory;
use crate::profile::Profiler;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Processor micro-architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Arch {
    /// NVIDIA Kepler (K40) — the generation preceding the paper's platforms.
    Kepler,
    /// NVIDIA Maxwell (Titan X).
    Maxwell,
    /// NVIDIA Pascal (Titan Xp, GTX 1080, P100).
    Pascal,
    /// NVIDIA Volta (V100).
    Volta,
    /// NVIDIA Ampere (A100) — a post-publication generation, used to check
    /// the paper's "scales to future GPUs" claim.
    Ampere,
    /// A host CPU socket (used by the CPU baselines).
    Cpu,
}

impl Arch {
    /// True for GPU architectures.
    pub fn is_gpu(self) -> bool {
        !matches!(self, Arch::Cpu)
    }
}

/// Static description of one processor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"NVIDIA TITAN X (Maxwell)"`.
    pub name: String,
    /// Micro-architecture family.
    pub arch: Arch,
    /// Streaming multiprocessors (or CPU cores for [`Arch::Cpu`]).
    pub sm_count: u32,
    /// Warp width (threads executing in lock-step); 1 for CPUs.
    pub warp_size: u32,
    /// Peak off-chip memory bandwidth in GB/s.
    pub mem_bandwidth_gbps: f64,
    /// Fraction of peak bandwidth achievable by gather-heavy kernels.
    pub mem_efficiency: f64,
    /// Peak single-precision throughput in GFLOPS.
    pub peak_gflops: f64,
    /// On-chip (shared memory / L1 / L2-cache) bandwidth advantage over DRAM.
    pub on_chip_bw_multiplier: f64,
    /// Shared memory available to one thread block, in bytes (0 for CPUs).
    pub shared_mem_per_block: u64,
    /// Device memory capacity in bytes.
    pub mem_capacity_bytes: u64,
    /// Sustained global atomic throughput in billions of operations/s
    /// (assuming good locality, as §6.2 notes for the φ update).
    pub atomic_gops_per_s: f64,
    /// Fixed kernel-launch (or parallel-region fork) overhead in seconds.
    pub kernel_launch_overhead_s: f64,
    /// Thread blocks per SM needed to fully hide latency.
    pub blocks_per_sm_saturation: u32,
}

impl DeviceSpec {
    /// NVIDIA Titan X, Maxwell architecture — the "Maxwell platform" GPU of
    /// Table 2 (336 GB/s, 24 SMs, 12 GB).
    pub fn titan_x_maxwell() -> Self {
        DeviceSpec {
            name: "NVIDIA TITAN X (Maxwell)".into(),
            arch: Arch::Maxwell,
            sm_count: 24,
            warp_size: 32,
            mem_bandwidth_gbps: 336.0,
            mem_efficiency: 0.58,
            peak_gflops: 6_100.0,
            on_chip_bw_multiplier: 8.0,
            shared_mem_per_block: 48 * 1024,
            mem_capacity_bytes: 12 * (1 << 30),
            atomic_gops_per_s: 20.0,
            kernel_launch_overhead_s: 8e-6,
            blocks_per_sm_saturation: 2,
        }
    }

    /// NVIDIA Titan Xp, Pascal architecture — the "Pascal platform" GPU of
    /// Table 2 (550 GB/s, 28 SMs, 12 GB).
    pub fn titan_xp_pascal() -> Self {
        DeviceSpec {
            name: "NVIDIA Titan Xp (Pascal)".into(),
            arch: Arch::Pascal,
            sm_count: 28,
            warp_size: 32,
            mem_bandwidth_gbps: 550.0,
            mem_efficiency: 0.55,
            peak_gflops: 12_100.0,
            on_chip_bw_multiplier: 8.0,
            shared_mem_per_block: 48 * 1024,
            mem_capacity_bytes: 12 * (1 << 30),
            atomic_gops_per_s: 30.0,
            kernel_launch_overhead_s: 7e-6,
            blocks_per_sm_saturation: 2,
        }
    }

    /// NVIDIA V100, Volta architecture — the "Volta platform" GPU of Table 2
    /// (900 GB/s, 80 SMs, 16 GB).
    pub fn v100_volta() -> Self {
        DeviceSpec {
            name: "NVIDIA V100 (Volta)".into(),
            arch: Arch::Volta,
            sm_count: 80,
            warp_size: 32,
            mem_bandwidth_gbps: 900.0,
            mem_efficiency: 0.78,
            peak_gflops: 14_000.0,
            on_chip_bw_multiplier: 10.0,
            shared_mem_per_block: 96 * 1024,
            mem_capacity_bytes: 16 * (1 << 30),
            atomic_gops_per_s: 50.0,
            kernel_launch_overhead_s: 5e-6,
            blocks_per_sm_saturation: 2,
        }
    }

    /// NVIDIA GTX 1080 — the GPU the cited SaberLDA numbers were measured on
    /// (§7.2; "more powerful than Titan X" in compute, 320 GB/s bandwidth).
    pub fn gtx_1080() -> Self {
        DeviceSpec {
            name: "NVIDIA GTX 1080 (Pascal)".into(),
            arch: Arch::Pascal,
            sm_count: 20,
            warp_size: 32,
            mem_bandwidth_gbps: 320.0,
            mem_efficiency: 0.55,
            peak_gflops: 8_900.0,
            on_chip_bw_multiplier: 8.0,
            shared_mem_per_block: 48 * 1024,
            mem_capacity_bytes: 8 * (1 << 30),
            atomic_gops_per_s: 25.0,
            kernel_launch_overhead_s: 7e-6,
            blocks_per_sm_saturation: 2,
        }
    }

    /// Intel Xeon E5-2690 v4 — the CPU of the Volta platform, used by the
    /// paper to run WarpLDA ("the most powerful one among all of the in-hand
    /// CPUs"): 470 GFLOPS peak, 51.2 GB/s of theoretical memory bandwidth.
    ///
    /// `mem_efficiency > 1` models the large L2/L3 caches that CPU LDA
    /// implementations (WarpLDA in particular) are designed to exploit; the
    /// paper's §3.2 discusses exactly this cache dependence and why it stops
    /// scaling once the working set outgrows the cache.
    pub fn xeon_e5_2690v4() -> Self {
        DeviceSpec {
            name: "Intel Xeon E5-2690 v4".into(),
            arch: Arch::Cpu,
            sm_count: 14,
            warp_size: 1,
            mem_bandwidth_gbps: 51.2,
            mem_efficiency: 1.35,
            peak_gflops: 470.0,
            on_chip_bw_multiplier: 6.0,
            shared_mem_per_block: 0,
            mem_capacity_bytes: 64 * (1 << 30),
            atomic_gops_per_s: 0.6,
            kernel_launch_overhead_s: 2e-6,
            blocks_per_sm_saturation: 1,
        }
    }

    /// Intel Xeon E5-2670 — the CPU of the Maxwell platform (Table 2).
    pub fn xeon_e5_2670() -> Self {
        DeviceSpec {
            name: "Intel Xeon E5-2670".into(),
            arch: Arch::Cpu,
            sm_count: 8,
            warp_size: 1,
            mem_bandwidth_gbps: 51.2,
            mem_efficiency: 1.1,
            peak_gflops: 330.0,
            on_chip_bw_multiplier: 5.0,
            shared_mem_per_block: 0,
            mem_capacity_bytes: 64 * (1 << 30),
            atomic_gops_per_s: 0.5,
            kernel_launch_overhead_s: 2e-6,
            blocks_per_sm_saturation: 1,
        }
    }

    /// NVIDIA Tesla K40 (Kepler) — an older-generation GPU used by the
    /// ablation that checks CuLDA_CGS degrades gracefully on pre-Maxwell
    /// hardware (288 GB/s, 15 SMs, 12 GB).
    pub fn k40_kepler() -> Self {
        DeviceSpec {
            name: "NVIDIA Tesla K40 (Kepler)".into(),
            arch: Arch::Kepler,
            sm_count: 15,
            warp_size: 32,
            mem_bandwidth_gbps: 288.0,
            mem_efficiency: 0.50,
            peak_gflops: 4_300.0,
            on_chip_bw_multiplier: 6.0,
            shared_mem_per_block: 48 * 1024,
            mem_capacity_bytes: 12 * (1 << 30),
            atomic_gops_per_s: 10.0,
            kernel_launch_overhead_s: 10e-6,
            blocks_per_sm_saturation: 2,
        }
    }

    /// NVIDIA Tesla P100 (Pascal) — the HBM2 datacentre Pascal part
    /// (732 GB/s, 56 SMs, 16 GB).
    pub fn p100_pascal() -> Self {
        DeviceSpec {
            name: "NVIDIA Tesla P100 (Pascal)".into(),
            arch: Arch::Pascal,
            sm_count: 56,
            warp_size: 32,
            mem_bandwidth_gbps: 732.0,
            mem_efficiency: 0.60,
            peak_gflops: 9_300.0,
            on_chip_bw_multiplier: 8.0,
            shared_mem_per_block: 64 * 1024,
            mem_capacity_bytes: 16 * (1 << 30),
            atomic_gops_per_s: 35.0,
            kernel_launch_overhead_s: 6e-6,
            blocks_per_sm_saturation: 2,
        }
    }

    /// NVIDIA A100 (Ampere) — a post-publication GPU (1 555 GB/s, 108 SMs,
    /// 40 GB) used to extrapolate the paper's "scales to future GPUs" claim.
    pub fn a100_ampere() -> Self {
        DeviceSpec {
            name: "NVIDIA A100 (Ampere)".into(),
            arch: Arch::Ampere,
            sm_count: 108,
            warp_size: 32,
            mem_bandwidth_gbps: 1_555.0,
            mem_efficiency: 0.80,
            peak_gflops: 19_500.0,
            on_chip_bw_multiplier: 12.0,
            shared_mem_per_block: 160 * 1024,
            mem_capacity_bytes: 40 * (1u64 << 30),
            atomic_gops_per_s: 80.0,
            kernel_launch_overhead_s: 4e-6,
            blocks_per_sm_saturation: 2,
        }
    }

    /// Start a builder for a custom device specification, seeded from an
    /// existing preset (typically the closest real device).
    pub fn builder(base: DeviceSpec) -> DeviceSpecBuilder {
        DeviceSpecBuilder { spec: base }
    }

    /// Effective (achievable) off-chip bandwidth in bytes/second.
    pub fn effective_bandwidth_bytes_per_s(&self) -> f64 {
        self.mem_bandwidth_gbps * 1e9 * self.mem_efficiency
    }

    /// On-chip (shared memory / cache) bandwidth in bytes/second.
    pub fn on_chip_bandwidth_bytes_per_s(&self) -> f64 {
        self.mem_bandwidth_gbps * 1e9 * self.on_chip_bw_multiplier
    }

    /// Peak-FLOPS to peak-bandwidth ratio (Flops/Byte), the roofline ridge
    /// point the paper computes in §3.1 (9.2 for the Volta platform's CPU).
    pub fn ridge_flops_per_byte(&self) -> f64 {
        self.peak_gflops * 1e9 / (self.mem_bandwidth_gbps * 1e9)
    }

    /// Occupancy derate for a launch of `grid_blocks` thread blocks: a grid
    /// too small to fill every SM leaves bandwidth unused.
    pub fn occupancy(&self, grid_blocks: usize) -> f64 {
        let needed = (self.sm_count * self.blocks_per_sm_saturation) as f64;
        ((grid_blocks as f64) / needed).clamp(0.02, 1.0)
    }
}

/// Builder for custom [`DeviceSpec`]s (hypothetical or future devices used by
/// the scaling ablations).
#[derive(Debug, Clone)]
pub struct DeviceSpecBuilder {
    spec: DeviceSpec,
}

impl DeviceSpecBuilder {
    /// Override the marketing name.
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.spec.name = name.into();
        self
    }

    /// Override the peak off-chip bandwidth in GB/s.
    pub fn mem_bandwidth_gbps(mut self, gbps: f64) -> Self {
        self.spec.mem_bandwidth_gbps = gbps;
        self
    }

    /// Override the achievable fraction of peak bandwidth.
    pub fn mem_efficiency(mut self, efficiency: f64) -> Self {
        self.spec.mem_efficiency = efficiency;
        self
    }

    /// Override the SM (or CPU-core) count.
    pub fn sm_count(mut self, sms: u32) -> Self {
        self.spec.sm_count = sms;
        self
    }

    /// Override the peak single-precision throughput in GFLOPS.
    pub fn peak_gflops(mut self, gflops: f64) -> Self {
        self.spec.peak_gflops = gflops;
        self
    }

    /// Override the device-memory capacity in bytes.
    pub fn mem_capacity_bytes(mut self, bytes: u64) -> Self {
        self.spec.mem_capacity_bytes = bytes;
        self
    }

    /// Override the shared memory per thread block in bytes.
    pub fn shared_mem_per_block(mut self, bytes: u64) -> Self {
        self.spec.shared_mem_per_block = bytes;
        self
    }

    /// Finish the builder.
    ///
    /// # Panics
    /// Panics if the resulting spec is degenerate (zero bandwidth, zero SMs
    /// or out-of-range efficiency).
    pub fn build(self) -> DeviceSpec {
        let s = &self.spec;
        assert!(s.mem_bandwidth_gbps > 0.0, "bandwidth must be positive");
        assert!(s.sm_count > 0, "sm_count must be positive");
        assert!(
            s.mem_efficiency > 0.0 && s.mem_efficiency <= 2.0,
            "mem_efficiency out of range"
        );
        assert!(s.peak_gflops > 0.0, "peak_gflops must be positive");
        self.spec
    }
}

/// A device instance: a spec plus mutable simulation state (memory allocator,
/// per-kernel profile, simulated busy time).
#[derive(Debug)]
pub struct Device {
    /// Device index within its system (the CUDA device ordinal).
    pub id: usize,
    /// Static specification.
    pub spec: DeviceSpec,
    /// Device-memory allocator / capacity tracker.
    pub memory: DeviceMemory,
    /// Per-kernel time profile (feeds Table 5).
    pub profiler: Profiler,
    /// RNG seed all kernel launches on this device derive from.
    pub seed: u64,
    launch_counter: AtomicU64,
    busy_time_s: parking_lot::Mutex<f64>,
}

impl Device {
    /// Create device `id` with the given spec and RNG seed.
    pub fn new(id: usize, spec: DeviceSpec, seed: u64) -> Self {
        let memory = DeviceMemory::new(spec.mem_capacity_bytes);
        Device {
            id,
            spec,
            memory,
            profiler: Profiler::new(),
            seed,
            launch_counter: AtomicU64::new(0),
            busy_time_s: parking_lot::Mutex::new(0.0),
        }
    }

    /// Monotonically increasing launch number (mixes into per-block RNG seeds
    /// so that every kernel launch sees fresh randomness).
    pub fn next_launch_id(&self) -> u64 {
        self.launch_counter.fetch_add(1, Ordering::Relaxed)
    }

    /// Record `seconds` of simulated busy time attributed to `kernel_name`.
    pub fn record_time(&self, kernel_name: &str, seconds: f64) {
        self.profiler.record(kernel_name, seconds);
        *self.busy_time_s.lock() += seconds;
    }

    /// Total simulated busy time accumulated so far.
    pub fn busy_time_s(&self) -> f64 {
        *self.busy_time_s.lock()
    }

    /// Reset the simulated clock and profile (used between experiments).
    pub fn reset_time(&self) {
        *self.busy_time_s.lock() = 0.0;
        self.profiler.reset();
    }

    /// Convert raw counters into a [`KernelTime`] under this device's spec.
    pub fn time_for(&self, counters: &CostCounters, grid_blocks: usize) -> KernelTime {
        kernel_time(&self.spec, counters, grid_blocks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_bandwidths_match_paper() {
        assert_eq!(DeviceSpec::titan_x_maxwell().mem_bandwidth_gbps, 336.0);
        assert_eq!(DeviceSpec::titan_xp_pascal().mem_bandwidth_gbps, 550.0);
        assert_eq!(DeviceSpec::v100_volta().mem_bandwidth_gbps, 900.0);
        assert_eq!(DeviceSpec::v100_volta().sm_count, 80);
    }

    #[test]
    fn cpu_ridge_point_is_about_9() {
        // §3.1: 470 GFLOPS / 51.2 GB/s ≈ 9.2 Flops/Byte.
        let cpu = DeviceSpec::xeon_e5_2690v4();
        let ridge = cpu.ridge_flops_per_byte();
        assert!((ridge - 9.18).abs() < 0.1, "ridge {ridge}");
    }

    #[test]
    fn gpu_effective_bandwidth_exceeds_cpu() {
        let cpu = DeviceSpec::xeon_e5_2690v4().effective_bandwidth_bytes_per_s();
        for gpu in [
            DeviceSpec::titan_x_maxwell(),
            DeviceSpec::titan_xp_pascal(),
            DeviceSpec::v100_volta(),
            DeviceSpec::gtx_1080(),
        ] {
            assert!(gpu.effective_bandwidth_bytes_per_s() > cpu, "{}", gpu.name);
        }
    }

    #[test]
    fn occupancy_saturates_at_one() {
        let spec = DeviceSpec::v100_volta();
        assert_eq!(spec.occupancy(1_000_000), 1.0);
        assert!(spec.occupancy(8) <= 0.06);
        assert!(spec.occupancy(0) >= 0.02);
    }

    #[test]
    fn arch_is_gpu_classification() {
        assert!(Arch::Volta.is_gpu());
        assert!(Arch::Maxwell.is_gpu());
        assert!(!Arch::Cpu.is_gpu());
    }

    #[test]
    fn device_records_time_and_resets() {
        let dev = Device::new(0, DeviceSpec::titan_x_maxwell(), 42);
        dev.record_time("sampling", 0.5);
        dev.record_time("sampling", 0.25);
        dev.record_time("update_phi", 0.25);
        assert!((dev.busy_time_s() - 1.0).abs() < 1e-12);
        let breakdown = dev.profiler.breakdown();
        assert!((breakdown["sampling"] - 0.75).abs() < 1e-12);
        dev.reset_time();
        assert_eq!(dev.busy_time_s(), 0.0);
        assert!(dev.profiler.breakdown().is_empty());
    }

    #[test]
    fn launch_ids_are_unique_and_increasing() {
        let dev = Device::new(0, DeviceSpec::gtx_1080(), 1);
        let a = dev.next_launch_id();
        let b = dev.next_launch_id();
        assert!(b > a);
    }

    #[test]
    fn device_memory_capacity_matches_spec() {
        let dev = Device::new(0, DeviceSpec::titan_x_maxwell(), 0);
        assert_eq!(dev.memory.capacity(), 12 * (1 << 30));
    }

    #[test]
    fn extra_presets_order_by_generation_bandwidth() {
        // K40 < Titan X < P100 < V100 < A100 in effective bandwidth — the
        // ordering the cross-generation experiments rely on.
        let seq = [
            DeviceSpec::k40_kepler(),
            DeviceSpec::titan_x_maxwell(),
            DeviceSpec::p100_pascal(),
            DeviceSpec::v100_volta(),
            DeviceSpec::a100_ampere(),
        ];
        for pair in seq.windows(2) {
            assert!(
                pair[1].effective_bandwidth_bytes_per_s()
                    > pair[0].effective_bandwidth_bytes_per_s(),
                "{} should beat {}",
                pair[1].name,
                pair[0].name
            );
        }
        assert!(Arch::Ampere.is_gpu() && Arch::Kepler.is_gpu());
    }

    #[test]
    fn builder_overrides_fields_and_validates() {
        let custom = DeviceSpec::builder(DeviceSpec::v100_volta())
            .name("Hypothetical 2 TB/s GPU")
            .mem_bandwidth_gbps(2_000.0)
            .sm_count(160)
            .peak_gflops(30_000.0)
            .mem_capacity_bytes(80 * (1u64 << 30))
            .build();
        assert_eq!(custom.name, "Hypothetical 2 TB/s GPU");
        assert_eq!(custom.mem_bandwidth_gbps, 2_000.0);
        assert_eq!(custom.arch, Arch::Volta); // inherited from the base
        assert!(
            custom.effective_bandwidth_bytes_per_s()
                > DeviceSpec::v100_volta().effective_bandwidth_bytes_per_s()
        );
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn builder_rejects_degenerate_specs() {
        let _ = DeviceSpec::builder(DeviceSpec::v100_volta())
            .mem_bandwidth_gbps(0.0)
            .build();
    }
}
