//! Transfer/compute overlap for the streamed schedule (`WorkSchedule2`).
//!
//! When the corpus does not fit in device memory (`M > 1`, Algorithm 1, lines
//! 22–36) every chunk must be staged over PCIe each iteration.  The paper
//! hides the transfer cost by double buffering through CUDA streams: the
//! upload of chunk `m+1` overlaps the sampling of chunk `m`, and the download
//! of chunk `m`'s θ replica overlaps the next chunk's compute.
//!
//! [`PipelineModel`] simulates that pipeline with two engines — a copy engine
//! and a compute engine — exactly as the hardware provides, and reports both
//! the overlapped makespan and the non-overlapped (serial) time so the
//! benefit can be quantified.

use serde::{Deserialize, Serialize};

/// One pipeline stage: upload, compute, download (seconds each).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Stage {
    /// Host→device transfer time preceding the compute.
    pub upload_s: f64,
    /// Kernel execution time.
    pub compute_s: f64,
    /// Device→host transfer time following the compute.
    pub download_s: f64,
}

/// Result of simulating a pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PipelineResult {
    /// Makespan with double-buffered overlap.
    pub overlapped_s: f64,
    /// Makespan if every operation ran back-to-back on one engine.
    pub serial_s: f64,
}

impl PipelineResult {
    /// Fraction of the serial time hidden by the overlap (0.0–1.0).
    pub fn savings(&self) -> f64 {
        if self.serial_s <= 0.0 {
            0.0
        } else {
            1.0 - self.overlapped_s / self.serial_s
        }
    }
}

/// A two-engine (copy + compute) pipeline simulator.
#[derive(Debug, Default, Clone)]
pub struct PipelineModel {
    stages: Vec<Stage>,
}

impl PipelineModel {
    /// An empty pipeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a stage.
    pub fn push(&mut self, stage: Stage) -> &mut Self {
        self.stages.push(stage);
        self
    }

    /// Build from an iterator of stages.
    pub fn from_stages(stages: impl IntoIterator<Item = Stage>) -> Self {
        PipelineModel {
            stages: stages.into_iter().collect(),
        }
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True when the pipeline has no stages.
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }

    /// Simulate the pipeline.
    ///
    /// The copy engine serialises all uploads and downloads in submission
    /// order (upload of stage `i+1` is submitted right after upload of stage
    /// `i`, downloads are submitted when their compute finishes); the compute
    /// engine serialises kernels in stage order and can only start stage `i`
    /// once its upload completed and stage `i-1`'s kernel finished.
    pub fn simulate(&self) -> PipelineResult {
        let mut copy_free = 0.0f64; // when the copy engine becomes free
        let mut compute_free = 0.0f64; // when the compute engine becomes free
        let mut upload_done = vec![0.0f64; self.stages.len()];

        // Uploads are enqueued eagerly (double buffering): stage i's upload
        // starts as soon as the copy engine is free.
        // Downloads are enqueued when the corresponding compute finishes; to
        // keep the model simple they are folded into the copy engine timeline
        // after all uploads of earlier stages (true for a FIFO per-direction
        // engine pair, and pessimistic otherwise).
        for (i, st) in self.stages.iter().enumerate() {
            let start = copy_free;
            copy_free = start + st.upload_s;
            upload_done[i] = copy_free;
        }

        let mut serial = 0.0f64;
        let mut download_engine_free = 0.0f64;
        let mut finish = 0.0f64;
        for (i, st) in self.stages.iter().enumerate() {
            serial += st.upload_s + st.compute_s + st.download_s;
            let start = upload_done[i].max(compute_free);
            compute_free = start + st.compute_s;
            let dl_start = compute_free.max(download_engine_free);
            download_engine_free = dl_start + st.download_s;
            finish = finish.max(download_engine_free);
        }
        PipelineResult {
            overlapped_s: finish,
            serial_s: serial,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(u: f64, c: f64, d: f64) -> Stage {
        Stage {
            upload_s: u,
            compute_s: c,
            download_s: d,
        }
    }

    #[test]
    fn empty_pipeline_has_zero_time() {
        let r = PipelineModel::new().simulate();
        assert_eq!(r.overlapped_s, 0.0);
        assert_eq!(r.serial_s, 0.0);
        assert_eq!(r.savings(), 0.0);
    }

    #[test]
    fn single_stage_cannot_overlap() {
        let r = PipelineModel::from_stages([stage(1.0, 2.0, 0.5)]).simulate();
        assert!((r.overlapped_s - 3.5).abs() < 1e-9);
        assert!((r.serial_s - 3.5).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_pipeline_hides_transfers() {
        // Uploads (0.1 s) are much shorter than compute (1.0 s): after the
        // first upload, transfers hide completely behind compute.
        let stages: Vec<Stage> = (0..8).map(|_| stage(0.1, 1.0, 0.05)).collect();
        let r = PipelineModel::from_stages(stages).simulate();
        let expected = 0.1 + 8.0 * 1.0 + 0.05;
        assert!(
            (r.overlapped_s - expected).abs() < 1e-6,
            "{}",
            r.overlapped_s
        );
        assert!(r.serial_s > r.overlapped_s);
        assert!(r.savings() > 0.1);
    }

    #[test]
    fn transfer_bound_pipeline_is_limited_by_the_copy_engine() {
        // Uploads dominate: makespan ≈ sum of uploads + last compute + download.
        let stages: Vec<Stage> = (0..5).map(|_| stage(1.0, 0.1, 0.0)).collect();
        let r = PipelineModel::from_stages(stages).simulate();
        assert!((r.overlapped_s - (5.0 + 0.1)).abs() < 1e-6);
    }

    #[test]
    fn overlap_never_exceeds_serial_time() {
        let cases = vec![
            vec![
                stage(0.3, 0.5, 0.2),
                stage(0.7, 0.2, 0.1),
                stage(0.1, 0.9, 0.4),
            ],
            vec![stage(0.0, 1.0, 0.0); 4],
            vec![stage(0.5, 0.0, 0.5); 3],
        ];
        for stages in cases {
            let r = PipelineModel::from_stages(stages).simulate();
            assert!(r.overlapped_s <= r.serial_s + 1e-12);
            assert!(r.overlapped_s > 0.0);
        }
    }
}
