//! Per-kernel time profiling (feeds Table 5).
//!
//! The paper breaks the per-iteration device time into the three kernels of
//! Figure 3 — sampling, update θ, update φ — and shows sampling dominates
//! (79.4 %–87.9 %).  [`Profiler`] accumulates simulated time under arbitrary
//! kernel names so the same breakdown can be produced.

use parking_lot::Mutex;
use std::collections::HashMap;

/// Thread-safe accumulator of simulated time per kernel name.
///
/// The mutex is contended for real now that launches from different devices
/// run on different OS threads.  Each device owns its *own* profiler, so the
/// recorded totals stay deterministic: all records into one bucket come from
/// that device's sequential launch order, never from a cross-thread race.
#[derive(Debug, Default)]
pub struct Profiler {
    inner: Mutex<HashMap<String, f64>>,
}

impl Profiler {
    /// An empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `seconds` to the bucket `kernel_name`.
    pub fn record(&self, kernel_name: &str, seconds: f64) {
        *self
            .inner
            .lock()
            .entry(kernel_name.to_owned())
            .or_insert(0.0) += seconds;
    }

    /// Total seconds across all kernels.
    pub fn total(&self) -> f64 {
        self.inner.lock().values().sum()
    }

    /// Seconds recorded for one kernel (0.0 if never recorded).
    pub fn time_of(&self, kernel_name: &str) -> f64 {
        self.inner.lock().get(kernel_name).copied().unwrap_or(0.0)
    }

    /// Snapshot of absolute times per kernel.
    pub fn breakdown(&self) -> HashMap<String, f64> {
        self.inner.lock().clone()
    }

    /// Percentages per kernel, sorted descending — the format of Table 5.
    pub fn percentages(&self) -> Vec<(String, f64)> {
        let inner = self.inner.lock();
        let total: f64 = inner.values().sum();
        let mut v: Vec<(String, f64)> = inner
            .iter()
            .map(|(k, &t)| (k.clone(), if total > 0.0 { t / total * 100.0 } else { 0.0 }))
            .collect();
        v.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        v
    }

    /// Clear all recorded time.
    pub fn reset(&self) {
        self.inner.lock().clear();
    }

    /// Merge another profiler's times into this one (used when aggregating
    /// the per-device profiles of a multi-GPU run).
    pub fn merge(&self, other: &Profiler) {
        let other = other.breakdown();
        let mut inner = self.inner.lock();
        for (k, t) in other {
            *inner.entry(k).or_insert(0.0) += t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_breakdown() {
        let p = Profiler::new();
        p.record("sampling", 8.0);
        p.record("update_theta", 1.0);
        p.record("update_phi", 1.0);
        p.record("sampling", 2.0);
        assert_eq!(p.total(), 12.0);
        assert_eq!(p.time_of("sampling"), 10.0);
        assert_eq!(p.time_of("missing"), 0.0);
        let pct = p.percentages();
        assert_eq!(pct[0].0, "sampling");
        assert!((pct[0].1 - 83.333).abs() < 0.01);
    }

    #[test]
    fn empty_profiler_has_zero_total_and_percentages() {
        let p = Profiler::new();
        assert_eq!(p.total(), 0.0);
        assert!(p.percentages().is_empty());
    }

    #[test]
    fn reset_clears_everything() {
        let p = Profiler::new();
        p.record("k", 1.0);
        p.reset();
        assert_eq!(p.total(), 0.0);
        assert!(p.breakdown().is_empty());
    }

    #[test]
    fn merge_adds_per_kernel_times() {
        let a = Profiler::new();
        let b = Profiler::new();
        a.record("sampling", 1.0);
        b.record("sampling", 2.0);
        b.record("sync", 0.5);
        a.merge(&b);
        assert_eq!(a.time_of("sampling"), 3.0);
        assert_eq!(a.time_of("sync"), 0.5);
    }

    #[test]
    fn profiler_is_thread_safe() {
        use rayon::prelude::*;
        let p = Profiler::new();
        (0..1000).into_par_iter().for_each(|_| p.record("k", 0.001));
        assert!((p.total() - 1.0).abs() < 1e-9);
    }
}
