//! Execution traces in the Chrome trace-event format.
//!
//! Table 5 reports *aggregate* kernel percentages; when tuning the schedule
//! (overlap of transfers with compute, the reduce/broadcast rounds of §5.2)
//! one wants the actual timeline.  [`TraceCollector`] records simulated-time
//! spans per device and serialises them as Chrome `trace_event` JSON
//! (`chrome://tracing` / Perfetto / Speedscope all read it), with one trace
//! "process" per simulated GPU and one row per activity class.

use parking_lot::Mutex;
use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, Write};
use std::path::Path;

/// The activity class of a trace span (drawn as separate rows).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TraceKind {
    /// A compute kernel (sampling, update θ, update φ).
    Kernel,
    /// A host↔device or device↔device transfer.
    Transfer,
    /// A collective synchronization round.
    Collective,
}

impl TraceKind {
    fn row_name(self) -> &'static str {
        match self {
            TraceKind::Kernel => "kernels",
            TraceKind::Transfer => "transfers",
            TraceKind::Collective => "collectives",
        }
    }
}

/// One completed span on one device.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Simulated device (trace process) the span belongs to.
    pub device: usize,
    /// Activity class (trace row).
    pub kind: TraceKind,
    /// Label shown on the span.
    pub name: String,
    /// Start time in simulated seconds.
    pub start_s: f64,
    /// Duration in simulated seconds.
    pub duration_s: f64,
}

/// Collects spans from concurrently executing simulated devices.
#[derive(Debug, Default)]
pub struct TraceCollector {
    spans: Mutex<Vec<TraceSpan>>,
}

impl TraceCollector {
    /// An empty collector.
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// Record one span.  Negative durations are clamped to zero.
    pub fn record(
        &self,
        device: usize,
        kind: TraceKind,
        name: impl Into<String>,
        start_s: f64,
        duration_s: f64,
    ) {
        self.spans.lock().push(TraceSpan {
            device,
            kind,
            name: name.into(),
            start_s,
            duration_s: duration_s.max(0.0),
        });
    }

    /// Number of spans recorded.
    pub fn len(&self) -> usize {
        self.spans.lock().len()
    }

    /// Whether nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.spans.lock().is_empty()
    }

    /// Snapshot of the recorded spans, sorted by start time.
    pub fn spans(&self) -> Vec<TraceSpan> {
        let mut v = self.spans.lock().clone();
        v.sort_by(|a, b| a.start_s.partial_cmp(&b.start_s).unwrap());
        v
    }

    /// Total busy time per device (seconds), summed over all spans.
    pub fn busy_time_per_device(&self) -> Vec<(usize, f64)> {
        let spans = self.spans.lock();
        let mut per_device: Vec<(usize, f64)> = Vec::new();
        for s in spans.iter() {
            match per_device.iter_mut().find(|(d, _)| *d == s.device) {
                Some((_, t)) => *t += s.duration_s,
                None => per_device.push((s.device, s.duration_s)),
            }
        }
        per_device.sort_by_key(|&(d, _)| d);
        per_device
    }

    /// Remove every recorded span.
    pub fn clear(&self) {
        self.spans.lock().clear();
    }

    /// Serialise the trace as Chrome trace-event JSON (complete "X" events,
    /// microsecond timestamps, one process per device).
    pub fn to_chrome_trace(&self) -> String {
        let spans = self.spans();
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        // Process / thread metadata so the viewer shows readable names.
        let mut devices: Vec<usize> = spans.iter().map(|s| s.device).collect();
        devices.sort_unstable();
        devices.dedup();
        for d in &devices {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"M\",\"pid\":{d},\"name\":\"process_name\",\"args\":{{\"name\":\"GPU {d}\"}}}}"
            );
        }
        for s in &spans {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"ph\":\"X\",\"pid\":{},\"tid\":\"{}\",\"name\":\"{}\",\"ts\":{:.3},\"dur\":{:.3}}}",
                s.device,
                s.kind.row_name(),
                escape_json(&s.name),
                s.start_s * 1e6,
                s.duration_s * 1e6,
            );
        }
        out.push_str("]}");
        out
    }

    /// Write the Chrome trace JSON to a file.
    pub fn save_chrome_trace<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        let mut f = File::create(path)?;
        f.write_all(self.to_chrome_trace().as_bytes())
    }
}

/// Minimal JSON string escaping for span names.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_are_recorded_and_sorted() {
        let t = TraceCollector::new();
        t.record(1, TraceKind::Kernel, "sampling", 2.0, 0.5);
        t.record(0, TraceKind::Transfer, "chunk0 H2D", 0.0, 0.1);
        t.record(0, TraceKind::Kernel, "sampling", 0.1, 1.0);
        assert_eq!(t.len(), 3);
        let spans = t.spans();
        assert_eq!(spans[0].name, "chunk0 H2D");
        assert!(spans.windows(2).all(|w| w[0].start_s <= w[1].start_s));
    }

    #[test]
    fn busy_time_is_aggregated_per_device() {
        let t = TraceCollector::new();
        t.record(0, TraceKind::Kernel, "a", 0.0, 1.0);
        t.record(0, TraceKind::Kernel, "b", 1.0, 0.5);
        t.record(2, TraceKind::Collective, "reduce", 0.0, 0.25);
        let busy = t.busy_time_per_device();
        assert_eq!(busy.len(), 2);
        assert_eq!(busy[0].0, 0);
        assert!((busy[0].1 - 1.5).abs() < 1e-12);
        assert!((busy[1].1 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn chrome_trace_is_wellformed_and_microsecond_scaled() {
        let t = TraceCollector::new();
        t.record(0, TraceKind::Kernel, "sampling", 0.001, 0.002);
        t.record(1, TraceKind::Transfer, "phi \"sync\"", 0.0, 0.001);
        let json = t.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        // 0.001 s = 1000 µs.
        assert!(json.contains("\"ts\":1000.000"));
        assert!(json.contains("\"dur\":2000.000"));
        // Embedded quotes must be escaped.
        assert!(json.contains("phi \\\"sync\\\""));
        // Process metadata for both devices.
        assert!(json.contains("GPU 0") && json.contains("GPU 1"));
        // Balanced braces (a cheap well-formedness check without a parser).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
    }

    #[test]
    fn clear_and_negative_durations() {
        let t = TraceCollector::new();
        t.record(0, TraceKind::Kernel, "x", 1.0, -5.0);
        assert_eq!(t.spans()[0].duration_s, 0.0);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.to_chrome_trace(), "{\"traceEvents\":[]}");
    }

    #[test]
    fn file_roundtrip_writes_valid_content() {
        let t = TraceCollector::new();
        t.record(0, TraceKind::Kernel, "sampling", 0.0, 1.0);
        let dir = std::env::temp_dir().join("culda_trace_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.json");
        t.save_chrome_trace(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert_eq!(content, t.to_chrome_trace());
        std::fs::remove_file(&path).ok();
    }
}
