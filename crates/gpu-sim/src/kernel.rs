//! The kernel execution model.
//!
//! A kernel is launched over a grid of thread blocks (§2.2).  The simulator
//! executes one host task per thread block on the rayon pool — this mirrors
//! the real machine closely enough for correctness purposes (thread blocks
//! are independent except for global atomics, which map to host atomics) —
//! and charges simulated time from the operation counters each block
//! accumulates in its [`BlockCtx`].
//!
//! Kernels are written at "warp granularity": CuLDA_CGS dedicates one warp to
//! one sampler (§6.1.1), so the kernel code models a warp's vector step as a
//! single logical operation whose cost helpers account the full 32 lanes.

use crate::cost::{CostCounters, KernelTime};
use crate::device::Device;
use crate::memory::SharedMemory;
use crate::rng::BlockRng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Launch geometry of a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LaunchConfig {
    /// Number of thread blocks in the grid.
    pub grid_blocks: usize,
    /// Number of warps (samplers) per thread block; CuLDA_CGS uses 32, the
    /// maximum the hardware allows (§6.1.2).
    pub warps_per_block: u32,
}

impl LaunchConfig {
    /// A grid of `grid_blocks` blocks with the paper's 32 samplers per block.
    pub fn new(grid_blocks: usize) -> Self {
        LaunchConfig {
            grid_blocks,
            warps_per_block: 32,
        }
    }

    /// Total number of warps in the launch.
    pub fn total_warps(&self) -> u64 {
        self.grid_blocks as u64 * self.warps_per_block as u64
    }
}

/// Per-block execution context: operation counters, the block's shared-memory
/// budget and a deterministic RNG.
#[derive(Debug)]
pub struct BlockCtx {
    /// Index of this block within the grid.
    pub block_id: usize,
    /// Operation counters accumulated by this block.
    pub counters: CostCounters,
    /// Shared-memory budget for this block.
    pub shared: SharedMemory,
    /// Deterministic per-block random number generator.
    pub rng: BlockRng,
    /// Warp width of the device (32 on NVIDIA GPUs, 1 on CPUs).
    pub warp_size: u32,
}

impl BlockCtx {
    /// Create a context (normally done by [`Device::launch`]).
    pub fn new(block_id: usize, shared_capacity: u64, rng: BlockRng, warp_size: u32) -> Self {
        BlockCtx {
            block_id,
            counters: CostCounters::zero(),
            shared: SharedMemory::new(shared_capacity),
            rng,
            warp_size,
        }
    }

    /// Account `bytes` read from global (off-chip) memory.
    #[inline]
    pub fn read_global(&mut self, bytes: u64) {
        self.counters.dram_read_bytes += bytes;
    }

    /// Account `bytes` written to global memory.
    #[inline]
    pub fn write_global(&mut self, bytes: u64) {
        self.counters.dram_write_bytes += bytes;
    }

    /// Account `bytes` served by the L1 cache (§6.1.2: sparse-index loads are
    /// routed through L1 following the cache-bypassing heuristics of \[28\]).
    #[inline]
    pub fn read_l1(&mut self, bytes: u64) {
        self.counters.l1_bytes += bytes;
    }

    /// Account `bytes` of shared-memory traffic (reads or writes).
    #[inline]
    pub fn shared_traffic(&mut self, bytes: u64) {
        self.counters.shared_bytes += bytes;
    }

    /// Try to reserve shared memory for a block-lifetime structure (the p2
    /// index tree, the p*(k) array).  Returns `false` when it does not fit,
    /// in which case the caller should account the structure's traffic as L1
    /// instead (the spill path).
    #[inline]
    pub fn shared_alloc(&mut self, bytes: u64) -> bool {
        self.shared.try_alloc(bytes)
    }

    /// Account `n` single-precision floating-point operations.
    #[inline]
    pub fn flops(&mut self, n: u64) {
        self.counters.flops += n;
    }

    /// Account `n` integer ALU operations.
    #[inline]
    pub fn int_ops(&mut self, n: u64) {
        self.counters.int_ops += n;
    }

    /// Account `n` global-memory atomic operations (each also touches DRAM).
    #[inline]
    pub fn atomics(&mut self, n: u64) {
        self.counters.atomic_ops += n;
        self.counters.dram_write_bytes += 4 * n;
    }

    /// Draw a uniform float in `[0, 1)`.
    #[inline]
    pub fn rand_f32(&mut self) -> f32 {
        self.rng.next_f32()
    }

    /// Draw a uniform integer in `[0, bound)`.
    #[inline]
    pub fn rand_below(&mut self, bound: u32) -> u32 {
        self.rng.next_below(bound)
    }

    /// Counter-based draw in `[0, 1)`: a pure function of
    /// `(seed, stream, counter)`, independent of which block, launch or
    /// device executes it (see [`crate::rng::stable_f32`]).  Costed like any
    /// other RNG draw.
    #[inline]
    pub fn stable_f32(&mut self, seed: u64, stream: u64, counter: u64) -> f32 {
        self.counters.rng_draws += 1;
        crate::rng::stable_f32(seed, stream, counter)
    }
}

/// A kernel body executed once per thread block.
///
/// Implemented by closures of type `Fn(usize, &mut BlockCtx)`.
pub trait BlockKernel: Sync {
    /// Execute the block with index `block_id`.
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx);
}

impl<F> BlockKernel for F
where
    F: Fn(usize, &mut BlockCtx) + Sync,
{
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx) {
        self(block_id, ctx)
    }
}

// Kernels selected at runtime (e.g. the pluggable sampler kernels of
// `culda-core`) arrive as boxed trait objects; this forwarding impl — plus
// `Device::launch` accepting `?Sized` kernels — lets them launch directly.
impl BlockKernel for Box<dyn BlockKernel + '_> {
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx) {
        (**self).run_block(block_id, ctx)
    }
}

/// Result of one kernel launch.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KernelStats {
    /// Kernel name (profiling key).
    pub name: String,
    /// Launch geometry.
    pub config: LaunchConfig,
    /// Summed operation counters of all blocks.
    pub counters: CostCounters,
    /// Simulated execution time under the device's roofline model.
    pub time: KernelTime,
}

impl Device {
    /// Launch `kernel` over `config.grid_blocks` thread blocks.
    ///
    /// Blocks execute concurrently on the host thread pool (real OS threads,
    /// `CULDA_NUM_THREADS` wide); their counters are reduced and converted
    /// into simulated time, which is recorded in the device profiler under
    /// `name`.  The result is independent of which thread runs which block:
    /// every block draws from a [`BlockRng`] keyed on
    /// `(device seed, launch id, block id)` rather than on any shared RNG
    /// stream, and the counter reduction goes through the shim's fixed
    /// partial tree, so neither randomness nor summation order can vary with
    /// scheduling.
    pub fn launch<K: BlockKernel + ?Sized>(
        &self,
        name: &str,
        config: LaunchConfig,
        kernel: &K,
    ) -> KernelStats {
        let launch_id = self.next_launch_id();
        let counters: CostCounters = (0..config.grid_blocks)
            .into_par_iter()
            .map(|b| {
                let rng = BlockRng::new(self.seed, launch_id, b as u64);
                let mut ctx =
                    BlockCtx::new(b, self.spec.shared_mem_per_block, rng, self.spec.warp_size);
                kernel.run_block(b, &mut ctx);
                ctx.counters.rng_draws += ctx.rng.draws();
                ctx.counters
            })
            .sum();
        let time = self.time_for(&counters, config.grid_blocks);
        self.record_time(name, time.total_s);
        KernelStats {
            name: name.to_owned(),
            config,
            counters,
            time,
        }
    }

    /// Launch with sequential block execution (useful for debugging
    /// order-dependent issues; produces identical counters and time).
    pub fn launch_sequential<K: BlockKernel + ?Sized>(
        &self,
        name: &str,
        config: LaunchConfig,
        kernel: &K,
    ) -> KernelStats {
        let launch_id = self.next_launch_id();
        let mut counters = CostCounters::zero();
        for b in 0..config.grid_blocks {
            let rng = BlockRng::new(self.seed, launch_id, b as u64);
            let mut ctx =
                BlockCtx::new(b, self.spec.shared_mem_per_block, rng, self.spec.warp_size);
            kernel.run_block(b, &mut ctx);
            ctx.counters.rng_draws += ctx.rng.draws();
            counters += ctx.counters;
        }
        let time = self.time_for(&counters, config.grid_blocks);
        self.record_time(name, time.total_s);
        KernelStats {
            name: name.to_owned(),
            config,
            counters,
            time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceSpec;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn device() -> Device {
        Device::new(0, DeviceSpec::titan_x_maxwell(), 123)
    }

    #[test]
    fn launch_runs_every_block_exactly_once() {
        let dev = device();
        let hits = AtomicU64::new(0);
        let kernel = |_b: usize, ctx: &mut BlockCtx| {
            hits.fetch_add(1, Ordering::Relaxed);
            ctx.read_global(100);
        };
        let stats = dev.launch("test", LaunchConfig::new(64), &kernel);
        assert_eq!(hits.load(Ordering::Relaxed), 64);
        assert_eq!(stats.counters.dram_read_bytes, 6400);
        assert!(stats.time.total_s > 0.0);
    }

    #[test]
    fn counters_are_summed_across_blocks() {
        let dev = device();
        let kernel = |b: usize, ctx: &mut BlockCtx| {
            ctx.flops(b as u64);
            ctx.atomics(1);
        };
        let stats = dev.launch("sum", LaunchConfig::new(10), &kernel);
        assert_eq!(stats.counters.flops, (0..10u64).sum());
        assert_eq!(stats.counters.atomic_ops, 10);
    }

    #[test]
    fn sequential_and_parallel_launches_agree() {
        let dev_a = Device::new(0, DeviceSpec::v100_volta(), 9);
        let dev_b = Device::new(0, DeviceSpec::v100_volta(), 9);
        let kernel = |_b: usize, ctx: &mut BlockCtx| {
            let u = ctx.rand_f32();
            ctx.read_global((u * 100.0) as u64 + 10);
            ctx.flops(5);
        };
        let a = dev_a.launch("k", LaunchConfig::new(200), &kernel);
        let b = dev_b.launch_sequential("k", LaunchConfig::new(200), &kernel);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.time, b.time);
    }

    #[test]
    fn launches_are_deterministic_for_a_seed() {
        let run = |seed| {
            let dev = Device::new(0, DeviceSpec::gtx_1080(), seed);
            let kernel = |_b: usize, ctx: &mut BlockCtx| {
                let r = ctx.rand_below(1000);
                ctx.read_global(r as u64);
            };
            dev.launch("k", LaunchConfig::new(50), &kernel).counters
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
    }

    #[test]
    fn profiler_accumulates_across_launches() {
        let dev = device();
        let kernel = |_b: usize, ctx: &mut BlockCtx| ctx.read_global(1 << 20);
        dev.launch("sampling", LaunchConfig::new(100), &kernel);
        dev.launch("sampling", LaunchConfig::new(100), &kernel);
        dev.launch("update_phi", LaunchConfig::new(100), &kernel);
        let pct = dev.profiler.percentages();
        let sampling = pct.iter().find(|(n, _)| n == "sampling").unwrap().1;
        assert!((sampling - 2.0 / 3.0 * 100.0).abs() < 1.0);
    }

    #[test]
    fn shared_alloc_respects_block_budget() {
        let dev = device(); // Maxwell: 48 KiB shared per block
        let kernel = |_b: usize, ctx: &mut BlockCtx| {
            assert!(ctx.shared_alloc(40 * 1024));
            assert!(!ctx.shared_alloc(20 * 1024));
            ctx.shared_traffic(64);
        };
        let stats = dev.launch("shared", LaunchConfig::new(4), &kernel);
        assert_eq!(stats.counters.shared_bytes, 4 * 64);
    }

    #[test]
    fn rng_draws_are_counted() {
        let dev = device();
        let kernel = |_b: usize, ctx: &mut BlockCtx| {
            for _ in 0..10 {
                ctx.rand_f32();
            }
        };
        let stats = dev.launch("rng", LaunchConfig::new(8), &kernel);
        assert_eq!(stats.counters.rng_draws, 80);
    }

    #[test]
    fn boxed_trait_object_kernels_launch_like_concrete_ones() {
        let dev_a = Device::new(0, DeviceSpec::v100_volta(), 3);
        let dev_b = Device::new(0, DeviceSpec::v100_volta(), 3);
        let concrete = |_b: usize, ctx: &mut BlockCtx| {
            ctx.read_global(64);
            ctx.flops(8);
        };
        let boxed: Box<dyn BlockKernel> = Box::new(concrete);
        let a = dev_a.launch("k", LaunchConfig::new(16), &concrete);
        let b = dev_b.launch("k", LaunchConfig::new(16), &boxed);
        assert_eq!(a.counters, b.counters);
        assert_eq!(a.time, b.time);
    }

    #[test]
    fn launch_config_total_warps() {
        let cfg = LaunchConfig::new(10);
        assert_eq!(cfg.warps_per_block, 32);
        assert_eq!(cfg.total_warps(), 320);
    }
}
