//! Multi-node cluster simulation: `N` nodes × `G` GPUs over a two-tier
//! interconnect.
//!
//! The paper's cluster-scale discussion (and its §7.2 comparison against the
//! LDA\* parameter-server baseline) assumes the model replicas live on
//! machines joined by a fabric that is orders of magnitude slower than the
//! intra-node GPU links: PCIe 3.0 moves 16 GB/s, NVLink up to 300 GB/s,
//! while 10 GbE delivers about 1 GB/s with 50 µs of latency.  A flat §5.2
//! tree reduce that ignores the topology therefore pays the slow fabric on
//! *every* round.  The classic fix — the same trick distributed-storage
//! codes use — is hierarchical reduction: combine replicas over the fast
//! local links first, so only **one already-reduced copy** of each shard
//! crosses the fabric, then broadcast back over the local links.
//!
//! This module provides the topology description ([`ClusterTopology`]) with
//! both cost models (flat-over-fabric vs hierarchical) and per-tier byte
//! accounting, plus [`ClusterSystem`], the constructor/view type that builds
//! a clustered [`MultiGpuSystem`] and exposes per-node views of it.
//!
//! Grouping devices into nodes is *cost-only*: the determinism contract
//! (every draw is a counter-based pure function of token identity) makes the
//! sampled assignments independent of the topology, and the φ combination is
//! an integer column sum, identical however the replicas are grouped.  A
//! `1 × 4`, `2 × 2` and `4 × 1` cluster of the same total GPU count train
//! bit-identically; only the simulated communication time differs.

use crate::collective::{self, ReducePlan};
use crate::device::DeviceSpec;
use crate::multi_gpu::MultiGpuSystem;
use crate::transfer::Interconnect;
use serde::{Deserialize, Serialize};

/// The shape of a simulated cluster: how many nodes, how many GPUs each node
/// holds, and the inter-node fabric joining them.  The *intra*-node link is
/// carried by the [`MultiGpuSystem`] the topology is attached to.
///
/// ```
/// use culda_gpusim::{ClusterTopology, Interconnect};
///
/// let topo = ClusterTopology::new(2, 4, Interconnect::Ethernet10G);
/// assert_eq!(topo.total_gpus(), 8);
/// // Devices are numbered node-major: GPU 5 is the second GPU of node 1.
/// assert_eq!(topo.node_of(5), 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterTopology {
    /// Number of nodes `N`.
    pub num_nodes: usize,
    /// GPUs per node `G` (homogeneous across nodes).
    pub gpus_per_node: usize,
    /// The inter-node fabric (Ethernet, InfiniBand, …).
    pub inter_link: Interconnect,
}

impl ClusterTopology {
    /// Describe an `N × G` cluster joined by `inter_link`.
    ///
    /// # Panics
    /// Panics when `num_nodes` or `gpus_per_node` is zero.
    pub fn new(num_nodes: usize, gpus_per_node: usize, inter_link: Interconnect) -> Self {
        assert!(num_nodes >= 1, "a cluster needs at least one node");
        assert!(gpus_per_node >= 1, "a node needs at least one GPU");
        ClusterTopology {
            num_nodes,
            gpus_per_node,
            inter_link,
        }
    }

    /// Total GPUs `N × G`.
    pub fn total_gpus(&self) -> usize {
        self.num_nodes * self.gpus_per_node
    }

    /// The node a (node-major numbered) device lives on.
    pub fn node_of(&self, device_id: usize) -> usize {
        device_id / self.gpus_per_node
    }

    /// Simulated time of a *topology-oblivious* flat φ sync of one `bytes`
    /// replica: the full `⌈log2 NG⌉`-round tree reduce + broadcast with every
    /// round charged over the slow fabric — what a single-node code does when
    /// pointed at a cluster unchanged.
    pub fn flat_sync_time_s(&self, bytes: u64, add_bw: f64) -> f64 {
        collective::sync_time_s(self.total_gpus(), bytes, self.inter_link, add_bw)
    }

    /// Simulated time of the *intra-node* half of the hierarchical sync of
    /// one `bytes` replica: the per-node tree reduce into the node leader
    /// plus the tree broadcast back, over the fast local `intra_link`.  All
    /// nodes run this concurrently, so it is charged once.  Zero when each
    /// node holds a single GPU.
    pub fn hier_local_time_s(&self, bytes: u64, intra_link: Interconnect, add_bw: f64) -> f64 {
        let g = self.gpus_per_node;
        ReducePlan::tree_reduce(g).time_s(bytes, intra_link, add_bw)
            + ReducePlan::tree_broadcast(g).time_s(bytes, intra_link, 0.0)
    }

    /// Simulated time of the *inter-node* exchange of `bytes` of
    /// already-reduced shard data among the `N` node leaders over the fabric
    /// (tree reduce + broadcast across nodes).  Zero for a single node.
    pub fn inter_exchange_time_s(&self, bytes: u64, add_bw: f64) -> f64 {
        collective::sync_time_s(self.num_nodes, bytes, self.inter_link, add_bw)
    }

    /// Simulated time of the full hierarchical φ sync of one `bytes` replica:
    /// per-node reduce over `intra_link` → leader exchange over the fabric →
    /// per-node broadcast.  With one node this degenerates *exactly* to the
    /// single-node §5.2 sync, which is what keeps all single-node numbers
    /// unchanged.
    pub fn hier_sync_time_s(&self, bytes: u64, intra_link: Interconnect, add_bw: f64) -> f64 {
        self.hier_local_time_s(bytes, intra_link, add_bw)
            + self.inter_exchange_time_s(bytes, add_bw)
    }

    /// Bytes the flat sync pushes over the fabric for one `bytes` replica:
    /// `2 (NG − 1)` tree steps, every one on the slow link.
    pub fn flat_fabric_bytes(&self, bytes: u64) -> u64 {
        2 * (self.total_gpus() as u64 - 1) * bytes
    }

    /// Bytes the hierarchical sync moves over the *intra-node* links for one
    /// `bytes` replica: `2 (G − 1)` tree steps on each of the `N` nodes.
    pub fn hier_intra_bytes(&self, bytes: u64) -> u64 {
        2 * (self.gpus_per_node as u64 - 1) * self.num_nodes as u64 * bytes
    }

    /// Bytes the hierarchical sync moves over the fabric for one `bytes`
    /// replica: `2 (N − 1)` leader-tree steps — a `G`-fold reduction of
    /// fabric traffic versus [`ClusterTopology::flat_fabric_bytes`].
    pub fn hier_inter_bytes(&self, bytes: u64) -> u64 {
        2 * (self.num_nodes as u64 - 1) * bytes
    }
}

/// A simulated cluster: the flat [`MultiGpuSystem`] carrying all `N × G`
/// devices (what the trainer drives) plus per-node views sharing the same
/// underlying devices.
///
/// The devices are numbered node-major (`0..G` on node 0, `G..2G` on node 1,
/// …) and seeded exactly as [`MultiGpuSystem::homogeneous`] seeds a flat
/// `N × G` system, so a cluster and the equivalent single-node system draw
/// from identical per-device RNG streams — the bit-exactness guarantee
/// across `(nodes × GPUs)` regroupings follows directly.
#[derive(Debug)]
pub struct ClusterSystem {
    system: MultiGpuSystem,
}

impl ClusterSystem {
    /// Build a homogeneous `num_nodes × gpus_per_node` cluster: every device
    /// uses `spec`, nodes are joined internally by `intra_link` and to each
    /// other by `inter_link`.
    pub fn homogeneous(
        spec: DeviceSpec,
        num_nodes: usize,
        gpus_per_node: usize,
        seed: u64,
        intra_link: Interconnect,
        inter_link: Interconnect,
    ) -> Self {
        let topology = ClusterTopology::new(num_nodes, gpus_per_node, inter_link);
        ClusterSystem {
            system: MultiGpuSystem::clustered(spec, topology, seed, intra_link),
        }
    }

    /// The cluster shape.
    pub fn topology(&self) -> ClusterTopology {
        self.system
            .cluster()
            .expect("a ClusterSystem always carries its topology")
    }

    /// Number of nodes `N`.
    pub fn num_nodes(&self) -> usize {
        self.topology().num_nodes
    }

    /// GPUs per node `G`.
    pub fn gpus_per_node(&self) -> usize {
        self.topology().gpus_per_node
    }

    /// The flat system over all `N × G` devices (what the trainer drives).
    pub fn system(&self) -> &MultiGpuSystem {
        &self.system
    }

    /// Consume the view and return the flat clustered system.
    pub fn into_system(self) -> MultiGpuSystem {
        self.system
    }

    /// A single-node view of node `n`: a [`MultiGpuSystem`] over that node's
    /// `G` devices (shared with the flat system) and the intra-node link,
    /// with no cluster attached.  Useful for per-node cost queries and
    /// introspection; mutating device clocks through a view mutates the
    /// cluster's devices, because they are the same devices.
    pub fn node(&self, n: usize) -> MultiGpuSystem {
        let topo = self.topology();
        assert!(n < topo.num_nodes, "node index out of range");
        let devices =
            self.system.devices()[n * topo.gpus_per_node..(n + 1) * topo.gpus_per_node].to_vec();
        MultiGpuSystem::from_parts(devices, self.system.interconnect(), None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster(n: usize, g: usize) -> ClusterSystem {
        ClusterSystem::homogeneous(
            DeviceSpec::titan_xp_pascal(),
            n,
            g,
            7,
            Interconnect::Pcie3,
            Interconnect::Ethernet10G,
        )
    }

    #[test]
    fn cluster_devices_match_the_equivalent_flat_system() {
        let c = cluster(2, 2);
        let flat =
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 4, 7, Interconnect::Pcie3);
        assert_eq!(c.system().num_gpus(), 4);
        for (a, b) in c.system().devices().iter().zip(flat.devices()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.seed, b.seed, "cluster grouping must not perturb seeds");
        }
    }

    #[test]
    fn node_views_share_the_underlying_devices() {
        let c = cluster(2, 2);
        let node1 = c.node(1);
        assert_eq!(node1.num_gpus(), 2);
        assert_eq!(node1.device(0).id, 2);
        node1.device(0).record_time("sampling", 1.5);
        assert_eq!(c.system().device(2).busy_time_s(), 1.5);
        assert!(node1.cluster().is_none(), "a node view is a plain system");
    }

    #[test]
    fn hierarchical_sync_beats_flat_on_a_slow_fabric() {
        let topo = ClusterTopology::new(4, 4, Interconnect::Ethernet10G);
        let bytes = 8 << 20;
        let add_bw = DeviceSpec::titan_xp_pascal().effective_bandwidth_bytes_per_s();
        let flat = topo.flat_sync_time_s(bytes, add_bw);
        let hier = topo.hier_sync_time_s(bytes, Interconnect::Pcie3, add_bw);
        assert!(
            hier < flat,
            "hierarchical {hier} should beat flat {flat} over 10 GbE"
        );
        // Fabric traffic shrinks by the G-fold factor of the local reduction.
        assert_eq!(topo.flat_fabric_bytes(bytes), 30 * bytes);
        assert_eq!(topo.hier_inter_bytes(bytes), 6 * bytes);
        assert_eq!(topo.hier_intra_bytes(bytes), 24 * bytes);
    }

    #[test]
    fn single_node_hierarchy_degenerates_to_the_flat_intra_sync() {
        let topo = ClusterTopology::new(1, 4, Interconnect::Ethernet10G);
        let bytes = 1 << 20;
        let add_bw = 400.0e9;
        let hier = topo.hier_sync_time_s(bytes, Interconnect::Pcie3, add_bw);
        let flat = collective::sync_time_s(4, bytes, Interconnect::Pcie3, add_bw);
        assert!((hier - flat).abs() < 1e-15);
        assert_eq!(topo.inter_exchange_time_s(bytes, add_bw), 0.0);
        assert_eq!(topo.hier_inter_bytes(bytes), 0);
    }

    #[test]
    fn single_gpu_nodes_pay_no_intra_traffic() {
        let topo = ClusterTopology::new(4, 1, Interconnect::Ethernet10G);
        assert_eq!(
            topo.hier_local_time_s(1 << 20, Interconnect::NvLink, 1e9),
            0.0
        );
        assert_eq!(topo.hier_intra_bytes(1 << 20), 0);
        // All the traffic is the leader exchange — identical to flat here.
        let add_bw = 400.0e9;
        let hier = topo.hier_sync_time_s(1 << 20, Interconnect::NvLink, add_bw);
        let flat = topo.flat_sync_time_s(1 << 20, add_bw);
        assert!((hier - flat).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn zero_node_cluster_is_rejected() {
        let _ = ClusterTopology::new(0, 2, Interconnect::Ethernet10G);
    }

    #[test]
    #[should_panic]
    fn zero_gpu_node_is_rejected() {
        let _ = ClusterTopology::new(2, 0, Interconnect::Ethernet10G);
    }
}
