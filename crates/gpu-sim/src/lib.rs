//! # culda-gpusim
//!
//! A SIMT GPU **simulator substrate** standing in for the CUDA devices the
//! paper runs on (Table 2: Maxwell Titan X, Pascal Titan Xp, Volta V100).
//!
//! ## Why a simulator
//!
//! The reproduction targets machines without NVIDIA GPUs, and Rust's GPU
//! kernel story is not mature enough for the hand-tuned warp-level sampling
//! kernels the paper describes.  The substitution keeps the two things the
//! paper's claims rest on:
//!
//! 1. **Functional fidelity** — kernels written against this crate execute
//!    for real (on a rayon thread pool, one task per thread block), so the
//!    statistical behaviour of the LDA solver (convergence, log-likelihood,
//!    topic quality) is genuine, not modelled.
//! 2. **Performance fidelity by roofline** — every kernel accounts the bytes
//!    it moves, the flops it spends, and the atomics it issues
//!    ([`cost::CostCounters`]).  The paper's own §3 argues LDA is memory
//!    bound (0.27 Flops/Byte), so simulated time computed as
//!    `max(bytes/bandwidth, flops/peak, atomics/throughput)` per device
//!    reproduces the *relative* performance the paper reports across device
//!    generations, against CPU baselines, and across GPU counts.
//!
//! ## What is modelled
//!
//! * [`device::DeviceSpec`] — per-architecture specifications (memory
//!   bandwidth, SM count, shared memory, peak FLOPS, capacity) with presets
//!   matching Table 2 plus the GTX 1080 used by SaberLDA and the evaluation
//!   platforms' Xeon CPUs.
//! * [`kernel`] — the execution model: a [`kernel::BlockKernel`] is launched
//!   over a grid of thread blocks; each block gets a [`kernel::BlockCtx`]
//!   that provides a deterministic per-block RNG, shared-memory accounting
//!   and operation counters.
//! * [`memory`] — device-memory capacity tracking (the paper's motivation
//!   for the `M > 1` scheduling mode) and shared-memory capacity checks.
//! * [`occupancy`] — a CUDA-style theoretical occupancy calculator (per-SM
//!   warp/block/shared-memory/register limits) for analysing the paper's
//!   32-samplers-per-block, shared-p*(k) kernel layout.
//! * [`transfer`] — PCIe 3.0 / NVLink / 10 GbE interconnect cost models.
//! * [`collective`] — the tree reduce + broadcast schedule of §5.2.
//! * [`stream`] — transfer/compute overlap for the pipelined `WorkSchedule2`.
//! * [`profile`] — per-kernel time breakdown (Table 5).
//! * [`multi_gpu`] — a multi-device system with a shared interconnect.
//! * [`cluster`] — multi-node clusters (`N` nodes × `G` GPUs) over a
//!   two-tier interconnect, with flat vs hierarchical φ-sync cost models.
//! * [`topology`] — interconnect topologies (PCIe tree, NVLink mesh) and the
//!   tree-vs-ring collective comparison used by the extension ablations.
//! * [`energy`] — per-architecture energy model (pJ/byte, pJ/flop) and
//!   per-run energy reports.
//! * [`trace`] — Chrome trace-event export of simulated timelines.

#![warn(missing_docs)]

pub mod cluster;
pub mod collective;
pub mod cost;
pub mod device;
pub mod energy;
pub mod kernel;
pub mod memory;
pub mod multi_gpu;
pub mod occupancy;
pub mod profile;
pub mod rng;
pub mod stream;
pub mod topology;
pub mod trace;
pub mod transfer;

pub use cluster::{ClusterSystem, ClusterTopology};
pub use collective::{overlapped_span_s, sharded_sync_times_s, ReducePlan};
pub use cost::{CostCounters, KernelTime};
pub use device::{Arch, Device, DeviceSpec, DeviceSpecBuilder};
pub use energy::{EnergyModel, EnergyReport};
pub use kernel::{BlockCtx, BlockKernel, KernelStats, LaunchConfig};
pub use memory::{DeviceMemory, OutOfMemory, SharedMemory};
pub use multi_gpu::MultiGpuSystem;
pub use occupancy::{ArchLimits, KernelResources, Occupancy, OccupancyLimiter};
pub use profile::Profiler;
pub use rng::BlockRng;
pub use stream::PipelineModel;
pub use topology::Topology;
pub use trace::{TraceCollector, TraceKind, TraceSpan};
pub use transfer::Interconnect;
