//! Multi-GPU interconnect topologies and collective-algorithm comparison.
//!
//! The paper's synchronization (§5.2) assumes a flat interconnect: every
//! GPU pair communicates at the same PCIe (or NVLink) speed and the φ
//! replicas are combined with a `log G` tree reduce followed by a broadcast.
//! Real machines have structure — GPUs under a shared PCIe switch contend for
//! the same uplink, DGX-class boxes have an NVLink mesh — and the obvious
//! alternative collective is the bandwidth-optimal ring all-reduce.  This
//! module models both so the ablation benchmarks can ask two questions the
//! paper leaves open:
//!
//! 1. how much does the tree reduce lose to contention on a PCIe tree, and
//! 2. when does a ring all-reduce beat the paper's reduce+broadcast?

use crate::collective::ReducePlan;
use crate::transfer::Interconnect;
use serde::{Deserialize, Serialize};

/// Physical layout of the GPU-to-GPU links.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Topology {
    /// All GPUs hang off one PCIe switch: peer-to-peer traffic shares the
    /// switch, so concurrent transfers in the same round divide the
    /// bandwidth.
    PcieTree,
    /// NVLink mesh (DGX-style): every pair has a dedicated link, so
    /// transfers in one round do not contend.
    NvLinkMesh,
    /// A uniform custom link between every pair, with the given contention
    /// behaviour.
    Uniform {
        /// The pairwise link.
        link: Interconnect,
        /// Whether concurrent transfers in one round share the bandwidth.
        shared: bool,
    },
}

impl Topology {
    /// The link used by a single point-to-point transfer.
    pub fn link(&self) -> Interconnect {
        match self {
            Topology::PcieTree => Interconnect::Pcie3,
            Topology::NvLinkMesh => Interconnect::NvLink,
            Topology::Uniform { link, .. } => *link,
        }
    }

    /// Whether concurrent transfers within one collective round contend for
    /// the same physical bandwidth.
    pub fn contended(&self) -> bool {
        match self {
            Topology::PcieTree => true,
            Topology::NvLinkMesh => false,
            Topology::Uniform { shared, .. } => *shared,
        }
    }

    /// Time for one collective round in which `concurrent` equally sized
    /// transfers of `bytes` happen at once.
    pub fn round_time_s(&self, bytes: u64, concurrent: usize) -> f64 {
        let link = self.link();
        if concurrent == 0 {
            return 0.0;
        }
        if self.contended() {
            // Transfers share the switch: bandwidth divides, latency once.
            link.latency_s() + (bytes as f64 * concurrent as f64) / link.bandwidth_bytes_per_s()
        } else {
            link.transfer_time_s(bytes)
        }
    }

    /// Time of the paper's §5.2 synchronization (tree reduce of the φ
    /// replicas followed by a tree broadcast) for `num_gpus` devices and a
    /// replica of `bytes` bytes.  `add_bandwidth_bytes_per_s` is the device
    /// bandwidth available for the element-wise additions performed after
    /// each receive.
    pub fn tree_sync_time_s(
        &self,
        num_gpus: usize,
        bytes: u64,
        add_bandwidth_bytes_per_s: f64,
    ) -> f64 {
        if num_gpus <= 1 {
            return 0.0;
        }
        let mut total = 0.0;
        for plan in [
            ReducePlan::tree_reduce(num_gpus),
            ReducePlan::tree_broadcast(num_gpus),
        ] {
            for round in plan.rounds() {
                total += self.round_time_s(bytes, round.len());
                // The reduce rounds also pay for the element-wise adds
                // (reads of both operands + write of the sum).
                if add_bandwidth_bytes_per_s > 0.0 {
                    total += (bytes as f64 * 3.0) / add_bandwidth_bytes_per_s;
                }
            }
            // Broadcast rounds perform no adds; stop charging them.
            // (Cheapest way to express it: only the first plan is a reduce.)
        }
        // Remove the add cost charged to the broadcast rounds above.
        if add_bandwidth_bytes_per_s > 0.0 {
            let broadcast_rounds = ReducePlan::tree_broadcast(num_gpus).num_rounds() as f64;
            total -= broadcast_rounds * (bytes as f64 * 3.0) / add_bandwidth_bytes_per_s;
        }
        total
    }

    /// Time of a bandwidth-optimal ring all-reduce of `bytes` across
    /// `num_gpus` devices: `2 (G − 1)` rounds, each moving `bytes / G` per
    /// device, plus the same add traffic during the reduce-scatter phase.
    pub fn ring_allreduce_time_s(
        &self,
        num_gpus: usize,
        bytes: u64,
        add_bandwidth_bytes_per_s: f64,
    ) -> f64 {
        if num_gpus <= 1 {
            return 0.0;
        }
        let g = num_gpus as u64;
        let segment = bytes.div_ceil(g);
        let mut total = 0.0;
        for phase in 0..2 {
            for _round in 0..(num_gpus - 1) {
                // Every device sends one segment concurrently.
                total += self.round_time_s(segment, num_gpus);
                if phase == 0 && add_bandwidth_bytes_per_s > 0.0 {
                    total += (segment as f64 * 3.0) / add_bandwidth_bytes_per_s;
                }
            }
        }
        total
    }

    /// Which collective is faster for this topology / size, and by how much
    /// (`tree_time / ring_time`).
    pub fn tree_vs_ring(&self, num_gpus: usize, bytes: u64, add_bw: f64) -> (f64, f64, f64) {
        let tree = self.tree_sync_time_s(num_gpus, bytes, add_bw);
        let ring = self.ring_allreduce_time_s(num_gpus, bytes, add_bw);
        let ratio = if ring > 0.0 { tree / ring } else { 1.0 };
        (tree, ring, ratio)
    }

    /// Per-shard times of the §5.2 tree sync when the φ replica is split into
    /// `shards` vocabulary ranges, each reduced + broadcast independently
    /// behind its own barrier.  The sum exceeds [`Topology::tree_sync_time_s`]
    /// of the dense replica by the extra per-round latencies; the shards exist
    /// to be *overlapped* with sampling, not to reduce transfer volume.
    pub fn sharded_tree_sync_times_s(
        &self,
        num_gpus: usize,
        bytes: u64,
        shards: usize,
        add_bandwidth_bytes_per_s: f64,
    ) -> Vec<f64> {
        crate::collective::shard_bytes(bytes, shards)
            .into_iter()
            .map(|b| self.tree_sync_time_s(num_gpus, b, add_bandwidth_bytes_per_s))
            .collect()
    }

    /// Exposed (non-hidden) synchronization time when a compute phase of
    /// `compute_s` seconds is split evenly across the shards and shard `s`'s
    /// reduce overlaps the compute of shard `s + 1`, with at most
    /// `overlap_depth` reduces in flight.  Returns
    /// `(total_sync_work_s, exposed_sync_s)`: the first is the interconnect
    /// time actually spent, the second is the part the iteration critical
    /// path still sees.
    pub fn overlapped_sync_exposed_s(
        &self,
        num_gpus: usize,
        bytes: u64,
        shards: usize,
        add_bandwidth_bytes_per_s: f64,
        compute_s: f64,
        overlap_depth: usize,
    ) -> (f64, f64) {
        let sync =
            self.sharded_tree_sync_times_s(num_gpus, bytes, shards, add_bandwidth_bytes_per_s);
        let total: f64 = sync.iter().sum();
        let compute: Vec<f64> = vec![compute_s / shards as f64; shards];
        let span = crate::collective::overlapped_span_s(&compute, &sync, overlap_depth);
        (total, (span - compute_s).max(0.0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MIB_256: u64 = 256 << 20;
    const ADD_BW: f64 = 500.0e9;

    #[test]
    fn single_gpu_needs_no_synchronization() {
        let t = Topology::PcieTree;
        assert_eq!(t.tree_sync_time_s(1, MIB_256, ADD_BW), 0.0);
        assert_eq!(t.ring_allreduce_time_s(1, MIB_256, ADD_BW), 0.0);
        assert_eq!(t.round_time_s(MIB_256, 0), 0.0);
    }

    #[test]
    fn nvlink_mesh_syncs_faster_than_pcie_tree() {
        let pcie = Topology::PcieTree.tree_sync_time_s(4, MIB_256, ADD_BW);
        let nvlink = Topology::NvLinkMesh.tree_sync_time_s(4, MIB_256, ADD_BW);
        assert!(nvlink < pcie / 3.0, "nvlink {nvlink} vs pcie {pcie}");
    }

    #[test]
    fn contended_rounds_divide_bandwidth() {
        let t = Topology::PcieTree;
        let one = t.round_time_s(MIB_256, 1);
        let two = t.round_time_s(MIB_256, 2);
        assert!(two > one * 1.8);
        let mesh = Topology::NvLinkMesh;
        assert!((mesh.round_time_s(MIB_256, 1) - mesh.round_time_s(MIB_256, 4)).abs() < 1e-12);
    }

    #[test]
    fn sync_cost_grows_slowly_with_gpu_count() {
        // The log G tree: 4 GPUs should cost clearly less than 2× the 2-GPU
        // sync on an uncontended topology.
        let t = Topology::NvLinkMesh;
        let two = t.tree_sync_time_s(2, MIB_256, ADD_BW);
        let four = t.tree_sync_time_s(4, MIB_256, ADD_BW);
        assert!(four < two * 2.5 && four > two, "two {two}, four {four}");
    }

    #[test]
    fn ring_beats_tree_for_large_messages_on_contended_fabric() {
        // The ring moves bytes/G per round and never funnels the whole
        // replica through one link, so on a contended PCIe tree with many
        // GPUs it wins for large φ.
        let t = Topology::PcieTree;
        let (tree, ring, ratio) = t.tree_vs_ring(4, 1 << 30, ADD_BW);
        assert!(tree > 0.0 && ring > 0.0);
        assert!(ratio > 1.0, "expected ring to win, ratio {ratio}");
    }

    #[test]
    fn tree_wins_for_tiny_messages_where_latency_dominates() {
        let t = Topology::Uniform {
            link: Interconnect::Custom {
                gbytes_per_s: 16.0,
                latency_s: 1e-3,
            },
            shared: false,
        };
        // 2(G−1) = 6 latency-bound rounds for the ring vs 2·log2(G) = 4 for
        // the tree.
        let (tree, ring, ratio) = t.tree_vs_ring(4, 1024, ADD_BW);
        assert!(tree < ring, "tree {tree} vs ring {ring} (ratio {ratio})");
    }

    #[test]
    fn sharded_sync_times_sum_to_roughly_the_dense_time() {
        let t = Topology::PcieTree;
        let dense = t.tree_sync_time_s(4, MIB_256, ADD_BW);
        for shards in [2usize, 4, 8] {
            let per_shard = t.sharded_tree_sync_times_s(4, MIB_256, shards, ADD_BW);
            assert_eq!(per_shard.len(), shards);
            let total: f64 = per_shard.iter().sum();
            assert!(total >= dense, "sharding cannot shrink the volume");
            assert!(total < dense * 1.01, "latency overhead must stay small");
        }
    }

    #[test]
    fn overlap_exposes_less_sync_at_higher_shard_counts() {
        // A compute phase comparable to the sync itself: with S = 1 nothing
        // hides; with S ≥ 4 most of the reduce tucks behind sampling.
        let t = Topology::PcieTree;
        let dense = t.tree_sync_time_s(4, MIB_256, ADD_BW);
        let compute = dense * 1.5;
        let (_, exposed1) = t.overlapped_sync_exposed_s(4, MIB_256, 1, ADD_BW, compute, 2);
        let (total4, exposed4) = t.overlapped_sync_exposed_s(4, MIB_256, 4, ADD_BW, compute, 2);
        assert!((exposed1 - dense).abs() < dense * 1e-6, "S=1 hides nothing");
        assert!(
            exposed4 < exposed1 * 0.5,
            "S=4 should hide most of the sync: exposed {exposed4} vs dense {exposed1}"
        );
        assert!(total4 >= dense);
    }

    #[test]
    fn uniform_custom_topology_uses_its_link() {
        let link = Interconnect::Custom {
            gbytes_per_s: 2.0,
            latency_s: 1e-6,
        };
        let t = Topology::Uniform { link, shared: true };
        assert_eq!(t.link(), link);
        assert!(t.contended());
        let time = t.round_time_s(2_000_000_000, 1);
        assert!((time - 1.000001).abs() < 1e-5);
    }
}
