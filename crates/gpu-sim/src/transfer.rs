//! Interconnect cost models.
//!
//! §3.2 of the paper contrasts three interconnects: PCIe 3.0 at 16 GB/s
//! (connecting the CPUs and GPUs of the evaluation platforms), NVLink at up
//! to 300 GB/s (DGX-class machines), and the 10 Gb/s Ethernet that limits the
//! distributed LDA* baseline.  The same model also covers host-memory staging
//! for the `M > 1` streaming schedule.

use serde::{Deserialize, Serialize};

/// A point-to-point interconnect with a fixed bandwidth and latency.
///
/// The cost of moving data is the classic latency + size/bandwidth model:
///
/// ```
/// use culda_gpusim::Interconnect;
///
/// // The §3.2 ordering: NVLink > PCIe 3.0 > InfiniBand EDR > 10 GbE.
/// let links = [
///     Interconnect::NvLink,
///     Interconnect::Pcie3,
///     Interconnect::InfinibandEdr,
///     Interconnect::Ethernet10G,
/// ];
/// assert!(links
///     .windows(2)
///     .all(|w| w[0].bandwidth_bytes_per_s() > w[1].bandwidth_bytes_per_s()));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Interconnect {
    /// PCIe 3.0 x16: ~16 GB/s per direction (§3.2, §7).
    Pcie3,
    /// NVLink (DGX-1 era): up to 300 GB/s aggregate (§3.2).
    NvLink,
    /// 10 Gb/s Ethernet — the network of the LDA* cluster (§7.2).
    Ethernet10G,
    /// InfiniBand EDR (100 Gb/s): the HPC-cluster fabric — an order of
    /// magnitude faster than 10 GbE and with RDMA-class latency, but still
    /// slower than any intra-node link.
    InfinibandEdr,
    /// Custom link.
    Custom {
        /// Bandwidth in gigabytes per second.
        gbytes_per_s: f64,
        /// One-way latency in seconds.
        latency_s: f64,
    },
}

impl Interconnect {
    /// Bandwidth in bytes per second.
    ///
    /// ```
    /// use culda_gpusim::Interconnect;
    ///
    /// assert_eq!(Interconnect::Pcie3.bandwidth_bytes_per_s(), 16.0e9);
    /// let link = Interconnect::Custom { gbytes_per_s: 2.5, latency_s: 1e-6 };
    /// assert_eq!(link.bandwidth_bytes_per_s(), 2.5e9);
    /// ```
    pub fn bandwidth_bytes_per_s(&self) -> f64 {
        match self {
            Interconnect::Pcie3 => 16.0e9,
            Interconnect::NvLink => 300.0e9,
            // 10 Gb/s = 1.25 GB/s, ~80 % achievable with TCP framing overhead.
            Interconnect::Ethernet10G => 1.0e9,
            // 100 Gb/s = 12.5 GB/s raw; RDMA keeps most of it.
            Interconnect::InfinibandEdr => 11.0e9,
            Interconnect::Custom { gbytes_per_s, .. } => gbytes_per_s * 1e9,
        }
    }

    /// One-way message latency in seconds.
    ///
    /// ```
    /// use culda_gpusim::Interconnect;
    ///
    /// // Kernel-bypass RDMA beats the TCP stack by more than an order of
    /// // magnitude.
    /// assert!(Interconnect::InfinibandEdr.latency_s() < Interconnect::Ethernet10G.latency_s());
    /// ```
    pub fn latency_s(&self) -> f64 {
        match self {
            Interconnect::Pcie3 => 10e-6,
            Interconnect::NvLink => 5e-6,
            Interconnect::Ethernet10G => 50e-6,
            Interconnect::InfinibandEdr => 2e-6,
            Interconnect::Custom { latency_s, .. } => *latency_s,
        }
    }

    /// Time to move `bytes` across the link once:
    /// `latency_s() + bytes / bandwidth_bytes_per_s()`.
    ///
    /// ```
    /// use culda_gpusim::Interconnect;
    ///
    /// let link = Interconnect::Pcie3;
    /// // 160 MB over 16 GB/s is 10 ms of bandwidth plus 10 µs of latency.
    /// let t = link.transfer_time_s(160_000_000);
    /// assert!((t - 0.01001).abs() < 1e-9);
    /// // An empty message still pays the latency.
    /// assert_eq!(link.transfer_time_s(0), link.latency_s());
    /// ```
    pub fn transfer_time_s(&self, bytes: u64) -> f64 {
        self.latency_s() + bytes as f64 / self.bandwidth_bytes_per_s()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_ordering_matches_the_paper() {
        // NVLink > PCIe > 10 GbE — the whole argument of §3.2.
        assert!(
            Interconnect::NvLink.bandwidth_bytes_per_s()
                > Interconnect::Pcie3.bandwidth_bytes_per_s()
        );
        assert!(
            Interconnect::Pcie3.bandwidth_bytes_per_s()
                > Interconnect::Ethernet10G.bandwidth_bytes_per_s()
        );
    }

    #[test]
    fn transfer_time_scales_linearly_beyond_latency() {
        let link = Interconnect::Pcie3;
        let t1 = link.transfer_time_s(1 << 30);
        let t2 = link.transfer_time_s(2 << 30);
        assert!(t2 > t1 * 1.9 && t2 < t1 * 2.1);
        // 1 GiB over 16 GB/s ≈ 67 ms.
        assert!((t1 - 0.067).abs() < 0.005, "t1 = {t1}");
    }

    #[test]
    fn latency_dominates_small_messages() {
        let link = Interconnect::Ethernet10G;
        let t = link.transfer_time_s(64);
        assert!(t < 2.0 * link.latency_s());
        assert!(t >= link.latency_s());
    }

    #[test]
    fn custom_link_uses_given_parameters() {
        let link = Interconnect::Custom {
            gbytes_per_s: 2.0,
            latency_s: 1e-3,
        };
        let t = link.transfer_time_s(2_000_000_000);
        assert!((t - 1.001).abs() < 1e-6);
    }
}
