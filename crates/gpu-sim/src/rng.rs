//! Deterministic per-block random number generation.
//!
//! CUDA kernels use `curand` with a per-thread state seeded from the global
//! seed and the thread id; the simulator mirrors that with a small
//! xoshiro-style generator seeded from `(seed, launch, block)` via SplitMix64
//! so that results are reproducible regardless of how rayon schedules the
//! blocks onto host threads.

/// A small, fast, deterministic RNG private to one simulated thread block.
#[derive(Debug, Clone)]
pub struct BlockRng {
    s0: u64,
    s1: u64,
    /// Number of draws issued (used by the cost model: RNG draws are ALU
    /// work, a handful of flops each).
    draws: u64,
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl BlockRng {
    /// Create a generator for `block` of launch number `launch` under the
    /// global `seed`.
    pub fn new(seed: u64, launch: u64, block: u64) -> Self {
        let mut state = seed ^ launch.rotate_left(24) ^ block.rotate_left(48);
        let s0 = splitmix64(&mut state);
        let s1 = splitmix64(&mut state);
        BlockRng {
            s0: s0 | 1, // never the all-zero state
            s1,
            draws: 0,
        }
    }

    /// Next raw 64-bit value (xorshift128+).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.draws += 1;
        let mut x = self.s0;
        let y = self.s1;
        self.s0 = y;
        x ^= x << 23;
        self.s1 = x ^ y ^ (x >> 17) ^ (y >> 26);
        self.s1.wrapping_add(y)
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn next_f32(&mut self) -> f32 {
        // 24 mantissa bits, as curand_uniform does.
        (self.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }

    /// Uniform draw in `[0, bound)` for `bound > 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as u32
    }

    /// Number of draws issued so far.
    #[inline]
    pub fn draws(&self) -> u64 {
        self.draws
    }
}

/// One 64-bit value from the counter-based ("Philox-style") generator: a
/// pure function of `(seed, stream, counter)` with no sequential state.
///
/// Real CUDA samplers increasingly use counter-based RNGs precisely for the
/// property the workspace's determinism tests rely on: the draw for a given
/// logical unit of work (here: one token of one iteration) is identical no
/// matter which thread block, launch, device — or simulated topology —
/// executes it.
#[inline]
pub fn stable_u64(seed: u64, stream: u64, counter: u64) -> u64 {
    // Three SplitMix64 absorption rounds, one per input word.
    let mut state = seed ^ 0xA076_1D64_78BD_642F;
    let mut mixed = splitmix64(&mut state) ^ stream.rotate_left(21);
    let mut mixed2 = splitmix64(&mut mixed) ^ counter.rotate_left(42);
    splitmix64(&mut mixed2)
}

/// A uniform draw in `[0, 1)` from the counter-based generator (24 mantissa
/// bits, matching [`BlockRng::next_f32`]'s `curand_uniform` convention).
#[inline]
pub fn stable_f32(seed: u64, stream: u64, counter: u64) -> f32 {
    ((stable_u64(seed, stream, counter) >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = BlockRng::new(1, 2, 3);
        let mut b = BlockRng::new(1, 2, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_blocks_diverge() {
        let mut a = BlockRng::new(1, 2, 3);
        let mut b = BlockRng::new(1, 2, 4);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn f32_draws_are_in_unit_interval_and_well_spread() {
        let mut rng = BlockRng::new(7, 0, 0);
        let n = 20_000;
        let mut sum = 0.0f64;
        for _ in 0..n {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert_eq!(rng.draws(), n);
    }

    #[test]
    fn stable_draws_are_pure_and_well_spread() {
        assert_eq!(stable_u64(1, 2, 3), stable_u64(1, 2, 3));
        assert_ne!(stable_u64(1, 2, 3), stable_u64(1, 2, 4));
        assert_ne!(stable_u64(1, 2, 3), stable_u64(1, 3, 3));
        assert_ne!(stable_u64(1, 2, 3), stable_u64(2, 2, 3));
        let n = 20_000u64;
        let mut sum = 0.0f64;
        for c in 0..n {
            let x = stable_f32(7, 1, c);
            assert!((0.0..1.0).contains(&x));
            sum += x as f64;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = BlockRng::new(9, 1, 1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should occur");
    }
}
