//! Model checkpoints: persist a trained LDA model to disk and reload it.
//!
//! Training a billion-token corpus takes hours even at CuLDA_CGS throughput,
//! so the trained model must outlive the process.  A checkpoint captures the
//! synchronized global state of Figure 3 — the topic–word counts φ, the topic
//! totals `n_k`, the merged document–topic counts θ and the hyper-parameters
//! — in a small versioned binary container.  A reloaded checkpoint supports
//! everything the serving path needs (topic inspection, fold-in inference,
//! held-out evaluation), and a v2 checkpoint additionally stores the sampler
//! state (`z`, the iteration counter and the seed), so training resumes
//! *exactly* via [`crate::session::SessionBuilder::assignments`] /
//! `culda-cli train --resume-from`.  Streaming sessions rotate whole sets of
//! these files (model + corpus + session metadata) through the [`rotation`]
//! helpers.
//!
//! ```text
//! magic   "CLDM"       4 bytes
//! version u32          currently 5 (v1 files load with no sampler state,
//!                      v2 files load with the default sparse-CGS strategy,
//!                      v3 files load with no sampler-internal resume state)
//! K, V, D u64
//! alpha, beta f64
//! nk      K × i64
//! phi     K × V × u32  (row-major)
//! theta   CSR: (D + 1) × u32 row_ptr, nnz × (u16 col, u32 val)
//! --- v2 sampler-state section ---
//! z flag  u8           0 = absent, 1 = present
//! iterations u64       completed training iterations
//! seed    u64          the run's RNG seed
//! z       per document: u64 len, len × u16  (only when flag = 1)
//! --- v3 sampler-strategy section ---
//! sampler u8           0 = sparse-CGS, 1 = alias hybrid, 2 = LightLDA (v5+)
//! rebuild_every u64    (alias and light)
//! mh_steps u64         (alias and light)
//! prune_below u64      (light only, v5+)
//! --- v4/v5 sampler-resume section ---
//! state flag u8        0 = absent, 1 = alias-tables snapshot,
//!                      2 = light word-proposal snapshot (v5+)
//! built_at u64         iteration the stale tables were built at (flag ≥ 1)
//! phi_hat K × V × u32  the synchronized φ at built_at (flag ≥ 1)
//! nk_hat  K × i64      the topic totals at built_at (flag = 1 only)
//! ```
//!
//! The v4 section closes the mid-cadence alias-resume gap: without it, a
//! checkpoint taken between alias rebuilds resumed with *fresh* tables built
//! from the current φ and diverged from the uninterrupted run until the next
//! cadence rebuild.  The snapshot reconstructs the exact stale tables (see
//! [`crate::kernels::SamplerResumeState`]).  v5 extends both trailing
//! sections to the LightLDA portfolio member: strategy tag 2 (with its
//! `prune_below` knob) and resume flag 2 (a φ̂-only snapshot — word
//! proposals need no topic totals).  [`SamplerStrategy::Auto`] is *never*
//! written: construction resolves it to a concrete strategy first, and
//! [`ModelCheckpoint::write`] rejects an unresolved `Auto` with
//! [`io::ErrorKind::InvalidInput`], so resume continues the decided kernel
//! instead of re-deciding.

use crate::config::{LdaConfig, SamplerStrategy};
use crate::inference::TopicInferencer;
use crate::kernels::SamplerResumeState;
use crate::trainer::CuLdaTrainer;
use culda_sparse::{CsrBuilder, CsrMatrix, DenseMatrix};
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Magic bytes identifying a model checkpoint.
pub const MAGIC: &[u8; 4] = b"CLDM";
/// Current checkpoint format version.
pub const VERSION: u32 = 5;

/// Errors produced while reading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying IO failure.
    Io(io::Error),
    /// The magic bytes do not match [`MAGIC`].
    BadMagic([u8; 4]),
    /// The format version is not supported.
    UnsupportedVersion(u32),
    /// Structural inconsistency in the stored model.
    Corrupt(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "io error: {e}"),
            CheckpointError::BadMagic(m) => write!(f, "bad magic bytes {m:?}"),
            CheckpointError::UnsupportedVersion(v) => write!(f, "unsupported version {v}"),
            CheckpointError::Corrupt(msg) => write!(f, "corrupt checkpoint: {msg}"),
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for CheckpointError {
    fn from(e: io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

/// A trained model snapshot.
///
/// ```
/// use culda_core::{LdaConfig, ModelCheckpoint, SessionBuilder};
/// use culda_corpus::DatasetProfile;
/// use culda_gpusim::{DeviceSpec, MultiGpuSystem};
///
/// let corpus = DatasetProfile::nytimes().scaled_to_tokens(2_000).generate(7);
/// let mut trainer = SessionBuilder::new()
///     .corpus(&corpus)
///     .config(LdaConfig::with_topics(8).seed(7))
///     .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 7))
///     .build()
///     .unwrap();
/// trainer.train(1);
///
/// // Serialize, reload, and get the identical model (and sampler state) back.
/// let ckpt = ModelCheckpoint::from_trainer(&trainer);
/// let mut buf = Vec::new();
/// ckpt.write(&mut buf).unwrap();
/// let back = ModelCheckpoint::read(buf.as_slice()).unwrap();
/// assert_eq!(back, ckpt);
/// assert_eq!(back.iterations, 1);
/// assert!(back.z.is_some(), "v2 checkpoints carry z for exact resume");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ModelCheckpoint {
    /// Number of topics `K`.
    pub num_topics: usize,
    /// Vocabulary size `V`.
    pub vocab_size: usize,
    /// Dirichlet prior on document–topic mixtures.
    pub alpha: f64,
    /// Dirichlet prior on topic–word distributions.
    pub beta: f64,
    /// Topic totals `n_k`.
    pub nk: Vec<i64>,
    /// Topic–word counts φ (`K × V`).
    pub phi: DenseMatrix<u32>,
    /// Merged document–topic counts θ (`D × K`).
    pub theta: CsrMatrix,
    /// The RNG seed of the run that produced this checkpoint; resume
    /// continues on the same seed unless the user explicitly overrides it.
    pub seed: u64,
    /// Training iterations completed when the checkpoint was captured.
    /// Resume continues the iteration counter from here, so the
    /// counter-based sampling RNG never reuses an earlier iteration's
    /// streams — `train N+M` and `train N → resume M` are bit-identical.
    pub iterations: u64,
    /// Per-document topic assignments `z` (original token order), when the
    /// checkpoint was captured for exact training resume.  θ/φ alone
    /// reconstruct the *model*; `z` additionally reconstructs the *sampler
    /// state*, so `train --resume-from` continues bit-for-bit from where the
    /// saved run stopped.
    pub z: Option<Vec<Vec<u16>>>,
    /// The sampler strategy the run was training with; resume continues on
    /// the same strategy (and knobs) unless the user explicitly overrides
    /// it.  v1/v2 files load as [`SamplerStrategy::SparseCgs`].
    pub sampler: SamplerStrategy,
    /// Sampler-internal state needed for a bit-exact mid-cadence resume
    /// (the alias hybrid's stale-table snapshot); `None` for memoryless
    /// strategies and for files older than v4.
    pub sampler_state: Option<SamplerResumeState>,
}

impl ModelCheckpoint {
    /// Capture the current synchronized state of a trainer.
    pub fn from_trainer(trainer: &CuLdaTrainer) -> Self {
        let cfg: &LdaConfig = trainer.config();
        ModelCheckpoint {
            num_topics: cfg.num_topics,
            vocab_size: trainer.vocab_size(),
            alpha: cfg.alpha,
            beta: cfg.beta,
            nk: trainer.global_nk(),
            phi: trainer.global_phi(),
            theta: trainer.merged_theta(),
            seed: cfg.seed,
            iterations: trainer.completed_iterations(),
            z: Some(trainer.z_snapshot()),
            sampler: cfg.sampler,
            sampler_state: trainer.sampler_kernel().resume_state(),
        }
    }

    /// Build a fold-in inferencer from the stored model, rejecting corrupt
    /// state (negative `n_k`, non-positive priors, shape mismatches) with a
    /// typed error instead of panicking — checkpoints are untrusted on-disk
    /// input, so this is the constructor the serving path must use.
    pub fn try_inferencer(&self) -> Result<TopicInferencer, crate::inference::InferenceError> {
        TopicInferencer::try_new(&self.phi, &self.nk, self.alpha, self.beta)
    }

    /// Build a fold-in inferencer from the stored model; panics on corrupt
    /// state (see [`ModelCheckpoint::try_inferencer`]).
    pub fn inferencer(&self) -> TopicInferencer {
        match self.try_inferencer() {
            Ok(inferencer) => inferencer,
            Err(e) => panic!("{e}"),
        }
    }

    /// Total number of tokens the stored φ covers.
    pub fn total_tokens(&self) -> u64 {
        self.phi.total()
    }

    /// Structural consistency checks (shapes, totals, non-negative counts).
    pub fn validate(&self) -> Result<(), String> {
        if self.phi.rows() != self.num_topics || self.phi.cols() != self.vocab_size {
            return Err("φ shape does not match K × V".into());
        }
        if self.nk.len() != self.num_topics {
            return Err("n_k length does not match K".into());
        }
        if self.theta.cols() != self.num_topics {
            return Err("θ columns do not match K".into());
        }
        if !(self.alpha > 0.0) || !(self.beta > 0.0) {
            return Err("priors must be positive".into());
        }
        let row_sums = self.phi.row_sums();
        for (k, (&nk, &sum)) in self.nk.iter().zip(&row_sums).enumerate() {
            if nk < 0 || nk as u64 != sum {
                return Err(format!("n_k[{k}] = {nk} does not match φ row sum {sum}"));
            }
        }
        if self.theta.total() != self.phi.total() {
            return Err(format!(
                "θ covers {} tokens, φ covers {}",
                self.theta.total(),
                self.phi.total()
            ));
        }
        if let Some(z) = &self.z {
            if z.len() != self.theta.rows() {
                return Err(format!(
                    "z covers {} documents, θ has {}",
                    z.len(),
                    self.theta.rows()
                ));
            }
            for (d, zd) in z.iter().enumerate() {
                if zd.len() as u64 != self.theta.row_sum(d) {
                    return Err(format!(
                        "z row {d} has {} tokens, θ row sums to {}",
                        zd.len(),
                        self.theta.row_sum(d)
                    ));
                }
                if zd.iter().any(|&k| k as usize >= self.num_topics) {
                    return Err(format!("z row {d} assigns an out-of-range topic"));
                }
            }
        }
        if self.sampler.is_auto() {
            return Err("checkpoints must store the resolved sampler strategy, not `auto`".into());
        }
        match &self.sampler_state {
            Some(SamplerResumeState::AliasTables {
                built_at,
                phi_hat,
                nk_hat,
            }) => {
                if !matches!(self.sampler, SamplerStrategy::AliasHybrid { .. }) {
                    return Err("alias-tables resume state on a non-alias sampler".into());
                }
                if phi_hat.rows() != self.num_topics || phi_hat.cols() != self.vocab_size {
                    return Err("φ̂ snapshot shape does not match K × V".into());
                }
                if nk_hat.len() != self.num_topics {
                    return Err("n̂_k snapshot length does not match K".into());
                }
                if *built_at >= self.iterations {
                    return Err(format!(
                        "alias tables claim to be built at iteration {built_at}, but only {} \
                         iterations completed",
                        self.iterations
                    ));
                }
            }
            Some(SamplerResumeState::LightWordTables { built_at, phi_hat }) => {
                if !matches!(self.sampler, SamplerStrategy::LightLda { .. }) {
                    return Err("light word-table resume state on a non-light sampler".into());
                }
                if phi_hat.rows() != self.num_topics || phi_hat.cols() != self.vocab_size {
                    return Err("φ̂ snapshot shape does not match K × V".into());
                }
                if *built_at >= self.iterations {
                    return Err(format!(
                        "word proposals claim to be built at iteration {built_at}, but only {} \
                         iterations completed",
                        self.iterations
                    ));
                }
            }
            None => {}
        }
        Ok(())
    }

    /// Serialize the checkpoint into a writer.
    pub fn write<W: Write>(&self, writer: W) -> io::Result<()> {
        let mut w = BufWriter::new(writer);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.num_topics as u64).to_le_bytes())?;
        w.write_all(&(self.vocab_size as u64).to_le_bytes())?;
        w.write_all(&(self.theta.rows() as u64).to_le_bytes())?;
        w.write_all(&self.alpha.to_le_bytes())?;
        w.write_all(&self.beta.to_le_bytes())?;
        for &nk in &self.nk {
            w.write_all(&nk.to_le_bytes())?;
        }
        for &c in self.phi.as_slice() {
            w.write_all(&c.to_le_bytes())?;
        }
        for &p in self.theta.row_ptr() {
            w.write_all(&p.to_le_bytes())?;
        }
        for d in 0..self.theta.rows() {
            let (cols, vals) = self.theta.row(d);
            for (&k, &v) in cols.iter().zip(vals) {
                w.write_all(&k.to_le_bytes())?;
                w.write_all(&v.to_le_bytes())?;
            }
        }
        match &self.z {
            None => {
                w.write_all(&[0u8])?;
                w.write_all(&self.iterations.to_le_bytes())?;
                w.write_all(&self.seed.to_le_bytes())?;
            }
            Some(z) => {
                w.write_all(&[1u8])?;
                w.write_all(&self.iterations.to_le_bytes())?;
                w.write_all(&self.seed.to_le_bytes())?;
                for zd in z {
                    w.write_all(&(zd.len() as u64).to_le_bytes())?;
                    for &k in zd {
                        w.write_all(&k.to_le_bytes())?;
                    }
                }
            }
        }
        match self.sampler {
            SamplerStrategy::SparseCgs => w.write_all(&[0u8])?,
            SamplerStrategy::AliasHybrid {
                rebuild_every,
                mh_steps,
            } => {
                w.write_all(&[1u8])?;
                w.write_all(&(rebuild_every as u64).to_le_bytes())?;
                w.write_all(&(mh_steps as u64).to_le_bytes())?;
            }
            SamplerStrategy::LightLda {
                rebuild_every,
                mh_steps,
                prune_below,
            } => {
                w.write_all(&[2u8])?;
                w.write_all(&(rebuild_every as u64).to_le_bytes())?;
                w.write_all(&(mh_steps as u64).to_le_bytes())?;
                w.write_all(&(prune_below as u64).to_le_bytes())?;
            }
            SamplerStrategy::Auto => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "SamplerStrategy::Auto is a construction-time directive, not a trained \
                     state; resolve it to a concrete strategy before checkpointing",
                ));
            }
        }
        match &self.sampler_state {
            None => w.write_all(&[0u8])?,
            Some(SamplerResumeState::AliasTables {
                built_at,
                phi_hat,
                nk_hat,
            }) => {
                w.write_all(&[1u8])?;
                w.write_all(&built_at.to_le_bytes())?;
                for &c in phi_hat.as_slice() {
                    w.write_all(&c.to_le_bytes())?;
                }
                for &n in nk_hat {
                    w.write_all(&n.to_le_bytes())?;
                }
            }
            Some(SamplerResumeState::LightWordTables { built_at, phi_hat }) => {
                w.write_all(&[2u8])?;
                w.write_all(&built_at.to_le_bytes())?;
                for &c in phi_hat.as_slice() {
                    w.write_all(&c.to_le_bytes())?;
                }
            }
        }
        w.flush()
    }

    /// Deserialize a checkpoint from a reader and validate it.
    pub fn read<R: Read>(reader: R) -> Result<Self, CheckpointError> {
        let mut r = BufReader::new(reader);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)?;
        if &magic != MAGIC {
            return Err(CheckpointError::BadMagic(magic));
        }
        let version = read_u32(&mut r)?;
        if version == 0 || version > VERSION {
            return Err(CheckpointError::UnsupportedVersion(version));
        }
        let num_topics = read_u64(&mut r)? as usize;
        let vocab_size = read_u64(&mut r)? as usize;
        let num_docs = read_u64(&mut r)? as usize;
        let alpha = read_f64(&mut r)?;
        let beta = read_f64(&mut r)?;

        // The header counts are untrusted: cap up-front reservations and
        // guard the K × V product so a corrupt header yields a clean error
        // (EOF or `Corrupt`) instead of an absurd allocation or an overflow.
        const MAX_PREALLOC: usize = 1 << 20;
        let phi_len = num_topics
            .checked_mul(vocab_size)
            .ok_or_else(|| CheckpointError::Corrupt("K × V overflows".into()))?;

        let mut nk = Vec::with_capacity(num_topics.min(MAX_PREALLOC));
        for _ in 0..num_topics {
            nk.push(read_i64(&mut r)?);
        }
        let mut phi_data = Vec::with_capacity(phi_len.min(MAX_PREALLOC));
        for _ in 0..phi_len {
            phi_data.push(read_u32(&mut r)?);
        }
        let phi = DenseMatrix::from_vec(num_topics, vocab_size, phi_data);

        let mut row_ptr = Vec::with_capacity(num_docs.saturating_add(1).min(MAX_PREALLOC));
        for _ in 0..=num_docs {
            row_ptr.push(read_u32(&mut r)?);
        }
        if row_ptr.first() != Some(&0) || row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(CheckpointError::Corrupt(
                "θ row pointers are invalid".into(),
            ));
        }
        let mut builder = CsrBuilder::new(num_docs, num_topics);
        builder.reserve_nnz((*row_ptr.last().unwrap_or(&0) as usize).min(MAX_PREALLOC));
        for d in 0..num_docs {
            let nnz = (row_ptr[d + 1] - row_ptr[d]) as usize;
            let mut entries = Vec::with_capacity(nnz.min(MAX_PREALLOC));
            for _ in 0..nnz {
                let k = read_u16(&mut r)?;
                let v = read_u32(&mut r)?;
                if k as usize >= num_topics {
                    return Err(CheckpointError::Corrupt(format!(
                        "θ column {k} out of range (K = {num_topics})"
                    )));
                }
                entries.push((k, v));
            }
            builder.push_row(entries);
        }
        let theta = builder.finish();

        // v1 files end here: they carry the model but no sampler state.
        let (z, iterations, seed) = if version == 1 {
            (None, 0, 0)
        } else {
            let mut flag = [0u8; 1];
            r.read_exact(&mut flag)?;
            let iterations = read_u64(&mut r)?;
            let seed = read_u64(&mut r)?;
            let z = match flag[0] {
                0 => None,
                1 => {
                    let mut z = Vec::with_capacity(num_docs.min(MAX_PREALLOC));
                    for _ in 0..num_docs {
                        let len = read_u64(&mut r)? as usize;
                        let mut zd = Vec::with_capacity(len.min(MAX_PREALLOC));
                        for _ in 0..len {
                            zd.push(read_u16(&mut r)?);
                        }
                        z.push(zd);
                    }
                    Some(z)
                }
                other => {
                    return Err(CheckpointError::Corrupt(format!(
                        "invalid z-section flag {other}"
                    )))
                }
            };
            (z, iterations, seed)
        };

        // v1/v2 files predate pluggable samplers: they load as the default
        // sparse-CGS strategy.
        let sampler = if version < 3 {
            SamplerStrategy::SparseCgs
        } else {
            let mut tag = [0u8; 1];
            r.read_exact(&mut tag)?;
            match tag[0] {
                0 => SamplerStrategy::SparseCgs,
                1 => {
                    let rebuild_every = read_u64(&mut r)? as usize;
                    let mh_steps = read_u64(&mut r)? as usize;
                    let strategy = SamplerStrategy::AliasHybrid {
                        rebuild_every,
                        mh_steps,
                    };
                    strategy.validate().map_err(CheckpointError::Corrupt)?;
                    strategy
                }
                2 if version >= 5 => {
                    let rebuild_every = read_u64(&mut r)? as usize;
                    let mh_steps = read_u64(&mut r)? as usize;
                    let prune_below = read_u64(&mut r)? as usize;
                    let strategy = SamplerStrategy::LightLda {
                        rebuild_every,
                        mh_steps,
                        prune_below,
                    };
                    strategy.validate().map_err(CheckpointError::Corrupt)?;
                    strategy
                }
                other => {
                    return Err(CheckpointError::Corrupt(format!(
                        "invalid sampler-strategy tag {other} for a v{version} file"
                    )))
                }
            }
        };

        // v1–v3 files predate sampler-internal resume state.
        let sampler_state = if version < 4 {
            None
        } else {
            let mut flag = [0u8; 1];
            r.read_exact(&mut flag)?;
            match flag[0] {
                0 => None,
                1 => {
                    let built_at = read_u64(&mut r)?;
                    let mut phi_hat = Vec::with_capacity(phi_len.min(MAX_PREALLOC));
                    for _ in 0..phi_len {
                        phi_hat.push(read_u32(&mut r)?);
                    }
                    let mut nk_hat = Vec::with_capacity(num_topics.min(MAX_PREALLOC));
                    for _ in 0..num_topics {
                        nk_hat.push(read_i64(&mut r)?);
                    }
                    Some(SamplerResumeState::AliasTables {
                        built_at,
                        phi_hat: DenseMatrix::from_vec(num_topics, vocab_size, phi_hat),
                        nk_hat,
                    })
                }
                2 if version >= 5 => {
                    let built_at = read_u64(&mut r)?;
                    let mut phi_hat = Vec::with_capacity(phi_len.min(MAX_PREALLOC));
                    for _ in 0..phi_len {
                        phi_hat.push(read_u32(&mut r)?);
                    }
                    Some(SamplerResumeState::LightWordTables {
                        built_at,
                        phi_hat: DenseMatrix::from_vec(num_topics, vocab_size, phi_hat),
                    })
                }
                other => {
                    return Err(CheckpointError::Corrupt(format!(
                        "invalid sampler-resume flag {other} for a v{version} file"
                    )))
                }
            }
        };

        let checkpoint = ModelCheckpoint {
            num_topics,
            vocab_size,
            alpha,
            beta,
            nk,
            phi,
            theta,
            seed,
            iterations,
            z,
            sampler,
            sampler_state,
        };
        checkpoint.validate().map_err(CheckpointError::Corrupt)?;
        Ok(checkpoint)
    }

    /// Write the checkpoint to a file.
    pub fn save<P: AsRef<Path>>(&self, path: P) -> io::Result<()> {
        self.write(File::create(path)?)
    }

    /// Load a checkpoint from a file.
    pub fn load<P: AsRef<Path>>(path: P) -> Result<Self, CheckpointError> {
        Self::read(File::open(path)?)
    }
}

/// File naming and discovery for rotated streaming-session checkpoints.
///
/// A rotation *set* is three files sharing a stem
/// (`stream-<seq:06>-it<iterations:010>`): the checkpoint-v2 model
/// (`.cldm`), the live corpus snapshot (`.cldc`), and the session metadata
/// sidecar (`.meta`).  The model file is written last, so only sets whose
/// `.cldm` exists alongside the other two count as complete; `latest`
/// returns the complete set with the highest sequence number.
pub mod rotation {
    use std::io;
    use std::path::Path;

    /// Extension of the checkpoint-v2 model file.
    pub const MODEL_EXT: &str = "cldm";
    /// Extension of the live corpus snapshot.
    pub const CORPUS_EXT: &str = "cldc";
    /// Extension of the session metadata sidecar.
    pub const META_EXT: &str = "meta";

    /// One complete rotation set found on disk.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct RotationEntry {
        /// Monotone rotation sequence number (survives resume).
        pub seq: u64,
        /// Completed training iterations at capture time.
        pub iterations: u64,
        /// File stem (no directory, no extension).
        pub stem: String,
    }

    /// The stem of rotation `seq` captured after `iterations` iterations.
    pub fn stem(seq: u64, iterations: u64) -> String {
        format!("stream-{seq:06}-it{iterations:010}")
    }

    fn parse_stem(stem: &str) -> Option<(u64, u64)> {
        let rest = stem.strip_prefix("stream-")?;
        let (seq, it) = rest.split_once("-it")?;
        Some((seq.parse().ok()?, it.parse().ok()?))
    }

    /// Complete rotation sets in `dir`, ascending by sequence number.
    /// A missing directory reads as empty.
    pub fn list(dir: &Path) -> io::Result<Vec<RotationEntry>> {
        let mut entries = Vec::new();
        let read_dir = match std::fs::read_dir(dir) {
            Ok(rd) => rd,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(entries),
            Err(e) => return Err(e),
        };
        for entry in read_dir {
            let path = entry?.path();
            if path.extension().and_then(|e| e.to_str()) != Some(MODEL_EXT) {
                continue;
            }
            let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                continue;
            };
            let Some((seq, iterations)) = parse_stem(stem) else {
                continue;
            };
            if path.with_extension(CORPUS_EXT).exists() && path.with_extension(META_EXT).exists() {
                entries.push(RotationEntry {
                    seq,
                    iterations,
                    stem: stem.to_string(),
                });
            }
        }
        entries.sort_by_key(|e| e.seq);
        Ok(entries)
    }

    /// The most recent complete rotation set in `dir`, if any.
    pub fn latest(dir: &Path) -> io::Result<Option<RotationEntry>> {
        Ok(list(dir)?.pop())
    }

    /// Delete all but the `keep_last` most recent complete sets.  Returns
    /// how many sets were pruned.
    pub fn prune(dir: &Path, keep_last: usize) -> io::Result<usize> {
        let entries = list(dir)?;
        let excess = entries.len().saturating_sub(keep_last);
        for entry in &entries[..excess] {
            for ext in [MODEL_EXT, CORPUS_EXT, META_EXT] {
                let path = dir.join(&entry.stem).with_extension(ext);
                match std::fs::remove_file(&path) {
                    Ok(()) => {}
                    Err(e) if e.kind() == io::ErrorKind::NotFound => {}
                    Err(e) => return Err(e),
                }
            }
        }
        Ok(excess)
    }
}

fn read_u16<R: Read>(r: &mut R) -> io::Result<u16> {
    let mut buf = [0u8; 2];
    r.read_exact(&mut buf)?;
    Ok(u16::from_le_bytes(buf))
}

fn read_u32<R: Read>(r: &mut R) -> io::Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64<R: Read>(r: &mut R) -> io::Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(u64::from_le_bytes(buf))
}

fn read_i64<R: Read>(r: &mut R) -> io::Result<i64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(i64::from_le_bytes(buf))
}

fn read_f64<R: Read>(r: &mut R) -> io::Result<f64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)?;
    Ok(f64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LdaConfig;
    use culda_corpus::DatasetProfile;
    use culda_gpusim::{DeviceSpec, MultiGpuSystem};

    fn trained_trainer() -> CuLdaTrainer {
        let corpus = DatasetProfile {
            name: "ckpt".into(),
            num_docs: 100,
            vocab_size: 80,
            avg_doc_len: 15.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(21);
        let mut trainer = crate::session::SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(12).seed(4))
            .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 3))
            .build()
            .unwrap();
        trainer.train(5);
        trainer
    }

    #[test]
    fn roundtrip_preserves_the_model_exactly() {
        let trainer = trained_trainer();
        let ckpt = ModelCheckpoint::from_trainer(&trainer);
        ckpt.validate().unwrap();
        let mut buf = Vec::new();
        ckpt.write(&mut buf).unwrap();
        let back = ModelCheckpoint::read(buf.as_slice()).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.total_tokens(), trainer.total_tokens());
    }

    #[test]
    fn reloaded_checkpoint_drives_identical_inference() {
        let trainer = trained_trainer();
        let ckpt = ModelCheckpoint::from_trainer(&trainer);
        let mut buf = Vec::new();
        ckpt.write(&mut buf).unwrap();
        let back = ModelCheckpoint::read(buf.as_slice()).unwrap();
        let opts = crate::inference::InferenceOptions::default();
        let doc = [0u32, 1, 2, 3, 4, 5];
        let a = ckpt.inferencer().infer_document(&doc, opts);
        let b = back.inferencer().infer_document(&doc, opts);
        assert_eq!(a, b);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let trainer = trained_trainer();
        let ckpt = ModelCheckpoint::from_trainer(&trainer);
        let mut buf = Vec::new();
        ckpt.write(&mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'Z';
        assert!(matches!(
            ModelCheckpoint::read(bad.as_slice()),
            Err(CheckpointError::BadMagic(_))
        ));
        let mut bad = buf.clone();
        bad[4..8].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            ModelCheckpoint::read(bad.as_slice()),
            Err(CheckpointError::UnsupportedVersion(7))
        ));
        buf.truncate(32);
        assert!(matches!(
            ModelCheckpoint::read(buf.as_slice()),
            Err(CheckpointError::Io(_))
        ));
    }

    #[test]
    fn sampler_strategy_roundtrips_and_bad_tags_are_rejected() {
        let corpus = DatasetProfile {
            name: "ckpt-sampler".into(),
            num_docs: 40,
            vocab_size: 50,
            avg_doc_len: 10.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(3);
        let mut trainer = crate::session::SessionBuilder::new()
            .corpus(&corpus)
            .config(
                LdaConfig::with_topics(8)
                    .seed(2)
                    .sampler(SamplerStrategy::AliasHybrid {
                        rebuild_every: 3,
                        mh_steps: 2,
                    }),
            )
            .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 2))
            .build()
            .unwrap();
        trainer.train(2);
        let full = ModelCheckpoint::from_trainer(&trainer);
        assert_eq!(
            full.sampler,
            SamplerStrategy::AliasHybrid {
                rebuild_every: 3,
                mh_steps: 2
            }
        );
        // The trainer rebuilt its tables at iteration 0, so the checkpoint
        // carries the stale-table snapshot — and it round-trips exactly.
        assert!(
            matches!(
                full.sampler_state,
                Some(SamplerResumeState::AliasTables { built_at: 0, .. })
            ),
            "alias checkpoints carry the stale-table snapshot"
        );
        let mut buf = Vec::new();
        full.write(&mut buf).unwrap();
        let back = ModelCheckpoint::read(buf.as_slice()).unwrap();
        assert_eq!(back, full);
        assert_eq!(back.sampler, full.sampler);
        assert_eq!(back.sampler_state, full.sampler_state);

        // Tag-corruption checks on a stateless copy, where the trailing
        // layout is fixed: v3 section (1 tag + 2 × u64 knobs) + v4 flag.
        let mut ckpt = full.clone();
        ckpt.sampler_state = None;
        let mut buf = Vec::new();
        ckpt.write(&mut buf).unwrap();
        let tag_pos = buf.len() - 18;
        assert_eq!(buf[tag_pos], 1);
        let mut bad = buf.clone();
        bad[tag_pos] = 9;
        assert!(matches!(
            ModelCheckpoint::read(bad.as_slice()),
            Err(CheckpointError::Corrupt(_))
        ));
        // A zeroed rebuild_every is caught by strategy validation.
        let mut bad = buf.clone();
        bad[tag_pos + 1..tag_pos + 9].copy_from_slice(&0u64.to_le_bytes());
        assert!(matches!(
            ModelCheckpoint::read(bad.as_slice()),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn v3_files_load_with_no_sampler_resume_state() {
        // A v4 writer emits ... | v3 sampler section | v4 flag byte; a v3
        // file is the same stream with version 3 and no trailing flag.
        let trainer = trained_trainer();
        let mut ckpt = ModelCheckpoint::from_trainer(&trainer);
        ckpt.sampler_state = None;
        let mut buf = Vec::new();
        ckpt.write(&mut buf).unwrap();
        buf[4..8].copy_from_slice(&3u32.to_le_bytes());
        buf.truncate(buf.len() - 1);
        let back = ModelCheckpoint::read(buf.as_slice()).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.sampler_state, None);
    }

    #[test]
    fn bad_sampler_resume_flags_are_rejected() {
        let trainer = trained_trainer();
        let mut ckpt = ModelCheckpoint::from_trainer(&trainer);
        ckpt.sampler_state = None;
        let mut buf = Vec::new();
        ckpt.write(&mut buf).unwrap();
        let flag_pos = buf.len() - 1;
        assert_eq!(buf[flag_pos], 0);
        buf[flag_pos] = 7;
        assert!(matches!(
            ModelCheckpoint::read(buf.as_slice()),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn light_strategy_and_word_tables_roundtrip_in_v5() {
        let corpus = DatasetProfile {
            name: "ckpt-light".into(),
            num_docs: 40,
            vocab_size: 50,
            avg_doc_len: 10.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(3);
        let mut trainer = crate::session::SessionBuilder::new()
            .corpus(&corpus)
            .config(
                LdaConfig::with_topics(8)
                    .seed(2)
                    .sampler(SamplerStrategy::LightLda {
                        rebuild_every: 3,
                        mh_steps: 2,
                        prune_below: 4,
                    }),
            )
            .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 2))
            .build()
            .unwrap();
        trainer.train(2);
        let full = ModelCheckpoint::from_trainer(&trainer);
        assert_eq!(
            full.sampler,
            SamplerStrategy::LightLda {
                rebuild_every: 3,
                mh_steps: 2,
                prune_below: 4,
            }
        );
        assert!(
            matches!(
                full.sampler_state,
                Some(SamplerResumeState::LightWordTables { built_at: 0, .. })
            ),
            "light checkpoints carry the word-proposal snapshot"
        );
        let mut buf = Vec::new();
        full.write(&mut buf).unwrap();
        let back = ModelCheckpoint::read(buf.as_slice()).unwrap();
        assert_eq!(back, full);

        // A truncated v5 sampler section surfaces as a typed IO error (EOF
        // mid-snapshot), never a panic.
        let truncated = &buf[..buf.len() - 7];
        assert!(matches!(
            ModelCheckpoint::read(truncated),
            Err(CheckpointError::Io(_))
        ));

        // The light tag and resume flag are v5 vocabulary: a v4-stamped file
        // using them is corrupt, not silently accepted.
        let mut v4_stamped = buf.clone();
        v4_stamped[4..8].copy_from_slice(&4u32.to_le_bytes());
        assert!(matches!(
            ModelCheckpoint::read(v4_stamped.as_slice()),
            Err(CheckpointError::Corrupt(_))
        ));
    }

    #[test]
    fn unresolved_auto_is_rejected_at_write_and_validate() {
        let trainer = trained_trainer();
        let mut ckpt = ModelCheckpoint::from_trainer(&trainer);
        ckpt.sampler = SamplerStrategy::Auto;
        assert!(ckpt.validate().is_err());
        let mut buf = Vec::new();
        let err = ckpt.write(&mut buf).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn validation_catches_inconsistent_counts() {
        let trainer = trained_trainer();
        let mut ckpt = ModelCheckpoint::from_trainer(&trainer);
        ckpt.nk[0] += 1;
        assert!(ckpt.validate().is_err());
    }

    #[test]
    fn rotation_discovery_orders_and_prunes_complete_sets() {
        let dir = std::env::temp_dir().join(format!("culda_rotation_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // An absent directory reads as empty rather than erroring.
        assert!(rotation::list(&dir.join("missing")).unwrap().is_empty());
        for (seq, it) in [(0u64, 10u64), (1, 20), (2, 30)] {
            let stem = dir.join(rotation::stem(seq, it));
            for ext in [
                rotation::MODEL_EXT,
                rotation::CORPUS_EXT,
                rotation::META_EXT,
            ] {
                std::fs::write(stem.with_extension(ext), b"x").unwrap();
            }
        }
        // An incomplete set (no .cldm) and a foreign file are both ignored.
        let partial = dir.join(rotation::stem(3, 40));
        std::fs::write(partial.with_extension(rotation::CORPUS_EXT), b"x").unwrap();
        std::fs::write(partial.with_extension(rotation::META_EXT), b"x").unwrap();
        std::fs::write(dir.join("notes.cldm"), b"x").unwrap();

        let entries = rotation::list(&dir).unwrap();
        assert_eq!(
            entries.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        let latest = rotation::latest(&dir).unwrap().unwrap();
        assert_eq!((latest.seq, latest.iterations), (2, 30));

        assert_eq!(rotation::prune(&dir, 2).unwrap(), 1);
        let kept = rotation::list(&dir).unwrap();
        assert_eq!(kept.iter().map(|e| e.seq).collect::<Vec<_>>(), vec![1, 2]);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_roundtrip() {
        let trainer = trained_trainer();
        let ckpt = ModelCheckpoint::from_trainer(&trainer);
        let dir = std::env::temp_dir().join("culda_checkpoint_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.cldm");
        ckpt.save(&path).unwrap();
        let back = ModelCheckpoint::load(&path).unwrap();
        assert_eq!(back, ckpt);
        std::fs::remove_file(&path).ok();
    }
}
