//! Thread-block work assignment for the sampling kernel (§6.1.2, Figure 6).
//!
//! Tokens are grouped by word so that all samplers (warps) of a thread block
//! share the same word's p2 index tree and p*(k) array in shared memory.
//! Words with many tokens are split across several blocks to avoid load
//! imbalance, and those split blocks are placed at the *lowest* block IDs so
//! the hardware scheduler issues them first and no long-tail block finishes
//! last.

use culda_corpus::ChunkLayout;
use serde::{Deserialize, Serialize};

/// The token range of one word assigned to one thread block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct WorkItem {
    /// The word whose tokens this block samples.
    pub word: u32,
    /// First word-major token position (inclusive).
    pub start: u32,
    /// Last word-major token position (exclusive).
    pub end: u32,
}

impl WorkItem {
    /// Number of tokens in the item.
    pub fn len(&self) -> usize {
        (self.end - self.start) as usize
    }

    /// True when the item covers no tokens.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }
}

/// Build the per-block work list for a chunk.
///
/// Every word present in the chunk contributes `ceil(tokens / max_per_block)`
/// items.  Items are ordered by descending token count of their word, so
/// multi-block (heavy) words occupy the lowest block IDs (§6.1.2).
pub fn build_work_items(layout: &ChunkLayout, max_per_block: usize) -> Vec<WorkItem> {
    assert!(max_per_block > 0);
    let mut items = Vec::new();
    for v in 0..layout.vocab_size {
        let (start, end) = layout.word_token_range(v);
        if start == end {
            continue;
        }
        let mut lo = start;
        while lo < end {
            let hi = (lo + max_per_block).min(end);
            items.push(WorkItem {
                word: v as u32,
                start: lo as u32,
                end: hi as u32,
            });
            lo = hi;
        }
    }
    // Heavy words first (stable by word id for determinism).
    items.sort_by(|a, b| {
        let wa = layout.word_token_count(a.word as usize);
        let wb = layout.word_token_count(b.word as usize);
        wb.cmp(&wa)
            .then(a.word.cmp(&b.word))
            .then(a.start.cmp(&b.start))
    });
    items
}

/// The words with at least one token in a chunk, ascending by word id — the
/// grid of any per-word auxiliary kernel (e.g. the alias-build kernel of
/// [`crate::kernels::AliasHybridSampler`], one block per word).
pub fn chunk_words(layout: &ChunkLayout) -> Vec<u32> {
    (0..layout.vocab_size)
        .filter(|&v| {
            let (start, end) = layout.word_token_range(v);
            start < end
        })
        .map(|v| v as u32)
        .collect()
}

/// Summary statistics of a work list (used by scheduling diagnostics and the
/// load-balance ablation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkStats {
    /// Number of thread blocks.
    pub num_blocks: usize,
    /// Total tokens covered.
    pub total_tokens: usize,
    /// Largest block (tokens).
    pub max_block_tokens: usize,
    /// Mean tokens per block.
    pub mean_block_tokens: f64,
}

/// Compute summary statistics of a work list.
pub fn work_stats(items: &[WorkItem]) -> WorkStats {
    let total: usize = items.iter().map(WorkItem::len).sum();
    let max = items.iter().map(WorkItem::len).max().unwrap_or(0);
    WorkStats {
        num_blocks: items.len(),
        total_tokens: total,
        max_block_tokens: max,
        mean_block_tokens: if items.is_empty() {
            0.0
        } else {
            total as f64 / items.len() as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::{partition::DocRange, CorpusBuilder, DatasetProfile};

    fn layout_with_heavy_word() -> ChunkLayout {
        let mut b = CorpusBuilder::new(4);
        // word 0 appears 10 times, word 1 twice, word 3 once.
        b.push_doc(&[0, 0, 0, 0, 1, 3]);
        b.push_doc(&[0, 0, 0, 0, 0, 0, 1]);
        let corpus = b.build();
        ChunkLayout::build(&corpus, DocRange { start: 0, end: 2 })
    }

    #[test]
    fn every_token_is_covered_exactly_once() {
        let layout = layout_with_heavy_word();
        let items = build_work_items(&layout, 4);
        let mut covered = vec![false; layout.num_tokens()];
        for it in &items {
            for pos in it.start..it.end {
                assert!(!covered[pos as usize], "position {pos} covered twice");
                covered[pos as usize] = true;
            }
        }
        assert!(covered.iter().all(|&c| c));
    }

    #[test]
    fn heavy_words_are_split_and_scheduled_first() {
        let layout = layout_with_heavy_word();
        let items = build_work_items(&layout, 4);
        // Word 0 has 10 tokens → 3 blocks with max 4 tokens each; they must be
        // the first items.
        assert_eq!(items[0].word, 0);
        assert_eq!(items[1].word, 0);
        assert_eq!(items[2].word, 0);
        assert!(items[0].len() <= 4 && !items[0].is_empty());
        let word0_blocks = items.iter().filter(|i| i.word == 0).count();
        assert_eq!(word0_blocks, 3);
        // The single-token word comes last or near-last.
        assert!(items.last().unwrap().len() <= items.first().unwrap().len());
    }

    #[test]
    fn blocks_respect_max_tokens() {
        let corpus = DatasetProfile::nytimes().scaled(0.0005).generate(3);
        let layout = ChunkLayout::build(
            &corpus,
            DocRange {
                start: 0,
                end: corpus.num_docs(),
            },
        );
        for &cap in &[64usize, 512, 4096] {
            let items = build_work_items(&layout, cap);
            assert!(items.iter().all(|i| i.len() <= cap && !i.is_empty()));
            let stats = work_stats(&items);
            assert_eq!(stats.total_tokens, layout.num_tokens());
            assert_eq!(
                stats.max_block_tokens,
                items.iter().map(WorkItem::len).max().unwrap()
            );
        }
    }

    #[test]
    fn chunk_words_lists_exactly_the_words_with_tokens() {
        let layout = layout_with_heavy_word();
        assert_eq!(chunk_words(&layout), vec![0, 1, 3]);
    }

    #[test]
    fn empty_layout_produces_no_items() {
        let mut b = CorpusBuilder::new(4);
        b.push_doc(&[0]);
        let corpus = b.build();
        let layout = ChunkLayout::build(&corpus, DocRange { start: 0, end: 0 });
        let items = build_work_items(&layout, 128);
        assert!(items.is_empty());
        let stats = work_stats(&items);
        assert_eq!(stats.num_blocks, 0);
        assert_eq!(stats.mean_block_tokens, 0.0);
    }
}
