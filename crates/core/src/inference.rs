//! Fold-in inference for unseen documents.
//!
//! Training produces the topic–word counts φ; serving a topic model means
//! answering "what is this *new* document about?" without re-training.  The
//! standard answer is fold-in Gibbs sampling: hold φ fixed, run a short Gibbs
//! chain over the new document's tokens only, and read the document–topic
//! counts off the chain.  The per-token conditional is the same Eq. 1 the
//! trainer samples from,
//!
//! ```text
//! p(k) ∝ (n_{d,k} + α) · (φ_{k,v} + β) / (n_k + Vβ)
//! ```
//!
//! except that φ and `n_k` are frozen.  This module provides
//! [`TopicInferencer`], which owns a frozen model and infers mixtures for
//! single documents or whole corpora (the latter in parallel with rayon,
//! since documents are independent once φ is frozen).
//!
//! Because inference is the *serving* path — the model may come from an
//! untrusted checkpoint on disk — construction and querying are fallible:
//! the `try_*` methods return a typed [`InferenceError`] on corrupt input
//! (negative `n_k`, NaN weights, shape mismatches) and the panicking
//! wrappers exist only for callers holding trusted in-process state.

use crate::config::LdaConfig;
use crate::trainer::CuLdaTrainer;
use culda_corpus::{Corpus, WordId};
use culda_sparse::{CsrBuilder, CsrMatrix, DenseMatrix};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;

/// Why a model cannot be frozen for inference, or a query cannot be answered.
///
/// Serving reads models from untrusted places — checkpoints on disk, snapshots
/// published mid-training — so every way a corrupt φ/`n_k` can poison the
/// fold-in arithmetic is a typed error here rather than a panic: one bad
/// checkpoint must never take down a process that is answering queries
/// (DESIGN.md §12).
#[derive(Debug, Clone, PartialEq)]
pub enum InferenceError {
    /// [`InferenceOptions::validate`] failed (zero sweeps, burn-in ≥ sweeps).
    InvalidOptions(String),
    /// φ has a different number of topic rows than `n_k` has totals.
    ShapeMismatch {
        /// Rows of the supplied φ matrix.
        phi_rows: usize,
        /// Length of the supplied `n_k` slice.
        nk_len: usize,
    },
    /// The model has no topics at all (`K = 0`).
    NoTopics,
    /// A prior is non-positive or non-finite.
    InvalidPrior {
        /// The document–topic prior α.
        alpha: f64,
        /// The topic–word prior β.
        beta: f64,
    },
    /// A topic's smoothed-weight denominator `n_k + Vβ` is non-positive or
    /// non-finite — the signature of a corrupt checkpoint (e.g. a negative
    /// `n_k`), which would turn every weight of that topic into NaN or a
    /// negative number.
    CorruptTopic {
        /// The offending topic index.
        topic: usize,
        /// The computed denominator.
        denom: f64,
    },
    /// A smoothed weight `(φ_{k,v} + β) / (n_k + Vβ)` came out non-finite.
    CorruptWeight {
        /// Topic row of the offending weight.
        topic: usize,
        /// Word column of the offending weight.
        word: usize,
    },
    /// The corpus being inferred was built against a different vocabulary
    /// than the model was trained on.
    VocabMismatch {
        /// Vocabulary size of the corpus.
        corpus: usize,
        /// Vocabulary size the model was trained on.
        model: usize,
    },
}

impl std::fmt::Display for InferenceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            InferenceError::InvalidOptions(msg) => write!(f, "invalid inference options: {msg}"),
            InferenceError::ShapeMismatch { phi_rows, nk_len } => write!(
                f,
                "φ rows and n_k length must agree (φ has {phi_rows} rows, n_k has {nk_len})"
            ),
            InferenceError::NoTopics => write!(f, "the model has no topics (K = 0)"),
            InferenceError::InvalidPrior { alpha, beta } => {
                write!(f, "priors must be positive (α = {alpha}, β = {beta})")
            }
            InferenceError::CorruptTopic { topic, denom } => write!(
                f,
                "topic {topic} has a non-positive smoothing denominator n_k + Vβ = {denom} \
                 — the model counts are corrupt"
            ),
            InferenceError::CorruptWeight { topic, word } => write!(
                f,
                "smoothed weight for topic {topic}, word {word} is not finite \
                 — the model counts are corrupt"
            ),
            InferenceError::VocabMismatch { corpus, model } => write!(
                f,
                "corpus vocabulary does not match the model (corpus V = {corpus}, model V = {model})"
            ),
        }
    }
}

impl std::error::Error for InferenceError {}

/// Options controlling the fold-in Gibbs chain.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct InferenceOptions {
    /// Total Gibbs sweeps over each document.
    pub sweeps: usize,
    /// Sweeps discarded before counts are accumulated into the estimate.
    pub burn_in: usize,
    /// RNG seed; per-document streams are derived from it, so corpus-level
    /// inference is deterministic regardless of thread scheduling.
    pub seed: u64,
}

impl Default for InferenceOptions {
    fn default() -> Self {
        InferenceOptions {
            sweeps: 20,
            burn_in: 5,
            seed: 0xFEED,
        }
    }
}

impl InferenceOptions {
    /// Validate the options.
    pub fn validate(&self) -> Result<(), String> {
        if self.sweeps == 0 {
            return Err("sweeps must be at least 1".into());
        }
        if self.burn_in >= self.sweeps {
            return Err(format!(
                "burn_in ({}) must be smaller than sweeps ({})",
                self.burn_in, self.sweeps
            ));
        }
        Ok(())
    }
}

/// The inferred topic mixture of one document.
#[derive(Debug, Clone, PartialEq)]
pub struct DocumentTopics {
    /// Accumulated topic counts over the post-burn-in sweeps.
    pub counts: Vec<u32>,
    /// Smoothed, normalised mixture `θ̂_d` (sums to 1).
    pub mixture: Vec<f64>,
}

impl DocumentTopics {
    /// Topics sorted by decreasing probability, truncated to `n`.
    pub fn top_topics(&self, n: usize) -> Vec<(usize, f64)> {
        let mut pairs: Vec<(usize, f64)> = self.mixture.iter().copied().enumerate().collect();
        // `total_cmp` instead of `partial_cmp().unwrap()`: a NaN anywhere in
        // the mixture must not be able to panic the serving path.
        pairs.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        pairs.truncate(n);
        pairs
    }

    /// The single most probable topic (`None` for an empty mixture).
    pub fn dominant_topic(&self) -> Option<usize> {
        self.top_topics(1).first().map(|&(k, _)| k)
    }
}

/// A frozen LDA model that can answer topic queries for unseen documents.
pub struct TopicInferencer {
    /// Smoothed topic–word weights `(φ_{k,v} + β) / (n_k + Vβ)`, precomputed
    /// once because they never change during inference.
    phi_weight: DenseMatrix<f64>,
    num_topics: usize,
    vocab_size: usize,
    alpha: f64,
}

impl TopicInferencer {
    /// Freeze a model given the trained topic–word counts, topic totals and
    /// the training hyper-parameters, validating every value the fold-in
    /// arithmetic divides by.
    ///
    /// Rejects (instead of panicking on) the corrupt-checkpoint shapes that
    /// would otherwise poison inference: φ/`n_k` shape disagreement, `K = 0`,
    /// non-positive or non-finite priors, and any topic whose smoothing
    /// denominator `n_k + Vβ` is non-positive — e.g. a negative `n_k`, which
    /// would make every weight of that topic NaN or negative.
    pub fn try_new(
        phi: &DenseMatrix<u32>,
        nk: &[i64],
        alpha: f64,
        beta: f64,
    ) -> Result<Self, InferenceError> {
        if phi.rows() != nk.len() {
            return Err(InferenceError::ShapeMismatch {
                phi_rows: phi.rows(),
                nk_len: nk.len(),
            });
        }
        if phi.rows() == 0 {
            return Err(InferenceError::NoTopics);
        }
        if !(alpha > 0.0 && alpha.is_finite() && beta > 0.0 && beta.is_finite()) {
            return Err(InferenceError::InvalidPrior { alpha, beta });
        }
        let (k, v) = (phi.rows(), phi.cols());
        let mut weight = DenseMatrix::zeros(k, v);
        for topic in 0..k {
            let denom = nk[topic] as f64 + v as f64 * beta;
            if !(denom > 0.0 && denom.is_finite()) {
                return Err(InferenceError::CorruptTopic { topic, denom });
            }
            let row = weight.row_mut(topic);
            for (word, (slot, &c)) in row.iter_mut().zip(phi.row(topic)).enumerate() {
                let w = (c as f64 + beta) / denom;
                if !w.is_finite() {
                    return Err(InferenceError::CorruptWeight { topic, word });
                }
                *slot = w;
            }
        }
        Ok(TopicInferencer {
            phi_weight: weight,
            num_topics: k,
            vocab_size: v,
            alpha,
        })
    }

    /// Panicking convenience wrapper around [`TopicInferencer::try_new`] for
    /// callers that construct from trusted, in-process state.
    pub fn new(phi: &DenseMatrix<u32>, nk: &[i64], alpha: f64, beta: f64) -> Self {
        match Self::try_new(phi, nk, alpha, beta) {
            Ok(inferencer) => inferencer,
            Err(e) => panic!("{e}"),
        }
    }

    /// Freeze the current state of a trainer (its synchronized global φ).
    pub fn from_trainer(trainer: &CuLdaTrainer) -> Self {
        let cfg: &LdaConfig = trainer.config();
        TopicInferencer::new(
            &trainer.global_phi(),
            &trainer.global_nk(),
            cfg.alpha,
            cfg.beta,
        )
    }

    /// Number of topics `K`.
    pub fn num_topics(&self) -> usize {
        self.num_topics
    }

    /// Vocabulary size `V` the model was trained on.
    pub fn vocab_size(&self) -> usize {
        self.vocab_size
    }

    /// Infer the topic mixture of a single document given as word ids.
    ///
    /// **OOV-drop semantics:** word ids at or beyond the model's vocabulary
    /// (`V`) are *dropped before the Gibbs chain starts* — they contribute no
    /// tokens, no counts, and no RNG draws, exactly as if the query had never
    /// contained them.  A document whose tokens are all out-of-vocabulary
    /// (or empty) therefore skips the chain entirely and returns the uniform
    /// smoothed mixture `α / (Kα)` with zero accumulated counts.
    pub fn try_infer_document(
        &self,
        words: &[WordId],
        options: InferenceOptions,
    ) -> Result<DocumentTopics, InferenceError> {
        options.validate().map_err(InferenceError::InvalidOptions)?;
        let mut rng = ChaCha8Rng::seed_from_u64(options.seed);
        Ok(self.infer_with_rng(words, options, &mut rng))
    }

    /// Panicking convenience wrapper around
    /// [`TopicInferencer::try_infer_document`] (same OOV-drop semantics);
    /// panics only on invalid [`InferenceOptions`].
    pub fn infer_document(&self, words: &[WordId], options: InferenceOptions) -> DocumentTopics {
        match self.try_infer_document(words, options) {
            Ok(doc) => doc,
            Err(e) => panic!("{e}"),
        }
    }

    fn infer_with_rng(
        &self,
        words: &[WordId],
        options: InferenceOptions,
        rng: &mut ChaCha8Rng,
    ) -> DocumentTopics {
        let k = self.num_topics;
        let tokens: Vec<usize> = words
            .iter()
            .filter(|&&w| (w as usize) < self.vocab_size)
            .map(|&w| w as usize)
            .collect();
        let mut doc_counts = vec![0u32; k];
        let mut accumulated = vec![0u32; k];
        if tokens.is_empty() {
            let mixture = vec![1.0 / k as f64; k];
            return DocumentTopics {
                counts: accumulated,
                mixture,
            };
        }

        // Random initial assignment.
        let mut z: Vec<usize> = tokens.iter().map(|_| rng.gen_range(0..k)).collect();
        for &t in &z {
            doc_counts[t] += 1;
        }

        let mut p = vec![0.0f64; k];
        for sweep in 0..options.sweeps {
            for (i, &v) in tokens.iter().enumerate() {
                let old = z[i];
                doc_counts[old] -= 1;
                let mut total = 0.0;
                for topic in 0..k {
                    let w = self.phi_weight.get(topic, v);
                    let val = (doc_counts[topic] as f64 + self.alpha) * w;
                    total += val;
                    p[topic] = total;
                }
                // `total_cmp` gives a total order over f64, so the search
                // cannot panic even if a corrupt weight slipped a NaN into
                // the prefix sums (`try_new` rejects those up front; this is
                // the second line of defence for the serving path).
                let u = rng.gen::<f64>() * total;
                let new = match p.binary_search_by(|x| x.total_cmp(&u)) {
                    Ok(idx) | Err(idx) => idx.min(k - 1),
                };
                z[i] = new;
                doc_counts[new] += 1;
            }
            if sweep >= options.burn_in {
                for (acc, &c) in accumulated.iter_mut().zip(&doc_counts) {
                    *acc += c;
                }
            }
        }

        // Average the counts over the kept sweeps, smooth with α, normalise.
        let kept_sweeps = (options.sweeps - options.burn_in) as f64;
        let denom = tokens.len() as f64 + k as f64 * self.alpha;
        let mixture: Vec<f64> = accumulated
            .iter()
            .map(|&c| (c as f64 / kept_sweeps + self.alpha) / denom)
            .collect();
        // Normalise explicitly to guard against floating-point drift.
        let s: f64 = mixture.iter().sum();
        let mixture = mixture.into_iter().map(|x| x / s).collect();
        DocumentTopics {
            counts: accumulated,
            mixture,
        }
    }

    /// Infer topic mixtures for every document of a corpus, in parallel.
    /// Returns one [`DocumentTopics`] per document, in corpus order
    /// (per-document OOV-drop semantics as in
    /// [`TopicInferencer::try_infer_document`]).
    pub fn try_infer_corpus(
        &self,
        corpus: &Corpus,
        options: InferenceOptions,
    ) -> Result<Vec<DocumentTopics>, InferenceError> {
        options.validate().map_err(InferenceError::InvalidOptions)?;
        if corpus.vocab_size() != self.vocab_size {
            return Err(InferenceError::VocabMismatch {
                corpus: corpus.vocab_size(),
                model: self.vocab_size,
            });
        }
        // One independent task per document on the thread pool.  Each
        // document derives its RNG from its own id, so the inferred topics
        // are identical however the documents land on OS threads.
        Ok((0..corpus.num_docs())
            .into_par_iter()
            .map(|d| {
                let mut rng = ChaCha8Rng::seed_from_u64(
                    options
                        .seed
                        .wrapping_add((d as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
                );
                self.infer_with_rng(corpus.doc(d), options, &mut rng)
            })
            .collect())
    }

    /// Panicking convenience wrapper around
    /// [`TopicInferencer::try_infer_corpus`].
    pub fn infer_corpus(&self, corpus: &Corpus, options: InferenceOptions) -> Vec<DocumentTopics> {
        match self.try_infer_corpus(corpus, options) {
            Ok(results) => results,
            Err(e) => panic!("{e}"),
        }
    }

    /// Infer a whole corpus and return the per-document *mean* topic counts
    /// as a CSR matrix (rows aligned with the corpus), which is the shape the
    /// held-out evaluation in `culda-metrics` consumes.
    pub fn try_infer_corpus_counts(
        &self,
        corpus: &Corpus,
        options: InferenceOptions,
    ) -> Result<CsrMatrix, InferenceError> {
        let results = self.try_infer_corpus(corpus, options)?;
        let kept = (options.sweeps - options.burn_in).max(1) as u32;
        let mut builder = CsrBuilder::new(corpus.num_docs(), self.num_topics);
        for doc in &results {
            let entries: Vec<(u16, u32)> = doc
                .counts
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(k, &c)| (k as u16, (c + kept / 2) / kept))
                .filter(|&(_, c)| c > 0)
                .collect();
            builder.push_row(entries);
        }
        Ok(builder.finish())
    }

    /// Panicking convenience wrapper around
    /// [`TopicInferencer::try_infer_corpus_counts`].
    pub fn infer_corpus_counts(&self, corpus: &Corpus, options: InferenceOptions) -> CsrMatrix {
        match self.try_infer_corpus_counts(corpus, options) {
            Ok(counts) => counts,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_corpus::CorpusBuilder;

    /// A model with two sharply separated topics: topic 0 emits words 0..5,
    /// topic 1 emits words 5..10.
    fn two_topic_model() -> TopicInferencer {
        let mut phi = DenseMatrix::zeros(2, 10);
        for w in 0..5 {
            phi.set(0, w, 100);
        }
        for w in 5..10 {
            phi.set(1, w, 100);
        }
        let nk = vec![500, 500];
        TopicInferencer::new(&phi, &nk, 0.1, 0.01)
    }

    #[test]
    fn options_validation() {
        assert!(InferenceOptions::default().validate().is_ok());
        let bad = InferenceOptions {
            sweeps: 0,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
        let bad = InferenceOptions {
            sweeps: 5,
            burn_in: 5,
            ..Default::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn documents_are_assigned_to_the_right_topic() {
        let model = two_topic_model();
        let opts = InferenceOptions::default();
        let doc0 = model.infer_document(&[0, 1, 2, 3, 4, 0, 1], opts);
        let doc1 = model.infer_document(&[5, 6, 7, 8, 9, 9], opts);
        assert_eq!(doc0.dominant_topic(), Some(0));
        assert_eq!(doc1.dominant_topic(), Some(1));
        assert!(doc0.mixture[0] > 0.8, "mixture {:?}", doc0.mixture);
        assert!(doc1.mixture[1] > 0.8, "mixture {:?}", doc1.mixture);
    }

    #[test]
    fn mixtures_are_normalised_and_deterministic() {
        let model = two_topic_model();
        let opts = InferenceOptions::default();
        let a = model.infer_document(&[0, 5, 1, 6], opts);
        let b = model.infer_document(&[0, 5, 1, 6], opts);
        assert_eq!(a, b);
        assert!((a.mixture.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        let c = model.infer_document(&[0, 5, 1, 6], InferenceOptions { seed: 777, ..opts });
        assert!((c.mixture.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_oov_documents_get_uniform_mixtures() {
        let model = two_topic_model();
        let opts = InferenceOptions::default();
        let empty = model.infer_document(&[], opts);
        assert!((empty.mixture[0] - 0.5).abs() < 1e-12);
        assert_eq!(empty.dominant_topic(), Some(0));
        // Word ids beyond V are skipped entirely.
        let oov = model.infer_document(&[42, 99], opts);
        assert!((oov.mixture[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn corpus_inference_matches_per_document_inference() {
        let model = two_topic_model();
        let opts = InferenceOptions {
            sweeps: 10,
            burn_in: 2,
            seed: 5,
        };
        let mut b = CorpusBuilder::new(10);
        b.push_doc(&[0, 1, 2, 2]);
        b.push_doc(&[7, 8, 9]);
        b.push_doc(&[]);
        let corpus = b.build();
        let results = model.infer_corpus(&corpus, opts);
        assert_eq!(results.len(), 3);
        assert_eq!(results[0].dominant_topic(), Some(0));
        assert_eq!(results[1].dominant_topic(), Some(1));
        // Counts matrix has one row per document and only non-zero entries.
        let counts = model.infer_corpus_counts(&corpus, opts);
        assert_eq!(counts.rows(), 3);
        assert_eq!(counts.cols(), 2);
        assert!(counts.get(0, 0) > 0);
        assert_eq!(counts.row_nnz(2), 0);
        counts.validate().unwrap();
    }

    #[test]
    fn top_topics_are_sorted() {
        let model = two_topic_model();
        let doc = model.infer_document(&[0, 0, 0, 5], InferenceOptions::default());
        let top = doc.top_topics(2);
        assert_eq!(top.len(), 2);
        assert!(top[0].1 >= top[1].1);
    }

    #[test]
    #[should_panic(expected = "corpus vocabulary does not match")]
    fn vocabulary_mismatch_is_rejected() {
        let model = two_topic_model();
        let corpus = CorpusBuilder::new(3).build();
        let _ = model.infer_corpus(&corpus, InferenceOptions::default());
    }
}
