//! φ model synchronization (§5.2, Figure 4), dense or vocabulary-sharded.
//!
//! After every iteration the per-chunk φ contributions must be combined into
//! the global matrix every sampler reads:
//!
//! ```text
//! φ = φ0 + φ1 + … + φC−1,      n_k = Σ_c n_k[c]
//! ```
//!
//! The paper performs the combination on the GPUs as a `⌈log2 G⌉`-round tree
//! **reduce** followed by a tree **broadcast** of the full `K × V` replica
//! behind one global barrier.  This module additionally implements the
//! range-sharded variant the §5.2 schedule permits: the vocabulary is
//! partitioned into `S` contiguous column ranges ([`SyncPlan`]), each range
//! runs its own tree reduce + broadcast, and the only barrier is per shard —
//! which is what lets the scheduler overlap shard `s`'s reduce with the
//! sampling of shard `s + 1` (see [`crate::schedule`] and `DESIGN.md` §8).
//!
//! The simulator computes the sums functionally (integer column sums are
//! identical however the columns are grouped, so sharding can never change
//! the synchronized state) and charges the time of the per-shard tree
//! schedules over the system's interconnect, which is what determines
//! multi-GPU scalability (Figure 9).
//!
//! The reduce itself runs on real OS threads, which is safe precisely
//! because everything summed here is an integer count: addition commutes, so
//! no thread interleaving can change a column sum.  Floating-point reduces
//! must not be added to this path without routing them through the shim's
//! fixed partial-sum tree, where the tree shape — not thread arrival order —
//! defines the result.

use crate::config::LdaConfig;
use crate::model::ChunkState;
use culda_gpusim::MultiGpuSystem;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use std::sync::Arc;

/// How one φ synchronization is laid out: how many vocabulary shards, and how
/// many of their reduces may overlap sampling.
///
/// ```
/// use culda_core::sync::SyncPlan;
///
/// // 10 columns over 4 shards: the remainder goes to the leading shards.
/// let plan = SyncPlan::new(4, 2);
/// let ranges = plan.shard_ranges(10);
/// assert_eq!(ranges.len(), 4);
/// assert_eq!(ranges[0], 0..3);
/// assert_eq!(ranges[3], 8..10);
/// assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncPlan {
    shards: usize,
    overlap_depth: usize,
}

impl SyncPlan {
    /// The paper's dense schedule: one shard, one global barrier.
    pub const fn dense() -> Self {
        SyncPlan {
            shards: 1,
            overlap_depth: 0,
        }
    }

    /// A plan with `shards` vocabulary ranges and up to `overlap_depth`
    /// reduces in flight during sampling (`0` = no overlap).
    pub fn new(shards: usize, overlap_depth: usize) -> Self {
        assert!(shards >= 1, "a plan needs at least one shard");
        SyncPlan {
            shards,
            overlap_depth,
        }
    }

    /// Derive the plan from a run configuration, clamping the shard count to
    /// the vocabulary size (a shard must own at least one column).  An
    /// auto-tuned configuration (`sync_shards == None`) starts dense — the
    /// trainer measures iteration 0 under this plan and swaps in the tuned
    /// shard count afterwards (see `CuLdaTrainer::run_iteration`).
    pub fn from_config(config: &LdaConfig, vocab_size: usize) -> Self {
        SyncPlan {
            shards: config.sync_shards.unwrap_or(1).clamp(1, vocab_size.max(1)),
            overlap_depth: config.sync_overlap_depth,
        }
    }

    /// Number of vocabulary shards `S`.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Maximum shard reduces in flight while sampling continues.
    pub fn overlap_depth(&self) -> usize {
        self.overlap_depth
    }

    /// True for the paper's single-shard schedule.
    pub fn is_dense(&self) -> bool {
        self.shards == 1
    }

    /// Whether the schedule actually overlaps reduces with sampling (needs
    /// more than one shard and a non-zero depth).
    pub fn overlaps(&self) -> bool {
        self.shards > 1 && self.overlap_depth > 0
    }

    /// The contiguous column ranges of the shards over a `vocab_size`-wide
    /// matrix, split evenly by *column count*.  The remainder columns go to
    /// the leading shards.  A plan with more shards than columns produces
    /// one range per column (never an empty shard), matching the clamp in
    /// [`SyncPlan::from_config`].
    pub fn shard_ranges(&self, vocab_size: usize) -> Vec<Range<usize>> {
        let shards = self.shards.min(vocab_size.max(1));
        let base = vocab_size / shards;
        let rem = vocab_size % shards;
        let mut start = 0usize;
        (0..shards)
            .map(|s| {
                let width = base + usize::from(s < rem);
                let range = start..start + width;
                start += width;
                range
            })
            .collect()
    }

    /// Contiguous shard ranges balanced by *token count* instead of column
    /// count: the boundary after shard `s` is placed where the cumulative
    /// token mass crosses `(s + 1) / S` of the corpus, while every shard
    /// keeps at least one column.  This is the partition-by-token idea of §4
    /// applied to the vocabulary axis: the sampling kernel is word-major, so
    /// equal-token shards finish sampling at evenly spaced times, which is
    /// what gives the per-shard reduces compute to hide behind.  With a
    /// frequency-skewed *and frequency-sorted* vocabulary, equal-column
    /// shards would put nearly all sampling work in the first shard and
    /// leave the later reduces fully exposed.
    pub fn token_balanced_ranges(&self, word_tokens: &[u64]) -> Vec<Range<usize>> {
        let v = word_tokens.len();
        let total: u64 = word_tokens.iter().sum();
        if self.shards == 1 || total == 0 {
            return self.shard_ranges(v);
        }
        let shards = self.shards.min(v);
        let mut ranges = Vec::with_capacity(shards);
        let mut start = 0usize;
        let mut cum = 0u64;
        for s in 0..shards {
            let remaining = shards - s;
            let end = if remaining == 1 {
                v
            } else {
                let target = total * (s as u64 + 1) / shards as u64;
                let mut e = start;
                // Leave at least one column for each remaining shard.
                while e < v - (remaining - 1) && (e == start || cum + word_tokens[e] <= target) {
                    cum += word_tokens[e];
                    e += 1;
                }
                e
            };
            ranges.push(start..end);
            start = end;
        }
        ranges
    }
}

/// A [`SyncPlan`] layered with the cluster-aware hierarchy decisions: whether
/// the sync runs the two-tier schedule (per-node tree reduce → inter-node
/// leader exchange → per-node broadcast) and how many contiguous *inter-node
/// groups* the vocabulary shards are batched into for the fabric exchange.
///
/// Grouping amortizes the fabric's round latencies: with `S` shards and `G`
/// groups, the slow inter-node fabric sees `G` exchanges of `S / G` shards'
/// worth of reduced columns each, instead of `S` small ones — at the price of
/// coarser overlap (a group's exchange cannot start before its last shard's
/// local reduce).  On a single-node system every plan degenerates to the flat
/// [`SyncPlan`] schedule and the hierarchy fields are ignored.
///
/// ```
/// use culda_core::sync::{HierarchicalSyncPlan, SyncPlan};
///
/// let plan = HierarchicalSyncPlan::new(SyncPlan::new(8, 2), true, 2);
/// assert_eq!(plan.shards(), 8);
/// assert_eq!(plan.inter_groups(), 2);
/// assert!(plan.hierarchical());
/// // The flat LDA*-style baseline keeps the same shard layout but sends
/// // every tree round over the fabric.
/// let flat = HierarchicalSyncPlan::flat(SyncPlan::new(8, 2));
/// assert!(!flat.hierarchical());
/// assert_eq!(flat.base(), plan.base());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchicalSyncPlan {
    base: SyncPlan,
    hierarchical: bool,
    inter_groups: usize,
}

impl HierarchicalSyncPlan {
    /// The paper's dense schedule with the hierarchical path enabled (a
    /// no-op off-cluster): one shard, one barrier, one fabric group.
    pub const fn dense() -> Self {
        HierarchicalSyncPlan {
            base: SyncPlan::dense(),
            hierarchical: true,
            inter_groups: 1,
        }
    }

    /// A plan over `base` with the hierarchical schedule switched
    /// `hierarchical` and the shards batched into `inter_groups` fabric
    /// exchanges (clamped to the shard count at use).
    pub fn new(base: SyncPlan, hierarchical: bool, inter_groups: usize) -> Self {
        assert!(inter_groups >= 1, "a plan needs at least one fabric group");
        HierarchicalSyncPlan {
            base,
            hierarchical,
            inter_groups,
        }
    }

    /// The topology-oblivious baseline over `base`: every tree round crosses
    /// whatever interconnect is slowest (what LDA* does over Ethernet).
    pub const fn flat(base: SyncPlan) -> Self {
        HierarchicalSyncPlan {
            base,
            hierarchical: false,
            inter_groups: 1,
        }
    }

    /// Derive the plan from a run configuration.  An auto-tuned group count
    /// (`sync_inter_groups == None`) starts at one group; the trainer swaps
    /// in the tuned `(shards, groups)` pair after measuring iteration 0.
    pub fn from_config(config: &LdaConfig, vocab_size: usize) -> Self {
        let base = SyncPlan::from_config(config, vocab_size);
        HierarchicalSyncPlan {
            base,
            hierarchical: config.hierarchical_sync,
            inter_groups: config
                .sync_inter_groups
                .unwrap_or(1)
                .clamp(1, base.shards()),
        }
    }

    /// The underlying shard/overlap layout.
    pub fn base(&self) -> SyncPlan {
        self.base
    }

    /// Whether the two-tier schedule is enabled (only observable on a
    /// multi-node system).
    pub fn hierarchical(&self) -> bool {
        self.hierarchical
    }

    /// Number of contiguous inter-node fabric exchanges the shards are
    /// batched into.
    pub fn inter_groups(&self) -> usize {
        self.inter_groups
    }

    /// Number of vocabulary shards `S` (of the base plan).
    pub fn shards(&self) -> usize {
        self.base.shards()
    }

    /// Maximum shard reduces in flight while sampling continues.
    pub fn overlap_depth(&self) -> usize {
        self.base.overlap_depth()
    }

    /// True for the single-shard schedule.
    pub fn is_dense(&self) -> bool {
        self.base.is_dense()
    }

    /// Whether the schedule overlaps reduces with sampling.
    pub fn overlaps(&self) -> bool {
        self.base.overlaps()
    }
}

impl From<SyncPlan> for HierarchicalSyncPlan {
    fn from(base: SyncPlan) -> Self {
        HierarchicalSyncPlan {
            base,
            hierarchical: true,
            inter_groups: 1,
        }
    }
}

/// Global per-word token counts across all chunks (`Σ_c` of every chunk's
/// word-major histogram) — the weights [`SyncPlan::token_balanced_ranges`]
/// cuts the vocabulary with.  Independent of how the corpus is chunked.
pub fn global_word_tokens(states: &[Arc<ChunkState>]) -> Vec<u64> {
    let v = states[0].layout.vocab_size;
    let mut counts = vec![0u64; v];
    for st in states {
        for (w, c) in counts.iter_mut().enumerate() {
            *c += st.layout.word_token_count(w) as u64;
        }
    }
    counts
}

/// Outcome of one φ synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncStats {
    /// Simulated time of the reduce + broadcast, summed over all shards (the
    /// interconnect work; the *exposed* time after overlap is decided by the
    /// scheduler, see `IterationStats::sync_exposed_time_s`).
    pub time_s: f64,
    /// Bytes of one φ replica (what the tree steps move in aggregate).
    pub replica_bytes: u64,
    /// Number of devices participating.
    pub num_devices: usize,
}

/// Outcome of one sharded φ synchronization: the aggregate [`SyncStats`] plus
/// the per-shard simulated times the scheduler overlaps with sampling.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShardedSyncStats {
    /// Aggregate statistics (`time_s` is the sum over shards).
    pub stats: SyncStats,
    /// Simulated time of each shard's tree reduce + broadcast, in shard
    /// order.  `n_k` rides with the last shard.
    pub per_shard_time_s: Vec<f64>,
    /// The token-balanced column ranges the sync actually used (see
    /// [`SyncPlan::token_balanced_ranges`]); the scheduler aligns its
    /// per-shard compute slices with these.
    pub shard_ranges: Vec<Range<usize>>,
    /// Bytes the tree steps moved over intra-node links (all the traffic on
    /// a single-node system).
    pub intra_bytes: u64,
    /// Bytes the tree steps moved over the inter-node fabric (0 on a
    /// single-node system).
    pub inter_bytes: u64,
}

/// Cost the per-shard tree schedules of one sync under `plan`, given each
/// shard's replica bytes (`n_k` already folded into the last shard).
///
/// Returns the per-shard simulated times — with each fabric group's
/// inter-node exchange folded into the time of the group's *last* shard,
/// which is when the exchange can start — plus the per-tier byte totals.
/// Shared by the synchronization itself and the trainer's auto-tuner, so the
/// tuner predicts with exactly the cost model the scheduler will charge.
pub(crate) fn hier_shard_times(
    system: &MultiGpuSystem,
    shard_bytes: &[u64],
    plan: &HierarchicalSyncPlan,
) -> (Vec<f64>, u64, u64) {
    let mut intra = 0u64;
    let mut inter = 0u64;
    if !(plan.hierarchical() && system.num_nodes() > 1) {
        let times = shard_bytes
            .iter()
            .map(|&b| {
                let (i, x) = system.phi_sync_tier_bytes(b, false);
                intra += i;
                inter += x;
                system.phi_sync_time_s(b)
            })
            .collect();
        return (times, intra, inter);
    }
    let shards = shard_bytes.len();
    let groups = plan.inter_groups().clamp(1, shards);
    let mut times: Vec<f64> = shard_bytes
        .iter()
        .map(|&b| {
            intra += system.phi_sync_tier_bytes(b, true).0;
            system.phi_hier_local_time_s(b)
        })
        .collect();
    // Batch the shards into `groups` contiguous fabric exchanges, remainder
    // to the leading groups (the same split rule as SyncPlan::shard_ranges).
    let base = shards / groups;
    let rem = shards % groups;
    let mut start = 0usize;
    for g in 0..groups {
        let width = base + usize::from(g < rem);
        let group_bytes: u64 = shard_bytes[start..start + width].iter().sum();
        times[start + width - 1] += system.phi_inter_exchange_time_s(group_bytes);
        inter += system.phi_sync_tier_bytes(group_bytes, true).1;
        start += width;
    }
    (times, intra, inter)
}

/// Combine every chunk's `phi_local` / `nk_local` into each chunk's
/// `phi_global` / `nk_global` with the dense single-barrier schedule of §5.2,
/// and return the simulated cost of the tree reduce + broadcast.
///
/// `compress_16bit` selects the per-element transfer size (§6.1.3 halves the
/// synchronization volume as well as the kernel traffic).
pub fn synchronize_phi(
    states: &[Arc<ChunkState>],
    system: &MultiGpuSystem,
    compress_16bit: bool,
) -> SyncStats {
    synchronize_phi_sharded(states, system, &SyncPlan::dense(), compress_16bit).stats
}

/// Combine every chunk's `phi_local` / `nk_local` into each chunk's
/// `phi_global` / `nk_global`, one vocabulary shard at a time, and return the
/// per-shard simulated costs of the tree schedules.
///
/// The functional result is bit-identical to [`synchronize_phi`] for every
/// plan: each global cell is an integer sum of the chunk contributions, and
/// grouping the columns into shards does not change any of the sums.  Only
/// the costed barrier structure differs.
pub fn synchronize_phi_sharded(
    states: &[Arc<ChunkState>],
    system: &MultiGpuSystem,
    plan: &SyncPlan,
    compress_16bit: bool,
) -> ShardedSyncStats {
    synchronize_phi_hier_sharded(
        states,
        system,
        &HierarchicalSyncPlan::flat(*plan),
        compress_16bit,
    )
}

/// [`synchronize_phi_sharded`] under a [`HierarchicalSyncPlan`]: on a
/// multi-node system with the hierarchy enabled, each shard is costed as its
/// per-node tree reduce + broadcast and every fabric group's reduced columns
/// cross the inter-node fabric once, folded into the group's last shard.
/// The functional result is bit-identical to every other schedule.
pub fn synchronize_phi_hier_sharded(
    states: &[Arc<ChunkState>],
    system: &MultiGpuSystem,
    plan: &HierarchicalSyncPlan,
    compress_16bit: bool,
) -> ShardedSyncStats {
    assert!(!states.is_empty());
    let v = states[0].phi_local.cols();
    let base = plan.base();
    let ranges = if base.is_dense() {
        base.shard_ranges(v)
    } else {
        base.token_balanced_ranges(&global_word_tokens(states))
    };
    synchronize_phi_hier_over_ranges(states, system, ranges, compress_16bit, plan)
}

/// Synchronize over an explicit, already-resolved set of contiguous column
/// ranges with the *flat* single-tier cost model (every tree round over the
/// system interconnect — on a cluster, the fabric).  Kept as the LDA*-style
/// baseline; the scheduler routes through
/// [`synchronize_phi_hier_over_ranges`].
pub fn synchronize_phi_over_ranges(
    states: &[Arc<ChunkState>],
    system: &MultiGpuSystem,
    ranges: Vec<Range<usize>>,
    compress_16bit: bool,
) -> ShardedSyncStats {
    synchronize_phi_hier_over_ranges(
        states,
        system,
        ranges,
        compress_16bit,
        &HierarchicalSyncPlan::flat(SyncPlan::dense()),
    )
}

/// The workhorse behind every synchronize variant: combine over an explicit,
/// already-resolved set of contiguous column ranges (which must cover `0..V`
/// in order) and cost them under `plan`.  Exposed so the scheduler can
/// resolve the ranges once per iteration and reuse them for its
/// compute-overlap weights.
pub fn synchronize_phi_hier_over_ranges(
    states: &[Arc<ChunkState>],
    system: &MultiGpuSystem,
    ranges: Vec<Range<usize>>,
    compress_16bit: bool,
    plan: &HierarchicalSyncPlan,
) -> ShardedSyncStats {
    assert!(!states.is_empty());
    let k = states[0].num_topics();
    let v = states[0].phi_local.cols();

    // --- Functional part: global sums, one column shard at a time. ---
    for range in &ranges {
        // Sum rows in parallel; each row of the result is independent.
        let summed: Vec<Vec<u32>> = (0..k)
            .into_par_iter()
            .map(|row| {
                let mut acc = vec![0u32; range.len()];
                for st in states {
                    for (a, col) in acc.iter_mut().zip(range.clone()) {
                        *a += st.phi_local.load(row, col);
                    }
                }
                acc
            })
            .collect();

        // Broadcast the shard into every chunk's global replica.
        states.par_iter().for_each(|st| {
            for (row, vals) in summed.iter().enumerate() {
                for (offset, &x) in vals.iter().enumerate() {
                    st.phi_global.store(row, range.start + offset, x);
                }
            }
        });
    }

    // n_k is K-sized (tiny next to φ); it rides with the last shard.
    let mut nk = vec![0i64; k];
    for st in states {
        for (acc, val) in nk.iter_mut().zip(st.nk_local.to_vec()) {
            *acc += val;
        }
    }
    states.par_iter().for_each(|st| {
        st.nk_global.store_all(&nk);
    });

    // --- Cost model: one tree schedule per shard, grouped fabric hops. ---
    let elem_bytes: u64 = if compress_16bit { 2 } else { 4 };
    let nk_bytes = (k as u64) * 8;
    let shard_bytes: Vec<u64> = ranges
        .iter()
        .enumerate()
        .map(|(s, range)| {
            let mut bytes = (k as u64) * (range.len() as u64) * elem_bytes;
            if s == ranges.len() - 1 {
                bytes += nk_bytes;
            }
            bytes
        })
        .collect();
    let (per_shard_time_s, intra_bytes, inter_bytes) = hier_shard_times(system, &shard_bytes, plan);
    let replica_bytes = (k as u64) * (v as u64) * elem_bytes + nk_bytes;
    ShardedSyncStats {
        stats: SyncStats {
            time_s: per_shard_time_s.iter().sum(),
            replica_bytes,
            num_devices: system.num_gpus(),
        },
        per_shard_time_s,
        shard_ranges: ranges,
        intra_bytes,
        inter_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LdaConfig;
    use culda_corpus::{Corpus, DatasetProfile, Partitioner};
    use culda_gpusim::{DeviceSpec, Interconnect};

    fn make_states(corpus: &Corpus, chunks: usize, k: usize) -> Vec<Arc<ChunkState>> {
        let partitioner = Partitioner::by_tokens(corpus, chunks);
        let cfg = LdaConfig::with_topics(k);
        partitioner
            .build_layouts(corpus)
            .into_iter()
            .enumerate()
            .map(|(i, layout)| {
                let st = ChunkState::new(i, layout, k);
                let mut x = (i as u32 + 1).wrapping_mul(2654435761);
                st.random_init(&cfg, move || {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    (x >> 16) as u16
                });
                Arc::new(st)
            })
            .collect()
    }

    fn corpus() -> Corpus {
        DatasetProfile {
            name: "sync".into(),
            num_docs: 80,
            vocab_size: 60,
            avg_doc_len: 15.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(5)
    }

    #[test]
    fn global_phi_is_the_sum_of_all_chunk_contributions() {
        let corpus = corpus();
        let states = make_states(&corpus, 3, 6);
        let system =
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 3, 1, Interconnect::Pcie3);
        let stats = synchronize_phi(&states, &system, true);
        assert!(stats.time_s > 0.0);
        assert_eq!(stats.num_devices, 3);

        // Every chunk sees the same global matrix, and it sums to the corpus
        // token count.
        let total: u64 = states[0].phi_global.to_dense().total();
        assert_eq!(total, corpus.num_tokens() as u64);
        for st in &states[1..] {
            assert_eq!(st.phi_global.to_dense(), states[0].phi_global.to_dense());
            assert_eq!(st.nk_global.to_vec(), states[0].nk_global.to_vec());
        }
        // n_k equals the φ row sums.
        let phi = states[0].phi_global.to_dense();
        for (kk, &nk) in states[0].nk_global.to_vec().iter().enumerate() {
            let row_sum: u64 = phi.row(kk).iter().map(|&x| x as u64).sum();
            assert_eq!(nk as u64, row_sum);
        }
    }

    #[test]
    fn single_device_sync_costs_nothing_but_still_combines() {
        let corpus = corpus();
        let states = make_states(&corpus, 1, 4);
        let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), 3);
        let stats = synchronize_phi(&states, &system, true);
        assert_eq!(stats.time_s, 0.0);
        assert_eq!(
            states[0].phi_global.to_dense().total(),
            corpus.num_tokens() as u64
        );
    }

    #[test]
    fn compression_halves_the_synchronized_volume() {
        let corpus = corpus();
        let states = make_states(&corpus, 2, 4);
        let system =
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 2, 1, Interconnect::Pcie3);
        let a = synchronize_phi(&states, &system, true);
        let b = synchronize_phi(&states, &system, false);
        assert!(b.replica_bytes > a.replica_bytes);
        assert!(b.time_s > a.time_s);
    }

    #[test]
    fn sharded_sync_produces_the_identical_global_state() {
        let corpus = corpus();
        let dense_states = make_states(&corpus, 3, 6);
        let sharded_states = make_states(&corpus, 3, 6);
        let system =
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 3, 1, Interconnect::Pcie3);
        synchronize_phi(&dense_states, &system, true);
        // V = 60 is not divisible by 7: the remainder shards must still
        // cover every column exactly once.
        let plan = SyncPlan::new(7, 2);
        let stats = synchronize_phi_sharded(&sharded_states, &system, &plan, true);
        assert_eq!(stats.per_shard_time_s.len(), 7);
        for (d, s) in dense_states.iter().zip(&sharded_states) {
            assert_eq!(d.phi_global.to_dense(), s.phi_global.to_dense());
            assert_eq!(d.nk_global.to_vec(), s.nk_global.to_vec());
        }
    }

    #[test]
    fn one_shard_plan_degenerates_to_the_dense_cost() {
        let corpus = corpus();
        let states = make_states(&corpus, 2, 4);
        let system =
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 2, 1, Interconnect::Pcie3);
        let dense = synchronize_phi(&states, &system, true);
        let sharded = synchronize_phi_sharded(&states, &system, &SyncPlan::new(1, 4), true);
        assert_eq!(sharded.per_shard_time_s.len(), 1);
        assert_eq!(sharded.stats, dense);
    }

    #[test]
    fn sharded_cost_exceeds_dense_only_by_per_shard_latency() {
        let corpus = corpus();
        let states = make_states(&corpus, 4, 8);
        let system =
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 4, 1, Interconnect::Pcie3);
        let dense = synchronize_phi(&states, &system, true);
        let sharded = synchronize_phi_sharded(&states, &system, &SyncPlan::new(4, 2), true);
        assert_eq!(sharded.stats.replica_bytes, dense.replica_bytes);
        assert!(sharded.stats.time_s >= dense.time_s);
        // The tiny test replica is latency-bound, so the worst case is one
        // full set of round latencies per shard — S× the dense time, never
        // more (the bandwidth term is identical in aggregate).
        assert!(sharded.stats.time_s <= dense.time_s * 4.0 + 1e-12);
    }

    #[test]
    fn token_balanced_ranges_cover_the_vocabulary_and_follow_the_mass() {
        let plan = SyncPlan::new(4, 2);
        // Uniform counts degenerate to the even column split.
        let uniform = vec![5u64; 16];
        assert_eq!(plan.token_balanced_ranges(&uniform), plan.shard_ranges(16));
        // Skewed counts pull the boundaries toward the head.
        let mut skewed = vec![1u64; 16];
        skewed[0] = 100;
        skewed[1] = 50;
        let ranges = plan.token_balanced_ranges(&skewed);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], 0..1, "the head word owns a shard of its own");
        // Contiguous cover of every column, in order.
        let mut expect_start = 0;
        for r in &ranges {
            assert_eq!(r.start, expect_start);
            assert!(!r.is_empty());
            expect_start = r.end;
        }
        assert_eq!(expect_start, 16);
        // All-zero counts fall back to the column split rather than panic.
        assert_eq!(
            plan.token_balanced_ranges(&[0u64; 16]),
            plan.shard_ranges(16)
        );
    }

    #[test]
    fn hierarchical_sync_on_a_cluster_is_cheaper_and_bit_identical() {
        let corpus = corpus();
        let flat_states = make_states(&corpus, 4, 6);
        let hier_states = make_states(&corpus, 4, 6);
        let system = MultiGpuSystem::clustered(
            DeviceSpec::titan_xp_pascal(),
            culda_gpusim::ClusterTopology::new(2, 2, Interconnect::Ethernet10G),
            7,
            Interconnect::Pcie3,
        );
        let base = SyncPlan::new(3, 1);
        let flat = synchronize_phi_hier_sharded(
            &flat_states,
            &system,
            &HierarchicalSyncPlan::flat(base),
            true,
        );
        let hier = synchronize_phi_hier_sharded(
            &hier_states,
            &system,
            &HierarchicalSyncPlan::new(base, true, 1),
            true,
        );
        // Same sums either way; only the costed schedule differs.
        for (f, h) in flat_states.iter().zip(&hier_states) {
            assert_eq!(f.phi_global.to_dense(), h.phi_global.to_dense());
            assert_eq!(f.nk_global.to_vec(), h.nk_global.to_vec());
        }
        assert!(hier.stats.time_s < flat.stats.time_s);
        // Flat sends everything over the fabric; hierarchical moves most of
        // the volume onto the intra-node links.
        assert_eq!(flat.intra_bytes, 0);
        assert!(flat.inter_bytes > 0);
        assert!(hier.intra_bytes > 0);
        assert!(hier.inter_bytes < flat.inter_bytes);
        // With N = 2 nodes the fabric carries exactly one replica's worth
        // of reduced columns: 2 · (N − 1) · bytes = 2 × the shard bytes.
        let replica = hier.stats.replica_bytes;
        assert_eq!(hier.inter_bytes, 2 * replica);
        assert_eq!(flat.inter_bytes, 2 * (4 - 1) * replica);
    }

    #[test]
    fn grouping_fabric_exchanges_amortizes_the_round_latencies() {
        let corpus = corpus();
        let states = make_states(&corpus, 4, 6);
        let system = MultiGpuSystem::clustered(
            DeviceSpec::titan_xp_pascal(),
            culda_gpusim::ClusterTopology::new(2, 2, Interconnect::Ethernet10G),
            7,
            Interconnect::Pcie3,
        );
        let base = SyncPlan::new(6, 2);
        let fine = synchronize_phi_hier_sharded(
            &states,
            &system,
            &HierarchicalSyncPlan::new(base, true, 6),
            true,
        );
        let coarse = synchronize_phi_hier_sharded(
            &states,
            &system,
            &HierarchicalSyncPlan::new(base, true, 1),
            true,
        );
        // Identical volume on each tier, fewer fabric latencies when
        // batched.
        assert_eq!(fine.intra_bytes, coarse.intra_bytes);
        assert_eq!(fine.inter_bytes, coarse.inter_bytes);
        assert!(coarse.stats.time_s < fine.stats.time_s);
        // One group folds its single exchange into the last shard; six
        // groups pay one exchange per shard.
        let last = coarse.per_shard_time_s.len() - 1;
        assert!(coarse.per_shard_time_s[last] > fine.per_shard_time_s[0]);
    }

    #[test]
    fn single_node_systems_ignore_the_hierarchy_flag() {
        let corpus = corpus();
        let states = make_states(&corpus, 2, 4);
        let system =
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 2, 1, Interconnect::Pcie3);
        let plan = SyncPlan::new(3, 1);
        let hier = synchronize_phi_hier_sharded(
            &states,
            &system,
            &HierarchicalSyncPlan::new(plan, true, 2),
            true,
        );
        let flat =
            synchronize_phi_hier_sharded(&states, &system, &HierarchicalSyncPlan::flat(plan), true);
        assert_eq!(hier.stats, flat.stats);
        assert_eq!(hier.per_shard_time_s, flat.per_shard_time_s);
        // All traffic is intra-node.
        assert!(hier.intra_bytes > 0);
        assert_eq!(hier.inter_bytes, 0);
        assert_eq!(hier.intra_bytes, flat.intra_bytes);
    }

    #[test]
    fn plan_clamps_shards_to_the_vocabulary() {
        let cfg = LdaConfig::with_topics(8).sync_shards(100);
        let plan = SyncPlan::from_config(&cfg, 6);
        assert_eq!(plan.shards(), 6);
        assert!(plan.shard_ranges(6).iter().all(|r| r.len() == 1));
        // A raw plan (no from_config clamp) never yields empty shards either:
        // both range constructions cap at one column per shard.
        let wild = SyncPlan::new(8, 2);
        assert_eq!(wild.shard_ranges(3).len(), 3);
        assert_eq!(wild.token_balanced_ranges(&[5, 5, 5]).len(), 3);
        let dense = SyncPlan::from_config(&LdaConfig::with_topics(8), 6);
        assert!(dense.is_dense());
        assert!(!dense.overlaps());
        assert!(SyncPlan::new(4, 2).overlaps());
        assert!(!SyncPlan::new(4, 0).overlaps());
    }
}
