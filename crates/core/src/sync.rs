//! φ model synchronization (§5.2, Figure 4).
//!
//! After every iteration the per-chunk φ contributions must be combined into
//! the global matrix every sampler reads:
//!
//! ```text
//! φ = φ0 + φ1 + … + φC−1,      n_k = Σ_c n_k[c]
//! ```
//!
//! The paper performs the combination on the GPUs as a `⌈log2 G⌉`-round tree
//! **reduce** followed by a tree **broadcast**.  The simulator computes the
//! sums functionally (the result is identical regardless of the reduction
//! shape) and charges the time of the tree schedule over the system's
//! interconnect, which is what determines multi-GPU scalability (Figure 9).

use crate::model::ChunkState;
use culda_gpusim::MultiGpuSystem;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::sync::Arc;

/// Outcome of one φ synchronization.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SyncStats {
    /// Simulated time of the reduce + broadcast.
    pub time_s: f64,
    /// Bytes of one φ replica (what each tree step moves).
    pub replica_bytes: u64,
    /// Number of devices participating.
    pub num_devices: usize,
}

/// Combine every chunk's `phi_local` / `nk_local` into each chunk's
/// `phi_global` / `nk_global`, and return the simulated cost of doing so with
/// the tree schedule of §5.2.
///
/// `compress_16bit` selects the per-element transfer size (§6.1.3 halves the
/// synchronization volume as well as the kernel traffic).
pub fn synchronize_phi(
    states: &[Arc<ChunkState>],
    system: &MultiGpuSystem,
    compress_16bit: bool,
) -> SyncStats {
    assert!(!states.is_empty());
    let k = states[0].num_topics();
    let v = states[0].phi_local.cols();

    // --- Functional part: global sums. ---
    // Sum rows in parallel; each row of the result is independent.
    let summed: Vec<Vec<u32>> = (0..k)
        .into_par_iter()
        .map(|row| {
            let mut acc = vec![0u32; v];
            for st in states {
                for (a, col) in acc.iter_mut().zip(0..v) {
                    *a += st.phi_local.load(row, col);
                }
            }
            acc
        })
        .collect();
    let mut nk = vec![0i64; k];
    for st in states {
        for (acc, val) in nk.iter_mut().zip(st.nk_local.to_vec()) {
            *acc += val;
        }
    }

    // Broadcast into every chunk's global replica.
    states.par_iter().for_each(|st| {
        for (row, vals) in summed.iter().enumerate() {
            for (col, &x) in vals.iter().enumerate() {
                st.phi_global.store(row, col, x);
            }
        }
        st.nk_global.store_all(&nk);
    });

    // --- Cost model: tree reduce + broadcast across the devices. ---
    let replica_bytes = if compress_16bit {
        states[0].phi_global.device_bytes_compressed()
    } else {
        states[0].phi_global.device_bytes_uncompressed()
    } + (k as u64) * 8;
    let time_s = system.phi_sync_time_s(replica_bytes);
    SyncStats {
        time_s,
        replica_bytes,
        num_devices: system.num_gpus(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LdaConfig;
    use culda_corpus::{Corpus, DatasetProfile, Partitioner};
    use culda_gpusim::{DeviceSpec, Interconnect};

    fn make_states(corpus: &Corpus, chunks: usize, k: usize) -> Vec<Arc<ChunkState>> {
        let partitioner = Partitioner::by_tokens(corpus, chunks);
        let cfg = LdaConfig::with_topics(k);
        partitioner
            .build_layouts(corpus)
            .into_iter()
            .enumerate()
            .map(|(i, layout)| {
                let st = ChunkState::new(i, layout, k);
                let mut x = (i as u32 + 1).wrapping_mul(2654435761);
                st.random_init(&cfg, move || {
                    x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                    (x >> 16) as u16
                });
                Arc::new(st)
            })
            .collect()
    }

    fn corpus() -> Corpus {
        DatasetProfile {
            name: "sync".into(),
            num_docs: 80,
            vocab_size: 60,
            avg_doc_len: 15.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(5)
    }

    #[test]
    fn global_phi_is_the_sum_of_all_chunk_contributions() {
        let corpus = corpus();
        let states = make_states(&corpus, 3, 6);
        let system =
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 3, 1, Interconnect::Pcie3);
        let stats = synchronize_phi(&states, &system, true);
        assert!(stats.time_s > 0.0);
        assert_eq!(stats.num_devices, 3);

        // Every chunk sees the same global matrix, and it sums to the corpus
        // token count.
        let total: u64 = states[0].phi_global.to_dense().total();
        assert_eq!(total, corpus.num_tokens() as u64);
        for st in &states[1..] {
            assert_eq!(st.phi_global.to_dense(), states[0].phi_global.to_dense());
            assert_eq!(st.nk_global.to_vec(), states[0].nk_global.to_vec());
        }
        // n_k equals the φ row sums.
        let phi = states[0].phi_global.to_dense();
        for (kk, &nk) in states[0].nk_global.to_vec().iter().enumerate() {
            let row_sum: u64 = phi.row(kk).iter().map(|&x| x as u64).sum();
            assert_eq!(nk as u64, row_sum);
        }
    }

    #[test]
    fn single_device_sync_costs_nothing_but_still_combines() {
        let corpus = corpus();
        let states = make_states(&corpus, 1, 4);
        let system = MultiGpuSystem::single(DeviceSpec::v100_volta(), 3);
        let stats = synchronize_phi(&states, &system, true);
        assert_eq!(stats.time_s, 0.0);
        assert_eq!(
            states[0].phi_global.to_dense().total(),
            corpus.num_tokens() as u64
        );
    }

    #[test]
    fn compression_halves_the_synchronized_volume() {
        let corpus = corpus();
        let states = make_states(&corpus, 2, 4);
        let system =
            MultiGpuSystem::homogeneous(DeviceSpec::titan_xp_pascal(), 2, 1, Interconnect::Pcie3);
        let a = synchronize_phi(&states, &system, true);
        let b = synchronize_phi(&states, &system, false);
        assert!(b.replica_bytes > a.replica_bytes);
        assert!(b.time_s > a.time_s);
    }
}
