//! Convergence detection and early stopping.
//!
//! The paper trains for a fixed 100 iterations (Figure 7/8); a production
//! deployment wants to stop as soon as the model has converged.  Two
//! complementary tools are provided:
//!
//! * [`ConvergenceMonitor`] — declares convergence when the *relative*
//!   improvement of the objective (log-likelihood per token) stays below a
//!   tolerance for a window of consecutive iterations.
//! * [`EarlyStopper`] — patience-based stopping on a held-out score: stop
//!   when the best value has not improved for `patience` evaluations.
//!
//! Both are plain state machines over a pushed series, so they work with the
//! CuLDA trainer, any baseline solver or an externally computed metric.

use culda_metrics::log_likelihood;

use crate::trainer::CuLdaTrainer;

/// Relative-improvement convergence detector.
#[derive(Debug, Clone)]
pub struct ConvergenceMonitor {
    tolerance: f64,
    window: usize,
    history: Vec<f64>,
    below_tolerance_streak: usize,
}

impl ConvergenceMonitor {
    /// Declare convergence after `window` consecutive iterations whose
    /// relative improvement is below `tolerance`.
    ///
    /// # Panics
    /// Panics if `tolerance` is not positive or `window` is zero.
    pub fn new(tolerance: f64, window: usize) -> Self {
        assert!(tolerance > 0.0, "tolerance must be positive");
        assert!(window > 0, "window must be at least 1");
        ConvergenceMonitor {
            tolerance,
            window,
            history: Vec::new(),
            below_tolerance_streak: 0,
        }
    }

    /// Default settings used by the examples: 0.05% relative change over
    /// three consecutive iterations.
    pub fn default_for_loglik() -> Self {
        ConvergenceMonitor::new(5e-4, 3)
    }

    /// Record the objective of the latest iteration; returns `true` when the
    /// series has converged.
    pub fn push(&mut self, value: f64) -> bool {
        if let Some(&prev) = self.history.last() {
            let rel = (value - prev).abs() / prev.abs().max(f64::MIN_POSITIVE);
            if rel < self.tolerance {
                self.below_tolerance_streak += 1;
            } else {
                self.below_tolerance_streak = 0;
            }
        }
        self.history.push(value);
        self.converged()
    }

    /// Whether the convergence criterion currently holds.
    pub fn converged(&self) -> bool {
        self.below_tolerance_streak >= self.window
    }

    /// Number of values pushed so far.
    pub fn iterations(&self) -> usize {
        self.history.len()
    }

    /// The recorded objective series.
    pub fn history(&self) -> &[f64] {
        &self.history
    }

    /// The latest objective value, if any.
    pub fn last(&self) -> Option<f64> {
        self.history.last().copied()
    }
}

/// Patience-based early stopping on a "higher is better" score.
#[derive(Debug, Clone)]
pub struct EarlyStopper {
    patience: usize,
    min_delta: f64,
    best: Option<f64>,
    best_index: usize,
    evaluations: usize,
}

impl EarlyStopper {
    /// Stop when the best score has not improved by at least `min_delta` for
    /// `patience` consecutive evaluations.
    pub fn new(patience: usize, min_delta: f64) -> Self {
        assert!(patience > 0, "patience must be at least 1");
        assert!(min_delta >= 0.0, "min_delta must be non-negative");
        EarlyStopper {
            patience,
            min_delta,
            best: None,
            best_index: 0,
            evaluations: 0,
        }
    }

    /// Record a new score; returns `true` when training should stop.
    pub fn push(&mut self, score: f64) -> bool {
        self.evaluations += 1;
        match self.best {
            None => {
                self.best = Some(score);
                self.best_index = self.evaluations;
            }
            Some(best) if score > best + self.min_delta => {
                self.best = Some(score);
                self.best_index = self.evaluations;
            }
            Some(_) => {}
        }
        self.should_stop()
    }

    /// Whether the patience has run out.
    pub fn should_stop(&self) -> bool {
        self.evaluations - self.best_index >= self.patience
    }

    /// Best score seen so far.
    pub fn best(&self) -> Option<f64> {
        self.best
    }

    /// 1-based index of the evaluation that produced the best score.
    pub fn best_index(&self) -> usize {
        self.best_index
    }
}

/// Outcome of [`train_until_converged`].
#[derive(Debug, Clone, PartialEq)]
pub struct ConvergedTraining {
    /// Iterations actually executed.
    pub iterations: usize,
    /// Whether the convergence criterion fired (false = hit `max_iterations`).
    pub converged: bool,
    /// Log-likelihood per token after each iteration.
    pub loglik_per_token: Vec<f64>,
    /// Simulated training time accumulated by the run.
    pub sim_time_s: f64,
}

/// Train a CuLDA trainer until the training log-likelihood per token
/// converges or `max_iterations` is reached, evaluating the likelihood every
/// `eval_every` iterations (evaluation is host-side and not charged to the
/// simulated clock, matching how the paper reports Figure 8).
pub fn train_until_converged(
    trainer: &mut CuLdaTrainer,
    max_iterations: usize,
    eval_every: usize,
    mut monitor: ConvergenceMonitor,
) -> ConvergedTraining {
    assert!(eval_every > 0, "eval_every must be at least 1");
    let start_time = trainer.sim_time_s();
    let mut loglik = Vec::new();
    let mut converged = false;
    let mut iterations = 0;
    while iterations < max_iterations {
        trainer.run_iteration();
        iterations += 1;
        if iterations % eval_every == 0 || iterations == max_iterations {
            let cfg = trainer.config().clone();
            let ll = log_likelihood(
                &trainer.merged_theta(),
                &trainer.global_phi(),
                &trainer.global_nk(),
                cfg.alpha,
                cfg.beta,
            )
            .per_token();
            loglik.push(ll);
            if monitor.push(ll) {
                converged = true;
                break;
            }
        }
    }
    ConvergedTraining {
        iterations,
        converged,
        loglik_per_token: loglik,
        sim_time_s: trainer.sim_time_s() - start_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::LdaConfig;
    use culda_corpus::DatasetProfile;
    use culda_gpusim::{DeviceSpec, MultiGpuSystem};

    #[test]
    fn monitor_requires_a_full_window_below_tolerance() {
        let mut m = ConvergenceMonitor::new(0.01, 2);
        assert!(!m.push(-10.0));
        assert!(!m.push(-9.0)); // 10% change
        assert!(!m.push(-8.995)); // small change, streak = 1
        assert!(m.push(-8.994)); // small change, streak = 2 → converged
        assert!(m.converged());
        assert_eq!(m.iterations(), 4);
        assert_eq!(m.last(), Some(-8.994));
    }

    #[test]
    fn monitor_resets_the_streak_on_large_changes() {
        let mut m = ConvergenceMonitor::new(0.01, 2);
        m.push(-10.0);
        m.push(-9.999); // streak 1
        m.push(-8.0); // big jump resets
        assert!(!m.converged());
        m.push(-7.9999);
        assert!(!m.converged());
        assert!(m.push(-7.9998));
    }

    #[test]
    fn early_stopper_waits_for_patience() {
        let mut s = EarlyStopper::new(2, 0.0);
        assert!(!s.push(1.0));
        assert!(!s.push(2.0)); // improvement
        assert!(!s.push(1.9)); // 1 without improvement
        assert!(s.push(1.8)); // 2 without improvement → stop
        assert_eq!(s.best(), Some(2.0));
        assert_eq!(s.best_index(), 2);
    }

    #[test]
    fn early_stopper_min_delta_counts_marginal_gains_as_no_improvement() {
        let mut s = EarlyStopper::new(2, 0.5);
        s.push(1.0);
        s.push(1.3); // below min_delta → not an improvement
        assert!(s.push(1.4));
        assert_eq!(s.best(), Some(1.0));
    }

    #[test]
    fn training_until_convergence_stops_before_the_cap() {
        let corpus = DatasetProfile {
            name: "conv".into(),
            num_docs: 120,
            vocab_size: 60,
            avg_doc_len: 12.0,
            zipf_exponent: 1.0,
            doc_len_sigma: 0.4,
        }
        .generate(2);
        let mut trainer = crate::session::SessionBuilder::new()
            .corpus(&corpus)
            .config(LdaConfig::with_topics(8).seed(3))
            .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 7))
            .build()
            .unwrap();
        let result = train_until_converged(&mut trainer, 60, 1, ConvergenceMonitor::new(2e-3, 2));
        assert!(result.iterations <= 60);
        assert!(!result.loglik_per_token.is_empty());
        assert!(result.sim_time_s > 0.0);
        // The likelihood at the end must not be worse than at the start.
        let first = result.loglik_per_token[0];
        let last = *result.loglik_per_token.last().unwrap();
        assert!(last >= first - 1e-9, "LL regressed: {first} → {last}");
        trainer.validate().unwrap();
        // With a loose tolerance on a tiny corpus the criterion should fire
        // well before the cap.
        assert!(
            result.converged,
            "did not converge in {} iters",
            result.iterations
        );
    }

    #[test]
    #[should_panic(expected = "tolerance must be positive")]
    fn bad_monitor_settings_are_rejected() {
        let _ = ConvergenceMonitor::new(0.0, 3);
    }

    #[test]
    #[should_panic(expected = "patience must be at least 1")]
    fn bad_stopper_settings_are_rejected() {
        let _ = EarlyStopper::new(0, 0.1);
    }
}
