//! The concurrent query tier: epoch-published model snapshots.
//!
//! A [`crate::session::StreamingSession`] trains online; serving it means
//! answering `infer_document` queries from many reader threads *while*
//! ingest/retire/train mutate the model.  The two sides are decoupled
//! RCU-style (DESIGN.md §12):
//!
//! * The **writer** (the session, single-threaded by `&mut self`) freezes its
//!   synchronized φ/`n_k` into an immutable [`TopicInferencer`] at iteration
//!   boundaries and *publishes* it into a double-buffered cell guarded by a
//!   monotone epoch counter.  Publication writes the slot the current epoch
//!   does **not** point at, then bumps the epoch with a release store — so a
//!   reader that observes epoch `e` always finds a fully-built snapshot in
//!   slot `e & 1`.
//! * **Readers** hold a [`ModelSnapshots`] handle (a cheap `Arc` clone) and
//!   run queries against whatever snapshot is current: load the epoch,
//!   clone the `Arc<TopicInferencer>` out of its slot, and sample against
//!   that frozen model for the whole query (or query batch).  Readers never
//!   write anything the trainer reads, so serving cannot perturb a single
//!   training bit; the load-generator test proves the training trajectory is
//!   bit-identical with and without concurrent queries.
//!
//! Readers never block the writer on the hot path: the writer always writes
//! the *inactive* slot.  The only cross-side wait is the pathological lap —
//! a reader still cloning out of slot `s` while the writer publishes *twice*
//! (epoch `e+2` reuses slot `s`) — which is bounded by the duration of one
//! `Arc` clone.  Readers detect the lap by re-checking the epoch and retry,
//! so every returned snapshot is internally consistent (never a torn mix of
//! two epochs).
//!
//! The handle also meters the query side: per-query latency lands in a
//! fixed-size ring and total counts/QPS in atomics, surfaced as
//! [`QueryStats`] (and from there in
//! [`crate::session::SessionStats`]).

use crate::inference::{DocumentTopics, InferenceError, InferenceOptions, TopicInferencer};
use culda_corpus::WordId;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// Errors a query through the snapshot tier can produce.  The serving path
/// is panic-free by contract: a corrupt model or an early query surfaces
/// here, never as a crash of the process answering other queries.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// No snapshot has been published yet (query before the first
    /// [`crate::session::StreamingSession::publish_snapshot`] or training
    /// iteration).
    NoSnapshot,
    /// The fold-in chain itself rejected the query (invalid options).
    Inference(InferenceError),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NoSnapshot => {
                write!(f, "no model snapshot has been published yet")
            }
            ServeError::Inference(e) => write!(f, "inference failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::NoSnapshot => None,
            ServeError::Inference(e) => Some(e),
        }
    }
}

impl From<InferenceError> for ServeError {
    fn from(e: InferenceError) -> Self {
        ServeError::Inference(e)
    }
}

/// Capacity of the per-handle latency ring.  Old samples are overwritten, so
/// p50/p99 describe the most recent window — what a dashboard wants — while
/// the query *count* and QPS cover the whole lifetime.
const LATENCY_WINDOW: usize = 4096;

/// Latency ring + lifetime counters behind one short-held mutex.
struct MetricsInner {
    /// Most recent per-query latencies in nanoseconds (ring buffer).
    latencies_ns: Vec<u64>,
    /// Next ring slot to overwrite.
    cursor: usize,
    /// When the first query of the handle's lifetime started (QPS anchor).
    first_query: Option<Instant>,
}

/// Shared query-side metrics.
struct QueryMetrics {
    inner: Mutex<MetricsInner>,
    /// Lifetime query count (atomic so `stats()` never waits on the ring).
    total: AtomicU64,
}

impl QueryMetrics {
    fn new() -> Self {
        QueryMetrics {
            inner: Mutex::new(MetricsInner {
                latencies_ns: Vec::with_capacity(LATENCY_WINDOW),
                cursor: 0,
                first_query: None,
            }),
            total: AtomicU64::new(0),
        }
    }

    fn record(&self, started: Instant, latency_ns: u64) {
        self.total.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.first_query.is_none() {
            inner.first_query = Some(started);
        }
        if inner.latencies_ns.len() < LATENCY_WINDOW {
            inner.latencies_ns.push(latency_ns);
        } else {
            let cursor = inner.cursor;
            inner.latencies_ns[cursor] = latency_ns;
        }
        inner.cursor = (inner.cursor + 1) % LATENCY_WINDOW;
    }

    fn stats(&self, epoch: u64) -> QueryStats {
        let queries = self.total.load(Ordering::Relaxed);
        let inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        let mut window = inner.latencies_ns.clone();
        let elapsed_s = inner
            .first_query
            .map(|t| t.elapsed().as_secs_f64())
            .unwrap_or(0.0);
        drop(inner);
        window.sort_unstable();
        let quantile_ms = |q: f64| -> f64 {
            if window.is_empty() {
                return 0.0;
            }
            let rank = (q * (window.len() - 1) as f64).round() as usize;
            window[rank.min(window.len() - 1)] as f64 / 1e6
        };
        QueryStats {
            queries,
            p50_ms: quantile_ms(0.50),
            p99_ms: quantile_ms(0.99),
            qps: if elapsed_s > 0.0 {
                queries as f64 / elapsed_s
            } else {
                0.0
            },
            epoch,
        }
    }
}

/// A point-in-time summary of the query tier.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryStats {
    /// Queries answered over the handle's lifetime.
    pub queries: u64,
    /// Median per-query latency over the most recent window, milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile per-query latency over the most recent window,
    /// milliseconds.
    pub p99_ms: f64,
    /// Lifetime queries per wall-clock second (0 before the first query).
    pub qps: f64,
    /// The currently published snapshot epoch (0 = nothing published yet).
    pub epoch: u64,
}

/// The shared publication cell: a double-buffered snapshot pair plus the
/// epoch counter, and the query metrics that ride along with every handle.
pub(crate) struct SnapshotShared {
    /// Monotone publication counter; 0 means nothing has been published.
    /// Epoch `e` lives in slot `e & 1`, so consecutive publications
    /// alternate slots and the writer never touches the slot current
    /// readers are directed at.
    epoch: AtomicU64,
    slots: [RwLock<Option<Arc<TopicInferencer>>>; 2],
    metrics: QueryMetrics,
}

impl SnapshotShared {
    pub(crate) fn new() -> Self {
        SnapshotShared {
            epoch: AtomicU64::new(0),
            slots: [RwLock::new(None), RwLock::new(None)],
            metrics: QueryMetrics::new(),
        }
    }

    /// Publish a new snapshot (single writer by construction: only the
    /// session, through `&mut self`, calls this).  Returns the new epoch.
    pub(crate) fn publish(&self, inferencer: Arc<TopicInferencer>) -> u64 {
        let next = self.epoch.load(Ordering::Relaxed) + 1;
        {
            // Writes go to the slot epoch `next` will point at — the one
            // current readers are *not* directed at.  The write lock only
            // contends with a reader lagging a full epoch behind, and then
            // only for the duration of its `Arc` clone.
            let mut slot = self.slots[(next & 1) as usize]
                .write()
                .unwrap_or_else(|p| p.into_inner());
            *slot = Some(inferencer);
        }
        // Release: a reader that acquires this epoch sees the slot contents.
        self.epoch.store(next, Ordering::Release);
        next
    }

    /// The current snapshot and its epoch, or `None` before the first
    /// publication.  Lap-safe: retries if the writer republished into the
    /// slot mid-read, so the pair is always consistent.
    pub(crate) fn load(&self) -> Option<(u64, Arc<TopicInferencer>)> {
        loop {
            let e = self.epoch.load(Ordering::Acquire);
            if e == 0 {
                return None;
            }
            let guard = self.slots[(e & 1) as usize]
                .read()
                .unwrap_or_else(|p| p.into_inner());
            let Some(arc) = guard.as_ref().map(Arc::clone) else {
                // Unreachable once epoch > 0; loop rather than panic.
                continue;
            };
            drop(guard);
            // Slot `e & 1` is only rewritten when epoch `e + 2` is being
            // published; if that happened while we held the guard, the Arc
            // we cloned may belong to the newer epoch — retry so the
            // (epoch, snapshot) pair we hand out is never mismatched.
            if self.epoch.load(Ordering::Acquire) < e + 2 {
                return Some((e, arc));
            }
        }
    }

    pub(crate) fn current_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    pub(crate) fn query_stats(&self) -> QueryStats {
        self.metrics.stats(self.current_epoch())
    }
}

/// One batch's worth of answers, all computed against a single frozen
/// snapshot (so the mixtures within a batch are mutually consistent even if
/// the trainer published a new epoch halfway through).
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReply {
    /// The epoch every answer in this batch was computed against.
    pub epoch: u64,
    /// One inferred mixture per query, in request order.
    pub results: Vec<DocumentTopics>,
}

/// A cloneable handle onto the session's published snapshots — the reader
/// side of the query tier.  Handles are `Send + Sync + Clone`: hand one to
/// each serving thread.
///
/// ```
/// use culda_core::{LdaConfig, SessionBuilder, InferenceOptions};
/// use culda_gpusim::{DeviceSpec, MultiGpuSystem};
/// use culda_corpus::Document;
///
/// let mut session = SessionBuilder::new()
///     .config(LdaConfig::with_topics(4).seed(7))
///     .system(MultiGpuSystem::single(DeviceSpec::v100_volta(), 7))
///     .build_streaming()
///     .unwrap();
/// session.ingest(&[Document::new(vec![0u32, 1, 2, 1]), Document::new(vec![2u32, 3])]);
/// let queries = session.snapshots();
/// assert!(queries.try_infer(&[0, 1], InferenceOptions::default()).is_err()); // nothing published
/// session.train(1).unwrap(); // iteration boundary → snapshot published
/// let doc = queries.try_infer(&[0, 1], InferenceOptions::default()).unwrap();
/// assert_eq!(doc.mixture.len(), 4);
/// assert_eq!(queries.stats().queries, 1);
/// ```
#[derive(Clone)]
pub struct ModelSnapshots {
    shared: Arc<SnapshotShared>,
}

impl ModelSnapshots {
    pub(crate) fn from_shared(shared: Arc<SnapshotShared>) -> Self {
        ModelSnapshots { shared }
    }

    /// The currently published epoch (0 = nothing published yet).
    pub fn epoch(&self) -> u64 {
        self.shared.current_epoch()
    }

    /// The current frozen snapshot and its epoch, for callers that want to
    /// run many queries against one consistent model without re-loading.
    pub fn snapshot(&self) -> Option<(u64, Arc<TopicInferencer>)> {
        self.shared.load()
    }

    /// Answer one query against the current snapshot (OOV-drop semantics of
    /// [`TopicInferencer::try_infer_document`]), recording its latency.
    pub fn try_infer(
        &self,
        words: &[WordId],
        options: InferenceOptions,
    ) -> Result<DocumentTopics, ServeError> {
        let (_, snapshot) = self.shared.load().ok_or(ServeError::NoSnapshot)?;
        let started = Instant::now();
        let result = snapshot.try_infer_document(words, options)?;
        self.shared
            .metrics
            .record(started, started.elapsed().as_nanos() as u64);
        Ok(result)
    }

    /// Answer a batch of queries against **one** frozen snapshot (loaded
    /// once for the whole batch), recording one latency sample per query.
    /// Batching is the serving sweet spot: it amortizes the snapshot load
    /// and keeps a batch's answers mutually consistent across epochs.
    pub fn infer_batch(
        &self,
        queries: &[Vec<WordId>],
        options: InferenceOptions,
    ) -> Result<BatchReply, ServeError> {
        let (epoch, snapshot) = self.shared.load().ok_or(ServeError::NoSnapshot)?;
        let mut results = Vec::with_capacity(queries.len());
        for words in queries {
            let started = Instant::now();
            let result = snapshot.try_infer_document(words, options)?;
            self.shared
                .metrics
                .record(started, started.elapsed().as_nanos() as u64);
            results.push(result);
        }
        Ok(BatchReply { epoch, results })
    }

    /// Query-side metrics: lifetime query count and QPS, p50/p99 latency
    /// over the recent window, and the current epoch.
    pub fn stats(&self) -> QueryStats {
        self.shared.query_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_sparse::DenseMatrix;

    fn inferencer(tag: u32) -> Arc<TopicInferencer> {
        let mut phi = DenseMatrix::zeros(2, 4);
        phi.set(0, 0, 10 + tag);
        phi.set(1, 3, 10 + tag);
        let nk = vec![(10 + tag) as i64, (10 + tag) as i64];
        Arc::new(TopicInferencer::try_new(&phi, &nk, 0.1, 0.01).unwrap())
    }

    #[test]
    fn load_before_any_publication_is_none() {
        let cell = SnapshotShared::new();
        assert!(cell.load().is_none());
        assert_eq!(cell.current_epoch(), 0);
        let handle = ModelSnapshots::from_shared(Arc::new(SnapshotShared::new()));
        assert_eq!(
            handle.try_infer(&[0], InferenceOptions::default()),
            Err(ServeError::NoSnapshot)
        );
    }

    #[test]
    fn publications_alternate_slots_and_advance_the_epoch() {
        let cell = SnapshotShared::new();
        assert_eq!(cell.publish(inferencer(0)), 1);
        let (e1, first) = cell.load().unwrap();
        assert_eq!(e1, 1);
        assert_eq!(cell.publish(inferencer(1)), 2);
        let (e2, second) = cell.load().unwrap();
        assert_eq!(e2, 2);
        // The slot of epoch 1 is untouched by the publication of epoch 2: a
        // reader that cloned the old Arc keeps a valid frozen model.
        assert!(!Arc::ptr_eq(&first, &second));
        assert_eq!(first.num_topics(), 2);
    }

    #[test]
    fn metrics_quantiles_and_counts() {
        let metrics = QueryMetrics::new();
        let t0 = Instant::now();
        for ms in 1..=100u64 {
            metrics.record(t0, ms * 1_000_000);
        }
        let stats = metrics.stats(7);
        assert_eq!(stats.queries, 100);
        assert_eq!(stats.epoch, 7);
        assert!((stats.p50_ms - 50.0).abs() <= 1.0, "p50 {}", stats.p50_ms);
        assert!((stats.p99_ms - 99.0).abs() <= 1.0, "p99 {}", stats.p99_ms);
        assert!(stats.qps > 0.0);
    }

    #[test]
    fn latency_ring_is_bounded() {
        let metrics = QueryMetrics::new();
        let t0 = Instant::now();
        for i in 0..(LATENCY_WINDOW as u64 * 2 + 17) {
            metrics.record(t0, i);
        }
        let inner = metrics.inner.lock().unwrap();
        assert_eq!(inner.latencies_ns.len(), LATENCY_WINDOW);
        drop(inner);
        assert_eq!(
            metrics.stats(0).queries,
            LATENCY_WINDOW as u64 * 2 + 17,
            "the lifetime count must keep running past the window"
        );
    }

    #[test]
    fn concurrent_readers_always_see_a_consistent_snapshot() {
        // Interleaving stress in lieu of a DPOR explorer: one writer
        // publishes as fast as it can while readers hammer load(); every
        // load must return a fully-built model whose epoch is plausible.
        let cell = Arc::new(SnapshotShared::new());
        cell.publish(inferencer(0));
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_epoch = 0;
                    while stop.load(Ordering::Relaxed) == 0 {
                        let (epoch, snapshot) = cell.load().expect("published");
                        assert!(epoch >= last_epoch, "epochs must be monotone per reader");
                        assert_eq!(snapshot.num_topics(), 2, "torn snapshot");
                        last_epoch = epoch;
                    }
                    last_epoch
                })
            })
            .collect();
        for tag in 1..200u32 {
            cell.publish(inferencer(tag));
        }
        stop.store(1, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() <= cell.current_epoch());
        }
        assert_eq!(cell.current_epoch(), 200);
    }
}
