//! Hyper-parameter optimization with Minka's fixed-point updates.
//!
//! The paper fixes `α = 50/K` and `β = 0.01` (§2.1), which is the standard
//! recipe and what every experiment here uses by default.  Production
//! deployments usually re-estimate the symmetric priors from the current
//! counts every few iterations; Minka's fixed-point iteration for the
//! Dirichlet–multinomial likelihood is the standard tool:
//!
//! ```text
//! α ← α · Σ_d Σ_k [Ψ(n_{d,k} + α) − Ψ(α)]
//!         ───────────────────────────────────
//!         K · Σ_d [Ψ(L_d + Kα) − Ψ(Kα)]
//! ```
//!
//! and symmetrically for `β` over the topic–word counts.  The digamma
//! function `Ψ` is implemented here (asymptotic series with argument
//! recurrence) because `std` does not provide it.

use culda_sparse::{CsrMatrix, DenseMatrix};

/// Digamma function `Ψ(x) = d/dx ln Γ(x)` for `x > 0`.
///
/// Uses the recurrence `Ψ(x) = Ψ(x + 1) − 1/x` to push the argument above 6
/// and then the asymptotic expansion; accurate to ~1e-12 over the range the
/// updates need.
pub fn digamma(x: f64) -> f64 {
    debug_assert!(x > 0.0, "digamma requires x > 0, got {x}");
    let mut x = x;
    let mut result = 0.0;
    while x < 10.0 {
        result -= 1.0 / x;
        x += 1.0;
    }
    let inv = 1.0 / x;
    let inv2 = inv * inv;
    result + x.ln()
        - 0.5 * inv
        - inv2 * (1.0 / 12.0 - inv2 * (1.0 / 120.0 - inv2 * (1.0 / 252.0 - inv2 * (1.0 / 240.0))))
}

/// Settings for the fixed-point optimizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperOptOptions {
    /// Maximum fixed-point iterations per update call.
    pub max_iterations: usize,
    /// Stop when the relative change of the parameter falls below this.
    pub tolerance: f64,
    /// Lower clamp preventing numerically degenerate priors.
    pub min_value: f64,
    /// Upper clamp preventing runaway priors.
    pub max_value: f64,
}

impl Default for HyperOptOptions {
    fn default() -> Self {
        HyperOptOptions {
            max_iterations: 100,
            tolerance: 1e-6,
            min_value: 1e-6,
            max_value: 1e3,
        }
    }
}

/// One application of the optimizer: the new value and how it evolved.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HyperUpdate {
    /// The optimized parameter value.
    pub value: f64,
    /// Fixed-point iterations actually performed.
    pub iterations: usize,
    /// Whether the stopping tolerance was reached.
    pub converged: bool,
}

/// Optimize the symmetric document–topic prior `α` given the current θ counts.
///
/// Documents with zero length are skipped (they carry no information about α).
pub fn optimize_alpha(theta: &CsrMatrix, alpha: f64, options: HyperOptOptions) -> HyperUpdate {
    let k = theta.cols() as f64;
    // Collect per-document statistics once: the sparse counts and the length.
    let docs: Vec<(Vec<u32>, u64)> = (0..theta.rows())
        .filter_map(|d| {
            let (_, vals) = theta.row(d);
            let len: u64 = vals.iter().map(|&v| v as u64).sum();
            if len == 0 {
                None
            } else {
                Some((vals.to_vec(), len))
            }
        })
        .collect();
    if docs.is_empty() {
        return HyperUpdate {
            value: alpha,
            iterations: 0,
            converged: true,
        };
    }
    fixed_point(alpha, options, |a| {
        let mut num = 0.0;
        let mut den = 0.0;
        let psi_a = digamma(a);
        let psi_ka = digamma(k * a);
        for (counts, len) in &docs {
            // Zero-count topics contribute Ψ(α) − Ψ(α) = 0, so only the
            // stored non-zeros matter for the numerator.
            for &c in counts {
                num += digamma(c as f64 + a) - psi_a;
            }
            den += digamma(*len as f64 + k * a) - psi_ka;
        }
        (num, k * den)
    })
}

/// Optimize the symmetric topic–word prior `β` given the current φ counts and
/// topic totals `n_k`.
pub fn optimize_beta(
    phi: &DenseMatrix<u32>,
    nk: &[i64],
    beta: f64,
    options: HyperOptOptions,
) -> HyperUpdate {
    assert_eq!(phi.rows(), nk.len());
    let v = phi.cols() as f64;
    if phi.rows() == 0 || phi.cols() == 0 {
        return HyperUpdate {
            value: beta,
            iterations: 0,
            converged: true,
        };
    }
    fixed_point(beta, options, |b| {
        let psi_b = digamma(b);
        let psi_vb = digamma(v * b);
        let mut num = 0.0;
        let mut den = 0.0;
        for topic in 0..phi.rows() {
            for &c in phi.row(topic) {
                if c > 0 {
                    num += digamma(c as f64 + b) - psi_b;
                }
            }
            den += digamma(nk[topic] as f64 + v * b) - psi_vb;
        }
        (num, v * den)
    })
}

/// Shared fixed-point driver: `step(x)` returns the numerator and denominator
/// of Minka's ratio at the current value.
fn fixed_point(
    initial: f64,
    options: HyperOptOptions,
    mut step: impl FnMut(f64) -> (f64, f64),
) -> HyperUpdate {
    let mut x = initial.clamp(options.min_value, options.max_value);
    for i in 0..options.max_iterations {
        let (num, den) = step(x);
        if !(den > 0.0) || !(num > 0.0) {
            // Degenerate counts (e.g. every document has one token); keep the
            // current value rather than collapsing the prior to the clamp.
            return HyperUpdate {
                value: x,
                iterations: i,
                converged: false,
            };
        }
        let next = (x * num / den).clamp(options.min_value, options.max_value);
        let rel = (next - x).abs() / x.max(f64::MIN_POSITIVE);
        x = next;
        if rel < options.tolerance {
            return HyperUpdate {
                value: x,
                iterations: i + 1,
                converged: true,
            };
        }
    }
    HyperUpdate {
        value: x,
        iterations: options.max_iterations,
        converged: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use culda_sparse::CsrBuilder;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn digamma_matches_known_values() {
        // Ψ(1) = −γ (Euler–Mascheroni).
        assert!((digamma(1.0) + 0.577_215_664_901_532_9).abs() < 1e-10);
        // Ψ(x + 1) = Ψ(x) + 1/x.
        for &x in &[0.3, 1.7, 4.2, 25.0] {
            assert!((digamma(x + 1.0) - digamma(x) - 1.0 / x).abs() < 1e-10);
        }
        // Ψ(1/2) = −γ − 2 ln 2.
        assert!((digamma(0.5) + 0.577_215_664_901_532_9 + 2.0 * (2.0f64).ln()).abs() < 1e-10);
    }

    /// Draw document–topic counts from a known symmetric Dirichlet(α) and
    /// check the optimizer recovers a value near the generating α.
    fn synthetic_theta(
        alpha_true: f64,
        docs: usize,
        k: usize,
        doc_len: u32,
        seed: u64,
    ) -> CsrMatrix {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut builder = CsrBuilder::new(docs, k);
        for _ in 0..docs {
            // Sample a Dirichlet via normalised Gamma draws (Marsaglia–Tsang
            // would be overkill; for α near 0.1–1 a simple rejection-free
            // approximation via sums of exponentials weighted is inadequate,
            // so use the standard Gamma(α) ≈ via Johnk only for α<1).
            let weights: Vec<f64> = (0..k).map(|_| gamma_sample(&mut rng, alpha_true)).collect();
            let sum: f64 = weights.iter().sum();
            let mut counts = vec![0u32; k];
            for _ in 0..doc_len {
                let u: f64 = rng.gen::<f64>() * sum;
                let mut acc = 0.0;
                let mut chosen = k - 1;
                for (i, &w) in weights.iter().enumerate() {
                    acc += w;
                    if u <= acc {
                        chosen = i;
                        break;
                    }
                }
                counts[chosen] += 1;
            }
            builder.push_row(
                counts
                    .iter()
                    .enumerate()
                    .filter(|(_, &c)| c > 0)
                    .map(|(i, &c)| (i as u16, c)),
            );
        }
        builder.finish()
    }

    /// Gamma(shape, 1) sampler good enough for test data (Johnk for shape<1,
    /// sum of exponentials fallback otherwise).
    fn gamma_sample(rng: &mut ChaCha8Rng, shape: f64) -> f64 {
        if shape >= 1.0 {
            // Sum of ⌊shape⌋ exponentials + fractional part via Johnk.
            let mut acc = 0.0;
            for _ in 0..shape.floor() as usize {
                acc += -(rng.gen::<f64>().max(f64::MIN_POSITIVE)).ln();
            }
            let frac = shape.fract();
            if frac > 0.0 {
                acc += gamma_sample(rng, frac);
            }
            acc
        } else {
            // Johnk's generator for shape in (0, 1).
            loop {
                let u: f64 = rng.gen();
                let v: f64 = rng.gen();
                let x = u.powf(1.0 / shape);
                let y = v.powf(1.0 / (1.0 - shape));
                if x + y <= 1.0 {
                    let e = -(rng.gen::<f64>().max(f64::MIN_POSITIVE)).ln();
                    return e * x / (x + y);
                }
            }
        }
    }

    #[test]
    fn alpha_is_recovered_within_a_factor() {
        let alpha_true = 0.2;
        let theta = synthetic_theta(alpha_true, 400, 16, 60, 9);
        let update = optimize_alpha(&theta, 1.0, HyperOptOptions::default());
        assert!(update.converged, "did not converge: {update:?}");
        assert!(
            update.value > alpha_true / 2.0 && update.value < alpha_true * 2.0,
            "recovered α = {} (true {alpha_true})",
            update.value
        );
    }

    #[test]
    fn alpha_update_moves_toward_concentration() {
        // Perfectly concentrated documents (one topic each) push α down;
        // perfectly uniform documents push α up.
        let k = 8;
        let mut conc = CsrBuilder::new(50, k);
        for d in 0..50 {
            conc.push_row([((d % k) as u16, 40u32)]);
        }
        let concentrated = conc.finish();
        let down = optimize_alpha(&concentrated, 0.5, HyperOptOptions::default());
        assert!(down.value < 0.5);

        let mut unif = CsrBuilder::new(50, k);
        for _ in 0..50 {
            unif.push_row((0..k).map(|t| (t as u16, 5u32)));
        }
        let uniform = unif.finish();
        let up = optimize_alpha(&uniform, 0.5, HyperOptOptions::default());
        assert!(up.value > 0.5);
    }

    #[test]
    fn beta_update_responds_to_word_concentration() {
        let (k, v) = (4, 50);
        // Concentrated topics: each topic uses a disjoint band of words.
        let mut phi = DenseMatrix::zeros(k, v);
        for topic in 0..k {
            for w in 0..v / k {
                phi.set(topic, topic * (v / k) + w, 30);
            }
        }
        let nk: Vec<i64> = phi.row_sums().iter().map(|&s| s as i64).collect();
        let down = optimize_beta(&phi, &nk, 0.5, HyperOptOptions::default());
        assert!(down.value < 0.5, "expected β to shrink, got {}", down.value);

        // Uniform topics: every word equally likely in every topic.
        let mut phi_u = DenseMatrix::zeros(k, v);
        for topic in 0..k {
            for w in 0..v {
                phi_u.set(topic, w, 6);
            }
        }
        let nk_u: Vec<i64> = phi_u.row_sums().iter().map(|&s| s as i64).collect();
        let up = optimize_beta(&phi_u, &nk_u, 0.5, HyperOptOptions::default());
        assert!(up.value > 0.5, "expected β to grow, got {}", up.value);
    }

    #[test]
    fn degenerate_inputs_keep_the_prior() {
        let empty = CsrBuilder::new(0, 8).finish();
        let u = optimize_alpha(&empty, 0.3, HyperOptOptions::default());
        assert_eq!(u.value, 0.3);
        assert!(u.converged);
        let phi = DenseMatrix::zeros(0, 0);
        let u = optimize_beta(&phi, &[], 0.02, HyperOptOptions::default());
        assert_eq!(u.value, 0.02);
    }

    #[test]
    fn clamping_keeps_values_in_range() {
        let theta = synthetic_theta(0.2, 50, 8, 20, 3);
        let opts = HyperOptOptions {
            min_value: 0.4,
            max_value: 0.6,
            ..Default::default()
        };
        let u = optimize_alpha(&theta, 1.0, opts);
        assert!(u.value >= 0.4 && u.value <= 0.6);
    }
}
