//! The GPU kernels of Figure 3: sampling, update φ, update θ.
//!
//! Each kernel is implemented against the [`culda_gpusim`] execution model:
//! the *functional* effect (topic assignments, count updates) is computed for
//! real, and every memory access / floating-point operation / atomic the real
//! CUDA kernel would issue is accounted in the block's cost counters so the
//! simulated time follows the paper's roofline analysis (§3.1).
//!
//! The *sampling* kernel is pluggable: the scheduler drives any
//! [`SamplerKernel`] (see [`sampler`] and `DESIGN.md` §10), selected through
//! [`crate::LdaConfig::sampler`].  [`SparseCgsSampler`] is the paper's §6.1
//! kernel and the default; [`AliasHybridSampler`] is the stale-alias-table +
//! Metropolis–Hastings hybrid; [`LightLdaSampler`] is the LightLDA cycled
//! doc-/word-proposal MH kernel ([`portfolio`] picks among the three for
//! [`crate::SamplerStrategy::Auto`] runs).  The update kernels are shared by
//! every sampler.

pub mod alias_hybrid;
pub mod lightlda;
pub mod portfolio;
pub mod sampler;
pub mod sampling;
pub mod update_phi;
pub mod update_theta;

pub use alias_hybrid::AliasHybridSampler;
pub use lightlda::LightLdaSampler;
pub use portfolio::{auto_select_sampler, ChunkStatistics};
pub use sampler::{sampler_for, sampler_for_strategy, SamplerKernel, SamplerResumeState};
pub use sampling::{SparseCgsBlock, SparseCgsSampler};
pub use update_phi::UpdatePhiKernel;
pub use update_theta::UpdateThetaKernel;

/// Kernel profiling names (shared with Table 5 reporting).
pub mod names {
    /// The LDA sampling kernel (any [`super::SamplerKernel`] strategy).
    pub const SAMPLING: &str = "Sampling";
    /// The θ-update kernel.
    pub const UPDATE_THETA: &str = "Update theta";
    /// The φ-update kernel.
    pub const UPDATE_PHI: &str = "Update phi";
    /// The stale alias-table build of [`super::AliasHybridSampler`].
    pub const ALIAS_BUILD: &str = "Alias build";
    /// The stale word-proposal build of [`super::LightLdaSampler`].
    pub const LIGHT_BUILD: &str = "Word-proposal build";
}
