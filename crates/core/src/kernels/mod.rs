//! The three GPU kernels of Figure 3: sampling, update φ, update θ.
//!
//! Each kernel is implemented against the [`culda_gpusim`] execution model:
//! the *functional* effect (topic assignments, count updates) is computed for
//! real, and every memory access / floating-point operation / atomic the real
//! CUDA kernel would issue is accounted in the block's cost counters so the
//! simulated time follows the paper's roofline analysis (§3.1).

pub mod sampling;
pub mod update_phi;
pub mod update_theta;

pub use sampling::SamplingKernel;
pub use update_phi::UpdatePhiKernel;
pub use update_theta::UpdateThetaKernel;

/// Kernel profiling names (shared with Table 5 reporting).
pub mod names {
    /// The LDA sampling kernel.
    pub const SAMPLING: &str = "Sampling";
    /// The θ-update kernel.
    pub const UPDATE_THETA: &str = "Update theta";
    /// The φ-update kernel.
    pub const UPDATE_PHI: &str = "Update phi";
}
