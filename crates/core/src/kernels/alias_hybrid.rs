//! The alias-table hybrid sampling kernel (AliasLDA-style, ROADMAP "speed"
//! item; Li et al., KDD'14 — reference \[19\] of the paper).
//!
//! The paper's §6.1 kernel pays an `O(K)` cost *per word per iteration*: it
//! reads the full φ column, forms `p*(k)` and builds the dense p2 index tree
//! before sampling a single token — even for the Zipf tail of words with one
//! or two tokens.  [`AliasHybridSampler`] amortises that cost away:
//!
//! * the **sparse part** `p1(k) = θ_{d,k} · p*(k)` stays exact and fresh
//!   (evaluated lazily at the document's `K_d ≪ K` topics);
//! * the **dense part** is drawn in O(1) from a per-word *stale*
//!   [`StaleAliasProposal`] (the same Walker/Vose bundle the AliasLDA CPU
//!   baseline builds), rebuilt only every `rebuild_every` iterations by a
//!   dedicated alias-build kernel whose cost the scheduler charges and
//!   reports ([`crate::IterationStats::sampler_setup_time_s`]);
//! * the staleness is corrected by `mh_steps` **Metropolis–Hastings** steps
//!   per token against the fresh φ, so the sampler still targets the exact
//!   collapsed conditional `p^{¬token}` as its stationary distribution.
//!
//! ## Determinism
//!
//! Every draw of the MH chain is derived from a per-token sub-stream seed
//! `t = stable_u64(seed, iteration, (doc ≪ 32) | slot)` — a pure function of
//! token identity — and the stale tables themselves are built from the
//! synchronized `phi_global`, which is equal on every chunk replica at equal
//! iteration counts.  Both are independent of topology and batching, so the
//! alias path inherits the full bit-exactness contract (`DESIGN.md` §10).

use crate::config::LdaConfig;
use crate::kernels::sampler::{SamplerKernel, SamplerResumeState, BURN_STREAM_BASE};
use crate::model::ChunkState;
use crate::work::{chunk_words, WorkItem};
use culda_gpusim::rng::{stable_f32, stable_u64};
use culda_gpusim::{BlockCtx, BlockKernel, Device, LaunchConfig};
use culda_sparse::{DenseMatrix, StaleAliasProposal};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// The stale per-word tables of one chunk, tagged with the iteration they
/// were built at.
struct ChunkTables {
    /// Iteration whose synchronized φ the tables snapshot.
    built_at: u64,
    /// `StaleAliasProposal` per word id (`None` for words without tokens in
    /// the chunk).
    proposals: Vec<Option<StaleAliasProposal>>,
}

/// The global `(φ, n_k)` snapshot the stale tables were last built from —
/// exactly the φ̂/n̂ the device keeps next to each table (see
/// [`AliasBuildBlock`]).  This is what a checkpoint carries: per-chunk
/// proposals are a deterministic function of it, so a resumed sampler
/// reconstructs them bit-exactly instead of rebuilding fresh tables from the
/// *current* φ (which would diverge from the uninterrupted run until the
/// next cadence rebuild).
struct TablesSnapshot {
    /// Iteration whose synchronized φ this snapshot captures.
    built_at: u64,
    /// The synchronized φ at `built_at` (`K × V`).
    phi_hat: DenseMatrix<u32>,
    /// The topic totals at `built_at`.
    nk_hat: Vec<i64>,
    /// True when the snapshot was restored from a checkpoint rather than
    /// captured from a live rebuild.  Only a restored snapshot may satisfy a
    /// chunk's missing tables without a device build (the uninterrupted run
    /// paid that build before the checkpoint, so the resumed run must not
    /// charge it again — nor rebuild from the wrong φ).
    restored: bool,
}

/// Stale-alias + Metropolis–Hastings hybrid sampler
/// ([`crate::SamplerStrategy::AliasHybrid`]).  See the [module
/// docs](crate::kernels::alias_hybrid) for the algorithm and determinism
/// argument.
pub struct AliasHybridSampler {
    rebuild_every: u64,
    mh_steps: usize,
    /// Per-chunk stale tables, keyed by chunk id.  Rebuilt by
    /// [`SamplerKernel::prepare_chunk`] on the configured cadence.
    chunks: Mutex<BTreeMap<usize, Arc<ChunkTables>>>,
    /// The global snapshot behind the current tables: captured at every
    /// cadence rebuild (for [`SamplerKernel::resume_state`]) or installed by
    /// [`SamplerKernel::restore_resume_state`] on a checkpoint resume.
    snapshot: Mutex<Option<Arc<TablesSnapshot>>>,
}

impl AliasHybridSampler {
    /// A sampler rebuilding its stale tables every `rebuild_every`
    /// iterations and correcting with `mh_steps` MH steps per token (both
    /// must be ≥ 1, as [`crate::SamplerStrategy::validate`] enforces).
    pub fn new(rebuild_every: usize, mh_steps: usize) -> Self {
        assert!(rebuild_every >= 1, "rebuild_every must be at least 1");
        assert!(mh_steps >= 1, "mh_steps must be at least 1");
        AliasHybridSampler {
            rebuild_every: rebuild_every as u64,
            mh_steps,
            chunks: Mutex::new(BTreeMap::new()),
            snapshot: Mutex::new(None),
        }
    }

    /// The configured rebuild cadence.
    pub fn rebuild_every(&self) -> usize {
        self.rebuild_every as usize
    }

    /// The configured MH steps per token.
    pub fn mh_steps(&self) -> usize {
        self.mh_steps
    }

    /// Whether `iteration` rebuilds the tables of a chunk last built at
    /// `built_at` (tables are always built when none exist yet — the first
    /// iteration after construction or a checkpoint resume).
    fn needs_rebuild(&self, built_at: Option<u64>, iteration: u64) -> bool {
        match built_at {
            None => true,
            Some(at) => iteration > at && iteration.is_multiple_of(self.rebuild_every),
        }
    }

    /// Reconstruct one chunk's per-word proposals from a restored global
    /// snapshot — the same `(φ̂ + β) / (n̂ + Vβ)` f64 arithmetic as
    /// [`AliasBuildBlock`], evaluated on the same `u32`/`i64` inputs, so the
    /// tables are bit-identical to the ones the uninterrupted run built.
    fn proposals_from_snapshot(
        snap: &TablesSnapshot,
        state: &ChunkState,
        config: &LdaConfig,
    ) -> Vec<Option<StaleAliasProposal>> {
        let k = config.num_topics;
        let beta = config.beta;
        let v_beta = beta * state.layout.vocab_size as f64;
        let mut proposals: Vec<Option<StaleAliasProposal>> = vec![None; state.layout.vocab_size];
        for w in chunk_words(&state.layout) {
            let v = w as usize;
            let weights: Vec<f64> = (0..k)
                .map(|kk| {
                    (snap.phi_hat.get(kk, v) as f64 + beta) / (snap.nk_hat[kk] as f64 + v_beta)
                })
                .collect();
            proposals[v] = Some(StaleAliasProposal::from_weights(weights));
        }
        proposals
    }
}

impl SamplerKernel for AliasHybridSampler {
    fn name(&self) -> &'static str {
        crate::kernels::names::SAMPLING
    }

    /// Rebuild the chunk's stale tables on the configured cadence by
    /// launching the alias-build kernel on `device`; returns the simulated
    /// build span (0 on non-rebuild iterations).
    fn prepare_chunk(
        &self,
        device: &Device,
        state: &ChunkState,
        config: &LdaConfig,
        iteration: u64,
    ) -> f64 {
        let built_at = self.chunks.lock().get(&state.chunk_id).map(|t| t.built_at);
        if built_at.is_none() {
            // A chunk with no tables yet normally means a fresh sampler —
            // but after a checkpoint resume the restored snapshot stands in
            // for the tables the uninterrupted run would still be holding:
            // reconstruct them host-side (bit-identical, see
            // `proposals_from_snapshot`) and charge nothing, since the
            // original build was paid before the checkpoint.  If the resume
            // lands on a rebuild iteration anyway, fall through to the
            // ordinary fresh build.
            let restored = self
                .snapshot
                .lock()
                .clone()
                .filter(|s| s.restored && s.phi_hat.cols() == state.layout.vocab_size);
            if let Some(snap) = restored {
                if !self.needs_rebuild(Some(snap.built_at), iteration) {
                    let proposals = Self::proposals_from_snapshot(&snap, state, config);
                    self.chunks.lock().insert(
                        state.chunk_id,
                        Arc::new(ChunkTables {
                            built_at: snap.built_at,
                            proposals,
                        }),
                    );
                    return 0.0;
                }
            }
        }
        if !self.needs_rebuild(built_at, iteration) {
            return 0.0;
        }
        let words = chunk_words(&state.layout);
        let mut proposals: Vec<Option<StaleAliasProposal>> = vec![None; state.layout.vocab_size];
        let span = if words.is_empty() {
            0.0
        } else {
            let slots: Vec<Mutex<Option<StaleAliasProposal>>> =
                (0..words.len()).map(|_| Mutex::new(None)).collect();
            let build = AliasBuildBlock {
                state,
                config,
                words: &words,
                slots: &slots,
            };
            let stats = device.launch(
                crate::kernels::names::ALIAS_BUILD,
                LaunchConfig::new(words.len()),
                &build,
            );
            for (&w, slot) in words.iter().zip(slots) {
                proposals[w as usize] = slot.into_inner();
            }
            stats.time.total_s
        };
        self.chunks.lock().insert(
            state.chunk_id,
            Arc::new(ChunkTables {
                built_at: iteration,
                proposals,
            }),
        );
        // Capture the global snapshot behind this rebuild once per rebuild
        // iteration (every chunk builds from the same synchronized φ, so the
        // first chunk's capture covers them all) — it is what a checkpoint
        // taken before the next rebuild needs for a bit-exact resume.
        {
            let mut snap = self.snapshot.lock();
            if snap
                .as_ref()
                .is_none_or(|s| s.restored || s.built_at != iteration)
            {
                *snap = Some(Arc::new(TablesSnapshot {
                    built_at: iteration,
                    phi_hat: state.phi_global.to_dense(),
                    nk_hat: state.nk_global.to_vec(),
                    restored: false,
                }));
            }
        }
        span
    }

    /// The `(φ̂, n̂)` snapshot behind the current stale tables, so a
    /// checkpoint taken mid-cadence resumes with the *same* tables instead
    /// of fresh ones (`None` until the first rebuild ever runs).
    fn resume_state(&self) -> Option<SamplerResumeState> {
        self.snapshot
            .lock()
            .as_ref()
            .map(|s| SamplerResumeState::AliasTables {
                built_at: s.built_at,
                phi_hat: s.phi_hat.clone(),
                nk_hat: s.nk_hat.clone(),
            })
    }

    /// Install a checkpointed snapshot; the next
    /// [`SamplerKernel::prepare_chunk`] of each chunk reconstructs its
    /// proposals from it instead of rebuilding from the current φ, keeping
    /// the resumed run bit-exact and on the original rebuild cadence.
    fn restore_resume_state(&self, state: &SamplerResumeState) {
        // States captured by other portfolio members are ignored (checkpoint
        // validation rejects such mismatches before they get here anyway).
        if let SamplerResumeState::AliasTables {
            built_at,
            phi_hat,
            nk_hat,
        } = state
        {
            *self.snapshot.lock() = Some(Arc::new(TablesSnapshot {
                built_at: *built_at,
                phi_hat: phi_hat.clone(),
                nk_hat: nk_hat.clone(),
                restored: true,
            }));
        }
    }

    fn sampling_kernel<'a>(
        &'a self,
        state: &'a ChunkState,
        items: &'a [WorkItem],
        config: &'a LdaConfig,
        iteration: u64,
    ) -> Box<dyn BlockKernel + 'a> {
        let tables = self
            .chunks
            .lock()
            .get(&state.chunk_id)
            .cloned()
            .expect("prepare_chunk must run before sampling_kernel");
        Box::new(AliasSampleBlock {
            state,
            items,
            config,
            iteration,
            mh_steps: self.mh_steps,
            tables,
        })
    }

    /// Iteration 0 always pays a full table build; steady state pays it only
    /// every `rebuild_every` iterations.
    fn predict_steady_compute_s(&self, measured_compute_s: f64, measured_setup_s: f64) -> f64 {
        (measured_compute_s - measured_setup_s).max(0.0)
            + measured_setup_s / self.rebuild_every as f64
    }

    /// Host-side burn-in with the same stale-proposal + MH structure as the
    /// device kernel: stale tables are built once per (document, sweep) for
    /// the document's distinct words, then every token runs `mh_steps`
    /// MH-corrected mixture-proposal steps against the evolving live counts.
    fn burn_in_sweep(
        &self,
        config: &LdaConfig,
        uid: u64,
        sweep: usize,
        words: &[u32],
        z: &mut [u16],
        theta_d: &mut [u32],
        phi: &mut DenseMatrix<u32>,
        nk: &mut [i64],
    ) {
        let k = config.num_topics;
        let alpha = config.alpha;
        let beta = config.beta;
        let stream = BURN_STREAM_BASE - sweep as u64;
        let v_beta = beta * phi.cols() as f64;

        // Stale snapshot at sweep start, for the document's distinct words.
        let mut stale: BTreeMap<u32, StaleAliasProposal> = BTreeMap::new();
        for &w in words {
            stale.entry(w).or_insert_with(|| {
                StaleAliasProposal::from_weights(
                    (0..k)
                        .map(|kk| {
                            (phi.get(kk, w as usize) as f64 + beta) / (nk[kk] as f64 + v_beta)
                        })
                        .collect(),
                )
            });
        }

        let mut p1_topics: Vec<usize> = Vec::new();
        let mut p1_prefix: Vec<f64> = Vec::new();
        for (slot, &w) in words.iter().enumerate() {
            let w = w as usize;
            let c = z[slot] as usize;
            // Remove the token: the MH chain targets p^{¬token}.
            theta_d[c] -= 1;
            *phi.get_mut(c, w) -= 1;
            nk[c] -= 1;

            let proposal = &stale[&(w as u32)];
            let fresh = |kk: usize| (phi.get(kk, w) as f64 + beta) / (nk[kk] as f64 + v_beta);

            // Exact sparse part over the document's live topics.
            p1_topics.clear();
            p1_prefix.clear();
            let mut s = 0.0f64;
            for (kk, &cnt) in theta_d.iter().enumerate() {
                if cnt == 0 {
                    continue;
                }
                s += cnt as f64 * fresh(kk);
                p1_topics.push(kk);
                p1_prefix.push(s);
            }
            let q_hat = alpha * proposal.mass();

            // Per-token sub-stream: every MH draw is a pure function of
            // (seed, sweep stream, uid, slot, step, draw index).
            let tseed = stable_u64(config.seed, stream, (uid << 32) | slot as u64);
            let mut k_cur = c;
            for step in 0..self.mh_steps {
                let step = step as u64;
                let pick = stable_f32(tseed, 2 * step, 0) as f64 * (s + q_hat);
                let k_prop = if pick < s && !p1_topics.is_empty() {
                    let idx = p1_prefix
                        .partition_point(|&cum| cum <= pick)
                        .min(p1_topics.len() - 1);
                    p1_topics[idx]
                } else {
                    let u1 = stable_f32(tseed, 2 * step, 1);
                    let u2 = stable_f32(tseed, 2 * step, 2);
                    proposal.table().sample_with(u1, u2)
                };
                if k_prop == k_cur {
                    continue;
                }
                let posterior = |kk: usize| (theta_d[kk] as f64 + alpha) * fresh(kk);
                let mixture =
                    |kk: usize| theta_d[kk] as f64 * fresh(kk) + alpha * proposal.weight(kk);
                let accept =
                    posterior(k_prop) * mixture(k_cur) / (posterior(k_cur) * mixture(k_prop));
                if (stable_f32(tseed, 2 * step + 1, 3) as f64) < accept {
                    k_cur = k_prop;
                }
            }

            z[slot] = k_cur as u16;
            theta_d[k_cur] += 1;
            *phi.get_mut(k_cur, w) += 1;
            nk[k_cur] += 1;
        }
    }
}

/// The alias-build kernel: one thread block builds the stale proposal of one
/// word from the synchronized φ (read once per rebuild instead of once per
/// iteration — the amortisation the hybrid exists for).
struct AliasBuildBlock<'a> {
    state: &'a ChunkState,
    config: &'a LdaConfig,
    /// Words with tokens in this chunk, one per block.
    words: &'a [u32],
    /// Output slot per block.
    slots: &'a [Mutex<Option<StaleAliasProposal>>],
}

impl BlockKernel for AliasBuildBlock<'_> {
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx) {
        let v = self.words[block_id] as usize;
        let k = self.config.num_topics;
        let beta = self.config.beta;
        let v_beta = beta * self.state.layout.vocab_size as f64;
        let int_bytes: u64 = if self.config.compress_16bit { 2 } else { 4 };

        // Read the φ column and n_k, form the weights (2 flops each + the
        // α-free normalisation) and run the Vose construction.  The device
        // layout stores the table as prob (f32) + alias (u32) + the stale φ̂
        // column snapshot (compressed int, like φ itself); the stale weight
        // the MH ratio needs is reconstructed from φ̂ and the per-chunk n̂_k
        // snapshot (K × 8 bytes per rebuild, amortised over every word) at
        // two flops per evaluation.
        let weights: Vec<f64> = (0..k)
            .map(|kk| {
                (self.state.phi_global.load(kk, v) as f64 + beta)
                    / (self.state.nk_global.get(kk) as f64 + v_beta)
            })
            .collect();
        ctx.read_global(k as u64 * int_bytes); // φ[·, v]
        ctx.read_global(k as u64 * 4); // n_k
        ctx.flops(3 * k as u64);
        let proposal = StaleAliasProposal::from_weights(weights);
        ctx.int_ops(k as u64); // Vose small/large queue maintenance
        ctx.write_global(k as u64 * (8 + int_bytes)); // prob + alias + φ̂ snapshot
        *self.slots[block_id].lock() = Some(proposal);
    }
}

/// The per-launch block kernel of [`AliasHybridSampler`]: one chunk's work
/// items at one iteration, sampling from the chunk's stale tables.
struct AliasSampleBlock<'a> {
    state: &'a ChunkState,
    items: &'a [WorkItem],
    config: &'a LdaConfig,
    iteration: u64,
    mh_steps: usize,
    tables: Arc<ChunkTables>,
}

impl BlockKernel for AliasSampleBlock<'_> {
    fn run_block(&self, block_id: usize, ctx: &mut BlockCtx) {
        let item = &self.items[block_id];
        if item.is_empty() {
            return;
        }
        let state = self.state;
        let cfg = self.config;
        let v = item.word as usize;
        let vocab = state.layout.vocab_size;
        let alpha = cfg.alpha;
        let beta = cfg.beta;
        let v_beta = cfg.beta * vocab as f64;
        let int_bytes: u64 = if cfg.compress_16bit { 2 } else { 4 };

        let stale = self.tables.proposals[v]
            .as_ref()
            .expect("alias tables cover every word with tokens in the chunk");
        // Stale dense mass Q̂ = α · Σ_k ŵ(k); the table and its mass live in
        // device memory from the build, read once per block.
        let q_hat = alpha * stale.mass();
        ctx.read_global(8);

        let theta = state.theta.read();
        let mut p1_prefix: Vec<f64> = Vec::with_capacity(64);
        for pos in item.start..item.end {
            let pos = pos as usize;
            let d = state.layout.token_doc[pos] as usize;
            ctx.read_global(4); // token → document index
            let c = state.z[pos].load(Ordering::Relaxed) as usize;
            ctx.read_global(int_bytes); // current topic assignment

            // Fresh p*(k) with the token's own count removed (collapsed
            // Gibbs samples from n^{¬dv}), evaluated lazily: the alias
            // hybrid never touches the full φ column, only the topics the
            // sparse part and the MH steps actually visit (L1-served, like
            // the sparse kernel's spilled lookups).
            let phi_mat = &state.phi_global;
            let nk = &state.nk_global;
            let fresh = |kk: usize| {
                let self_count = if kk == c { 1.0 } else { 0.0 };
                ((phi_mat.load(kk, v) as f64 - self_count).max(0.0) + beta)
                    / ((nk.get(kk) as f64 - self_count).max(0.0) + v_beta)
            };

            // Exact sparse part over the document's θ row, self-excluded.
            let (cols, vals) = theta.row(d);
            let kd = cols.len();
            ctx.read_global(kd as u64 * (int_bytes + 4) + 8); // CSR row
            p1_prefix.clear();
            let mut s = 0.0f64;
            for i in 0..kd {
                let kk = cols[i] as usize;
                let cnt = if kk == c {
                    (vals[i] as f64 - 1.0).max(0.0)
                } else {
                    vals[i] as f64
                };
                s += cnt * fresh(kk);
                p1_prefix.push(s);
            }
            ctx.read_l1(kd as u64 * (int_bytes + 8)); // φ[k,v] + n_k at doc topics
            ctx.flops(4 * kd as u64);

            // θ^{¬token}_{d,k} for an arbitrary topic (the MH acceptance
            // evaluates it at the proposed and current topics).  CSR columns
            // are sorted, so the probe is the binary search the cost model
            // charges below.
            let theta_adj = |kk: usize| {
                let raw = cols
                    .binary_search(&(kk as u16))
                    .map(|i| vals[i] as f64)
                    .unwrap_or(0.0);
                if kk == c {
                    (raw - 1.0).max(0.0)
                } else {
                    raw
                }
            };

            // Per-token MH chain, every draw keyed by token identity.
            let global_doc = (state.layout.range.start + d) as u64;
            let slot = state.token_slot[pos] as u64;
            let tseed = stable_u64(cfg.seed, self.iteration, (global_doc << 32) | slot);

            let mut k_cur = c;
            for step in 0..self.mh_steps {
                let step = step as u64;
                // Mixture proposal: exact sparse bucket vs stale alias
                // bucket, then O(1) within either.
                let pick = ctx.stable_f32(tseed, 2 * step, 0) as f64 * (s + q_hat);
                ctx.flops(2);
                let k_prop = if pick < s && kd > 0 {
                    let idx = p1_prefix.partition_point(|&cum| cum <= pick).min(kd - 1);
                    ctx.int_ops((kd.max(2) as u64).ilog2() as u64 + 1);
                    cols[idx] as usize
                } else {
                    let u1 = ctx.stable_f32(tseed, 2 * step, 1);
                    let u2 = ctx.stable_f32(tseed, 2 * step, 2);
                    ctx.read_l1(8); // prob + alias of one bucket
                    stale.table().sample_with(u1, u2)
                };
                if k_prop == k_cur {
                    continue;
                }
                // MH correction for the staleness of the dense part:
                // accept with p(k')q(k) / (p(k)q(k')), p fresh, q stale-mixed.
                let posterior = |kk: usize| (theta_adj(kk) + alpha) * fresh(kk);
                let mixture = |kk: usize| theta_adj(kk) * fresh(kk) + alpha * stale.weight(kk);
                let accept =
                    posterior(k_prop) * mixture(k_cur) / (posterior(k_cur) * mixture(k_prop));
                // Fresh φ/n_k plus the stale φ̂ snapshot at the two topics
                // (the stale weight is reconstructed from φ̂ and the chunk's
                // n̂_k snapshot, two extra flops each).
                ctx.read_l1(2 * (int_bytes + 8 + int_bytes));
                ctx.flops(20);
                ctx.int_ops(2 * (kd.max(2) as u64).ilog2() as u64); // θ row probes
                if (ctx.stable_f32(tseed, 2 * step + 1, 3) as f64) < accept {
                    k_cur = k_prop;
                }
            }

            state.z_next[pos].store(k_cur as u16, Ordering::Relaxed);
            ctx.write_global(int_bytes); // compressed topic assignment
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::work::build_work_items;
    use culda_corpus::{partition::DocRange, ChunkLayout, DatasetProfile};
    use culda_gpusim::DeviceSpec;

    fn make_state(num_topics: usize, seed: u64) -> ChunkState {
        let corpus = DatasetProfile {
            name: "alias-hybrid".into(),
            num_docs: 60,
            vocab_size: 120,
            avg_doc_len: 30.0,
            zipf_exponent: 1.05,
            doc_len_sigma: 0.4,
        }
        .generate(seed);
        let layout = ChunkLayout::build(
            &corpus,
            DocRange {
                start: 0,
                end: corpus.num_docs(),
            },
        );
        let state = ChunkState::new(0, layout, num_topics);
        let cfg = LdaConfig::with_topics(num_topics);
        state.random_init_stable(&cfg, cfg.seed);
        state.phi_global.copy_from(&state.phi_local);
        state.nk_global.store_all(&state.nk_local.to_vec());
        state
    }

    #[test]
    fn prepare_builds_on_cadence_and_sampling_assigns_valid_topics() {
        let state = make_state(16, 5);
        let cfg = LdaConfig::with_topics(16).sampler(crate::SamplerStrategy::AliasHybrid {
            rebuild_every: 3,
            mh_steps: 2,
        });
        let sampler = AliasHybridSampler::new(3, 2);
        let dev = Device::new(0, DeviceSpec::v100_volta(), 7);

        // Iteration 0 builds (no tables yet), 1 and 2 reuse, 3 rebuilds.
        assert!(sampler.prepare_chunk(&dev, &state, &cfg, 0) > 0.0);
        assert_eq!(sampler.prepare_chunk(&dev, &state, &cfg, 1), 0.0);
        assert_eq!(sampler.prepare_chunk(&dev, &state, &cfg, 2), 0.0);
        assert!(sampler.prepare_chunk(&dev, &state, &cfg, 3) > 0.0);

        let items = build_work_items(&state.layout, cfg.max_tokens_per_block);
        let kernel = sampler.sampling_kernel(&state, &items, &cfg, 3);
        let stats = dev.launch(sampler.name(), LaunchConfig::new(items.len()), &kernel);
        for z in &state.z_next {
            assert!((z.load(Ordering::Relaxed) as usize) < 16);
        }
        assert!(stats.counters.dram_read_bytes > 0);
        assert!(stats.counters.rng_draws > 0);
    }

    #[test]
    fn resume_style_first_iteration_always_builds() {
        let state = make_state(8, 9);
        let cfg = LdaConfig::with_topics(8);
        let sampler = AliasHybridSampler::new(4, 2);
        let dev = Device::new(0, DeviceSpec::v100_volta(), 1);
        // First iteration the sampler ever sees is 6 (mid-cadence, as after
        // a resume from a checkpoint with no persisted sampler state, e.g. a
        // pre-v4 file): with nothing to restore, tables must still be built.
        assert!(sampler.prepare_chunk(&dev, &state, &cfg, 6) > 0.0);
        // ...and the next rebuild falls back onto the cadence grid.
        assert_eq!(sampler.prepare_chunk(&dev, &state, &cfg, 7), 0.0);
        assert!(sampler.prepare_chunk(&dev, &state, &cfg, 8) > 0.0);
    }

    #[test]
    fn restored_snapshot_resumes_mid_cadence_without_a_rebuild() {
        let cfg = LdaConfig::with_topics(8);
        let sampler = AliasHybridSampler::new(4, 2);
        let dev = Device::new(0, DeviceSpec::v100_volta(), 1);

        // No rebuild has happened yet, so there is nothing to persist.
        assert!(sampler.resume_state().is_none());

        let state = make_state(8, 9);
        assert!(sampler.prepare_chunk(&dev, &state, &cfg, 0) > 0.0);
        let snapshot = sampler.resume_state().expect("snapshot after rebuild");

        // A fresh sampler with the snapshot restored skips the device build
        // at a mid-cadence iteration (the uninterrupted run already paid for
        // it before the checkpoint) ...
        let restored = AliasHybridSampler::new(4, 2);
        restored.restore_resume_state(&snapshot);
        let state_b = make_state(8, 9);
        assert_eq!(restored.prepare_chunk(&dev, &state_b, &cfg, 2), 0.0);

        // ... and produces bit-identical assignments from the stale tables.
        let items = build_work_items(&state.layout, cfg.max_tokens_per_block);
        assert_eq!(sampler.prepare_chunk(&dev, &state, &cfg, 2), 0.0);
        dev.launch(
            sampler.name(),
            LaunchConfig::new(items.len()),
            &sampler.sampling_kernel(&state, &items, &cfg, 2),
        );
        dev.launch(
            restored.name(),
            LaunchConfig::new(items.len()),
            &restored.sampling_kernel(&state_b, &items, &cfg, 2),
        );
        for (a, b) in state.z_next.iter().zip(&state_b.z_next) {
            assert_eq!(a.load(Ordering::Relaxed), b.load(Ordering::Relaxed));
        }

        // The restored sampler stays on the original cadence grid.
        assert_eq!(restored.prepare_chunk(&dev, &state_b, &cfg, 3), 0.0);
        assert!(restored.prepare_chunk(&dev, &state_b, &cfg, 4) > 0.0);
    }

    #[test]
    fn alias_sampling_avoids_the_per_word_dense_rebuild_traffic() {
        // On non-rebuild iterations the alias kernel must read far less
        // off-chip data than the sparse kernel, which pays K ints + K totals
        // per word: that per-word saving is the point of the hybrid.
        let k = 256;
        let state = make_state(k, 3);
        let cfg = LdaConfig::with_topics(k);
        let items = build_work_items(&state.layout, cfg.max_tokens_per_block);

        let dev = Device::new(0, DeviceSpec::v100_volta(), 2);
        let sparse_stats = dev.launch(
            "Sampling",
            LaunchConfig::new(items.len()),
            &crate::kernels::SparseCgsSampler.sampling_kernel(&state, &items, &cfg, 1),
        );

        let alias = AliasHybridSampler::new(8, 2);
        alias.prepare_chunk(&dev, &state, &cfg, 0);
        let alias_stats = dev.launch(
            "Sampling",
            LaunchConfig::new(items.len()),
            &alias.sampling_kernel(&state, &items, &cfg, 1),
        );
        // The shared per-token θ-row traffic bounds the ratio on this small
        // corpus; the per-word saving still has to be clearly visible.
        assert!(
            (alias_stats.counters.dram_read_bytes as f64)
                < sparse_stats.counters.dram_read_bytes as f64 * 0.8,
            "alias {} vs sparse {}",
            alias_stats.counters.dram_read_bytes,
            sparse_stats.counters.dram_read_bytes
        );
    }

    #[test]
    #[should_panic(expected = "prepare_chunk")]
    fn sampling_before_prepare_is_a_bug() {
        let state = make_state(8, 1);
        let cfg = LdaConfig::with_topics(8);
        let items = build_work_items(&state.layout, cfg.max_tokens_per_block);
        let sampler = AliasHybridSampler::new(4, 2);
        let _ = sampler.sampling_kernel(&state, &items, &cfg, 0);
    }
}
